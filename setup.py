"""Setup shim: enables `python setup.py develop` / legacy tooling.

All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
