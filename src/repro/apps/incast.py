"""Incast (fan-in) scenario: M senders blast one receiver through a switch.

The canonical stress test of the multi-host fabric: every sender host has
its own access link, but all of their traffic converges on the single
link from the switch to the sink host, so the switch's sink-facing output
queue is the bottleneck.  Under the default ``backpressure`` policy the
fabric is lossless (queue-full frames wait at the switch); under ``drop``
the queue tail-drops and the senders' RC reliability layer must recover,
so a reliability config is derived automatically in that mode.

Also the scale vehicle: ``connections_per_sender`` > 1 multiplies the
socket count without adding hosts, which is how the 256- and 1024-
connection benchmarks drive the SRQ pool and CQ sharding
(``ScenarioConfig(srq_depth=..., cq_shards=...)``).

Run it from the command line::

    python -m repro.apps.incast --senders 16 --bytes 262144 --audit
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import ScenarioConfig
from ..exs import ExsEventType, ExsSocketOptions, MsgFlags
from ..fabric import Fabric
from ..simnet import SwitchConfig, Topology
from ..trace import ProtocolTracer

__all__ = ["IncastConfig", "IncastResult", "incast_topology", "run_incast", "main"]


@dataclass(frozen=True)
class IncastConfig:
    """Shape of one incast run."""

    #: number of sender hosts (each on its own switch port)
    senders: int = 16
    #: bytes each connection streams to the sink
    bytes_per_sender: int = 256 * 1024
    #: application send/recv granularity
    message_bytes: int = 64 * 1024
    #: EXS socket pairs per sender host (scale knob: total connections =
    #: ``senders * connections_per_sender``)
    connections_per_sender: int = 1
    #: name of the receiving host
    sink: str = "sink"
    #: queue-full policy of the switch: "backpressure" (lossless) or "drop"
    policy: str = "backpressure"
    #: bounded depth of each switch output queue
    port_queue_bytes: int = 256 * 1024
    #: socket options for every connection (None = defaults)
    options: Optional[ExsSocketOptions] = None

    def __post_init__(self) -> None:
        if self.senders < 1:
            raise ValueError("need at least one sender")
        if self.bytes_per_sender <= 0 or self.message_bytes <= 0:
            raise ValueError("bytes_per_sender and message_bytes must be positive")
        if self.connections_per_sender < 1:
            raise ValueError("connections_per_sender must be >= 1")

    @property
    def total_connections(self) -> int:
        return self.senders * self.connections_per_sender

    @property
    def sender_names(self) -> Tuple[str, ...]:
        return tuple(f"s{i}" for i in range(self.senders))


@dataclass
class IncastResult:
    """Outcome and fabric-level accounting of one incast run."""

    senders: int
    connections: int
    total_bytes: int
    #: simulated time of the last byte delivered at the sink
    end_ns: int
    #: aggregate goodput at the sink over [0, end_ns]
    throughput_gbps: float
    #: per-connection delivery completion times (ns, connection order)
    finish_ns: Tuple[int, ...]
    #: per-port forwarded/dropped byte counts at the hub switch
    switch_forwarded_bytes: int
    switch_dropped_bytes: int
    switch_drops: int
    switch_backpressured: int
    #: peak occupancy of the sink-facing output queue
    sink_port_peak_queue_bytes: int
    #: SRQ pool low-water mark at the sink (None when not pooled)
    srq_min_free: Optional[int]
    #: trace-audit violations (0 when auditing was off or clean)
    audit_violations: int = 0

    def to_dict(self) -> dict:
        return {
            "senders": self.senders,
            "connections": self.connections,
            "total_bytes": self.total_bytes,
            "end_ns": self.end_ns,
            "throughput_gbps": round(self.throughput_gbps, 4),
            "switch_forwarded_bytes": self.switch_forwarded_bytes,
            "switch_dropped_bytes": self.switch_dropped_bytes,
            "switch_drops": self.switch_drops,
            "switch_backpressured": self.switch_backpressured,
            "sink_port_peak_queue_bytes": self.sink_port_peak_queue_bytes,
            "srq_min_free": self.srq_min_free,
            "audit_violations": self.audit_violations,
        }


def incast_topology(config: IncastConfig) -> Topology:
    """The star topology an :class:`IncastConfig` implies."""
    return Topology.star(
        config.sender_names + (config.sink,),
        switch=SwitchConfig(
            policy=config.policy, port_queue_bytes=config.port_queue_bytes
        ),
    )


def _sender_proc(handle, config: IncastConfig):
    # Per-side wait: under the cells kernel this resumes the sender on its
    # own host's calendar (handle.wait() fires wherever the second side of
    # the handshake completes); on legacy kernels it IS handle.wait().
    yield handle.wait_side("a")
    stack = handle.fabric.stack(handle.a)
    sock, eq = handle.a_socket, handle.a_eq
    buf = stack.alloc(config.message_bytes, label=f"incast:{handle.a}:snd")
    mr = yield from stack.mregister(buf)
    remaining = config.bytes_per_sender
    while remaining > 0:
        n = min(config.message_bytes, remaining)
        sock.send(buf, mr, n, eq)
        ev = yield eq.dequeue()
        ev.expect(ExsEventType.SEND)
        remaining -= n


def _receiver_proc(handle, config: IncastConfig, finish: Dict[int, int], index: int):
    yield handle.wait_side("b")
    stack = handle.fabric.stack(handle.b)
    sock, eq = handle.b_socket, handle.b_eq
    buf = stack.alloc(config.message_bytes, label=f"incast:{handle.a}:rcv")
    mr = yield from stack.mregister(buf)
    remaining = config.bytes_per_sender
    while remaining > 0:
        n = min(config.message_bytes, remaining)
        sock.recv(buf, mr, n, eq, flags=MsgFlags.MSG_WAITALL)
        ev = yield eq.dequeue()
        ev.expect(ExsEventType.RECV)
        remaining -= ev.nbytes
    finish[index] = stack.sim.now


def run_incast(
    config: IncastConfig,
    scenario: Optional[ScenarioConfig] = None,
    *,
    audit: bool = False,
    max_events: Optional[int] = None,
) -> IncastResult:
    """Run one incast and return its :class:`IncastResult`.

    *scenario* carries seed/profile/SRQ/CQ-shard settings; its topology
    must be unset (the incast shape is derived from *config*).  With
    *audit* the run records a protocol trace and re-verifies the stream
    invariants over it (:func:`repro.check.audit.audit_events`).
    """
    scenario = scenario or ScenarioConfig()
    if scenario.topology is not None:
        raise ValueError("run_incast derives its topology from IncastConfig")
    if config.policy == "drop" and scenario.reliability is None:
        # tail-dropping switch: data loss is expected, so the run needs the
        # RC recovery machinery (same auto-derivation as a lossy wire)
        from ..verbs import ReliabilityConfig

        profile = scenario.resolve_profile()
        scenario = scenario.with_(reliability=ReliabilityConfig.for_path(
            2 * (profile.propagation_delay_ns + profile.emulator_delay_ns)
        ))
    scenario = scenario.with_(topology=incast_topology(config))
    fabric = Fabric.from_scenario(scenario)
    tracer = ProtocolTracer.attach(fabric) if audit else None

    options = config.options or ExsSocketOptions()
    finish: Dict[int, int] = {}
    handles = []
    for name in config.sender_names:
        for _ in range(config.connections_per_sender):
            handle = fabric.connect(name, config.sink, options=options)
            index = len(handles)
            handles.append(handle)
            fabric.sim.process(
                _sender_proc(handle, config), name=f"incast-snd-{index}"
            )
            fabric.sim.process(
                _receiver_proc(handle, config, finish, index),
                name=f"incast-rcv-{index}",
            )
    fabric.run(max_events=max_events)

    missing = [i for i in range(len(handles)) if i not in finish]
    if missing:
        raise RuntimeError(
            f"incast did not complete: connections {missing[:8]} "
            f"({len(missing)} of {len(handles)}) never finished "
            f"(policy={config.policy!r}; dropped frames without reliability?)"
        )

    switch = fabric.switches[next(iter(fabric.topology.switches))]
    forwarded = sum(p.forwarded_bytes for p in switch.ports.values())
    dropped = sum(p.dropped_bytes for p in switch.ports.values())
    drops = sum(p.drops for p in switch.ports.values())
    backpressured = sum(p.backpressured for p in switch.ports.values())
    sink_port = switch.ports[config.sink]

    violations = 0
    if tracer is not None:
        from ..check.audit import audit_events

        report = audit_events(tracer.events)
        violations = len(report.violations)

    total = config.bytes_per_sender * len(handles)
    end_ns = max(finish.values())
    sink_pool = fabric.stack(config.sink).srq_pool
    return IncastResult(
        senders=config.senders,
        connections=len(handles),
        total_bytes=total,
        end_ns=end_ns,
        throughput_gbps=(total * 8 / end_ns) if end_ns else 0.0,
        finish_ns=tuple(finish[i] for i in range(len(handles))),
        switch_forwarded_bytes=forwarded,
        switch_dropped_bytes=dropped,
        switch_drops=drops,
        switch_backpressured=backpressured,
        sink_port_peak_queue_bytes=sink_port.peak_queue_bytes,
        srq_min_free=sink_pool.min_free if sink_pool is not None else None,
        audit_violations=violations,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.incast",
        description="M-sender fan-in through one switch uplink",
    )
    parser.add_argument("--senders", type=int, default=16)
    parser.add_argument("--bytes", type=int, default=256 * 1024,
                        help="bytes per connection (default 256 KiB)")
    parser.add_argument("--message-bytes", type=int, default=64 * 1024)
    parser.add_argument("--connections-per-sender", type=int, default=1)
    parser.add_argument("--policy", choices=("backpressure", "drop"),
                        default="backpressure")
    parser.add_argument("--port-queue-bytes", type=int, default=256 * 1024)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--srq-depth", type=int, default=None)
    parser.add_argument("--cq-shards", type=int, default=0)
    parser.add_argument("--audit", action="store_true",
                        help="record a protocol trace and re-verify invariants")
    parser.add_argument("--kernel", default=None,
                        choices=("legacy", "cells", "cells-lockstep", "decoupled"),
                        help="event kernel (default: REPRO_KERNEL env, else legacy)")
    args = parser.parse_args(argv)

    config = IncastConfig(
        senders=args.senders,
        bytes_per_sender=args.bytes,
        message_bytes=args.message_bytes,
        connections_per_sender=args.connections_per_sender,
        policy=args.policy,
        port_queue_bytes=args.port_queue_bytes,
    )
    scenario = ScenarioConfig(
        seed=args.seed, srq_depth=args.srq_depth, cq_shards=args.cq_shards,
        kernel=args.kernel,
    )
    result = run_incast(config, scenario, audit=args.audit)
    print(json.dumps(result.to_dict(), indent=2))
    if result.audit_violations:
        print(f"AUDIT FAILED: {result.audit_violations} violations", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
