"""Parallel-stream file transfer (GridFTP-style bulk data movement).

The paper's over-distance motivation comes from GridFTP-on-RDMA work
(its reference [10]): moving large files across high-latency paths, where
tools routinely open *several parallel streams* to fill the pipe.  This
module implements that pattern on the EXS API:

* the file is split into contiguous per-stream extents,
* each stream pipelines fixed-size chunks with a configurable number of
  outstanding ``exs_send`` operations,
* the receiver reassembles the extents and (in real-data mode) the
  transfer is verified end to end with SHA-256.

``run_file_transfer`` returns aggregate and per-stream statistics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

from ..bench.profiles import FDR_INFINIBAND, HardwareProfile
from ..config import ScenarioConfig
from ..core import ProtocolMode
from ..exs import ExsEventType, ExsSocketOptions, MsgFlags, SocketType
from ..testbed import Testbed
from .metrics import throughput_bps
from .workloads import MIB

__all__ = ["FileTransferConfig", "StreamResult", "FileTransferResult", "run_file_transfer"]


@dataclass(frozen=True)
class FileTransferConfig:
    """One parallel file transfer."""

    file_bytes: int = 64 * MIB
    #: number of parallel stream connections
    streams: int = 4
    #: application chunk size per exs_send
    chunk_bytes: int = 1 * MIB
    #: outstanding sends (and posted receives) per stream
    outstanding: int = 8
    mode: ProtocolMode = ProtocolMode.DYNAMIC
    options: Optional[ExsSocketOptions] = None
    #: move and verify real bytes (False: synthetic, lengths only)
    real_data: bool = False
    port_base: int = 7200

    def socket_options(self) -> ExsSocketOptions:
        from dataclasses import replace

        base = self.options or ExsSocketOptions()
        return replace(base, mode=self.mode, real_data=self.real_data)

    def extent(self, stream: int) -> tuple[int, int]:
        """(offset, length) of *stream*'s contiguous slice of the file."""
        base = self.file_bytes // self.streams
        offset = stream * base
        length = base if stream < self.streams - 1 else self.file_bytes - offset
        return offset, length


@dataclass
class StreamResult:
    """Per-stream measurements."""

    stream: int
    nbytes: int
    start_ns: int
    end_ns: int

    @property
    def throughput_bps(self) -> float:
        return throughput_bps(self.nbytes, self.start_ns, self.end_ns)


@dataclass
class FileTransferResult:
    """Aggregate outcome of one parallel transfer."""

    config: FileTransferConfig
    total_bytes: int
    start_ns: int
    end_ns: int
    streams: List[StreamResult]
    #: True when real-data digests matched (None in synthetic mode)
    verified: Optional[bool]

    @property
    def throughput_bps(self) -> float:
        return throughput_bps(self.total_bytes, self.start_ns, self.end_ns)

    @property
    def throughput_gbps(self) -> float:
        return self.throughput_bps / 1e9

    @property
    def elapsed_s(self) -> float:
        return (self.end_ns - self.start_ns) / 1e9


def _pattern(offset: int, length: int) -> bytes:
    """Deterministic file contents for any extent (cheap, seekable)."""
    if length <= 0:
        return b""
    # 251 is prime, so the byte at position p is simply p % 251 and any
    # extent can be generated independently of the rest of the file
    start = offset % 251
    block = bytes((start + i) % 251 for i in range(min(length, 251)))
    reps = length // len(block) + 2
    return (block * reps)[:length]


def _sender_stream(tb: Testbed, cfg: FileTransferConfig, stream: int, out: dict):
    stack = tb.client
    offset, length = cfg.extent(stream)
    sock = stack.socket(SocketType.SOCK_STREAM, cfg.socket_options())
    eq = stack.qcreate(depth=1 << 18)
    buf = stack.alloc(length, real=cfg.real_data, label=f"ft:tx{stream}")
    if cfg.real_data:
        buf.fill(_pattern(offset, length))
    mr = yield from stack.mregister(buf)
    sock.connect(cfg.port_base + stream, eq)
    (yield eq.dequeue()).expect(ExsEventType.CONNECT)

    chunks = [(o, min(cfg.chunk_bytes, length - o)) for o in range(0, length, cfg.chunk_bytes)]
    next_chunk = 0
    inflight = 0
    start = tb.now
    while next_chunk < len(chunks) or inflight:
        while next_chunk < len(chunks) and inflight < cfg.outstanding:
            off, n = chunks[next_chunk]
            sock.send(buf, mr, n, eq, offset=off)
            next_chunk += 1
            inflight += 1
        (yield eq.dequeue()).expect(ExsEventType.SEND)
        inflight -= 1
    sock.close(eq)
    ev = yield eq.dequeue()
    out[("sent", stream)] = (length, start, tb.now)


def _receiver_stream(tb: Testbed, cfg: FileTransferConfig, stream: int,
                     file_buf, out: dict):
    stack = tb.server
    offset, length = cfg.extent(stream)
    lsock = stack.socket(SocketType.SOCK_STREAM, cfg.socket_options())
    lsock.bind_listen(cfg.port_base + stream)
    eq = stack.qcreate(depth=1 << 18)
    mr = out["file_mr"]
    lsock.accept(eq)
    ev = (yield eq.dequeue()).expect(ExsEventType.ACCEPT)
    sock = ev.socket

    # MSG_WAITALL receives: each takes exactly its chunk, so the posted
    # offsets are deterministic even with many receives outstanding.
    posted = 0
    received = 0
    first = None

    def post_next():
        nonlocal posted
        n = min(cfg.chunk_bytes, length - posted)
        sock.recv(file_buf, mr, n, eq, offset=offset + posted,
                  flags=MsgFlags.MSG_WAITALL)
        posted += n

    while posted < length and posted - received < cfg.outstanding * cfg.chunk_bytes:
        post_next()
    while received < length:
        ev = (yield eq.dequeue()).expect(ExsEventType.RECV)
        if ev.eof and received + ev.nbytes < length and posted >= length:
            raise RuntimeError(f"stream {stream}: premature EOF at {received}/{length}")
        if first is None:
            first = tb.now
        received += ev.nbytes
        while posted < length and posted - received < cfg.outstanding * cfg.chunk_bytes:
            post_next()
    out[("recv", stream)] = (received, first, tb.now)


def run_file_transfer(
    config: FileTransferConfig,
    profile: HardwareProfile = FDR_INFINIBAND,
    *,
    seed: int = 0,
    testbed: Optional[Testbed] = None,
    max_events: Optional[int] = 500_000_000,
) -> FileTransferResult:
    """Run one parallel file transfer and return its measurements."""
    if config.streams < 1 or config.file_bytes < config.streams:
        raise ValueError("need at least one stream and one byte per stream")
    tb = testbed or Testbed.from_scenario(ScenarioConfig(profile=profile, seed=seed))
    out: dict = {}

    # one destination "file" shared by all streams, registered once
    file_buf = tb.host("server").alloc(config.file_bytes, real=config.real_data, label="ft:file")
    out["file_mr"] = tb.server_device.register(file_buf)

    procs = []
    for stream in range(config.streams):
        procs.append(tb.sim.process(
            _receiver_stream(tb, config, stream, file_buf, out), name=f"ft-rx{stream}"
        ))
        procs.append(tb.sim.process(
            _sender_stream(tb, config, stream, out), name=f"ft-tx{stream}"
        ))
    tb.run(max_events=max_events)
    for p in procs:
        if not p.triggered:
            raise RuntimeError(f"file transfer deadlocked in {p.name}")
        p.result()

    streams = []
    for s in range(config.streams):
        nbytes, start, end = out[("recv", s)]
        sent_bytes, sent_start, _ = out[("sent", s)]
        if nbytes != sent_bytes:
            raise AssertionError(f"stream {s}: sent {sent_bytes} but delivered {nbytes}")
        streams.append(StreamResult(s, nbytes, min(start, sent_start), end))

    verified: Optional[bool] = None
    if config.real_data:
        expected = hashlib.sha256(_pattern(0, config.file_bytes)).hexdigest()
        actual = hashlib.sha256(bytes(file_buf.data)).hexdigest()
        verified = expected == actual
        if not verified:
            raise AssertionError("file digest mismatch after transfer")

    return FileTransferResult(
        config=config,
        total_bytes=sum(s.nbytes for s in streams),
        start_ns=min(s.start_ns for s in streams),
        end_ns=max(s.end_ns for s in streams),
        streams=streams,
        verified=verified,
    )
