"""Ping-pong echo tool: round-trip latency measurement.

The paper's future work calls for "performing latency studies" and more
test applications; ``run_echo`` is the classic ``ib_write_lat``-style tool
rebuilt on the EXS API: the client sends a fixed-size message, the server
echoes it back, and the round-trip time of every iteration is recorded.

Unlike the blast tool (one-directional saturation), echo exercises both
directions of a connection with strictly alternating traffic — the
pathological case for the dynamic protocol's ADVERT pipeline, since no
operation can ever be pre-posted more than one message ahead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..bench.profiles import FDR_INFINIBAND, HardwareProfile
from ..config import ScenarioConfig
from ..core import ProtocolMode
from ..exs import ExsEventType, ExsSocketOptions, MsgFlags, SocketType
from ..testbed import Testbed
from .metrics import percentile

__all__ = ["EchoConfig", "EchoResult", "run_echo"]


@dataclass(frozen=True)
class EchoConfig:
    """One echo (ping-pong) run."""

    iterations: int = 100
    message_bytes: int = 64
    #: initial iterations excluded from the statistics
    warmup: int = 5
    mode: ProtocolMode = ProtocolMode.DYNAMIC
    options: Optional[ExsSocketOptions] = None
    real_data: bool = False
    port: int = 7100

    def socket_options(self) -> ExsSocketOptions:
        from dataclasses import replace

        base = self.options or ExsSocketOptions()
        return replace(base, mode=self.mode, real_data=self.real_data)


@dataclass
class EchoResult:
    """Round-trip latencies (ns) of the measured iterations."""

    config: EchoConfig
    rtts_ns: List[int]

    @property
    def min_ns(self) -> int:
        return min(self.rtts_ns)

    @property
    def mean_ns(self) -> float:
        return sum(self.rtts_ns) / len(self.rtts_ns)

    @property
    def median_ns(self) -> float:
        return percentile(self.rtts_ns, 50)

    @property
    def p99_ns(self) -> float:
        return percentile(self.rtts_ns, 99)

    @property
    def half_rtt_us(self) -> float:
        """Median one-way latency estimate in microseconds (ib_*_lat style)."""
        return self.median_ns / 2 / 1000


def _server_proc(tb: Testbed, cfg: EchoConfig):
    stack = tb.server
    opts = cfg.socket_options()
    lsock = stack.socket(SocketType.SOCK_STREAM, opts)
    lsock.bind_listen(cfg.port)
    eq = stack.qcreate()
    buf = stack.alloc(cfg.message_bytes, real=cfg.real_data, label="echo:srv")
    mr = yield from stack.mregister(buf)
    lsock.accept(eq)
    ev = (yield eq.dequeue()).expect(ExsEventType.ACCEPT)
    sock = ev.socket
    total = cfg.iterations + cfg.warmup
    for _ in range(total):
        sock.recv(buf, mr, cfg.message_bytes, eq, flags=MsgFlags.MSG_WAITALL)
        ev = (yield eq.dequeue()).expect(ExsEventType.RECV)
        if ev.nbytes != cfg.message_bytes:
            raise RuntimeError(f"echo server: bad recv {ev}")
        sock.send(buf, mr, cfg.message_bytes, eq)
        (yield eq.dequeue()).expect(ExsEventType.SEND)


def _client_proc(tb: Testbed, cfg: EchoConfig, out: dict):
    stack = tb.client
    opts = cfg.socket_options()
    sock = stack.socket(SocketType.SOCK_STREAM, opts)
    eq = stack.qcreate()
    buf = stack.alloc(cfg.message_bytes, real=cfg.real_data, label="echo:cli")
    mr = yield from stack.mregister(buf)
    sock.connect(cfg.port, eq)
    (yield eq.dequeue()).expect(ExsEventType.CONNECT)
    rtts: List[int] = []
    total = cfg.iterations + cfg.warmup
    for i in range(total):
        t0 = tb.now
        sock.send(buf, mr, cfg.message_bytes, eq)
        # wait for both the send completion and the echoed reply
        pending = {"send": False, "recv": False}
        sock.recv(buf, mr, cfg.message_bytes, eq, flags=MsgFlags.MSG_WAITALL)
        while not (pending["send"] and pending["recv"]):
            ev = yield eq.dequeue()
            if ev.kind is ExsEventType.SEND:
                pending["send"] = True
            elif ev.kind is ExsEventType.RECV:
                if ev.nbytes != cfg.message_bytes:
                    raise RuntimeError(f"echo client: short reply {ev.nbytes}")
                pending["recv"] = True
            else:
                raise RuntimeError(f"echo client: unexpected event {ev.kind}")
        if i >= cfg.warmup:
            rtts.append(tb.now - t0)
    out["rtts"] = rtts


def run_echo(
    config: EchoConfig,
    profile: HardwareProfile = FDR_INFINIBAND,
    *,
    seed: int = 0,
    testbed: Optional[Testbed] = None,
    max_events: Optional[int] = 100_000_000,
) -> EchoResult:
    """Run one ping-pong session and return its latency distribution."""
    tb = testbed or Testbed.from_scenario(ScenarioConfig(profile=profile, seed=seed))
    out: dict = {}
    ps = tb.sim.process(_server_proc(tb, config), name="echo-server")
    pc = tb.sim.process(_client_proc(tb, config, out), name="echo-client")
    tb.run(max_events=max_events)
    if not (ps.triggered and pc.triggered):
        raise RuntimeError("echo deadlocked")
    ps.result()
    pc.result()
    return EchoResult(config=config, rtts_ns=out["rtts"])
