"""Message-size generators for the blast workload.

The paper's throughput experiments draw message sizes "at random from an
exponential distribution with λ = 1 and a maximum message size of 4 MiB"
(Figs. 9, 10, 13) or use fixed sizes (Figs. 11, 12).  The future-work
section proposes "dynamically changing send and receive message sizes and
burstiness during a connection", which :class:`PhasedSizes` implements.

All generators are seeded and deterministic.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence

__all__ = [
    "SizeGenerator",
    "FixedSizes",
    "ExponentialSizes",
    "UniformSizes",
    "BimodalSizes",
    "PhasedSizes",
    "KIB",
    "MIB",
]

KIB = 1024
MIB = 1024 * 1024


class SizeGenerator:
    """Base class: iterable of message sizes in bytes."""

    def sizes(self, count: int) -> List[int]:
        """The first *count* sizes (always the same for the same instance config)."""
        it = iter(self)
        return [next(it) for _ in range(count)]

    def __iter__(self) -> Iterator[int]:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def mean_hint(self) -> float:
        """Approximate mean size (for sizing runs); subclasses refine."""
        return float(sum(self.sizes(256)) / 256)


class FixedSizes(SizeGenerator):
    """Every message has the same size (paper Figs. 11, 12)."""

    def __init__(self, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError("message size must be positive")
        self.nbytes = nbytes

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.nbytes

    @property
    def mean_hint(self) -> float:
        return float(self.nbytes)


class ExponentialSizes(SizeGenerator):
    """Exponential sizes with a cap (paper Figs. 9, 10, 13).

    ``mean`` is the (pre-cap) mean in bytes; the paper's "λ = 1" with a
    4 MiB maximum is read as mean 1 MiB, capped at 4 MiB.
    """

    def __init__(self, mean: float = 1 * MIB, maximum: int = 4 * MIB, seed: int = 0) -> None:
        if mean <= 0 or maximum <= 0:
            raise ValueError("mean and maximum must be positive")
        self.mean = float(mean)
        self.maximum = int(maximum)
        self.seed = seed

    def __iter__(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        while True:
            size = int(rng.expovariate(1.0 / self.mean))
            yield max(1, min(size, self.maximum))


class UniformSizes(SizeGenerator):
    """Uniform sizes in ``[lo, hi]``."""

    def __init__(self, lo: int, hi: int, seed: int = 0) -> None:
        if not (0 < lo <= hi):
            raise ValueError("need 0 < lo <= hi")
        self.lo, self.hi, self.seed = lo, hi, seed

    def __iter__(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        while True:
            yield rng.randint(self.lo, self.hi)


class BimodalSizes(SizeGenerator):
    """Mixture of a small and a large size (RPC-like traffic)."""

    def __init__(self, small: int, large: int, large_fraction: float = 0.1, seed: int = 0) -> None:
        if not (0.0 <= large_fraction <= 1.0):
            raise ValueError("large_fraction must be in [0, 1]")
        self.small, self.large = small, large
        self.large_fraction = large_fraction
        self.seed = seed

    def __iter__(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        while True:
            yield self.large if rng.random() < self.large_fraction else self.small


class PhasedSizes(SizeGenerator):
    """Concatenate sub-generators, each for a fixed number of messages.

    Models workloads whose size profile changes mid-connection (the paper's
    future-work burstiness scenario): e.g. 500 small messages, then 500
    large, then small again — the dynamic protocol should re-adapt at each
    boundary.
    """

    def __init__(self, phases: Sequence[tuple[SizeGenerator, int]]) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        self.phases = list(phases)

    def __iter__(self) -> Iterator[int]:
        while True:  # cycle for safety if more sizes are drawn than planned
            for gen, count in self.phases:
                it = iter(gen)
                for _ in range(count):
                    yield next(it)

    @property
    def total_planned(self) -> int:
        return sum(count for _gen, count in self.phases)
