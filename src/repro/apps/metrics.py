"""Measurement and aggregation helpers.

Throughput follows the paper's equation (1)::

    throughput = total user bytes sent / (end time - start time)

with *start* the start of the first transfer and *end* the end of the last
transfer.  CPU usage is the host library/application core's busy fraction
over the same window.  Repeated runs aggregate into mean and a 95%
confidence interval, as the paper reports ("we ran each test 10 times and
took the average and 95% confidence interval").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["throughput_bps", "MeanCI", "mean_ci", "percentile"]

#: two-sided 97.5% Student-t quantiles for small sample sizes (df 1..30)
_T975 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def throughput_bps(total_bytes: int, start_ns: int, end_ns: int) -> float:
    """Paper equation (1), in bits per second."""
    if end_ns <= start_ns:
        return 0.0
    return total_bytes * 8 * 1e9 / (end_ns - start_ns)


@dataclass(frozen=True)
class MeanCI:
    """Mean with a symmetric 95% confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def lo(self) -> float:
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


def mean_ci(values: Sequence[float]) -> MeanCI:
    """Mean and 95% CI half-width (Student-t for the small-n paper style)."""
    n = len(values)
    if n == 0:
        raise ValueError("no values")
    mean = sum(values) / n
    if n == 1:
        return MeanCI(mean, 0.0, 1)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    t = _T975[min(n - 1, len(_T975)) - 1]
    return MeanCI(mean, t * math.sqrt(var / n), n)


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (linear interpolation between closest ranks)."""
    if not values:
        raise ValueError("no values")
    if not (0 <= q <= 100):
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q / 100 * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac
