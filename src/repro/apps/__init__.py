"""Applications and workloads: the blast tool, size generators, metrics."""

from .blast import BlastConfig, BlastResult, run_blast
from .echo import EchoConfig, EchoResult, run_echo
from .filetransfer import (
    FileTransferConfig,
    FileTransferResult,
    StreamResult,
    run_file_transfer,
)
from .metrics import MeanCI, mean_ci, percentile, throughput_bps
from .workloads import (
    KIB,
    MIB,
    BimodalSizes,
    ExponentialSizes,
    FixedSizes,
    PhasedSizes,
    SizeGenerator,
    UniformSizes,
)

__all__ = [
    "BimodalSizes",
    "BlastConfig",
    "BlastResult",
    "EchoConfig",
    "EchoResult",
    "FileTransferConfig",
    "FileTransferResult",
    "StreamResult",
    "ExponentialSizes",
    "FixedSizes",
    "KIB",
    "MIB",
    "MeanCI",
    "PhasedSizes",
    "SizeGenerator",
    "UniformSizes",
    "mean_ci",
    "percentile",
    "run_blast",
    "run_echo",
    "run_file_transfer",
    "throughput_bps",
]
