"""Applications and workloads: the blast tool, size generators, metrics."""

from .blast import BlastConfig, BlastResult, run_blast
from .echo import EchoConfig, EchoResult, run_echo
from .incast import IncastConfig, IncastResult, incast_topology, run_incast
from .filetransfer import (
    FileTransferConfig,
    FileTransferResult,
    StreamResult,
    run_file_transfer,
)
from .metrics import MeanCI, mean_ci, percentile, throughput_bps
from .workloads import (
    KIB,
    MIB,
    BimodalSizes,
    ExponentialSizes,
    FixedSizes,
    PhasedSizes,
    SizeGenerator,
    UniformSizes,
)

__all__ = [
    "BimodalSizes",
    "BlastConfig",
    "BlastResult",
    "EchoConfig",
    "EchoResult",
    "FileTransferConfig",
    "FileTransferResult",
    "StreamResult",
    "ExponentialSizes",
    "FixedSizes",
    "IncastConfig",
    "IncastResult",
    "KIB",
    "MIB",
    "MeanCI",
    "PhasedSizes",
    "SizeGenerator",
    "UniformSizes",
    "incast_topology",
    "mean_ci",
    "percentile",
    "run_blast",
    "run_echo",
    "run_incast",
    "run_file_transfer",
    "throughput_bps",
]
