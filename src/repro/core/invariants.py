"""Runtime verification of the paper's correctness claims.

The paper proves four lemmas and a safety theorem (§IV-A).  Rather than
trusting the proof, the implementation *checks the claims at runtime* on
every run — including the large benchmark runs, where the checks are cheap
integer comparisons.  A violation raises :class:`SafetyViolation`, which in
this codebase is treated like an assertion failure: it means the algorithm
implementation (not the caller) is wrong.

Checked claims:

* Lemma 1 — every ADVERT carries a direct phase number
  (enforced by :class:`repro.core.advert.Advert` itself).
* Lemma 4 — when the sender's phase is direct, an arriving usable ADVERT
  carries exactly the sender's phase.
* Theorem 1 (safety) — a direct transfer arriving at the receiver matches
  the ADVERT of the receive at the *head* of the receiver queue, lands at
  the exact current stream position (no loss, no reorder, no overwrite),
  and never arrives while un-copied indirect data is pending.
* Stream continuity — indirect data enters the intermediate buffer in
  exact stream order.
"""

from __future__ import annotations

__all__ = ["SafetyViolation", "require"]


class SafetyViolation(AssertionError):
    """A proven-impossible protocol state was reached (implementation bug)."""


def require(condition: bool, claim: str, detail: str = "") -> None:
    """Raise :class:`SafetyViolation` with context unless *condition* holds."""
    if not condition:
        message = f"safety violation [{claim}]"
        if detail:
            message += f": {detail}"
        raise SafetyViolation(message)
