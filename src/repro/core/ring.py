"""Circular intermediate-buffer accounting (paper §III).

The hidden receive-side buffer is circular: "the sender keeps a pointer to
the next position in the intermediate buffer to place data, while the
receiver keeps a pointer to the next position to remove data.  Both sides
keep track of the number of bytes currently stored."

Two independent views are modelled, matching that independence:

* :class:`SenderRingView` — the sender's notion of free space (the paper's
  ``b_s``), advanced optimistically at reservation time and replenished by
  the receiver's cumulative-copy acknowledgements.
* :class:`ReceiverRing` — the receiver's fill state (the paper's ``b_r``)
  and read pointer, plus the cumulative copied-out counter it reports in
  ACKs.

Reservations that would wrap the end of the buffer are split into two
segments, because one RDMA WRITE targets one contiguous remote range.
Cumulative counters make the ACK protocol idempotent and loss-tolerant by
construction (though the RC transport never loses messages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["RingSegment", "SenderRingView", "ReceiverRing", "RingError"]


class RingError(RuntimeError):
    """Accounting violation in the intermediate-buffer bookkeeping."""


@dataclass(frozen=True)
class RingSegment:
    """A contiguous region reserved in the ring: [offset, offset+nbytes)."""

    offset: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0 or self.offset < 0:
            raise RingError(f"bad ring segment ({self.offset}, {self.nbytes})")


class SenderRingView:
    """The sender's view of the remote intermediate buffer."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise RingError("ring capacity must be positive")
        self.capacity = capacity
        #: cumulative bytes reserved (== sent indirectly, once transmitted)
        self.reserved_total = 0
        #: cumulative bytes the receiver has reported copied out
        self.acked_copied_total = 0
        self._write_off = 0

    @property
    def in_flight(self) -> int:
        """Bytes believed to occupy the remote buffer."""
        return self.reserved_total - self.acked_copied_total

    @property
    def free(self) -> int:
        """The paper's ``b_s``: free byte count from the sender's view."""
        return self.capacity - self.in_flight

    def reserve(self, nbytes: int) -> List[RingSegment]:
        """Reserve up to the next wrap boundary; returns 1 or 2 segments.

        Raises if *nbytes* exceeds the current free space — callers must
        clamp with :attr:`free` first (the sender algorithm does).
        """
        if nbytes <= 0:
            raise RingError("reserve of <= 0 bytes")
        if nbytes > self.free:
            raise RingError(f"reserve {nbytes} exceeds free {self.free}")
        segments: List[RingSegment] = []
        remaining = nbytes
        while remaining > 0:
            run = min(remaining, self.capacity - self._write_off)
            segments.append(RingSegment(self._write_off, run))
            self._write_off = (self._write_off + run) % self.capacity
            remaining -= run
        self.reserved_total += nbytes
        return segments

    def on_copy_ack(self, cumulative_copied: int) -> None:
        """Process the receiver's cumulative copied-out report."""
        if cumulative_copied < self.acked_copied_total:
            # Stale/reordered ack — cumulative counters make this harmless.
            return
        if cumulative_copied > self.reserved_total:
            raise RingError(
                f"receiver claims {cumulative_copied} copied but only "
                f"{self.reserved_total} were ever sent"
            )
        self.acked_copied_total = cumulative_copied


class ReceiverRing:
    """The receiver's view: fill level, read pointer, copied-out counter."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise RingError("ring capacity must be positive")
        self.capacity = capacity
        self._read_off = 0
        #: the paper's ``b_r``: bytes currently stored
        self.stored = 0
        #: cumulative bytes ever written into the ring by the sender
        self.written_total = 0
        #: cumulative bytes ever copied out to user memory (reported in ACKs)
        self.copied_total = 0

    @property
    def read_offset(self) -> int:
        return self._read_off

    def on_arrival(self, segment: RingSegment) -> None:
        """Account an indirect transfer landing in the ring.

        The sender's reservation discipline guarantees the segment starts
        exactly at the current write position and fits in free space; both
        are asserted because violating them silently would corrupt the
        stream.
        """
        expected_off = (self._read_off + self.stored) % self.capacity
        if segment.offset != expected_off:
            raise RingError(
                f"indirect transfer landed at offset {segment.offset}, "
                f"expected {expected_off} (sender/receiver rings diverged)"
            )
        if self.stored + segment.nbytes > self.capacity:
            raise RingError("indirect transfer overflows the intermediate buffer")
        self.stored += segment.nbytes
        self.written_total += segment.nbytes

    def consume(self, nbytes: int) -> List[RingSegment]:
        """Remove *nbytes* from the head; returns the source segment(s)."""
        if nbytes <= 0:
            raise RingError("consume of <= 0 bytes")
        if nbytes > self.stored:
            raise RingError(f"consume {nbytes} exceeds stored {self.stored}")
        segments: List[RingSegment] = []
        remaining = nbytes
        while remaining > 0:
            run = min(remaining, self.capacity - self._read_off)
            segments.append(RingSegment(self._read_off, run))
            self._read_off = (self._read_off + run) % self.capacity
            remaining -= run
        self.stored -= nbytes
        self.copied_total += nbytes
        return segments

    @property
    def is_empty(self) -> bool:
        return self.stored == 0
