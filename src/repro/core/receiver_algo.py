"""Receiver-side algorithms (paper Figs. 3, 4, 5).

``ReceiverAlgorithm`` is pure control logic for one direction of a stream
connection.  It owns the receive-transaction queue (pending ``exs_recv()``
calls in FIFO order), the receiver's phase/sequence state, and the
intermediate-buffer fill accounting.  Its methods return *actions* —
ADVERTs to transmit, user receives to complete, copies to perform — which
the EXS layer executes with real timing and memory movement.

Paper-variable correspondence (Table I): ``self.phase`` = P_r,
``self.seq`` = S_r, ``self.advert_seq_estimate`` = S'_r,
``self.ring.stored`` = b_r, ``self.prior_phase_adverts`` = k_a,
``self.unadvertised_recvs`` = k_b.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional

from .advert import Advert
from .invariants import require
from .modes import ProtocolMode
from .phase import INITIAL_PHASE, is_direct, is_indirect, next_phase, to_direct
from .ring import ReceiverRing, RingSegment
from .stats import ProtocolStats

__all__ = ["RecvEntry", "CopyPlan", "ReceiverAlgorithm"]


@dataclass
class RecvEntry:
    """One pending ``exs_recv()`` transaction."""

    recv_id: int
    length: int
    waitall: bool
    #: opaque handle for the EXS layer (user buffer, event-queue target, ...)
    context: Any = None
    #: the ADVERT sent for this entry, if any
    advert: Optional[Advert] = None
    #: bytes delivered into the user buffer so far
    filled: int = 0
    completed: bool = False

    @property
    def remaining(self) -> int:
        return self.length - self.filled


@dataclass(frozen=True)
class CopyPlan:
    """Copy *nbytes* from the intermediate buffer into *entry*'s user buffer.

    ``ring_segments`` are the source region(s) in the ring (two if the read
    wraps); ``dest_offset`` is where the bytes land in the user buffer.
    """

    entry: RecvEntry
    nbytes: int
    dest_offset: int
    ring_segments: tuple


class ReceiverAlgorithm:
    """Implements paper Figs. 3 (advertising), 4 (arrival), 5 (copy-out)."""

    def __init__(
        self,
        ring: ReceiverRing,
        mode: ProtocolMode = ProtocolMode.DYNAMIC,
        stats: Optional[ProtocolStats] = None,
    ) -> None:
        self.ring = ring
        self.mode = mode
        self.stats = stats if stats is not None else ProtocolStats()
        #: the paper's P_r
        self.phase: int = INITIAL_PHASE
        #: the paper's S_r — stream position consumed into user memory
        self.seq: int = 0
        #: the paper's S'_r — sequence-number estimate for the next ADVERT
        self.advert_seq_estimate: int = 0
        #: the paper's k_a — outstanding ADVERTs from a prior phase
        self.prior_phase_adverts: int = 0
        #: the paper's k_b — pending exs_recv()s with no ADVERT
        self.unadvertised_recvs: int = 0
        self.queue: Deque[RecvEntry] = deque()
        self._advert_ids = itertools.count(1)
        self._recv_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Fig. 3 — user posts an exs_recv()
    # ------------------------------------------------------------------
    def post_recv(
        self,
        length: int,
        *,
        waitall: bool = False,
        context: Any = None,
        advert_remote_addr: int = 0,
        advert_rkey: int = 0,
    ) -> tuple[RecvEntry, Optional[Advert]]:
        """Queue a receive; returns the entry and the ADVERT to transmit
        (``None`` when advertising is suppressed).
        """
        if length <= 0:
            raise ValueError("exs_recv length must be positive")
        entry = RecvEntry(next(self._recv_ids), length, waitall, context)
        self.queue.append(entry)
        advert = self._maybe_advertise(entry, advert_remote_addr, advert_rkey)
        return entry, advert

    def _maybe_advertise(self, entry: RecvEntry, remote_addr: int, rkey: int) -> Optional[Advert]:
        if self.mode is ProtocolMode.INDIRECT_ONLY:
            # The indirect-only baseline never advertises (paper §IV-B).
            self.unadvertised_recvs += 1
            self.stats.adverts_suppressed += 1
            return None
        # Fig. 3 lines 1-4: suppress while the intermediate buffer holds
        # data, prior-phase ADVERTs are outstanding, or earlier receives
        # are still unadvertised.
        if self.ring.stored > 0 or self.prior_phase_adverts > 0 or self.unadvertised_recvs > 0:
            self.unadvertised_recvs += 1
            self.stats.adverts_suppressed += 1
            return None
        return self._advertise(entry, remote_addr, rkey)

    def _advertise(self, entry: RecvEntry, remote_addr: int, rkey: int) -> Advert:
        """Fig. 3 lines 5-15: build the ADVERT and advance the estimate."""
        if is_indirect(self.phase):
            # lines 5-7: re-entering a direct phase — *resynchronise*: the
            # gate guarantees everything sent so far has been consumed, so
            # the estimate is reset to the true stream position ("the
            # receiver must ensure that the sequence number of the next
            # ADVERT matches what the sender expects", paper §III).
            self._set_phase(next_phase(self.phase))
            require(
                self.ring.stored == 0 and self.prior_phase_adverts == 0,
                "resync gate",
                "re-advertising while indirect data or prior adverts outstanding",
            )
            self.advert_seq_estimate = self.seq
        advert = Advert(
            advert_id=next(self._advert_ids),
            seq=self.advert_seq_estimate,  # line 9: S_A <- S'_r
            # a partially-filled WAITALL receive re-advertises only its
            # remaining window, placed past the bytes already delivered
            length=entry.remaining,
            phase=self.phase,  # line 8: P_A <- P_r
            waitall=entry.waitall,
            remote_addr=remote_addr + entry.filled,
            rkey=rkey,
            base_offset=entry.filled,
        )
        entry.advert = advert
        # lines 10-14: advance the estimate — by the full remaining length
        # for MSG_WAITALL (exactly that many bytes will land), by the
        # minimum guaranteed 1 byte otherwise.
        self.advert_seq_estimate += entry.remaining if entry.waitall else 1
        self.stats.adverts_sent += 1
        return advert

    def flush_adverts(self, addr_rkey_of: "callable" = None) -> List[tuple[RecvEntry, Advert]]:
        """Send ADVERTs for queued unadvertised receives once the gate opens.

        Called by the EXS layer after arrivals/copies change state.  Returns
        ``(entry, advert)`` pairs in queue order; empty if the gate is still
        closed.  ``addr_rkey_of(entry) -> (remote_addr, rkey)`` supplies
        placement info for each entry's user buffer.
        """
        if self.mode is ProtocolMode.INDIRECT_ONLY:
            return []
        out: List[tuple[RecvEntry, Advert]] = []
        if self.ring.stored > 0 or self.prior_phase_adverts > 0:
            return out
        for entry in self.queue:
            if entry.advert is None and not entry.completed:
                addr, rkey = addr_rkey_of(entry) if addr_rkey_of else (0, 0)
                advert = self._advertise(entry, addr, rkey)
                self.unadvertised_recvs -= 1
                out.append((entry, advert))
        require(
            not out or self.unadvertised_recvs == 0,
            "k_b accounting",
            f"k_b={self.unadvertised_recvs} after full flush",
        )
        return out

    # ------------------------------------------------------------------
    # Fig. 4 — a transfer arrives
    # ------------------------------------------------------------------
    def on_direct_arrival(
        self, seq: int, nbytes: int, advert_id: int, buffer_offset: int
    ) -> List[RecvEntry]:
        """A direct (zero-copy) transfer landed in an advertised buffer.

        Returns entries to complete (at most one).  The Theorem-1 safety
        checks run here: the transfer must target the head-of-queue entry's
        ADVERT, land at the exact current stream position, and never pass
        pending indirect data.
        """
        require(
            self.ring.stored == 0,
            "Theorem 1 (ordering)",
            "direct transfer arrived while intermediate-buffer data is pending",
        )
        require(len(self.queue) > 0, "Theorem 1", "direct transfer with empty receive queue")
        entry = self.queue[0]
        require(
            entry.advert is not None and entry.advert.advert_id == advert_id,
            "Theorem 1 (head match)",
            f"transfer matched advert {advert_id} but head entry has "
            f"{entry.advert.advert_id if entry.advert else None}",
        )
        require(
            seq == self.seq,
            "Theorem 1 (no loss/reorder)",
            f"direct transfer seq {seq} != receiver stream position {self.seq}",
        )
        require(
            buffer_offset + entry.advert.base_offset == entry.filled,
            "Theorem 1 (placement)",
            f"transfer placed at advert offset {buffer_offset} (+base "
            f"{entry.advert.base_offset}), entry filled {entry.filled}",
        )
        require(
            nbytes <= entry.remaining,
            "Theorem 1 (bounds)",
            f"transfer of {nbytes}B overflows entry with {entry.remaining}B remaining",
        )
        # Fig. 4 line 2: S_r += l_w
        self.seq += nbytes
        # Fig. 4 lines 3-5: correct the estimate (the ADVERT pre-counted 1).
        if not entry.waitall:
            self.advert_seq_estimate += nbytes - 1
        entry.filled += nbytes
        done: List[RecvEntry] = []
        # Stream semantics: a non-WAITALL receive completes on first data;
        # WAITALL waits for the full buffer (paper §II-C).
        if not entry.waitall or entry.filled == entry.length:
            self._complete_head(entry)
            done.append(entry)
        return done

    def on_indirect_arrival(self, seq: int, segment: RingSegment) -> None:
        """An indirect transfer landed in the intermediate buffer."""
        # Stream continuity: indirect data must extend the stream exactly.
        require(
            seq == self.seq + self.ring.stored,
            "stream continuity",
            f"indirect transfer seq {seq} != expected {self.seq + self.ring.stored}",
        )
        if is_direct(self.phase):
            # Fig. 4 lines 8-10: first indirect transfer of a burst — all
            # currently outstanding ADVERTs become prior-phase (k_a).
            self._set_phase(next_phase(self.phase))
            self.prior_phase_adverts = sum(
                1 for e in self.queue if e.advert is not None and not e.completed
            )
        self.ring.on_arrival(segment)

    # ------------------------------------------------------------------
    # Fig. 5 — copy out of the intermediate buffer
    # ------------------------------------------------------------------
    def next_copy(self) -> Optional[CopyPlan]:
        """The next copy the library thread should perform, if any."""
        if self.ring.stored == 0 or not self.queue:
            return None
        entry = self.queue[0]
        nbytes = min(self.ring.stored, entry.remaining)
        if nbytes == 0:  # pragma: no cover - defensive; head should never be full
            return None
        segments = tuple(self.ring.consume(nbytes))
        return CopyPlan(entry=entry, nbytes=nbytes, dest_offset=entry.filled, ring_segments=segments)

    def on_copied(self, plan: CopyPlan) -> List[RecvEntry]:
        """Account a finished copy (Fig. 5); returns entries to complete.

        Note: :meth:`next_copy` already removed the bytes from the ring
        (the EXS layer performs the memcpy between the two calls, mirroring
        how the real library owns that region during the copy).
        """
        entry = plan.entry
        require(entry is self.queue[0], "copy-out order", "copy completed for non-head entry")
        # Fig. 5 lines 3-4: b_r -= l_c (done by consume); S_r += l_c.
        self.seq += plan.nbytes
        # Fig. 5 lines 5-7: if an ADVERT was sent for this receive and it is
        # not WAITALL, correct the estimate (it pre-counted 1 byte).
        if entry.advert is not None and not entry.waitall:
            self.advert_seq_estimate += plan.nbytes - 1
        entry.filled += plan.nbytes
        self.stats.copies += 1
        self.stats.copied_bytes += plan.nbytes
        done: List[RecvEntry] = []
        if not entry.waitall or entry.filled == entry.length:
            self._complete_head(entry)
            done.append(entry)
        return done

    # ------------------------------------------------------------------
    def _complete_head(self, entry: RecvEntry) -> None:
        require(self.queue and self.queue[0] is entry, "completion order", "non-head completion")
        self.queue.popleft()
        entry.completed = True
        if entry.advert is not None:
            # While the phase is indirect, every outstanding advert-bearing
            # entry is by construction from the prior direct phase (the gate
            # re-opens only at k_a == 0), so completing one drains k_a.
            if self.prior_phase_adverts > 0:
                self.prior_phase_adverts -= 1
        else:
            # An unadvertised entry satisfied entirely from the buffer.
            self.unadvertised_recvs -= 1
            require(self.unadvertised_recvs >= 0, "k_b accounting", "k_b went negative")

    def _set_phase(self, phase: int) -> None:
        require(phase >= self.phase, "phase monotonicity", f"{self.phase} -> {phase}")
        if is_direct(phase) != is_direct(self.phase):
            self.stats.mode_switches += 1
        self.phase = phase

    # ------------------------------------------------------------------
    @property
    def pending_recvs(self) -> int:
        return len(self.queue)

    @property
    def head_entry(self) -> Optional[RecvEntry]:
        return self.queue[0] if self.queue else None
