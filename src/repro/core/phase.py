"""Phase-number algebra (paper §III).

Phases are a Lamport-style logical clock ordering ADVERT sequences with
respect to runs of indirect transfers:

* **even** phase numbers denote *direct* phases (zero-copy transfers
  matched to ADVERTs),
* **odd** phase numbers denote *indirect* phases (transfers into the
  hidden intermediate buffer).

Both endpoints start in phase 0 and phases only ever increase.  The paper's
``PHASE IS DIRECT`` / ``PHASE IS INDIRECT`` / ``NEXT PHASE`` primitives map
1:1 onto the functions here.
"""

from __future__ import annotations

__all__ = [
    "INITIAL_PHASE",
    "is_direct",
    "is_indirect",
    "next_phase",
    "to_direct",
    "to_indirect",
]

#: both sides of a connection start in this (direct) phase
INITIAL_PHASE = 0


def is_direct(phase: int) -> bool:
    """True for direct (even) phases — the paper's ``PHASE IS DIRECT``."""
    return phase % 2 == 0


def is_indirect(phase: int) -> bool:
    """True for indirect (odd) phases — the paper's ``PHASE IS INDIRECT``."""
    return phase % 2 == 1


def next_phase(phase: int) -> int:
    """The paper's ``NEXT PHASE``: successor of *phase* (flips parity)."""
    return phase + 1


def to_direct(phase: int) -> int:
    """Smallest direct phase >= *phase*."""
    return phase if is_direct(phase) else next_phase(phase)


def to_indirect(phase: int) -> int:
    """Smallest indirect phase >= *phase*."""
    return phase if is_indirect(phase) else next_phase(phase)
