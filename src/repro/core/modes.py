"""Protocol operating modes.

The paper's performance study compares three protocols (§IV-B):

* **dynamic** — the contribution: switch between direct and indirect
  transfers based on which side is ahead.
* **direct-only** — baseline: "forces the sender to always wait for an
  ADVERT from the receiver before sending, so that it will never send to
  the intermediate buffer".
* **indirect-only** — baseline: "the receiver does not send ADVERTs at
  all, forcing the sender to send all messages indirectly".

Both baselines still transfer all data correctly; they exist to pin the two
ends of the design space.  The real UNH EXS activates them via flags passed
by the blast tool, which is mirrored by
:class:`repro.exs.flags.ExsSocketOptions`.
"""

from __future__ import annotations

import enum

__all__ = ["ProtocolMode"]


class ProtocolMode(enum.Enum):
    """Which transfer strategies the stream protocol may use."""

    DYNAMIC = "dynamic"
    DIRECT_ONLY = "direct"
    INDIRECT_ONLY = "indirect"

    @property
    def allows_indirect(self) -> bool:
        return self is not ProtocolMode.DIRECT_ONLY

    @property
    def allows_direct(self) -> bool:
        return self is not ProtocolMode.INDIRECT_ONLY
