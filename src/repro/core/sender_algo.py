"""Sender-side matching algorithm (paper Fig. 2).

``SenderAlgorithm`` is pure control logic: given the sender's protocol
state (phase ``P_s``, sequence number ``S_s``, ADVERT queue ``q_A``, and
the intermediate-buffer free count ``b_s``), decide how the next piece of a
pending ``exs_send()`` travels:

* :class:`DirectPlan` — zero-copy WRITE-WITH-IMM into an advertised user
  buffer, or
* :class:`IndirectPlan` — WRITE-WITH-IMM into the remote intermediate
  (circular) buffer, or
* ``None`` — blocked until an ADVERT or a buffer-space ACK arrives.

The transport/timing side effects are executed by
:class:`repro.exs.stream_sender.StreamSenderHalf`.

Paper-variable correspondence (Table I): ``self.phase`` = P_s,
``self.seq`` = S_s, ``self.adverts`` = q_A, ``self.ring.free`` = b_s;
an ADVERT's fields carry P_A and S_A.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Union

from .advert import Advert
from .invariants import require
from .modes import ProtocolMode
from .phase import INITIAL_PHASE, is_direct, is_indirect, next_phase
from .ring import RingSegment, SenderRingView
from .stats import ProtocolStats

__all__ = ["DirectPlan", "IndirectPlan", "SenderAlgorithm", "TransferPlan"]


@dataclass(frozen=True)
class DirectPlan:
    """Send *nbytes* directly into *advert*'s user buffer."""

    advert: Advert
    #: stream sequence number of the first byte (S_s at decision time)
    seq: int
    nbytes: int
    #: sender phase stamped on the transfer
    phase: int
    #: byte offset inside the advertised buffer (non-zero only for WAITALL
    #: adverts being filled across multiple transfers)
    buffer_offset: int
    #: True when this transfer finishes the advert (it leaves q_A)
    advert_done: bool


@dataclass(frozen=True)
class IndirectPlan:
    """Send *nbytes* into the remote intermediate buffer."""

    seq: int
    nbytes: int
    phase: int
    #: contiguous destination region(s); two when the write wraps the ring
    segments: tuple

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self.segments)


TransferPlan = Union[DirectPlan, IndirectPlan]


class SenderAlgorithm:
    """Implements the ADVERT-matching loop of paper Fig. 2."""

    def __init__(
        self,
        ring: SenderRingView,
        mode: ProtocolMode = ProtocolMode.DYNAMIC,
        stats: Optional[ProtocolStats] = None,
    ) -> None:
        self.ring = ring
        self.mode = mode
        self.stats = stats if stats is not None else ProtocolStats()
        #: the paper's P_s
        self.phase: int = INITIAL_PHASE
        #: the paper's S_s
        self.seq: int = 0
        #: the paper's q_A
        self.adverts: Deque[Advert] = deque()
        #: bytes already sent into the head (WAITALL) advert
        self._head_filled: int = 0

    # ------------------------------------------------------------------
    def on_advert(self, advert: Advert) -> None:
        """An ADVERT arrived from the receiver (queued; vetted at match time)."""
        if self.mode is ProtocolMode.INDIRECT_ONLY:
            # The indirect-only receiver never sends ADVERTs; getting one
            # means the two ends disagree about the protocol mode.
            raise ValueError("ADVERT received on an indirect-only connection")
        self.stats.adverts_received += 1
        self.adverts.append(advert)

    # ------------------------------------------------------------------
    def next_transfer(self, remaining: int) -> Optional[TransferPlan]:
        """Decide how the next ≤ *remaining* bytes travel (paper Fig. 2).

        Returns ``None`` when the sender is blocked.  Callers pass the
        number of bytes still owed by the user send at the head of the send
        queue; the plan's ``nbytes`` is clamped to the advert length or the
        intermediate-buffer free space.
        """
        if remaining <= 0:
            raise ValueError("next_transfer with nothing to send")

        # -- Fig. 2 lines 1-16: try to match an ADVERT ------------------
        while self.adverts:
            advert = self.adverts[0]  # A <- HEAD(q_A)
            if is_indirect(self.phase) and (advert.phase < self.phase or advert.seq < self.seq):
                # lines 4-7: stale ADVERT; drop it (and skip past its whole
                # generation if it is from a newer phase than ours, which is
                # the Fig. 8 hazard fix).
                if self.phase < advert.phase:
                    self._set_phase(next_phase(advert.phase))
                self.adverts.popleft()
                self._head_filled = 0
                self.stats.adverts_discarded += 1
                continue
            # lines 8-15: usable ADVERT -> direct transfer
            if is_indirect(self.phase):
                # line 10: resynchronise onto the receiver's (direct) phase
                self._set_phase(advert.phase)
            else:
                # Lemma 4: mid-direct-phase ADVERTs carry exactly our phase.
                require(
                    advert.phase == self.phase,
                    "Lemma 4",
                    f"sender phase {self.phase} direct but ADVERT phase {advert.phase}",
                )
            advert_remaining = advert.length - self._head_filled
            nbytes = min(remaining, advert_remaining)
            plan = DirectPlan(
                advert=advert,
                seq=self.seq,
                nbytes=nbytes,
                phase=self.phase,
                buffer_offset=self._head_filled,
                advert_done=(not advert.waitall) or (self._head_filled + nbytes == advert.length),
            )
            self.seq += nbytes  # line 12: S_s <- S_s + l_w
            if plan.advert_done:
                self.adverts.popleft()
                self._head_filled = 0
            else:
                # MSG_WAITALL: the ADVERT stays at the head of the queue
                # until all of its bytes have been transferred (paper §II-C).
                self._head_filled += nbytes
            self.stats.direct_transfers += 1
            self.stats.direct_bytes += nbytes
            return plan

        # -- Fig. 2 lines 17-25: fall back to the intermediate buffer ----
        if self.mode.allows_indirect and self.ring.free > 0:
            nbytes = min(remaining, self.ring.free)
            if is_direct(self.phase):
                # line 19: entering an indirect phase
                self._set_phase(next_phase(self.phase))
            seq = self.seq
            segments = tuple(self.ring.reserve(nbytes))  # line 22: b_s -= l_w
            self.seq += nbytes  # line 21
            self.stats.indirect_transfers += len(segments)
            self.stats.indirect_bytes += nbytes
            return IndirectPlan(seq=seq, nbytes=nbytes, phase=self.phase, segments=segments)

        # Blocked: no usable ADVERT, no buffer space (or direct-only mode).
        self.stats.sender_blocked += 1
        return None

    # ------------------------------------------------------------------
    def _set_phase(self, phase: int) -> None:
        require(phase >= self.phase, "phase monotonicity", f"{self.phase} -> {phase}")
        if is_direct(phase) != is_direct(self.phase):
            self.stats.mode_switches += 1
        self.phase = phase

    # ------------------------------------------------------------------
    @property
    def pending_advert_count(self) -> int:
        return len(self.adverts)

    @property
    def is_blocked_on_space(self) -> bool:
        """True when only a buffer-space ACK (or an ADVERT) can unblock us."""
        return not self.adverts and self.ring.free == 0
