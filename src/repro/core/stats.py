"""Protocol statistics.

Mirrors the counters the real UNH EXS keeps ("UNH EXS itself keeps
statistics on the number of indirect vs. direct transfers", §IV-B) plus the
mode-switch count reported in the paper's Table III.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Tuple

__all__ = ["ProtocolStats", "PHASE_TRACE_CAP"]

#: maximum retained phase transitions; adversarial workloads can switch
#: modes once per message forever, so the trace must be bounded
PHASE_TRACE_CAP = 4096


@dataclass
class ProtocolStats:
    """Counters for one direction of one stream connection."""

    # sender side
    direct_transfers: int = 0
    indirect_transfers: int = 0
    direct_bytes: int = 0
    indirect_bytes: int = 0
    #: number of direct<->indirect transitions of the sender's phase
    mode_switches: int = 0
    adverts_received: int = 0
    adverts_discarded: int = 0
    #: times the sender had data but neither an ADVERT nor buffer space
    sender_blocked: int = 0

    # receiver side
    adverts_sent: int = 0
    adverts_suppressed: int = 0
    copies: int = 0
    copied_bytes: int = 0
    ring_acks_sent: int = 0

    #: (time_ns, new_phase) phase transitions, for diagnostics/plots.
    #: Capped at PHASE_TRACE_CAP entries (oldest dropped first); append via
    #: :meth:`note_phase` so drops are counted.
    phase_trace: Deque[Tuple[int, int]] = field(default_factory=deque)
    #: transitions evicted from :attr:`phase_trace` at the cap
    phase_trace_dropped: int = 0

    def note_phase(self, time_ns: int, phase: int) -> None:
        """Record a phase transition, evicting the oldest at the cap."""
        if len(self.phase_trace) >= PHASE_TRACE_CAP:
            self.phase_trace.popleft()
            self.phase_trace_dropped += 1
        self.phase_trace.append((time_ns, phase))

    @property
    def total_transfers(self) -> int:
        return self.direct_transfers + self.indirect_transfers

    @property
    def total_bytes(self) -> int:
        return self.direct_bytes + self.indirect_bytes

    @property
    def direct_ratio(self) -> float:
        """Ratio of direct transfers to total transfers (Table III / Figs. 11b, 12b)."""
        total = self.total_transfers
        return self.direct_transfers / total if total else 0.0

    @property
    def direct_byte_ratio(self) -> float:
        total = self.total_bytes
        return self.direct_bytes / total if total else 0.0
