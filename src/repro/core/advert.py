"""ADVERT records (paper §II-C, §III).

An ADVERT is the receiver's announcement of one ``exs_recv()`` user memory
area: virtual address, length, rkey — plus, for the stream protocol, the
receiver's **expected sequence number** (an estimate for all but the first
ADVERT of a sequence) and **phase number**, and the ``MSG_WAITALL`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass

from .phase import is_direct

__all__ = ["Advert"]


@dataclass(frozen=True)
class Advert:
    """One receiver memory advertisement.

    ``advert_id`` is a connection-unique identifier used by the simulation
    to *verify* (not to implement) the paper's safety theorem: a direct
    transfer records which ADVERT the sender matched, and the receiver
    asserts it is the ADVERT of the receive at the head of its queue.
    """

    advert_id: int
    #: expected stream sequence number of the corresponding exs_recv (S_A)
    seq: int
    #: advertised user-buffer length in bytes
    length: int
    #: receiver phase at advertisement time (P_A; always direct, Lemma 1)
    phase: int
    #: MSG_WAITALL — sender must deliver exactly `length` bytes to this buffer
    waitall: bool = False
    #: remote placement info (opaque to the core algorithm)
    remote_addr: int = 0
    rkey: int = 0
    #: bytes of the underlying receive already filled when this ADVERT was
    #: issued (non-zero when a partially-filled MSG_WAITALL receive is
    #: re-advertised after an indirect phase drained; the ADVERT then covers
    #: only the remaining window)
    base_offset: int = 0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("ADVERT length must be positive")
        if self.seq < 0:
            raise ValueError("ADVERT sequence number must be >= 0")
        if not is_direct(self.phase):
            # Lemma 1: every ADVERT carries a direct phase number.  The
            # receiver algorithm guarantees this; constructing one that
            # violates it is a programming error.
            raise ValueError(f"ADVERT phase {self.phase} is not direct (Lemma 1)")
