"""The paper's contribution: the dynamic direct/indirect stream algorithm.

This subpackage is **pure control logic** — no simulation, no timing, no
byte movement — which makes it directly unit- and property-testable (the
hypothesis suites in ``tests/core`` drive it through millions of abstract
schedules).  The EXS layer (:mod:`repro.exs`) executes its decisions over
the simulated verbs transport.

Module map to the paper:

================  =====================================================
``phase``         PHASE IS DIRECT / PHASE IS INDIRECT / NEXT PHASE
``advert``        ADVERT records (Lemma 1 enforced structurally)
``ring``          circular intermediate-buffer accounting (b_s / b_r)
``sender_algo``   Fig. 2 — match exs_send to an ADVERT or the buffer
``receiver_algo`` Fig. 3 (advertising), Fig. 4 (arrival), Fig. 5 (copy)
``invariants``    runtime checks of Lemmas 1/4 and Theorem 1
``modes``         dynamic / direct-only / indirect-only protocols
``stats``         direct:indirect ratios, mode switches (Table III)
================  =====================================================
"""

from .advert import Advert
from .invariants import SafetyViolation, require
from .modes import ProtocolMode
from .phase import INITIAL_PHASE, is_direct, is_indirect, next_phase, to_direct, to_indirect
from .receiver_algo import CopyPlan, ReceiverAlgorithm, RecvEntry
from .ring import ReceiverRing, RingError, RingSegment, SenderRingView
from .sender_algo import DirectPlan, IndirectPlan, SenderAlgorithm, TransferPlan
from .stats import ProtocolStats

__all__ = [
    "Advert",
    "CopyPlan",
    "DirectPlan",
    "INITIAL_PHASE",
    "IndirectPlan",
    "ProtocolMode",
    "ProtocolStats",
    "ReceiverAlgorithm",
    "ReceiverRing",
    "RecvEntry",
    "RingError",
    "RingSegment",
    "SafetyViolation",
    "SenderAlgorithm",
    "SenderRingView",
    "TransferPlan",
    "is_direct",
    "is_indirect",
    "next_phase",
    "require",
    "to_direct",
    "to_indirect",
]
