"""``python -m repro.check`` — the correctness-tooling CLI.

Subcommands::

    python -m repro.check explore [--sends 2,2] [--recvs 2,2] [--ring 2]
                                  [--mode dynamic] [--mutation NAME]
                                  [--state-limit N] [--no-shrink]
                                  [--json counterexample.json]
    python -m repro.check fuzz    [--seeds 50] [--first-seed 0]
                                  [--messages N] [--json counterexample.json]
    python -m repro.check audit   TRACE.csv [--spans]
    python -m repro.check replay  COUNTEREXAMPLE.json

Exit status is 0 when every check passes and 1 when a violation was found
(for ``replay``: 0 when the counterexample reproduces).  ``--json`` writes
the shrunk counterexample for artifact upload / later replay.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .audit import audit_csv, audit_spans
from .counterexample import Counterexample, replay
from .explorer import DEFAULT_STATE_LIMIT, explore, shrink
from .fuzz import FuzzCase, run_fuzz
from .model import ExploreScope
from .mutations import MUTATIONS


def _parse_sends(text: str):
    return tuple(int(x) for x in text.split(",") if x.strip())


def _parse_recvs(text: str):
    # "2,2" or "2w,2" — a trailing 'w' marks MSG_WAITALL
    out = []
    for tok in text.split(","):
        tok = tok.strip()
        if not tok:
            continue
        waitall = tok.endswith("w")
        out.append((int(tok.rstrip("w")), waitall))
    return tuple(out)


def _emit(ce: Counterexample, json_path: Optional[str]) -> None:
    print(ce.describe(), file=sys.stderr)
    if json_path:
        ce.save(json_path)
        print(f"[counterexample written to {json_path}]", file=sys.stderr)


def _cmd_explore(args) -> int:
    scope = ExploreScope(
        sends=_parse_sends(args.sends),
        recvs=_parse_recvs(args.recvs),
        ring_capacity=args.ring,
        mode=args.mode,
        mutation=args.mutation,
    )
    result = explore(scope, state_limit=args.state_limit)
    print(result.describe())
    if result.truncated:
        return 1
    if result.violation is None:
        return 0
    ce = result.violation if args.no_shrink else shrink(result, state_limit=args.state_limit)
    _emit(ce, args.json)
    return 1


def _cmd_fuzz(args) -> int:
    # Resolve variant forcing (flag, else environment) into the case and
    # base scenario *explicitly*, so the counterexample JSON is
    # self-contained: replaying it reproduces the run bit for bit even
    # without the REPRO_* environment that produced it.
    import os

    from dataclasses import replace

    from ..config import ScenarioConfig
    from ..verbs import ReliabilityConfig

    transport = args.transport or os.environ.get("REPRO_TRANSPORT", "").strip() or None
    mode = (args.reliability_mode
            or os.environ.get("REPRO_RELIABILITY_MODE", "").strip() or None)
    case = FuzzCase(messages=args.messages, transport=transport)
    base = ScenarioConfig()
    if mode:
        profile = base.resolve_profile()
        rel = ReliabilityConfig.for_path(
            profile.propagation_delay_ns + profile.emulator_delay_ns
        )
        base = base.with_(reliability=replace(rel, mode=mode))
    seeds = range(args.first_seed, args.first_seed + args.seeds)

    def progress(seed, outcome):
        mark = "ok" if outcome.ok else "FAIL"
        print(f"  seed {seed}: {mark} {outcome.fingerprint or outcome.error}",
              file=sys.stderr)

    report = run_fuzz(seeds, case, base, progress=progress if args.verbose else None)
    print(report.describe())
    if report.ok:
        return 0
    _emit(report.failures[0], args.json)
    return 1


def _cmd_audit(args) -> int:
    with open(args.trace) as fh:
        report = audit_csv(fh)
    violations = list(report.violations)
    if args.spans:
        with open(args.trace) as fh:
            from ..trace import events_from_csv

            violations += audit_spans(events_from_csv(fh))
    print(report.describe())
    if args.spans:
        extra = violations[len(report.violations):]
        if extra:
            for v in extra:
                print(f"  - {v}")
        else:
            print("span audit ok")
    return 0 if not violations else 1


def _cmd_replay(args) -> int:
    ce = Counterexample.load(args.counterexample)
    outcome = replay(ce)
    print(("reproduced: " if outcome.reproduced else "NOT reproduced: ") + outcome.message)
    return 0 if outcome.reproduced else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Model-check, fuzz, or audit the stream protocol.",
    )
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser("explore", help="exhaust all interleavings of a small scope")
    p.add_argument("--sends", default="2,2", help="send sizes, e.g. 2,2 (bytes each)")
    p.add_argument("--recvs", default="2,2",
                   help="recv lengths, 'w' suffix = MSG_WAITALL (e.g. 4w,2)")
    p.add_argument("--ring", type=int, default=2, help="intermediate-buffer capacity")
    p.add_argument("--mode", default="dynamic",
                   choices=("dynamic", "direct", "indirect"))
    p.add_argument("--mutation", choices=sorted(MUTATIONS), default=None,
                   help="inject a named bug (the checker should catch it)")
    p.add_argument("--state-limit", type=int, default=DEFAULT_STATE_LIMIT)
    p.add_argument("--no-shrink", action="store_true",
                   help="skip the scope-shrinking pass on violations")
    p.add_argument("--json", help="write the counterexample JSON here")
    p.set_defaults(fn=_cmd_explore)

    p = sub.add_parser("fuzz", help="seeded schedule-permutation fuzz of the full stack")
    p.add_argument("--seeds", type=int, default=50, help="number of schedule seeds")
    p.add_argument("--first-seed", type=int, default=0)
    p.add_argument("--messages", type=int, default=48, help="messages per run")
    p.add_argument("--transport", choices=("wwi", "eager_rendezvous"), default=None,
                   help="force the EXS transport (default: $REPRO_TRANSPORT)")
    p.add_argument("--reliability-mode", choices=("gobackn", "selective_repeat"),
                   default=None,
                   help="run with RC reliability in this mode "
                        "(default: $REPRO_RELIABILITY_MODE)")
    p.add_argument("--verbose", action="store_true", help="print per-seed outcomes")
    p.add_argument("--json", help="write the first failing counterexample here")
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser("audit", help="re-verify invariants over a trace CSV")
    p.add_argument("trace", help="ProtocolTracer.to_csv export")
    p.add_argument("--spans", action="store_true",
                   help="also lift and audit repro.obs message spans")
    p.set_defaults(fn=_cmd_audit)

    p = sub.add_parser("replay", help="re-execute a counterexample JSON")
    p.add_argument("counterexample", help="path written by explore/fuzz --json")
    p.set_defaults(fn=_cmd_replay)

    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    if args.command is None:
        parser.print_help()
        return 2
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
