"""Serializable, replayable counterexamples.

Every engine in :mod:`repro.check` reports failures the same way: a
:class:`Counterexample` holding *everything needed to reproduce the run* —
for the model checker, the :class:`~repro.check.model.ExploreScope` plus
the exact schedule (a list of action names); for the fuzzer, the
:class:`~repro.config.ScenarioConfig` (which pins the schedule-permutation
seed) plus the workload knobs.  Both serialize to JSON, and
``python -m repro.check replay file.json`` re-executes them bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import IO, List, Optional, Union

__all__ = ["Counterexample", "ReplayOutcome", "replay"]


@dataclass
class Counterexample:
    """One reproducible failure."""

    #: which engine produced it: ``model`` or ``fuzz``
    kind: str
    #: the safety claim that failed ("Theorem 1 (ordering)", ...)
    claim: str
    #: human-readable failure detail
    detail: str
    #: model checker: the minimal schedule (action names, in order)
    trace: List[str] = field(default_factory=list)
    #: model checker: the (shrunk) scope dict, including the mutation name
    scope: Optional[dict] = None
    #: fuzzer: the ScenarioConfig dict that produced the failure
    scenario: Optional[dict] = None
    #: fuzzer: the workload knobs (FuzzCase dict)
    fuzz_case: Optional[dict] = None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path_or_fh: Union[str, IO[str]]) -> None:
        if hasattr(path_or_fh, "write"):
            path_or_fh.write(self.to_json() + "\n")
        else:
            with open(path_or_fh, "w") as fh:
                fh.write(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, data: dict) -> "Counterexample":
        return cls(
            kind=data["kind"],
            claim=data.get("claim", ""),
            detail=data.get("detail", ""),
            trace=list(data.get("trace") or []),
            scope=data.get("scope"),
            scenario=data.get("scenario"),
            fuzz_case=data.get("fuzz_case"),
        )

    @classmethod
    def load(cls, path_or_fh: Union[str, IO[str]]) -> "Counterexample":
        if hasattr(path_or_fh, "read"):
            return cls.from_dict(json.load(path_or_fh))
        with open(path_or_fh) as fh:
            return cls.from_dict(json.load(fh))

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [f"{self.kind} counterexample — {self.claim}", f"  {self.detail}"]
        if self.scope is not None:
            lines.append(f"  scope: {self.scope}")
        if self.trace:
            lines.append(f"  schedule ({len(self.trace)} steps):")
            for i, action in enumerate(self.trace, 1):
                lines.append(f"    {i}. {action}")
        if self.scenario is not None:
            lines.append(f"  scenario: {self.scenario}")
        if self.fuzz_case is not None:
            lines.append(f"  fuzz case: {self.fuzz_case}")
        return "\n".join(lines)


@dataclass
class ReplayOutcome:
    """What happened when a counterexample was re-executed."""

    reproduced: bool
    message: str


def replay(ce: Counterexample) -> ReplayOutcome:
    """Re-execute *ce* and report whether the failure reproduces."""
    if ce.kind == "model":
        return _replay_model(ce)
    if ce.kind == "fuzz":
        return _replay_fuzz(ce)
    return ReplayOutcome(False, f"unknown counterexample kind {ce.kind!r}")


def _replay_model(ce: Counterexample) -> ReplayOutcome:
    from .model import ExploreScope, ModelViolation, World

    if ce.scope is None:
        return ReplayOutcome(False, "model counterexample without a scope")
    world = World(ExploreScope.from_dict(ce.scope))
    for i, action in enumerate(ce.trace, 1):
        if action not in world.enabled_actions():
            return ReplayOutcome(
                False, f"step {i}: {action} not enabled (state diverged)"
            )
        try:
            world.apply(action)
        except ModelViolation as exc:
            if i == len(ce.trace):
                return ReplayOutcome(True, f"reproduced at step {i}: {exc}")
            return ReplayOutcome(
                False, f"violated early at step {i}/{len(ce.trace)}: {exc}"
            )
    try:
        if not world.enabled_actions():
            world.check_quiescence()
    except ModelViolation as exc:
        return ReplayOutcome(True, f"reproduced at quiescence: {exc}")
    return ReplayOutcome(False, "schedule ran to completion without a violation")


def _replay_fuzz(ce: Counterexample) -> ReplayOutcome:
    from .fuzz import FuzzCase, run_case

    if ce.scenario is None:
        return ReplayOutcome(False, "fuzz counterexample without a scenario")
    from ..config import ScenarioConfig

    scenario = ScenarioConfig.from_dict(ce.scenario)
    case = FuzzCase.from_dict(ce.fuzz_case or {})
    outcome = run_case(case, scenario)
    if outcome.error is not None:
        return ReplayOutcome(True, f"reproduced: {outcome.error}")
    return ReplayOutcome(
        False, f"run completed cleanly (fingerprint {outcome.fingerprint})"
    )
