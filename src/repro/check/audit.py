"""Post-hoc trace auditing: re-verify protocol invariants from records.

The third engine closes the loop on *recorded* runs: given a
:class:`~repro.trace.ProtocolTracer` event stream (live, or round-tripped
through its CSV export), the auditor replays the protocol bookkeeping and
re-checks the same claims the model checker and the live ``require`` calls
enforce — so a telemetry artifact from any past run (including chaos runs
under fault injection) can be audited without re-simulating it:

* **stream contiguity** — each direction's transfer plans tile the byte
  stream exactly: transfer ``i`` starts at ``sum(nbytes_0..i-1)``;
* **phase discipline** — ``direct`` transfers carry even phases,
  ``indirect`` transfers odd ones (Theorem 1's phase argument), and each
  endpoint's phase trace is strictly increasing (monotonicity);
* **Lemma 1** — every ADVERT sent or received carries a direct phase;
* **ring ACK monotonicity** — cumulative copied-out counters never run
  backwards;
* **copy-range sanity** — ring copy-outs cover non-overlapping,
  non-decreasing stream ranges;
* **conservation** — a FIN is recorded on the *sending* direction **at
  most once** and its sequence number must equal that direction's
  transferred byte total; no data may be delivered after an EOF was
  signalled; when the ``conn_open`` peer mapping is present, the peer
  direction must have delivered exactly that many bytes.

The eager/rendezvous transport's ``eager``/``rendezvous`` transfer events
are audited for stream contiguity exactly like ``direct``/``indirect``
(they carry no phases — the RTS/CTS handshake replaces the phase
machinery).

:func:`audit_spans` additionally lifts :mod:`repro.obs` message spans and
checks stage ordering and per-span byte accounting.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import IO, Dict, Iterable, List, Optional, Tuple

from ..core.phase import is_direct
from ..trace import TraceEvent, events_from_csv

__all__ = ["AuditViolation", "AuditReport", "audit_events", "audit_csv", "audit_spans"]


@dataclass(frozen=True)
class AuditViolation:
    """One failed re-check."""

    claim: str
    detail: str
    time_ns: int = -1
    conn: int = -1
    host: str = ""

    def __str__(self) -> str:
        where = f" (conn {self.conn}@{self.host}, t={self.time_ns}ns)" if self.conn >= 0 else ""
        return f"{self.claim}: {self.detail}{where}"


@dataclass
class AuditReport:
    """Everything one audit pass established."""

    events: int
    connections: int
    violations: List[AuditViolation] = field(default_factory=list)
    #: per-direction transferred byte totals, keyed by (conn, host)
    transferred: Dict[Tuple[int, str], int] = field(default_factory=dict)
    #: per-direction delivered byte totals, keyed by (conn, host)
    delivered: Dict[Tuple[int, str], int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        if self.ok:
            return (
                f"audit ok: {self.events} events, {self.connections} connection "
                f"directions, all invariants re-verified"
            )
        lines = [f"audit FAILED: {len(self.violations)} violation(s) in {self.events} events"]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)


def audit_events(events: Iterable[TraceEvent]) -> AuditReport:
    """Re-verify the protocol invariants over a recorded event stream."""
    events = sorted(events, key=lambda e: e.time_ns)
    by_dir: Dict[Tuple[int, str], List[TraceEvent]] = defaultdict(list)
    peers: Dict[Tuple[int, str], int] = {}
    for e in events:
        by_dir[(e.conn, e.host)].append(e)
        if e.kind == "conn_open":
            peers[(e.conn, e.host)] = e.get("peer")

    report = AuditReport(events=len(events), connections=len(by_dir))
    v = report.violations
    fins: Dict[Tuple[int, str], int] = {}

    for (conn, host), evs in sorted(by_dir.items()):
        expected_seq = 0
        phases: Dict[str, int] = {}
        last_ack = -1
        copy_edge = -1
        delivered = 0
        fin_seq: Optional[int] = None
        eof_seen = False

        def flag(claim: str, detail: str, e: TraceEvent) -> None:
            v.append(AuditViolation(claim, detail, e.time_ns, conn, host))

        for e in evs:
            if e.kind in ("direct", "indirect", "eager", "rendezvous"):
                seq, nbytes, phase = e.get("seq"), e.get("nbytes"), e.get("phase")
                if seq != expected_seq:
                    flag(
                        "stream contiguity",
                        f"{e.kind} transfer at seq {seq}, expected {expected_seq}",
                        e,
                    )
                    expected_seq = seq  # resynchronise to limit cascading noise
                expected_seq += nbytes
                if e.kind == "direct" and not is_direct(phase):
                    flag("phase discipline", f"direct transfer in odd phase {phase}", e)
                if e.kind == "indirect" and is_direct(phase):
                    flag("phase discipline", f"indirect transfer in even phase {phase}", e)
            elif e.kind == "phase":
                side, phase = e.get("side"), e.get("phase")
                prev = phases.get(side)
                if prev is not None and phase <= prev:
                    flag("phase monotonicity", f"{side} phase {prev} -> {phase}", e)
                phases[side] = phase
            elif e.kind in ("advert_tx", "advert_rx"):
                phase = e.get("phase")
                if phase is not None and not is_direct(phase):
                    flag("Lemma 1", f"{e.kind} carries indirect phase {phase}", e)
            elif e.kind == "ring_ack":
                copied = e.get("copied")
                if copied < last_ack:
                    flag("ring ACK monotonicity", f"copied {last_ack} -> {copied}", e)
                last_ack = max(last_ack, copied)
            elif e.kind == "copy":
                seq, nbytes = e.get("seq"), e.get("nbytes")
                if seq < copy_edge:
                    flag(
                        "copy-range sanity",
                        f"copy [{seq}, {seq + nbytes}) overlaps prior edge {copy_edge}",
                        e,
                    )
                copy_edge = max(copy_edge, seq + nbytes)
            elif e.kind == "deliver":
                nbytes = e.get("nbytes", 0)
                if eof_seen and nbytes > 0:
                    flag(
                        "EOF finality",
                        f"{nbytes} bytes delivered after EOF was signalled",
                        e,
                    )
                delivered += nbytes
                if e.get("eof"):
                    eof_seen = True
            elif e.kind == "fin":
                if fin_seq is not None:
                    flag(
                        "FIN uniqueness",
                        f"second FIN (seq {e.get('seq')}) after FIN at {fin_seq}",
                        e,
                    )
                fin_seq = e.get("seq")

        report.transferred[(conn, host)] = expected_seq
        report.delivered[(conn, host)] = delivered
        if fin_seq is not None:
            fins[(conn, host)] = fin_seq
            if fin_seq != expected_seq:
                v.append(
                    AuditViolation(
                        "conservation",
                        f"FIN says {fin_seq} bytes but {expected_seq} were transferred",
                        conn=conn,
                        host=host,
                    )
                )

    # cross-direction conservation: every byte a finished sender claimed
    # must have been delivered by the peer direction it was sent to
    for (conn, host), fin_seq in sorted(fins.items()):
        peer = peers.get((conn, host))
        if peer is None:
            continue
        for (rconn, rhost), got in sorted(report.delivered.items()):
            if rconn == peer and rhost != host and got != fin_seq:
                report.violations.append(
                    AuditViolation(
                        "conservation",
                        f"sender {conn}@{host} finished at {fin_seq} bytes but "
                        f"peer {rconn}@{rhost} delivered {got}",
                        conn=rconn,
                        host=rhost,
                    )
                )
    return report


def audit_csv(fh: IO[str]) -> AuditReport:
    """Audit a :meth:`repro.trace.ProtocolTracer.to_csv` export."""
    return audit_events(events_from_csv(fh))


def audit_spans(events: Iterable[TraceEvent]) -> List[AuditViolation]:
    """Lift :mod:`repro.obs` message spans from *events* and re-check them.

    Only structural claims are asserted — stage ordering and byte
    accounting; incomplete spans are flagged only when the stream finished
    (a FIN was recorded for the span's connection pair).
    """
    from ..obs.spans import build_spans

    events = list(events)
    spans = build_spans(events)
    finished_hosts = {(e.conn, e.host) for e in events if e.kind == "fin"}
    out: List[AuditViolation] = []
    by_conn: Dict[Tuple[int, str], int] = defaultdict(int)
    for s in spans:
        stages = [
            ("submit", s.submit_ns),
            ("first_post", s.first_post_ns),
            ("acked", s.acked_ns),
        ]
        seen = [(n, t) for n, t in stages if t is not None]
        for (n1, t1), (n2, t2) in zip(seen, seen[1:]):
            if t2 < t1:
                out.append(
                    AuditViolation(
                        "span stage order",
                        f"send {s.send_id}: {n2} at {t2}ns before {n1} at {t1}ns",
                        conn=s.conn,
                        host=s.host,
                    )
                )
        if s.seq_start != by_conn[(s.conn, s.host)]:
            out.append(
                AuditViolation(
                    "span contiguity",
                    f"send {s.send_id} starts at {s.seq_start}, "
                    f"expected {by_conn[(s.conn, s.host)]}",
                    conn=s.conn,
                    host=s.host,
                )
            )
        by_conn[(s.conn, s.host)] = s.seq_end
        if s.complete and s.direct_bytes + s.indirect_bytes != s.nbytes:
            out.append(
                AuditViolation(
                    "span byte accounting",
                    f"send {s.send_id}: {s.direct_bytes} direct + "
                    f"{s.indirect_bytes} indirect != {s.nbytes}",
                    conn=s.conn,
                    host=s.host,
                )
            )
        if not s.complete and (s.conn, s.host) in finished_hosts:
            # fin on the span's own (sending) direction means every send
            # ran to completion — an incomplete span is a real gap
            out.append(
                AuditViolation(
                    "span completeness",
                    f"send {s.send_id} incomplete after stream finished",
                    conn=s.conn,
                    host=s.host,
                )
            )
    return out
