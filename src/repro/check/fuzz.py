"""Seeded schedule-permutation fuzzing of the full stack.

Where the model checker exhausts a *small* world with an abstract
transport, the fuzzer samples *large* worlds with the real one: it runs the
complete Testbed stack (verbs, completion channels, RC transport, EXS)
under a :class:`~repro.simnet.schedule.RandomTiebreakPolicy`, which
permutes same-timestamp event ordering deterministically per seed.  Every
run re-executes the stack's own safety checks (Theorem 1 ``require``
assertions, ring accounting, stream-integrity byte totals), so a seed that
fails is a real interleaving bug — and because the permutation is a pure
function of ``(seed, time, seq)``, the failing
:class:`~repro.config.ScenarioConfig` *is* the counterexample.

Two determinism properties are load-bearing (and tested):

* the same seed always produces bit-identical results, and
* the ``("fifo", 0)`` policy is byte-identical to running with no policy
  at all, so fuzzing is a strict generalisation of the default kernel.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Callable, List, Optional, Sequence

from ..config import ScenarioConfig
from .counterexample import Counterexample

__all__ = ["FuzzCase", "FuzzOutcome", "FuzzReport", "run_case", "run_fuzz", "fingerprint_result"]


@dataclass(frozen=True)
class FuzzCase:
    """The workload knobs of one fuzz run (all JSON-serializable)."""

    messages: int = 48
    outstanding_sends: int = 3
    outstanding_recvs: int = 3
    size_seed: int = 1
    recv_buffer_bytes: int = 1 << 20
    waitall: bool = False
    mode: str = "dynamic"
    #: EXS data-plane transport (``None`` = socket default / environment)
    transport: Optional[str] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)

    def to_blast_config(self):
        from ..apps.blast import BlastConfig
        from ..apps.workloads import ExponentialSizes
        from ..core import ProtocolMode
        from ..exs import ExsSocketOptions

        options = None
        if self.transport is not None:
            options = ExsSocketOptions(transport=self.transport)
        return BlastConfig(
            total_messages=self.messages,
            sizes=ExponentialSizes(mean=64 * 1024, maximum=1 << 20, seed=self.size_seed),
            outstanding_sends=self.outstanding_sends,
            outstanding_recvs=self.outstanding_recvs,
            recv_buffer_bytes=self.recv_buffer_bytes,
            waitall=self.waitall,
            mode=ProtocolMode(self.mode),
            options=options,
        )


@dataclass
class FuzzOutcome:
    """One seed's result."""

    scenario: ScenarioConfig
    fingerprint: Optional[str] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class FuzzReport:
    """Aggregate over a seed range."""

    case: FuzzCase
    outcomes: List[FuzzOutcome] = field(default_factory=list)
    failures: List[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        n = len(self.outcomes)
        if self.ok:
            distinct = len({o.fingerprint for o in self.outcomes})
            return (
                f"fuzz ok: {n} seeds, 0 failures "
                f"({distinct} distinct outcome fingerprints)"
            )
        return f"fuzz FAILED: {len(self.failures)}/{n} seeds violated"


def fingerprint_result(result) -> str:
    """A stable digest of everything a blast run observably produced.

    Two runs with equal fingerprints executed the same simulated history
    (byte totals, timing, transfer mix, per-message latencies).
    """
    h = hashlib.sha256()
    tx, rx = result.tx_stats, result.rx_stats
    h.update(
        (
            f"{result.total_bytes}|{result.start_ns}|{result.end_ns}|"
            f"{tx.direct_transfers}|{tx.direct_bytes}|{tx.indirect_transfers}|"
            f"{tx.indirect_bytes}|{tx.mode_switches}|{tx.adverts_received}|"
            f"{tx.adverts_discarded}|{rx.adverts_sent}|{rx.adverts_suppressed}|"
            f"{rx.copies}|{rx.copied_bytes}|"
        ).encode()
    )
    for lat in result.send_latencies_ns:
        h.update(lat.to_bytes(8, "little"))
    return h.hexdigest()[:16]


def run_case(case: FuzzCase, scenario: ScenarioConfig) -> FuzzOutcome:
    """One full-stack run under *scenario*; errors become the outcome."""
    from ..apps.blast import run_blast
    from ..core.invariants import SafetyViolation
    from ..core.ring import RingError

    try:
        result = run_blast(
            case.to_blast_config(),
            scenario=scenario,
            max_events=scenario.max_events or 200_000_000,
        )
    except (SafetyViolation, RingError, AssertionError, RuntimeError) as exc:
        return FuzzOutcome(scenario=scenario, error=f"{type(exc).__name__}: {exc}")
    return FuzzOutcome(scenario=scenario, fingerprint=fingerprint_result(result))


def run_fuzz(
    seeds: Sequence[int],
    case: Optional[FuzzCase] = None,
    base: Optional[ScenarioConfig] = None,
    *,
    progress: Optional[Callable[[int, FuzzOutcome], None]] = None,
) -> FuzzReport:
    """Run *case* once per schedule seed and collect counterexamples.

    Each seed fuzzes only the same-instant event ordering
    (``schedule=("random", seed)``); the testbed seed and workload stay
    fixed so any divergence is attributable to the schedule permutation.
    """
    case = case or FuzzCase()
    base = base or ScenarioConfig()
    report = FuzzReport(case=case)
    for seed in seeds:
        scenario = base.with_(schedule=("random", int(seed)))
        outcome = run_case(case, scenario)
        report.outcomes.append(outcome)
        if not outcome.ok:
            report.failures.append(
                Counterexample(
                    kind="fuzz",
                    claim="full-stack safety",
                    detail=outcome.error,
                    scenario=scenario.to_dict(),
                    fuzz_case=case.to_dict(),
                )
            )
        if progress is not None:
            progress(seed, outcome)
    return report
