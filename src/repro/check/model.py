"""Small-scope protocol world for the explicit-state model checker.

The :class:`World` drives the *pure* protocol logic —
:class:`~repro.core.sender_algo.SenderAlgorithm` and
:class:`~repro.core.receiver_algo.ReceiverAlgorithm` — with the transport
abstracted to two FIFO channels (RC delivery is ordered, so FIFO is the
faithful abstraction):

* ``s2r`` carries data-plane messages (direct and indirect transfers),
* ``r2s`` carries control-plane messages (ADVERTs and cumulative ring ACKs).

Every source of timing nondeterminism in the full stack collapses to *which
enabled action fires next*:

``post_recv``
    the application posts the next scripted ``exs_recv`` (may emit an ADVERT)
``pump_send``
    the sender half matches the head of its backlog against its ADVERT
    queue / ring space (paper Fig. 2) and puts the plan on the wire
``deliver_ctrl``
    the head of ``r2s`` reaches the sender (ADVERT arrival or ring ACK)
``deliver_data``
    the head of ``s2r`` reaches the receiver (Fig. 4 arrival handling)
``do_copy``
    the receiver's library thread copies out of the intermediate buffer
    (Fig. 5) and emits a cumulative ACK
``flush_adverts``
    the receiver's advertising gate re-opens and queued receives advertise
    (Fig. 3)

All scripted ``exs_send`` calls are backlog from the start: the sender
algorithm never branches on backlog *length*, so posting sends lazily adds
interleavings without adding behaviours — pre-seeding keeps counterexample
traces minimal.

Because each action is deterministic given the state, a schedule is just a
list of action names, which is exactly what a replayable counterexample
needs.

The safety properties asserted in every reachable state:

* **Theorem 1** — a direct transfer matches the head-of-queue ADVERT at the
  exact stream position (the ``require`` calls inside
  ``ReceiverAlgorithm.on_direct_arrival``).
* **Lemmas 1 and 4** — ADVERTs carry direct phases; mid-direct-phase
  ADVERTs carry the sender's phase (``Advert.__post_init__`` and the
  sender's match loop).
* **Phase monotonicity** on both sides (``_set_phase``).
* **Byte conservation** — ``sender.seq`` equals the receiver's consumed
  stream position plus ring occupancy plus bytes still on the wire, in
  *every* state (:meth:`World.check_invariants`); at quiescence the wire
  term is zero.
* **FIFO integrity** — receives complete in post order.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.invariants import SafetyViolation, require
from ..core.modes import ProtocolMode
from ..core.phase import is_direct
from ..core.receiver_algo import ReceiverAlgorithm
from ..core.ring import ReceiverRing, RingError, RingSegment, SenderRingView
from ..core.sender_algo import DirectPlan, SenderAlgorithm

__all__ = ["ExploreScope", "World", "ACTIONS", "ModelViolation"]

#: every action the scheduler can choose from, in canonical order
ACTIONS = (
    "post_recv",
    "pump_send",
    "deliver_ctrl",
    "deliver_data",
    "do_copy",
    "flush_adverts",
)

_MODES = {m.value: m for m in ProtocolMode}


class ModelViolation(AssertionError):
    """A safety property failed inside the model (wraps the core's errors)."""

    def __init__(self, claim: str, detail: str) -> None:
        super().__init__(f"{claim}: {detail}")
        self.claim = claim
        self.detail = detail


@dataclass(frozen=True)
class ExploreScope:
    """The small-scope hypothesis: a bounded world to exhaust.

    ``sends`` are the byte lengths of the scripted ``exs_send`` calls;
    ``recvs`` are ``(length, waitall)`` pairs for the scripted ``exs_recv``
    calls.  The default — 2 sends x 2 recvs over a 2-byte ring — is small
    enough to exhaust in well under a second yet forces at least one
    direct/indirect phase flip (the first send races the first ADVERT).
    """

    sends: Tuple[int, ...] = (2, 2)
    recvs: Tuple[Tuple[int, bool], ...] = ((2, False), (2, False))
    ring_capacity: int = 2
    mode: str = "dynamic"
    #: named bug from :mod:`repro.check.mutations` injected into the world
    mutation: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown mode {self.mode!r}")
        object.__setattr__(self, "sends", tuple(int(s) for s in self.sends))
        object.__setattr__(
            self, "recvs", tuple((int(n), bool(w)) for n, w in self.recvs)
        )

    def to_dict(self) -> dict:
        return {
            "sends": list(self.sends),
            "recvs": [[n, w] for n, w in self.recvs],
            "ring_capacity": self.ring_capacity,
            "mode": self.mode,
            "mutation": self.mutation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExploreScope":
        return cls(
            sends=tuple(data.get("sends", ())),
            recvs=tuple((n, bool(w)) for n, w in data.get("recvs", ())),
            ring_capacity=int(data.get("ring_capacity", 2)),
            mode=data.get("mode", "dynamic"),
            mutation=data.get("mutation"),
        )


class World:
    """One reachable protocol state plus the action semantics."""

    def __init__(self, scope: ExploreScope) -> None:
        from .mutations import make_algorithms  # cycle-free: mutations -> model types only

        self.scope = scope
        mode = _MODES[scope.mode]
        self.sender, self.receiver = make_algorithms(
            scope.mutation,
            SenderRingView(scope.ring_capacity),
            ReceiverRing(scope.ring_capacity),
            mode,
        )
        #: remaining byte counts of pending exs_send calls, FIFO
        self.backlog: List[int] = [s for s in scope.sends if s > 0]
        self.recv_idx = 0
        #: data plane, in flight sender -> receiver
        self.s2r: List[tuple] = []
        #: control plane, in flight receiver -> sender
        self.r2s: List[tuple] = []
        #: recv_ids in completion order (FIFO integrity witness)
        self.completed: List[int] = []

    # ------------------------------------------------------------------
    # scheduling interface
    # ------------------------------------------------------------------
    def enabled_actions(self) -> List[str]:
        out = []
        if self.recv_idx < len(self.scope.recvs):
            out.append("post_recv")
        if self.backlog and (
            self.sender.adverts
            or (self.sender.mode.allows_indirect and self.sender.ring.free > 0)
        ):
            out.append("pump_send")
        if self.r2s:
            out.append("deliver_ctrl")
        if self.s2r:
            out.append("deliver_data")
        if self.receiver.ring.stored > 0 and self.receiver.queue:
            out.append("do_copy")
        if (
            self.receiver.mode is not ProtocolMode.INDIRECT_ONLY
            and self.receiver.ring.stored == 0
            and self.receiver.prior_phase_adverts == 0
            and any(e.advert is None and not e.completed for e in self.receiver.queue)
        ):
            out.append("flush_adverts")
        return out

    def apply(self, action: str) -> None:
        """Execute *action*; raises :class:`ModelViolation` on any safety
        failure (the core's ``require``/ring assertions are re-raised with
        the action context attached)."""
        try:
            getattr(self, "_do_" + action)()
        except ModelViolation:
            raise
        except (SafetyViolation, RingError, ValueError) as exc:
            # require() embeds the claim as "safety violation [<claim>]: ..."
            text = str(exc)
            claim = type(exc).__name__
            if isinstance(exc, SafetyViolation) and "[" in text and "]" in text:
                claim = text[text.index("[") + 1 : text.index("]")]
            raise ModelViolation(claim, f"{action}: {exc}") from exc
        self.check_invariants()

    def clone(self) -> "World":
        return copy.deepcopy(self)

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def _do_post_recv(self) -> None:
        length, waitall = self.scope.recvs[self.recv_idx]
        self.recv_idx += 1
        _entry, advert = self.receiver.post_recv(length, waitall=waitall)
        if advert is not None:
            self.r2s.append(("advert", advert))

    def _do_pump_send(self) -> None:
        remaining = self.backlog[0]
        plan = self.sender.next_transfer(remaining)
        if plan is None:
            # all queued ADVERTs were stale and the ring is full: the drop
            # itself was the state change
            return
        if self.backlog[0] == plan.nbytes:
            self.backlog.pop(0)
        else:
            self.backlog[0] -= plan.nbytes
        if isinstance(plan, DirectPlan):
            self.s2r.append(
                ("direct", plan.advert.advert_id, plan.seq, plan.nbytes, plan.buffer_offset)
            )
        else:
            seq = plan.seq
            for seg in plan.segments:
                self.s2r.append(("indirect", seq, seg.offset, seg.nbytes))
                seq += seg.nbytes

    def _do_deliver_ctrl(self) -> None:
        kind, payload = self.r2s.pop(0)
        if kind == "advert":
            self.sender.on_advert(payload)
        else:  # "ack"
            self.sender.ring.on_copy_ack(payload)

    def _do_deliver_data(self) -> None:
        msg = self.s2r.pop(0)
        if msg[0] == "direct":
            _, advert_id, seq, nbytes, buffer_offset = msg
            done = self.receiver.on_direct_arrival(seq, nbytes, advert_id, buffer_offset)
        else:
            _, seq, offset, nbytes = msg
            self.receiver.on_indirect_arrival(seq, RingSegment(offset, nbytes))
            done = []
        self.completed.extend(e.recv_id for e in done)

    def _do_do_copy(self) -> None:
        plan = self.receiver.next_copy()
        if plan is None:  # head entry already full (defensive)
            return
        done = self.receiver.on_copied(plan)
        self.completed.extend(e.recv_id for e in done)
        self.r2s.append(("ack", self.receiver.ring.copied_total))

    def _do_flush_adverts(self) -> None:
        for _entry, advert in self.receiver.flush_adverts():
            self.r2s.append(("advert", advert))

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Properties that must hold in *every* reachable state."""
        wire = sum(m[3] for m in self.s2r)  # nbytes is index 3 for both kinds
        try:
            require(
                self.sender.seq
                == self.receiver.seq + self.receiver.ring.stored + wire,
                "byte conservation",
                f"sender seq {self.sender.seq} != receiver seq {self.receiver.seq}"
                f" + ring {self.receiver.ring.stored} + wire {wire}",
            )
            for advert in self.sender.adverts:
                require(
                    is_direct(advert.phase),
                    "Lemma 1",
                    f"queued ADVERT {advert.advert_id} carries indirect phase {advert.phase}",
                )
            require(
                self.completed == sorted(self.completed),
                "FIFO integrity",
                f"receives completed out of post order: {self.completed}",
            )
        except SafetyViolation as exc:
            raise ModelViolation("invariant", str(exc)) from exc

    def check_quiescence(self) -> None:
        """Extra properties of terminal states (no action enabled).

        A terminal state with backlog left is a legitimate flow-control
        block (the receive script ran out), never silent byte loss: the
        conservation equation still balances with zero bytes on the wire.
        """
        try:
            require(not self.s2r and not self.r2s, "quiescence", "messages left in flight")
            require(
                self.sender.seq == self.receiver.seq + self.receiver.ring.stored,
                "conservation at quiescence",
                f"sender sent {self.sender.seq} but receiver accounts "
                f"{self.receiver.seq} + ring {self.receiver.ring.stored}",
            )
        except SafetyViolation as exc:
            raise ModelViolation("invariant", str(exc)) from exc

    # ------------------------------------------------------------------
    # canonical form (for the visited-set)
    # ------------------------------------------------------------------
    def canonical(self) -> tuple:
        # advert_ids are allocated per path, so the full field tuple — not
        # just the id — is what identifies an ADVERT across paths
        def akey(a):
            return (a.advert_id, a.seq, a.length, a.phase, a.waitall, a.base_offset)

        s, r = self.sender, self.receiver
        return (
            s.phase,
            s.seq,
            s._head_filled,
            tuple(akey(a) for a in s.adverts),
            s.ring.reserved_total,
            s.ring.acked_copied_total,
            r.phase,
            r.seq,
            r.advert_seq_estimate,
            r.prior_phase_adverts,
            r.unadvertised_recvs,
            tuple(
                (
                    e.recv_id,
                    e.filled,
                    e.completed,
                    akey(e.advert) if e.advert is not None else None,
                )
                for e in r.queue
            ),
            r.ring.read_offset,
            r.ring.stored,
            r.ring.copied_total,
            tuple(self.backlog),
            self.recv_idx,
            tuple(
                ("advert",) + akey(p) if k == "advert" else (k, p)
                for k, p in self.r2s
            ),
            tuple(self.s2r),
            tuple(self.completed),
        )
