"""Named protocol mutations — known-bad algorithm variants.

Each mutation re-introduces a bug the paper's design rules out, so the
checker's ability to *find* it (and shrink it to a minimal schedule) is
itself testable.  A mutation is a factory producing the sender/receiver
algorithm pair for a :class:`~repro.check.model.World`; ``None`` produces
the faithful algorithms.

Registry:

``stale_advert_match``
    The Fig. 8 hazard: the sender matches the head ADVERT without the
    staleness discard (Fig. 2 lines 4-7) or the phase resynchronisation
    (line 10).  An ADVERT issued before an indirect burst then matches a
    transfer whose bytes race the burst still sitting in the intermediate
    buffer — Theorem 1's ordering check catches it on arrival.

``skip_advert_gate``
    The receiver advertises even while the intermediate buffer holds data
    or prior-phase ADVERTs are outstanding (drops Fig. 3 lines 1-4).  The
    sender then sees an ADVERT whose sequence estimate ignores buffered
    bytes, and either end's sequencing checks object.

``missed_phase_flip``
    The sender never enters an indirect phase (drops Fig. 2 line 19), so
    its phase stays direct across an indirect burst.  The receiver's next
    ADVERT carries a later direct phase, and Lemma 4's mid-direct-phase
    check fails at the sender's match loop.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..core.modes import ProtocolMode
from ..core.receiver_algo import ReceiverAlgorithm
from ..core.ring import ReceiverRing, SenderRingView
from ..core.sender_algo import DirectPlan, SenderAlgorithm

__all__ = ["MUTATIONS", "make_algorithms"]


class _StaleMatchSender(SenderAlgorithm):
    """Fig. 2 without the staleness discard or the phase resync."""

    def next_transfer(self, remaining: int):
        if remaining <= 0:
            raise ValueError("next_transfer with nothing to send")
        if self.adverts:
            advert = self.adverts[0]
            # BUG: no staleness check, no resync onto the ADVERT's phase
            advert_remaining = advert.length - self._head_filled
            nbytes = min(remaining, advert_remaining)
            plan = DirectPlan(
                advert=advert,
                seq=self.seq,
                nbytes=nbytes,
                phase=self.phase,
                buffer_offset=self._head_filled,
                advert_done=(not advert.waitall)
                or (self._head_filled + nbytes == advert.length),
            )
            self.seq += nbytes
            if plan.advert_done:
                self.adverts.popleft()
                self._head_filled = 0
            else:
                self._head_filled += nbytes
            self.stats.direct_transfers += 1
            self.stats.direct_bytes += nbytes
            return plan
        return super().next_transfer(remaining)


class _GatelessReceiver(ReceiverAlgorithm):
    """Fig. 3 without the advertising gate (lines 1-4)."""

    def _maybe_advertise(self, entry, remote_addr, rkey):
        if self.mode is ProtocolMode.INDIRECT_ONLY:
            return super()._maybe_advertise(entry, remote_addr, rkey)
        # BUG: advertise unconditionally, even with buffered data pending
        return self._advertise(entry, remote_addr, rkey)


class _NoFlipSender(SenderAlgorithm):
    """Fig. 2 without line 19: the sender never enters an indirect phase."""

    def _set_phase(self, phase: int) -> None:
        from ..core.phase import is_direct, is_indirect

        if is_indirect(phase) and is_direct(self.phase):
            return  # BUG: stay in the direct phase across an indirect burst
        super()._set_phase(phase)


Factory = Callable[
    [SenderRingView, ReceiverRing, ProtocolMode],
    Tuple[SenderAlgorithm, ReceiverAlgorithm],
]


def _faithful(sring, rring, mode):
    return SenderAlgorithm(sring, mode), ReceiverAlgorithm(rring, mode)


def _stale_advert_match(sring, rring, mode):
    return _StaleMatchSender(sring, mode), ReceiverAlgorithm(rring, mode)


def _skip_advert_gate(sring, rring, mode):
    return SenderAlgorithm(sring, mode), _GatelessReceiver(rring, mode)


def _missed_phase_flip(sring, rring, mode):
    return _NoFlipSender(sring, mode), ReceiverAlgorithm(rring, mode)


MUTATIONS: Dict[str, Factory] = {
    "stale_advert_match": _stale_advert_match,
    "skip_advert_gate": _skip_advert_gate,
    "missed_phase_flip": _missed_phase_flip,
}


def make_algorithms(
    mutation: Optional[str],
    sring: SenderRingView,
    rring: ReceiverRing,
    mode: ProtocolMode,
) -> Tuple[SenderAlgorithm, ReceiverAlgorithm]:
    """The (sender, receiver) pair for *mutation* (``None`` = faithful)."""
    if mutation is None:
        return _faithful(sring, rring, mode)
    try:
        factory = MUTATIONS[mutation]
    except KeyError:
        raise ValueError(
            f"unknown mutation {mutation!r} (known: {', '.join(sorted(MUTATIONS))})"
        ) from None
    return factory(sring, rring, mode)
