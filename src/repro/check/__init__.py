"""Correctness tooling: model checking, schedule fuzzing, trace auditing.

Three engines share one invariant core (Theorem 1, Lemmas 1 and 4, byte
conservation, FIFO integrity) and one counterexample format:

* :func:`~repro.check.explorer.explore` — **exhaust** every event
  interleaving of the core sender/receiver algorithms for a small scope
  (:class:`~repro.check.model.ExploreScope`); BFS makes the first
  violation schedule-minimal, :func:`~repro.check.explorer.shrink`
  delta-debugs the workload too.
* :func:`~repro.check.fuzz.run_fuzz` — **sample** full-stack Testbed runs
  under seeded random permutations of same-instant event ordering
  (:class:`~repro.simnet.schedule.RandomTiebreakPolicy`); deterministic
  per seed, so the failing :class:`~repro.config.ScenarioConfig` *is* the
  counterexample.
* :func:`~repro.check.audit.audit_events` — **replay** recorded
  :class:`~repro.trace.ProtocolTracer` streams (or their CSV exports) and
  re-verify the same claims post hoc.

Counterexamples serialize to JSON and re-execute via
``python -m repro.check replay``; see ``python -m repro.check --help``.
"""

from .audit import AuditReport, AuditViolation, audit_csv, audit_events, audit_spans
from .counterexample import Counterexample, ReplayOutcome, replay
from .explorer import ExploreResult, explore, shrink
from .fuzz import FuzzCase, FuzzOutcome, FuzzReport, fingerprint_result, run_case, run_fuzz
from .model import ACTIONS, ExploreScope, ModelViolation, World
from .mutations import MUTATIONS

__all__ = [
    "ACTIONS",
    "AuditReport",
    "AuditViolation",
    "Counterexample",
    "ExploreResult",
    "ExploreScope",
    "FuzzCase",
    "FuzzOutcome",
    "FuzzReport",
    "MUTATIONS",
    "ModelViolation",
    "ReplayOutcome",
    "World",
    "audit_csv",
    "audit_events",
    "audit_spans",
    "explore",
    "fingerprint_result",
    "replay",
    "run_case",
    "run_fuzz",
    "shrink",
]
