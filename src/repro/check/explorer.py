"""Explicit-state exploration of the protocol model.

Breadth-first search over :class:`~repro.check.model.World` states:

* every enabled action is tried from every reachable state,
* states are deduplicated on their canonical form (the search is over the
  quotient graph, so it terminates on the small scopes it is meant for),
* safety is checked *during* every transition (the core algorithms'
  ``require`` calls plus the model's conservation/FIFO invariants), and
  quiescent states get the extra conservation-at-rest check.

BFS makes the first violation found *schedule-minimal* for its scope; the
:func:`shrink` pass then delta-debugs the scope itself (fewer sends,
fewer receives, smaller lengths) and re-explores, so the reported
counterexample is minimal in both the workload and the schedule.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .counterexample import Counterexample
from .model import ExploreScope, ModelViolation, World

__all__ = ["ExploreResult", "explore", "shrink"]

#: states after which exploration aborts (the scope is not "small" any more)
DEFAULT_STATE_LIMIT = 2_000_000


@dataclass
class ExploreResult:
    """Outcome of one exhaustive exploration."""

    scope: ExploreScope
    states: int
    transitions: int
    terminal_states: int
    max_depth: int
    #: first (schedule-minimal) violation, or None if the scope is clean
    violation: Optional[Counterexample] = None
    #: True when the state limit stopped the search before exhausting it
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return self.violation is None and not self.truncated

    def describe(self) -> str:
        status = (
            "VIOLATION"
            if self.violation
            else ("TRUNCATED" if self.truncated else "exhausted, no violations")
        )
        return (
            f"{status}: {self.states} states, {self.transitions} transitions, "
            f"{self.terminal_states} terminal, depth <= {self.max_depth} "
            f"(scope sends={list(self.scope.sends)} recvs={list(self.scope.recvs)} "
            f"ring={self.scope.ring_capacity}"
            + (f" mutation={self.scope.mutation}" if self.scope.mutation else "")
            + ")"
        )


def explore(
    scope: ExploreScope, *, state_limit: int = DEFAULT_STATE_LIMIT
) -> ExploreResult:
    """Exhaust every schedule of *scope*; stop at the first violation."""
    root = World(scope)
    visited = {root.canonical()}
    frontier: deque = deque([(root, ())])
    states = 1
    transitions = 0
    terminal = 0
    max_depth = 0

    while frontier:
        world, path = frontier.popleft()
        max_depth = max(max_depth, len(path))
        actions = world.enabled_actions()
        if not actions:
            terminal += 1
            try:
                world.check_quiescence()
            except ModelViolation as exc:
                return ExploreResult(
                    scope, states, transitions, terminal, max_depth,
                    violation=_counterexample(scope, list(path), exc),
                )
            continue
        for action in actions:
            nxt = world.clone()
            transitions += 1
            try:
                nxt.apply(action)
            except ModelViolation as exc:
                return ExploreResult(
                    scope, states, transitions, terminal, max_depth,
                    violation=_counterexample(scope, list(path) + [action], exc),
                )
            key = nxt.canonical()
            if key in visited:
                continue
            visited.add(key)
            states += 1
            if states > state_limit:
                return ExploreResult(
                    scope, states, transitions, terminal, max_depth, truncated=True
                )
            frontier.append((nxt, path + (action,)))

    return ExploreResult(scope, states, transitions, terminal, max_depth)


def _counterexample(
    scope: ExploreScope, trace: List[str], exc: ModelViolation
) -> Counterexample:
    return Counterexample(
        kind="model",
        claim=exc.claim,
        detail=exc.detail,
        trace=trace,
        scope=scope.to_dict(),
    )


# ---------------------------------------------------------------------------
# scope shrinking (delta debugging over the workload)
# ---------------------------------------------------------------------------
def _scope_weight(scope: ExploreScope, trace_len: int) -> Tuple[int, ...]:
    return (
        trace_len,
        len(scope.sends) + len(scope.recvs),
        sum(scope.sends) + sum(n for n, _ in scope.recvs),
        scope.ring_capacity,
    )


def _candidates(scope: ExploreScope):
    """Strictly-smaller scopes, one reduction at a time."""
    sends, recvs = scope.sends, scope.recvs
    for i in range(len(sends)):
        if len(sends) > 1:
            yield ExploreScope(
                sends=sends[:i] + sends[i + 1 :], recvs=recvs,
                ring_capacity=scope.ring_capacity, mode=scope.mode,
                mutation=scope.mutation,
            )
        if sends[i] > 1:
            yield ExploreScope(
                sends=sends[:i] + (sends[i] // 2,) + sends[i + 1 :], recvs=recvs,
                ring_capacity=scope.ring_capacity, mode=scope.mode,
                mutation=scope.mutation,
            )
    for i in range(len(recvs)):
        if len(recvs) > 1:
            yield ExploreScope(
                sends=sends, recvs=recvs[:i] + recvs[i + 1 :],
                ring_capacity=scope.ring_capacity, mode=scope.mode,
                mutation=scope.mutation,
            )
        n, w = recvs[i]
        if n > 1:
            yield ExploreScope(
                sends=sends, recvs=recvs[:i] + ((n // 2, w),) + recvs[i + 1 :],
                ring_capacity=scope.ring_capacity, mode=scope.mode,
                mutation=scope.mutation,
            )
    if scope.ring_capacity > 1:
        yield ExploreScope(
            sends=sends, recvs=recvs, ring_capacity=scope.ring_capacity // 2,
            mode=scope.mode, mutation=scope.mutation,
        )


def shrink(
    result: ExploreResult, *, state_limit: int = DEFAULT_STATE_LIMIT
) -> Counterexample:
    """Greedy delta-debugging: repeatedly adopt any smaller scope that
    still violates, then return its (BFS-minimal) counterexample.
    """
    if result.violation is None:
        raise ValueError("nothing to shrink: exploration found no violation")
    best_scope = result.scope
    best = result
    improved = True
    while improved:
        improved = False
        for cand in _candidates(best_scope):
            r = explore(cand, state_limit=state_limit)
            if r.violation is None:
                continue
            if _scope_weight(cand, len(r.violation.trace)) < _scope_weight(
                best_scope, len(best.violation.trace)
            ):
                best_scope, best = cand, r
                improved = True
                break
    return best.violation
