"""Analytic throughput bounds used to sanity-check the simulation.

Three first-order models explain the paper's performance landscape; the
benchmark suite checks the simulated results against them:

* **wire-rate bound** — the direct protocol at saturation is limited by the
  effective link bandwidth minus per-message overheads.
* **copy-rate bound** — the indirect protocol at saturation is limited by
  the receiver's memcpy bandwidth (the transfer is re-copied once).
* **window bound** — over a long-delay path, a sender with *n* outstanding
  operations of mean size *s* can keep at most ``n*s`` bytes in flight per
  round trip (RC send completions need the transport ACK), so throughput is
  at most ``n*s / RTT`` regardless of protocol.
"""

from __future__ import annotations

from ..bench.profiles import HardwareProfile
from ..verbs.wire import HEADER_BYTES

__all__ = [
    "wire_rate_bound_bps",
    "copy_rate_bound_bps",
    "window_bound_bps",
    "expected_winner",
]


def wire_rate_bound_bps(profile: HardwareProfile, message_bytes: int) -> float:
    """Maximum goodput of back-to-back direct transfers of one size."""
    wire = message_bytes + HEADER_BYTES
    tx_ns = profile.per_message_overhead_ns + wire * 8 * 1e9 / profile.link_bandwidth_bps
    dev = profile.device
    if dev.large_msg_threshold is not None and message_bytes > dev.large_msg_threshold:
        tx_ns += (message_bytes - dev.large_msg_threshold) * dev.large_msg_extra_ns_per_byte
    return message_bytes * 8 * 1e9 / tx_ns


def copy_rate_bound_bps(profile: HardwareProfile, message_bytes: int) -> float:
    """Maximum goodput of the indirect protocol (receiver memcpy-bound)."""
    copy_ns = profile.cpu_costs.copy_ns(message_bytes, profile.copy_bandwidth_bps)
    per_message = min(
        message_bytes * 8 * 1e9 / profile.link_bandwidth_bps,  # wire can also bind
        float("inf"),
    )
    bound_copy = message_bytes * 8 * 1e9 / copy_ns
    return min(bound_copy, wire_rate_bound_bps(profile, message_bytes))


def window_bound_bps(outstanding: int, mean_message_bytes: float, rtt_ns: int) -> float:
    """Throughput ceiling from the outstanding-operation window over *rtt_ns*."""
    if rtt_ns <= 0:
        return float("inf")
    return outstanding * mean_message_bytes * 8 * 1e9 / rtt_ns


def expected_winner(profile: HardwareProfile, rtt_ns: int = 0) -> str:
    """Which baseline should win at saturation on this profile.

    On fast LANs the direct protocol wins whenever the wire outruns the
    memcpy; over long delays the window bound dominates both and they tie.
    """
    if rtt_ns > 1_000_000:  # ≥ 1 ms: window-dominated
        return "tie"
    probe = 1 << 20
    wire = wire_rate_bound_bps(profile, probe)
    copy = copy_rate_bound_bps(profile, probe)
    if wire > 1.15 * copy:
        return "direct"
    if copy > 1.15 * wire:
        return "indirect"
    return "tie"
