"""Analytic models used to sanity-check the simulated results."""

from .advert_race import ModePrediction, RaceModel, predict_mode
from .bounds import (
    copy_rate_bound_bps,
    expected_winner,
    window_bound_bps,
    wire_rate_bound_bps,
)

__all__ = [
    "ModePrediction",
    "RaceModel",
    "copy_rate_bound_bps",
    "predict_mode",
    "expected_winner",
    "window_bound_bps",
    "wire_rate_bound_bps",
]
