"""First-order model of the ADVERT race that decides the protocol's mode.

The dynamic protocol's steady-state behaviour reduces to one race per
message: does the next ADVERT reach the sender before the sender's next
send is ready?  Both paths start when a data message arrives at the
receiver:

* the **send-credit path** (hardware): transport ACK generation, the wire
  back, sender completion dispatch, application repost — after which the
  sender's next transfer wants an ADVERT;
* the **ADVERT path** (software): receiver completion dispatch,
  application repost of the receive, ADVERT build, and the wire back.

Their *structural difference* plus the wake-up latency jitter on each hop
gives a lag band ``[lag_lo, lag_hi]``.  The sender tolerates a lag of
``(outstanding_recvs - outstanding_sends) x per-message transmission
time`` — its *slack*.  Comparing slack to the lag band predicts the
regime:

* ``DIRECT``    — slack clears even the worst-case lag: zero-copy forever
  (paper Fig. 9b, Fig. 12b's >= 512 KiB plateau);
* ``INDIRECT``  — no slack at all: one lost race, and stickiness does the
  rest (paper Fig. 9a, Table III equal rows);
* ``UNSTABLE``  — slack inside the jitter band: some runs lose the race
  and stick, others never do (paper Fig. 11b/12b instability);
* ``BATCHED``   — messages shorter than a wake-up: completions and
  ADVERTs move in per-wake-up batches and the per-message model does not
  apply (empirically the small-message regime stays mostly direct when
  the receiver has headroom).

This is deliberately a *first-order* model; ``tests/analysis`` checks its
predictions against full simulations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..bench.profiles import HardwareProfile
from ..verbs.wire import CTRL_WIRE_BYTES_GUESS, HEADER_BYTES

__all__ = ["ModePrediction", "RaceModel", "predict_mode"]


class ModePrediction(enum.Enum):
    DIRECT = "direct"
    INDIRECT = "indirect"
    UNSTABLE = "unstable"
    BATCHED = "batched"


@dataclass(frozen=True)
class RaceModel:
    """The derived quantities of the race for one profile/config."""

    structural_lag_ns: float
    jitter_spread_ns: float
    slack_ns: float
    tx_ns: float
    prediction: ModePrediction

    @property
    def lag_hi_ns(self) -> float:
        return self.structural_lag_ns + self.jitter_spread_ns

    @property
    def lag_lo_ns(self) -> float:
        return self.structural_lag_ns - self.jitter_spread_ns


def _tx_ns(profile: HardwareProfile, nbytes: int) -> float:
    wire = nbytes + HEADER_BYTES
    tx = profile.per_message_overhead_ns + wire * 8 * 1e9 / profile.link_bandwidth_bps
    dev = profile.device
    if dev.large_msg_threshold is not None and nbytes > dev.large_msg_threshold:
        tx += (nbytes - dev.large_msg_threshold) * dev.large_msg_extra_ns_per_byte
    return tx


def structural_lag_ns(profile: HardwareProfile) -> float:
    """Mean extra latency of the ADVERT path over the send-credit path.

    Both paths share an engine wake-up, a completion dispatch and an
    application hop (these cancel in expectation); the ADVERT additionally
    pays its build/post and its own wire trip, while the credit path pays
    the ACK turnaround and the sender's re-post.
    """
    costs = profile.cpu_costs
    advert_extra = (
        costs.send_control_ns
        + profile.per_message_overhead_ns
        + CTRL_WIRE_BYTES_GUESS * 8 * 1e9 / profile.link_bandwidth_bps
        + profile.propagation_delay_ns
        + profile.emulator_delay_ns
    )
    credit_extra = (
        profile.device.ack_turnaround_ns
        + profile.propagation_delay_ns
        + profile.emulator_delay_ns
        + costs.post_wr_ns
    )
    return advert_extra - credit_extra


def jitter_spread_ns(profile: HardwareProfile) -> float:
    """Worst-case wake-up asymmetry between the two paths.

    Each path crosses two wake-ups (engine + application); in the worst
    case the receiver draws the maximum twice while the sender draws the
    minimum twice.
    """
    return 2.0 * (profile.wakeup_hi_ns - profile.wakeup_lo_ns)


def predict_mode(
    profile: HardwareProfile,
    outstanding_sends: int,
    outstanding_recvs: int,
    message_bytes: int,
) -> RaceModel:
    """Predict the dynamic protocol's regime for a blast configuration."""
    if outstanding_sends < 1 or outstanding_recvs < 1:
        raise ValueError("outstanding counts must be >= 1")
    tx = _tx_ns(profile, message_bytes)
    lag = structural_lag_ns(profile)
    spread = jitter_spread_ns(profile)
    slack = (outstanding_recvs - outstanding_sends) * tx

    if tx < profile.wakeup_lo_ns:
        prediction = ModePrediction.BATCHED
    elif slack <= max(0.0, lag - spread) or outstanding_recvs <= outstanding_sends:
        prediction = ModePrediction.INDIRECT
    elif slack > lag + spread:
        prediction = ModePrediction.DIRECT
    else:
        prediction = ModePrediction.UNSTABLE
    return RaceModel(
        structural_lag_ns=lag,
        jitter_spread_ns=spread,
        slack_ns=slack,
        tx_ns=tx,
        prediction=prediction,
    )
