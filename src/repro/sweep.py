"""Deterministic parallel sweep runner.

Every experiment in this reproduction is an embarrassingly parallel sweep:
many independent simulations (one per parameter point per seed) whose
results are aggregated afterwards.  Simulations are deterministic and
self-contained, so spreading them across worker processes changes only the
wall-clock time — never the simulated results.  This module provides the
one sanctioned way to do that:

* :func:`run_sweep` — run ``worker(config, seed)`` for every config, across
  a process pool, with **ordered result collection** (results come back in
  config order regardless of completion order) and **failure propagation**
  (the first worker exception aborts the sweep and re-raises in the parent,
  carrying the failing config's index and traceback).
* :func:`processes_from_env` — honour ``REPRO_SWEEP_PROCESSES`` so the
  benchmark suite and figure runners can be parallelized without code
  changes.
* ``python -m repro.sweep`` — regenerate paper artifacts (same names as
  ``python -m repro.bench``) with the per-run grid fanned out over cores.

Determinism contract: for the same ``configs``/``seeds``, the returned list
is identical whether ``processes`` is 1 or N (the regression test in
``tests/test_sweep.py`` enforces this).  Workers must therefore be pure
functions of ``(config, seed)`` — in particular they must not read mutable
process-global state, which all of :mod:`repro.apps.blast` already
satisfies.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import traceback
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["SweepError", "run_sweep", "processes_from_env", "default_seeds"]


class SweepError(RuntimeError):
    """A worker failed; carries the failing config's position and traceback."""

    def __init__(self, index: int, config: Any, seed: int, cause_repr: str, cause_tb: str) -> None:
        super().__init__(
            f"sweep worker failed on config #{index} (seed={seed}): {cause_repr}\n"
            f"--- worker traceback ---\n{cause_tb}"
        )
        self.index = index
        self.config = config
        self.seed = seed


def default_seeds(count: int) -> List[int]:
    """The default per-config seed assignment: 1, 2, 3, ... (deterministic)."""
    return list(range(1, count + 1))


def processes_from_env(default: int = 1) -> int:
    """Worker count selected by ``REPRO_SWEEP_PROCESSES``.

    ``0`` or ``auto`` means one worker per CPU; unset/invalid means
    *default* (serial unless the caller opts in).
    """
    raw = os.environ.get("REPRO_SWEEP_PROCESSES", "").strip().lower()
    if not raw:
        return default
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        n = int(raw)
    except ValueError:
        return default
    return (os.cpu_count() or 1) if n <= 0 else n


def _invoke(payload):
    """Pool entry point: run one unit, trapping the exception for transport.

    Returns ``(index, True, result)`` or ``(index, False, (repr, tb))`` so
    the parent can both re-order results and propagate failures with the
    worker's traceback (raw exceptions don't always pickle).
    """
    index, worker, config, seed = payload
    try:
        return index, True, worker(config, seed)
    except BaseException as exc:  # noqa: BLE001 - transported to the parent
        return index, False, (repr(exc), traceback.format_exc())


def run_sweep(
    configs: Sequence[Any],
    worker: Callable[[Any, int], Any],
    processes: Optional[int] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    chunksize: int = 1,
) -> List[Any]:
    """Run ``worker(config, seed)`` for every config; return results in order.

    Parameters
    ----------
    configs:
        The sweep grid.  Each entry (and the worker) must be picklable when
        ``processes > 1``.
    worker:
        A module-level callable ``worker(config, seed) -> result``.
    processes:
        Worker process count.  ``1`` (or a single-entry grid) runs serially
        in-process — no pool, no pickling; ``None``/``0`` means one worker
        per CPU.
    seeds:
        Per-config seeds, parallel to *configs*.  Defaults to
        :func:`default_seeds` (1-based positions).
    chunksize:
        Work units handed to a worker at a time; raise above 1 only for
        very large grids of very short runs.
    """
    configs = list(configs)
    if seeds is None:
        seeds = default_seeds(len(configs))
    else:
        seeds = list(seeds)
        if len(seeds) != len(configs):
            raise ValueError(f"{len(configs)} configs but {len(seeds)} seeds")
    if processes is None or processes <= 0:
        processes = os.cpu_count() or 1

    if processes == 1 or len(configs) <= 1:
        # Serial fast path: same code path shape, no multiprocessing at all.
        results: List[Any] = []
        for i, (config, seed) in enumerate(zip(configs, seeds)):
            try:
                results.append(worker(config, seed))
            except BaseException as exc:
                raise SweepError(i, config, seed, repr(exc), traceback.format_exc()) from exc
        return results

    payloads = [(i, worker, config, seed)
                for i, (config, seed) in enumerate(zip(configs, seeds))]
    # fork (where available) inherits sys.path / imported modules, which
    # keeps "PYTHONPATH=src pytest" invocations working; elsewhere spawn
    # re-imports the worker's module by qualified name.
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    ctx = multiprocessing.get_context(method)
    out: List[Any] = [None] * len(payloads)
    with ctx.Pool(processes=min(processes, len(payloads))) as pool:
        # imap_unordered: results are re-slotted by index, so collection
        # order never depends on scheduling; failures abort immediately.
        for index, ok, value in pool.imap_unordered(_invoke, payloads, chunksize=chunksize):
            if not ok:
                cause_repr, cause_tb = value
                pool.terminate()
                raise SweepError(index, configs[index], seeds[index], cause_repr, cause_tb)
            out[index] = value
    return out


# ---------------------------------------------------------------------------
# CLI: parallel figure regeneration
# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    """``python -m repro.sweep`` — paper artifacts, grid fanned out over cores."""
    import argparse
    import time

    from .bench.experiment import PAPER, QUICK, SMOKE
    from .bench import figures

    qualities = {"smoke": SMOKE, "quick": QUICK, "paper": PAPER}
    runners = {
        "fig9a": lambda q, p: figures.fig9a(q, processes=p).text("throughput"),
        "fig9b": lambda q, p: figures.fig9b(q, processes=p).text("throughput"),
        "fig10a": lambda q, p: figures.fig10a(q, processes=p).text("cpu"),
        "fig10b": lambda q, p: figures.fig10b(q, processes=p).text("cpu"),
        "fig11a": lambda q, p: figures.fig11(q, processes=p).text("throughput"),
        "fig11b": lambda q, p: figures.fig11(q, processes=p).text("ratio"),
        "fig12a": lambda q, p: figures.fig12(q, processes=p).text("throughput"),
        "fig12b": lambda q, p: figures.fig12(q, processes=p).text("ratio"),
        "fig13": lambda q, p: figures.fig13(q, processes=p).text("throughput_mbps"),
        "table3": lambda q, p: figures.table3(q, processes=p)[1],
    }

    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Regenerate paper artifacts with the simulation grid "
                    "spread across worker processes (results are identical "
                    "to the serial python -m repro.bench).",
    )
    parser.add_argument("artifacts", nargs="*", metavar="ARTIFACT",
                        help=f"which to run (default: all): {', '.join(runners)}")
    parser.add_argument("--quality", choices=sorted(qualities), default="quick",
                        help="run length / repetition count (default: quick)")
    parser.add_argument("--processes", "-j", type=int, default=0,
                        help="worker processes (default: one per CPU; 1 = serial)")
    parser.add_argument("--list", action="store_true", help="list artifacts and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in runners:
            print(name)
        return 0

    selected = args.artifacts or list(runners)
    unknown = [a for a in selected if a not in runners]
    if unknown:
        parser.error(f"unknown artifact(s): {', '.join(unknown)}")

    quality = qualities[args.quality]
    processes = args.processes if args.processes > 0 else (os.cpu_count() or 1)
    for name in selected:
        t0 = time.time()
        print(runners[name](quality, processes))
        print(f"[{name} done in {time.time() - t0:.1f}s at quality={quality.name} "
              f"with {processes} processes]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
