"""repro — reproduction of "An Efficient Method for Stream Semantics over RDMA".

MacArthur & Russell, IEEE IPDPS 2014: the UNH EXS dynamic direct/indirect
stream-transfer protocol, rebuilt end to end as a deterministic
discrete-event simulation:

* :mod:`repro.simnet` — event kernel, links, delay emulator
* :mod:`repro.hosts` — CPU/memcpy cost models, simulated memory
* :mod:`repro.verbs` — software RDMA verbs (QPs, CQs, MRs, WWI, RC acks)
* :mod:`repro.core` — the paper's algorithm (Figs. 2-5) as pure logic
* :mod:`repro.exs` — the UNH EXS library (ES-API sockets) over verbs
* :mod:`repro.apps` — the blast tool, workloads, metrics
* :mod:`repro.bench` — hardware profiles and per-figure experiment runners
* :mod:`repro.analysis` — analytic throughput bounds
* :mod:`repro.obs` — unified telemetry (metrics, sampler, spans, reports)
* :mod:`repro.check` — correctness tooling (model checker, schedule
  fuzzer, trace auditor; ``python -m repro.check``)

Quick start::

    from repro import Testbed, BlastConfig, run_blast, ProtocolMode

    cfg = BlastConfig(total_messages=500, outstanding_sends=4,
                      outstanding_recvs=8, mode=ProtocolMode.DYNAMIC)
    result = run_blast(cfg)
    print(result.throughput_gbps, result.direct_ratio)
"""

from .apps import (
    BlastConfig,
    BlastResult,
    ExponentialSizes,
    FixedSizes,
    run_blast,
)
from .bench.profiles import (
    FDR_INFINIBAND,
    PROFILES,
    QDR_INFINIBAND,
    ROCE_10G_LAN,
    ROCE_10G_WAN,
    HardwareProfile,
)
from .config import ScenarioConfig
from .core import ProtocolMode, ProtocolStats, SafetyViolation
from .exs import (
    BlockingSocket,
    ExsEventType,
    ExsSocketOptions,
    ExsStack,
    MsgFlags,
    SocketType,
)
from .fabric import Fabric, FabricConnection
from .simnet import SwitchConfig, Topology
from .testbed import Testbed
from .trace import ProtocolTracer, render_timeline

__version__ = "1.0.0"

__all__ = [
    "BlastConfig",
    "BlastResult",
    "BlockingSocket",
    "ExponentialSizes",
    "ExsEventType",
    "ExsSocketOptions",
    "ExsStack",
    "FDR_INFINIBAND",
    "Fabric",
    "FabricConnection",
    "FixedSizes",
    "HardwareProfile",
    "MsgFlags",
    "PROFILES",
    "ProtocolMode",
    "ProtocolStats",
    "QDR_INFINIBAND",
    "ROCE_10G_LAN",
    "ROCE_10G_WAN",
    "ProtocolTracer",
    "SafetyViolation",
    "ScenarioConfig",
    "SocketType",
    "SwitchConfig",
    "Testbed",
    "Topology",
    "render_timeline",
    "__version__",
    "run_blast",
]
