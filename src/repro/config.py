"""Unified, serializable scenario configuration.

Everything that shapes *how a run is executed* — as opposed to what the
application sends — historically lived in scattered knobs: ``Testbed(...)``
keyword arguments, ``run_blast(telemetry=)``, ``run_grid(telemetry_dir=)``,
and the ``REPRO_TELEMETRY_DIR`` environment variable.
:class:`ScenarioConfig` gathers them into one frozen, picklable,
JSON-round-trippable object:

* **topology** — which :class:`~repro.bench.profiles.HardwareProfile`
  (by name, so scenarios serialize)
* **seed** — the testbed seed (wake-up latencies, fault streams, ...)
* **faults** — optional :class:`~repro.simnet.faults.FaultProfile`
* **reliability** — optional :class:`~repro.verbs.reliability.ReliabilityConfig`
* **schedule** — optional same-instant tie-break policy spec
  (``("fifo", 0)`` or ``("random", seed)``; see :mod:`repro.simnet.schedule`)
* **telemetry** / **telemetry_dir** — :mod:`repro.obs` session and artifact
  placement
* **max_events** — runaway-simulation guard

Because a scenario serializes, every :mod:`repro.check` counterexample is a
scenario: the fuzzer writes the exact ``ScenarioConfig`` that produced a
violation, and ``python -m repro.check replay`` re-runs it bit for bit.

The pre-existing spellings keep working as thin deprecation shims that
assemble a ``ScenarioConfig`` internally and emit a ``DeprecationWarning``
(see docs/API.md for the migration table).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from .bench.profiles import PROFILES, HardwareProfile
from .simnet.faults import FaultProfile
from .simnet.schedule import SchedulePolicy, policy_from_spec
from .verbs.reliability import ReliabilityConfig

__all__ = ["ScenarioConfig", "deprecated_signature"]


def deprecated_signature(what: str, instead: str) -> None:
    """Emit the standard shim warning pointing at :class:`ScenarioConfig`."""
    warnings.warn(
        f"{what} is deprecated; {instead} (see docs/API.md)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class ScenarioConfig:
    """One reproducible run environment, as a value.

    ``profile`` may be a profile *name* (a key of
    :data:`repro.bench.profiles.PROFILES` — the serializable spelling) or a
    :class:`HardwareProfile` instance (for ad-hoc profiles; such scenarios
    pickle but do not JSON-serialize unless the profile is registered).
    """

    profile: Union[str, HardwareProfile] = "fdr"
    seed: int = 0
    faults: Optional[FaultProfile] = None
    reliability: Optional[ReliabilityConfig] = None
    #: EXS data-plane transport forced on the run's sockets: ``"wwi"``,
    #: ``"eager_rendezvous"``, or ``None`` (socket options / environment
    #: decide; see :meth:`repro.exs.ExsSocketOptions.effective_transport`)
    transport: Optional[str] = None
    #: same-instant schedule policy spec: ``None`` (kernel FIFO),
    #: ``("fifo", 0)``, or ``("random", seed)``
    schedule: Optional[Tuple[str, int]] = None
    #: attach a :mod:`repro.obs` telemetry session to the run
    telemetry: bool = False
    #: write per-run telemetry JSONL artifacts into this directory
    telemetry_dir: Optional[str] = None
    #: record the full causal DAG (kernel capture; enables critical-path
    #: attribution via :mod:`repro.obs.causal`).  Simulated results are
    #: unchanged; the C kernel fast path is bypassed for the run.
    causal_capture: bool = False
    #: >0 keeps a bounded flight ring of that many fired events, dumped as
    #: JSON when a QP/connection fails (cheap always-on blackbox mode);
    #: implied by ``causal_capture`` (which retains everything)
    flight_recorder: int = 0
    #: hard cap on simulation events (``None`` = caller's default)
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if isinstance(self.profile, str) and self.profile not in PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r} (known: {', '.join(sorted(PROFILES))})"
            )
        if self.transport not in (None, "wwi", "eager_rendezvous"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.schedule is not None:
            # normalize to a plain (kind, seed) tuple and validate eagerly
            if isinstance(self.schedule, SchedulePolicy):
                spec = self.schedule.spec()
            else:
                spec = (str(self.schedule[0]), int(self.schedule[1]))
                policy_from_spec(spec)
            object.__setattr__(self, "schedule", spec)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_profile(self) -> HardwareProfile:
        return PROFILES[self.profile] if isinstance(self.profile, str) else self.profile

    def schedule_policy(self) -> Optional[SchedulePolicy]:
        return policy_from_spec(self.schedule)

    def with_(self, **changes) -> "ScenarioConfig":
        """A copy with *changes* applied (``dataclasses.replace`` spelling)."""
        return dataclasses.replace(self, **changes)

    def build_testbed(self, *, jitter=None, trace=None):
        """Assemble the two-node :class:`~repro.testbed.Testbed` this
        scenario describes.  ``jitter``/``trace`` are callables (therefore
        not part of the serializable scenario) and compose on top.
        """
        from .testbed import Testbed

        return Testbed.from_scenario(self, jitter=jitter, trace=trace)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict; inverse of :meth:`from_dict`."""
        profile = self.profile
        if isinstance(profile, HardwareProfile):
            if PROFILES.get(profile.name) is not profile:
                raise ValueError(
                    f"profile {profile.name!r} is not registered in PROFILES; "
                    "serializable scenarios must name a registered profile"
                )
            profile = profile.name
        return {
            "profile": profile,
            "seed": self.seed,
            "faults": dataclasses.asdict(self.faults) if self.faults else None,
            "reliability": dataclasses.asdict(self.reliability) if self.reliability else None,
            "transport": self.transport,
            "schedule": list(self.schedule) if self.schedule else None,
            "telemetry": self.telemetry,
            "telemetry_dir": self.telemetry_dir,
            "causal_capture": self.causal_capture,
            "flight_recorder": self.flight_recorder,
            "max_events": self.max_events,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioConfig":
        faults = data.get("faults")
        reliability = data.get("reliability")
        schedule = data.get("schedule")
        return cls(
            profile=data.get("profile", "fdr"),
            seed=int(data.get("seed", 0)),
            faults=FaultProfile(**faults) if faults else None,
            reliability=ReliabilityConfig(**reliability) if reliability else None,
            transport=data.get("transport"),
            schedule=tuple(schedule) if schedule else None,
            telemetry=bool(data.get("telemetry", False)),
            telemetry_dir=data.get("telemetry_dir"),
            causal_capture=bool(data.get("causal_capture", False)),
            flight_recorder=int(data.get("flight_recorder", 0)),
            max_events=data.get("max_events"),
        )
