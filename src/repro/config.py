"""Unified, serializable scenario configuration.

Everything that shapes *how a run is executed* — as opposed to what the
application sends — historically lived in scattered knobs: ``Testbed(...)``
keyword arguments, ``run_blast(telemetry=)``, ``run_grid(telemetry_dir=)``,
and the ``REPRO_TELEMETRY_DIR`` environment variable.
:class:`ScenarioConfig` gathers them into one frozen, picklable,
JSON-round-trippable object:

* **profile** — which :class:`~repro.bench.profiles.HardwareProfile`
  (by name, so scenarios serialize)
* **topology** — optional :class:`~repro.simnet.fabric.Topology` for
  multi-host fabrics (``None`` = the classic two-host wire)
* **seed** — the testbed seed (wake-up latencies, fault streams, ...)
* **faults** — optional :class:`~repro.simnet.faults.FaultProfile`, or a
  per-edge ``{edge_name: FaultProfile}`` mapping on a topology
* **reliability** — optional :class:`~repro.verbs.reliability.ReliabilityConfig`
* **schedule** — optional same-instant tie-break policy spec
  (``("fifo", 0)`` or ``("random", seed)``; see :mod:`repro.simnet.schedule`)
* **telemetry** / **telemetry_dir** — :mod:`repro.obs` session and artifact
  placement
* **max_events** — runaway-simulation guard

Because a scenario serializes, every :mod:`repro.check` counterexample is a
scenario: the fuzzer writes the exact ``ScenarioConfig`` that produced a
violation, and ``python -m repro.check replay`` re-runs it bit for bit.

The pre-existing spellings keep working as thin deprecation shims that
assemble a ``ScenarioConfig`` internally and emit a ``DeprecationWarning``
(see docs/API.md for the migration table).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from .bench.profiles import PROFILES, HardwareProfile
from .simnet.fabric import Topology
from .simnet.faults import FaultProfile
from .simnet.schedule import SchedulePolicy, policy_from_spec
from .verbs.reliability import ReliabilityConfig

__all__ = ["ScenarioConfig", "deprecated_signature"]


def deprecated_signature(what: str, instead: str) -> None:
    """Emit the standard shim warning pointing at :class:`ScenarioConfig`."""
    warnings.warn(
        f"{what} is deprecated; {instead} (see docs/API.md)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class ScenarioConfig:
    """One reproducible run environment, as a value.

    ``profile`` may be a profile *name* (a key of
    :data:`repro.bench.profiles.PROFILES` — the serializable spelling) or a
    :class:`HardwareProfile` instance (for ad-hoc profiles; such scenarios
    pickle but do not JSON-serialize unless the profile is registered).
    """

    profile: Union[str, HardwareProfile] = "fdr"
    seed: int = 0
    #: multi-host fabric layout; ``None`` means the classic two-host wire
    #: (equivalent to :meth:`Topology.point_to_point`)
    topology: Optional[Topology] = None
    #: wire impairment: one :class:`FaultProfile` applied to every edge, or
    #: a ``{edge_name: FaultProfile}`` mapping addressing individual edges
    #: of the topology (e.g. ``{"client0-spine0": LIGHT_LOSS}``); unknown
    #: edge names raise eagerly
    faults: Optional[Union[FaultProfile, Dict[str, FaultProfile]]] = None
    reliability: Optional[ReliabilityConfig] = None
    #: EXS data-plane transport forced on the run's sockets: ``"wwi"``,
    #: ``"eager_rendezvous"``, or ``None`` (socket options / environment
    #: decide; see :meth:`repro.exs.ExsSocketOptions.effective_transport`)
    transport: Optional[str] = None
    #: same-instant schedule policy spec: ``None`` (kernel FIFO),
    #: ``("fifo", 0)``, or ``("random", seed)``
    schedule: Optional[Tuple[str, int]] = None
    #: attach a :mod:`repro.obs` telemetry session to the run
    telemetry: bool = False
    #: write per-run telemetry JSONL artifacts into this directory
    telemetry_dir: Optional[str] = None
    #: record the full causal DAG (kernel capture; enables critical-path
    #: attribution via :mod:`repro.obs.causal`).  Simulated results are
    #: unchanged; the C kernel fast path is bypassed for the run.
    causal_capture: bool = False
    #: >0 keeps a bounded flight ring of that many fired events, dumped as
    #: JSON when a QP/connection fails (cheap always-on blackbox mode);
    #: implied by ``causal_capture`` (which retains everything)
    flight_recorder: int = 0
    #: hard cap on simulation events (``None`` = caller's default)
    max_events: Optional[int] = None
    #: >0 makes every host's receive-pool connections share one SRQ-backed
    #: buffer pool of that many slots (RNR-NAK on exhaustion) instead of
    #: posting ``credits`` buffers per connection; ``None`` keeps the
    #: historical per-QP receive queues
    srq_depth: Optional[int] = None
    #: >0 shards completion handling: connections share ``cq_shards``
    #: completion queues per host and one poller process drains each shard,
    #: so devices poll O(shards), not O(connections); 0 keeps the
    #: historical per-connection engine loop (bit-identical)
    cq_shards: int = 0
    #: event-kernel selection: ``None`` (the ``REPRO_KERNEL`` environment
    #: variable, defaulting to the monolithic timing wheel), ``"wheel"``,
    #: ``"heap"``, ``"cells"``/``"decoupled"`` (per-host calendars executed
    #: in conservative lookahead windows; see :mod:`repro.simnet.cells`),
    #: or ``"cells-lockstep"`` (the cells calendar in strict global order —
    #: the bit-identical reference the determinism suite compares against).
    #: Cells kernels need a switched topology and fall back to the
    #: monolithic wheel otherwise (see docs/SIMULATION.md for the matrix).
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.profile, str) and self.profile not in PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r} (known: {', '.join(sorted(PROFILES))})"
            )
        if self.transport not in (None, "wwi", "eager_rendezvous"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if isinstance(self.faults, dict):
            if self.topology is None:
                raise ValueError(
                    "per-edge faults ({edge_name: FaultProfile}) require a topology"
                )
            for name in self.faults:
                self.topology.resolve_edge(name)  # raises on unknown edges
        if self.srq_depth is not None and self.srq_depth <= 0:
            raise ValueError("srq_depth must be positive (or None)")
        if self.cq_shards < 0:
            raise ValueError("cq_shards must be >= 0")
        if self.kernel not in (None, "wheel", "heap", "cells", "decoupled", "cells-lockstep"):
            raise ValueError(
                f"unknown kernel {self.kernel!r} (expected 'wheel', 'heap', "
                "'cells'/'decoupled', or 'cells-lockstep')"
            )
        if self.schedule is not None:
            # normalize to a plain (kind, seed) tuple and validate eagerly
            if isinstance(self.schedule, SchedulePolicy):
                spec = self.schedule.spec()
            else:
                spec = (str(self.schedule[0]), int(self.schedule[1]))
                policy_from_spec(spec)
            object.__setattr__(self, "schedule", spec)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_profile(self) -> HardwareProfile:
        return PROFILES[self.profile] if isinstance(self.profile, str) else self.profile

    def schedule_policy(self) -> Optional[SchedulePolicy]:
        return policy_from_spec(self.schedule)

    def with_(self, **changes) -> "ScenarioConfig":
        """A copy with *changes* applied (``dataclasses.replace`` spelling)."""
        return dataclasses.replace(self, **changes)

    def build_testbed(self, *, jitter=None, trace=None):
        """Assemble the two-node :class:`~repro.testbed.Testbed` this
        scenario describes.  ``jitter``/``trace`` are callables (therefore
        not part of the serializable scenario) and compose on top.
        """
        from .testbed import Testbed

        return Testbed.from_scenario(self, jitter=jitter, trace=trace)

    def build_fabric(self, *, jitter=None, trace=None):
        """Assemble the N-host :class:`~repro.fabric.Fabric` this scenario
        describes (its :attr:`topology`, or the two-host wire when unset).
        """
        from .fabric import Fabric

        return Fabric.from_scenario(self, jitter=jitter, trace=trace)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict; inverse of :meth:`from_dict`."""
        profile = self.profile
        if isinstance(profile, HardwareProfile):
            if PROFILES.get(profile.name) is not profile:
                raise ValueError(
                    f"profile {profile.name!r} is not registered in PROFILES; "
                    "serializable scenarios must name a registered profile"
                )
            profile = profile.name
        if isinstance(self.faults, dict):
            faults = {"per_edge": {
                name: dataclasses.asdict(fp) for name, fp in self.faults.items()
            }}
        else:
            faults = dataclasses.asdict(self.faults) if self.faults else None
        return {
            "profile": profile,
            "seed": self.seed,
            "topology": self.topology.to_dict() if self.topology else None,
            "faults": faults,
            "reliability": dataclasses.asdict(self.reliability) if self.reliability else None,
            "transport": self.transport,
            "schedule": list(self.schedule) if self.schedule else None,
            "telemetry": self.telemetry,
            "telemetry_dir": self.telemetry_dir,
            "causal_capture": self.causal_capture,
            "flight_recorder": self.flight_recorder,
            "max_events": self.max_events,
            "srq_depth": self.srq_depth,
            "cq_shards": self.cq_shards,
            "kernel": self.kernel,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioConfig":
        faults = data.get("faults")
        if faults and "per_edge" in faults:
            faults = {name: FaultProfile(**fp) for name, fp in faults["per_edge"].items()}
        elif faults:
            faults = FaultProfile(**faults)
        else:
            faults = None
        topology = data.get("topology")
        reliability = data.get("reliability")
        schedule = data.get("schedule")
        return cls(
            profile=data.get("profile", "fdr"),
            seed=int(data.get("seed", 0)),
            topology=Topology.from_dict(topology) if topology else None,
            faults=faults,
            reliability=ReliabilityConfig(**reliability) if reliability else None,
            transport=data.get("transport"),
            schedule=tuple(schedule) if schedule else None,
            telemetry=bool(data.get("telemetry", False)),
            telemetry_dir=data.get("telemetry_dir"),
            causal_capture=bool(data.get("causal_capture", False)),
            flight_recorder=int(data.get("flight_recorder", 0)),
            max_events=data.get("max_events"),
            srq_depth=data.get("srq_depth"),
            cq_shards=int(data.get("cq_shards", 0)),
            kernel=data.get("kernel"),
        )
