"""Two-node testbed assembly.

:class:`Testbed` wires together everything below the application: the
simulator, two hosts (client / server), the link (optionally through a
delay emulator), the RDMA devices, and an EXS stack on each host.  It is
the starting point of every example, test, and benchmark::

    tb = Testbed.from_scenario(ScenarioConfig(seed=1))
    tb.sim.process(server_app(tb.server), name="server")
    tb.sim.process(client_app(tb.client), name="client")
    tb.run()

The keyword-assembly spelling ``Testbed(profile, seed=..., faults=...)``
still works as a deprecation shim; new code should describe the run as a
:class:`repro.config.ScenarioConfig` so it serializes and replays.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Callable, Optional, Union

from .bench.profiles import FDR_INFINIBAND, HardwareProfile
from .config import ScenarioConfig, deprecated_signature
from .exs import ExsStack
from .hosts import Host
from .simnet import DelayEmulator, FaultProfile, ImpairmentModel, Link, Simulator
from .simnet.schedule import SchedulePolicy
from .verbs import ConnectionManager, ReliabilityConfig, connect_devices
from .verbs.comp_channel import uniform_wakeup

__all__ = ["Testbed"]


class Testbed:
    """A client host and a server host joined by one RDMA-capable link."""

    #: not a pytest test class, despite the importable name
    __test__ = False

    def __init__(
        self,
        profile: HardwareProfile = FDR_INFINIBAND,
        *,
        seed: int = 0,
        jitter: Optional[Callable] = None,
        trace: Optional[Callable[[int, str, str], None]] = None,
        faults: Optional[Union[FaultProfile, ImpairmentModel]] = None,
        reliability: Optional[ReliabilityConfig] = None,
        schedule_policy: Optional[SchedulePolicy] = None,
        scenario: Optional[ScenarioConfig] = None,
    ) -> None:
        """*faults* makes the wire lossy: pass a
        :class:`~repro.simnet.faults.FaultProfile` (an
        :class:`~repro.simnet.faults.ImpairmentModel` is derived from the
        testbed seed) or a fully-built model for down-windows/asymmetry.
        *reliability* enables the RC reliability layer on both devices;
        when *faults* is set and *reliability* is not, a config scaled to
        the path's one-way latency is derived automatically — an impaired
        wire without retransmission machinery loses data by design.

        Passing *scenario* is the preferred spelling: profile, seed,
        faults, reliability, and the schedule policy are taken from it (and
        must not also be passed as keywords).  Assembling those knobs as
        keyword arguments is deprecated.
        """
        if scenario is not None:
            if (
                profile is not FDR_INFINIBAND
                or seed != 0
                or faults is not None
                or reliability is not None
                or schedule_policy is not None
            ):
                raise ValueError(
                    "pass either scenario= or the individual profile/seed/"
                    "faults/reliability/schedule_policy knobs, not both"
                )
            profile = scenario.resolve_profile()
            seed = scenario.seed
            faults = scenario.faults
            reliability = scenario.reliability
            schedule_policy = scenario.schedule_policy()
        else:
            deprecated_signature(
                "assembling Testbed(...) from scattered keyword arguments",
                "describe the run as a repro.ScenarioConfig and use "
                "Testbed.from_scenario(scenario) or Testbed(scenario=...)",
            )
        self.scenario = scenario
        self.profile = profile
        self.seed = seed
        self.sim = Simulator(trace=trace, schedule_policy=schedule_policy)

        #: the run's :class:`~repro.simnet.causality.CausalRecorder` when the
        #: scenario asked for capture (``causal_capture``/``flight_recorder``)
        self.causal = None
        if scenario is not None and (scenario.causal_capture or scenario.flight_recorder):
            from .simnet.causality import CausalRecorder, enable_capture

            try:
                scenario_dict = scenario.to_dict()
            except ValueError:  # ad-hoc unregistered profile: dump without it
                scenario_dict = None
            self.causal = enable_capture(self.sim, CausalRecorder(
                capacity=None if scenario.causal_capture else scenario.flight_recorder,
                dump_dir=scenario.telemetry_dir,
                scenario=scenario_dict,
            ))

        self.client_host = Host(
            self.sim, "client",
            copy_bandwidth_bps=profile.copy_bandwidth_bps,
            cpu_costs=profile.cpu_costs,
        )
        self.server_host = Host(
            self.sim, "server",
            copy_bandwidth_bps=profile.copy_bandwidth_bps,
            cpu_costs=profile.cpu_costs,
        )
        # Completion-channel wake-up latency distribution (per host; the
        # per-channel RNG seed comes from the stack so runs are reproducible).
        sampler = uniform_wakeup(profile.wakeup_lo_ns, profile.wakeup_hi_ns)
        self.client_host.wakeup_sampler = sampler
        self.server_host.wakeup_sampler = sampler

        emulator = None
        if profile.emulator_delay_ns or jitter is not None:
            emulator = DelayEmulator(profile.emulator_delay_ns, jitter=jitter, seed=seed + 7)

        if isinstance(faults, FaultProfile):
            faults = ImpairmentModel(faults, seed=seed + 13)
        self.impairment: Optional[ImpairmentModel] = faults

        self.link = Link(
            self.sim,
            bandwidth_bps=profile.link_bandwidth_bps,
            propagation_delay_ns=profile.propagation_delay_ns,
            per_message_overhead_ns=profile.per_message_overhead_ns,
            emulator=emulator,
            impairment=self.impairment,
        )
        if self.impairment is not None and reliability is None:
            reliability = ReliabilityConfig.for_path(
                profile.propagation_delay_ns + profile.emulator_delay_ns
            )
        # The CI variant matrix forces a reliability discipline across an
        # unmodified suite: derive a path-scaled config if none exists yet,
        # then pin its mode.
        mode_env = os.environ.get("REPRO_RELIABILITY_MODE", "").strip()
        if mode_env:
            if reliability is None:
                reliability = ReliabilityConfig.for_path(
                    profile.propagation_delay_ns + profile.emulator_delay_ns
                )
            if reliability.mode != mode_env:
                reliability = replace(reliability, mode=mode_env)
        self.reliability = reliability
        device_config = profile.device
        if reliability is not None:
            device_config = replace(device_config, reliability=reliability)
        self.client_device, self.server_device = connect_devices(
            self.sim, self.client_host, self.server_host, self.link,
            config_a=device_config, config_b=device_config,
        )
        self.client = ExsStack(
            self.sim, self.client_host, self.client_device,
            ConnectionManager(self.client_device), seed=seed * 2 + 1,
        )
        self.server = ExsStack(
            self.sim, self.server_host, self.server_device,
            ConnectionManager(self.server_device), seed=seed * 2 + 2,
        )

        #: set by :meth:`attach_telemetry`
        self.telemetry = None

    @classmethod
    def from_scenario(
        cls,
        scenario: ScenarioConfig,
        *,
        jitter: Optional[Callable] = None,
        trace: Optional[Callable[[int, str, str], None]] = None,
    ) -> "Testbed":
        """Build the testbed a :class:`~repro.config.ScenarioConfig`
        describes.  ``jitter``/``trace`` are callables — not serializable,
        so not scenario fields — and compose on top.
        """
        return cls(jitter=jitter, trace=trace, scenario=scenario)

    def attach_telemetry(self, **kwargs):
        """Attach a :class:`repro.obs.Telemetry` session to this testbed.

        Keyword arguments are forwarded to
        :meth:`repro.obs.Telemetry.attach` (``sample_interval_ns``,
        ``span_capacity``, ``max_samples``).  Returns the session.
        """
        from .obs import Telemetry

        self.telemetry = Telemetry.attach(self, **kwargs)
        return self.telemetry

    def run(self, until=None, *, max_events: Optional[int] = None):
        """Run the simulation (see :meth:`repro.simnet.Simulator.run`)."""
        try:
            return self.sim.run(until, max_events=max_events)
        finally:
            if self.telemetry is not None:
                # flush the tail interval the periodic tick never reaches
                self.telemetry.sampler.finish()

    @property
    def now(self) -> int:
        return self.sim.now
