"""Two-node testbed assembly.

:class:`Testbed` wires together everything below the application: the
simulator, two hosts (client / server), the link (optionally through a
delay emulator), the RDMA devices, and an EXS stack on each host.  It is
the starting point of every example, test, and benchmark::

    tb = Testbed.from_scenario(ScenarioConfig(seed=1))
    tb.sim.process(server_app(tb.server), name="server")
    tb.sim.process(client_app(tb.client), name="client")
    tb.run()

Since the fabric API redesign, ``Testbed`` is the trivial two-host case of
:class:`repro.fabric.Fabric` — a :meth:`~repro.simnet.fabric.Topology.point_to_point`
topology with hosts named ``client`` and ``server`` — kept as the
convenient front door for point-to-point experiments.  Its assembly takes
exactly the same code path the standalone implementation did (one link,
cross-wired peer devices, no switch), so event sequences are bit-identical
to historical builds.

The keyword-assembly spelling ``Testbed(profile, seed=..., faults=...)``
still works as a deprecation shim; new code should describe the run as a
:class:`repro.config.ScenarioConfig` so it serializes and replays.
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional, Union

from .bench.profiles import FDR_INFINIBAND, HardwareProfile
from .config import ScenarioConfig, deprecated_signature
from .exs import ExsStack
from .fabric import Fabric
from .hosts import Host
from .simnet import FaultProfile, ImpairmentModel, Topology
from .simnet.schedule import SchedulePolicy
from .verbs import RdmaDevice, ReliabilityConfig

__all__ = ["Testbed"]


def _host_shim(which: str) -> property:
    def getter(self: "Testbed") -> Host:
        warnings.warn(
            f"Testbed.{which}_host is deprecated; use .host({which!r}) "
            "(the Fabric spelling; see docs/API.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.host(which)

    getter.__name__ = f"{which}_host"
    getter.__doc__ = (
        f"Deprecated alias for ``host({which!r})`` (emits DeprecationWarning)."
    )
    return property(getter)


class Testbed(Fabric):
    """A client host and a server host joined by one RDMA-capable link."""

    def __init__(
        self,
        profile: HardwareProfile = FDR_INFINIBAND,
        *,
        seed: int = 0,
        jitter: Optional[Callable] = None,
        trace: Optional[Callable[[int, str, str], None]] = None,
        faults: Optional[Union[FaultProfile, ImpairmentModel]] = None,
        reliability: Optional[ReliabilityConfig] = None,
        schedule_policy: Optional[SchedulePolicy] = None,
        scenario: Optional[ScenarioConfig] = None,
    ) -> None:
        """*faults* makes the wire lossy: pass a
        :class:`~repro.simnet.faults.FaultProfile` (an
        :class:`~repro.simnet.faults.ImpairmentModel` is derived from the
        testbed seed) or a fully-built model for down-windows/asymmetry.
        *reliability* enables the RC reliability layer on both devices;
        when *faults* is set and *reliability* is not, a config scaled to
        the path's one-way latency is derived automatically — an impaired
        wire without retransmission machinery loses data by design.

        Passing *scenario* is the preferred spelling: profile, seed,
        faults, reliability, and the schedule policy are taken from it (and
        must not also be passed as keywords).  Assembling those knobs as
        keyword arguments is deprecated.  For topologies beyond the
        two-host wire, use :class:`repro.fabric.Fabric`.
        """
        if scenario is not None:
            if (
                profile is not FDR_INFINIBAND
                or seed != 0
                or faults is not None
                or reliability is not None
                or schedule_policy is not None
            ):
                raise ValueError(
                    "pass either scenario= or the individual profile/seed/"
                    "faults/reliability/schedule_policy knobs, not both"
                )
            if scenario.topology is not None and not scenario.topology.direct:
                raise ValueError(
                    "Testbed is the two-host wire; build multi-host "
                    "topologies with repro.fabric.Fabric"
                )
            super().__init__(scenario=scenario, jitter=jitter, trace=trace)
        else:
            deprecated_signature(
                "assembling Testbed(...) from scattered keyword arguments",
                "describe the run as a repro.ScenarioConfig and use "
                "Testbed.from_scenario(scenario) or Testbed(scenario=...)",
            )
            super().__init__(
                topology=Topology.point_to_point(),
                jitter=jitter,
                trace=trace,
                profile=profile,
                seed=seed,
                faults=faults,
                reliability=reliability,
                schedule_policy=schedule_policy,
            )

    @classmethod
    def from_scenario(
        cls,
        scenario: ScenarioConfig,
        *,
        jitter: Optional[Callable] = None,
        trace: Optional[Callable[[int, str, str], None]] = None,
    ) -> "Testbed":
        """Build the testbed a :class:`~repro.config.ScenarioConfig`
        describes.  ``jitter``/``trace`` are callables — not serializable,
        so not scenario fields — and compose on top.
        """
        return cls(jitter=jitter, trace=trace, scenario=scenario)

    # -- two-host accessors --------------------------------------------
    # The canonical spelling is the Fabric one (host("client"), stack,
    # device); client/server remain first-class conveniences, while the
    # *_host attribute spellings are deprecation shims.
    client_host = _host_shim("client")
    server_host = _host_shim("server")

    @property
    def client(self) -> ExsStack:
        """The EXS stack on the client host."""
        return self.stack("client")

    @property
    def server(self) -> ExsStack:
        """The EXS stack on the server host."""
        return self.stack("server")

    @property
    def client_device(self) -> RdmaDevice:
        return self.device("client")

    @property
    def server_device(self) -> RdmaDevice:
        return self.device("server")
