"""The telemetry session: registry + sampler + tracer + spans, in one handle.

:meth:`Telemetry.attach` is the one call that turns a silent testbed into an
observed one::

    tb = Testbed.from_scenario(ScenarioConfig(seed=1))
    tel = Telemetry.attach(tb)
    ... run ...
    tel.finish()
    print(render_report(tel))          # repro.obs.report
    tel.export(open("run.jsonl", "w")) # repro.obs.export

Attachment wires the shared :class:`~repro.trace.ProtocolTracer` onto both
hosts (so EXS connections emit protocol + span events), registers pull
gauges over the existing simulation state (CPU busy time, memory, link
counters), starts the :class:`~repro.obs.sampler.Sampler`, and exposes a
``telemetry`` attribute on each host so connections created later register
themselves for per-connection sampling (ring occupancy, credits, queue
depth, direct/indirect counters).

Everything here observes and never perturbs: gauges and collectors are
read-only, and the sampler's calendar entries cannot reorder other events
(see the determinism note in :mod:`repro.obs.sampler`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..trace import ProtocolTracer
from .registry import MetricsRegistry
from .sampler import Sampler
from .spans import MessageSpan, build_spans

__all__ = ["Telemetry"]

#: histogram metric per span stage, observed at :meth:`Telemetry.finish`
SPAN_STAGE_HISTOGRAMS = ("queue_ns", "transport_ns", "delivery_ns", "e2e_ns")


class Telemetry:
    """One telemetry session over one simulator."""

    def __init__(
        self,
        sim,
        *,
        sample_interval_ns: int = 100_000,
        span_capacity: int = 1_000_000,
        max_samples: int = 100_000,
    ) -> None:
        self.sim = sim
        self.registry = MetricsRegistry()
        self.tracer = ProtocolTracer(capacity=span_capacity)
        self.sampler = Sampler(
            sim, self.registry,
            interval_ns=sample_interval_ns, max_samples=max_samples,
        )
        #: free-form run metadata carried into exports (scenario, seed, ...)
        self.meta: Dict[str, Any] = {}
        self._conns: List[Any] = []
        self._spans: Optional[List[MessageSpan]] = None
        self._finished = False
        self.registry.add_collector(self._collect_connections)
        if hasattr(sim, "calendar_stats"):
            self.registry.add_collector(self._collect_kernel)
        self.conns_opened = self.registry.counter(
            "conns.opened", "EXS connections registered with telemetry")

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        testbed,
        *,
        sample_interval_ns: int = 100_000,
        span_capacity: int = 1_000_000,
        max_samples: int = 100_000,
    ) -> "Telemetry":
        """Create a session and wire it through a testbed or fabric.

        On the classic two-host wire (:class:`~repro.testbed.Testbed`, or
        any direct topology) the gauge names are the historical flat ones
        (``link.dir0.*``, ``faults.*``); on a multi-host
        :class:`~repro.fabric.Fabric` every edge gets its own prefix
        (``link.<edge>.*``, ``faults.<edge>.*``) and every switch port is
        observed as ``fabric.port.<switch>.<port>.*``.  Hosts with an SRQ
        pool additionally get ``srq.<host>.*`` occupancy gauges.
        """
        tel = cls(
            testbed.sim,
            sample_interval_ns=sample_interval_ns,
            span_capacity=span_capacity,
            max_samples=max_samples,
        )
        tel.meta.setdefault("seed", getattr(testbed, "seed", None))
        profile = getattr(testbed, "profile", None)
        if profile is not None:
            tel.meta.setdefault("profile", getattr(profile, "name", str(profile)))
        hosts = getattr(testbed, "all_hosts", None)
        if hosts is None:  # pre-fabric testbed shapes
            hosts = [testbed.host("client"), testbed.host("server")]
        for host in hosts:
            tel.observe_host(host)
        topology = getattr(testbed, "topology", None)
        if topology is not None and not topology.direct:
            for name, link in testbed.links.items():
                tel.observe_link(link, prefix=f"link.{name}")
            for name, impairment in testbed.impairments.items():
                tel.observe_impairment(impairment, prefix=f"faults.{name}")
            for switch in testbed.switches.values():
                tel.observe_switch(switch)
        else:
            tel.observe_link(testbed.link)
            impairment = getattr(testbed, "impairment", None)
            if impairment is not None:
                tel.observe_impairment(impairment)
        device_of = getattr(testbed, "device", None)
        stack_of = getattr(testbed, "stack", None)
        for host in hosts:
            device = device_of(host.name) if device_of is not None else None
            engine = getattr(device, "reliability", None)
            if engine is not None:
                tel.observe_reliability(host.name, engine)
            stack = stack_of(host.name) if stack_of is not None else None
            pool = getattr(stack, "srq_pool", None)
            if pool is not None:
                tel.observe_srq(host.name, pool)
        tel.sampler.start()
        return tel

    def observe_host(self, host) -> None:
        """Wire tracing + register the standard gauges for one host."""
        host.tracer = self.tracer
        host.telemetry = self
        name = host.name
        reg = self.registry
        reg.gauge(f"{name}.cpu.busy_ns", lambda h=host: h.cpu.busy_ns_total,
                  "library-core busy time (cumulative ns)")
        reg.gauge(f"{name}.app_cpu.busy_ns", lambda h=host: h.app_cpu.busy_ns_total,
                  "application-core busy time (cumulative ns)")
        reg.gauge(f"{name}.mem.allocated_bytes", lambda h=host: h.memory.allocated_bytes,
                  "bytes allocated in the host arena")
        reg.gauge(f"{name}.mem.buffers", lambda h=host: h.memory.buffer_count,
                  "buffers allocated in the host arena")

    def observe_link(self, link, *, prefix: str = "link") -> None:
        """Register per-direction link counters as pull gauges."""
        reg = self.registry
        for d in link.directions:
            p = f"{prefix}.dir{d.index}"
            reg.gauge(f"{p}.messages", lambda d=d: d.stats.messages,
                      "messages transmitted (cumulative)")
            reg.gauge(f"{p}.wire_bytes", lambda d=d: d.stats.wire_bytes,
                      "payload bytes transmitted (cumulative)")
            reg.gauge(f"{p}.busy_ns", lambda d=d: d.stats.busy_ns,
                      "transmitter busy time (cumulative ns)")

    def observe_impairment(self, impairment, *, prefix: str = "faults") -> None:
        """Register the fault-injection counters as pull gauges."""
        reg = self.registry
        reg.gauge(f"{prefix}.dropped", lambda m=impairment: m.dropped_total,
                  "data messages dropped by the impairment model")
        reg.gauge(f"{prefix}.duplicated", lambda m=impairment: m.duplicated_total,
                  "data messages duplicated by the impairment model")
        reg.gauge(f"{prefix}.corrupted", lambda m=impairment: m.corrupted_total,
                  "data messages corrupted by the impairment model")
        reg.gauge(f"{prefix}.down_dropped", lambda m=impairment: m.down_dropped_total,
                  "messages lost to scheduled link outages")
        reg.gauge(f"{prefix}.acks_dropped", lambda m=impairment: m.acks_dropped_total,
                  "out-of-band ACK/NAKs dropped")

    def observe_switch(self, switch) -> None:
        """Register one switch's per-egress-port queue and drop counters.

        Gauge names follow ``fabric.port.<switch>.<port>.*`` where the port
        label is the neighbor node the port faces.
        """
        reg = self.registry
        for port_name, port in switch.ports.items():
            prefix = f"fabric.port.{switch.name}.{port_name}"
            reg.gauge(f"{prefix}.queued_bytes", lambda p=port: p.queued_bytes,
                      "bytes admitted to the egress queue (incl. in flight)")
            reg.gauge(f"{prefix}.queued_frames", lambda p=port: p.queued_frames,
                      "frames admitted to the egress queue")
            reg.gauge(f"{prefix}.pending_bytes", lambda p=port: p.pending_bytes,
                      "bytes held at ingress under backpressure")
            reg.gauge(f"{prefix}.peak_queue_bytes", lambda p=port: p.peak_queue_bytes,
                      "high-water mark of the egress queue (bytes)")
            reg.gauge(f"{prefix}.forwarded", lambda p=port: p.forwarded,
                      "frames forwarded (cumulative)")
            reg.gauge(f"{prefix}.forwarded_bytes", lambda p=port: p.forwarded_bytes,
                      "bytes forwarded (cumulative)")
            reg.gauge(f"{prefix}.drops", lambda p=port: p.drops,
                      "frames tail-dropped at the full queue")
            reg.gauge(f"{prefix}.dropped_bytes", lambda p=port: p.dropped_bytes,
                      "bytes tail-dropped at the full queue")
            reg.gauge(f"{prefix}.backpressured", lambda p=port: p.backpressured,
                      "frames held at ingress because the queue was full")

    def observe_srq(self, label: str, pool) -> None:
        """Register one host's shared-receive-pool occupancy gauges."""
        reg = self.registry
        prefix = f"srq.{label}"
        reg.gauge(f"{prefix}.occupancy", lambda p=pool: p.occupancy,
                  "receive buffers currently posted in the shared pool")
        reg.gauge(f"{prefix}.free", lambda p=pool: p.free,
                  "unposted capacity of the shared pool")
        reg.gauge(f"{prefix}.min_free", lambda p=pool: p.min_free,
                  "low-water mark of posted buffers")
        reg.gauge(f"{prefix}.empty_hits", lambda p=pool: p.empty_hits,
                  "arrivals that found the pool empty (RNR)")
        reg.gauge(f"{prefix}.attached", lambda p=pool: p.attached,
                  "connections drawing from the pool")

    def observe_reliability(self, label: str, engine) -> None:
        """Register one device's RC reliability counters as pull gauges."""
        reg = self.registry
        stats = engine.stats
        prefix = f"{label}.rel"
        for field, help_text in (
            ("retransmits", "messages retransmitted"),
            ("timeouts", "retransmission timer expiries"),
            ("naks_sent", "sequence-gap NAKs sent"),
            ("naks_received", "sequence-gap NAKs received"),
            ("rnr_naks_sent", "RNR NAKs sent"),
            ("rnr_naks_received", "RNR NAKs received"),
            ("duplicates_dropped", "duplicate arrivals discarded"),
            ("gaps_detected", "out-of-order arrivals (responder)"),
            ("stale_acks_ignored", "stale cumulative ACK/NAKs ignored"),
            ("sacked_frames", "frames acknowledged via SACK bitmaps"),
            ("ooo_buffered", "out-of-order frames buffered (selective repeat)"),
            ("ooo_released", "buffered frames released in order"),
            ("corrupt_discarded", "corrupt frames discarded"),
            ("qp_fatal", "QPs moved to ERROR after retry exhaustion"),
            ("recoveries", "completed loss-recovery episodes"),
            ("recovery_ns_total", "total loss-recovery latency (ns)"),
            ("recovery_ns_max", "worst single loss-recovery latency (ns)"),
        ):
            reg.gauge(f"{prefix}.{field}",
                      lambda s=stats, f=field: getattr(s, f), help_text)

    def register_connection(self, conn) -> None:
        """Called by :class:`~repro.exs.connection.ExsConnection` at handshake."""
        self._conns.append(conn)
        self.conns_opened.inc()

    def _collect_connections(self) -> Dict[str, float]:
        """Per-connection sample-time metrics (connections appear mid-run)."""
        out: Dict[str, float] = {}
        for conn in self._conns:
            p = f"conn{conn.conn_id}.{conn.host.name}"
            tx, rx = conn.tx_stats, conn.rx_stats
            out[f"{p}.tx.direct_transfers"] = tx.direct_transfers
            out[f"{p}.tx.indirect_transfers"] = tx.indirect_transfers
            out[f"{p}.tx.direct_bytes"] = tx.direct_bytes
            out[f"{p}.tx.indirect_bytes"] = tx.indirect_bytes
            out[f"{p}.tx.mode_switches"] = tx.mode_switches
            out[f"{p}.tx.pending_sends"] = len(getattr(conn.tx, "pending", ()))
            out[f"{p}.rx.copies"] = rx.copies
            tx_algo = getattr(conn.tx, "algo", None)
            if tx_algo is not None:
                out[f"{p}.tx.ring_free"] = tx_algo.ring.free
            rx_algo = getattr(conn.rx, "algo", None)
            if rx_algo is not None and hasattr(rx_algo, "ring"):
                out[f"{p}.rx.ring_stored"] = rx_algo.ring.stored
            # eager/rendezvous transport: bounce-slot occupancy + handshakes
            free_slots = getattr(conn, "_free_slots", None)
            if free_slots is not None:
                out[f"{p}.rx.eager_slots_free"] = len(free_slots)
            staged = getattr(conn.rx, "staged", None)
            if staged is not None:
                out[f"{p}.rx.eager_staged"] = len(staged)
                out[f"{p}.rx.rts_remaining"] = conn.rx.rts_remaining
                out[f"{p}.tx.cts_grants_queued"] = len(conn.tx.grants)
            if conn.credits is not None:
                out[f"{p}.credits.available"] = conn.credits.available
            meter = getattr(conn, "copy_meter", None)
            if meter is not None:
                out[f"{p}.copy.payload_copies"] = meter.payload_copies
                out[f"{p}.copy.payload_bytes_copied"] = meter.payload_bytes_copied
                out[f"{p}.copy.views_forwarded"] = meter.views_forwarded
                out[f"{p}.copy.view_bytes_forwarded"] = meter.view_bytes_forwarded
                out[f"{p}.copy.pins_outstanding"] = meter.pins_outstanding
                out[f"{p}.copy.pin_violations"] = meter.pin_violations
        return out

    def _collect_kernel(self) -> Dict[str, float]:
        """Event-calendar kernel counters, from :meth:`Simulator.calendar_stats`.

        Pure reads — sampling never perturbs the calendar.  Non-numeric
        fields (``backend``) and absent ones (``next_time`` on an empty
        calendar) are skipped; two derived rates are added: mean events per
        same-instant batch and the timeout-freelist hit rate.
        """
        stats = self.sim.calendar_stats()
        out: Dict[str, float] = {}
        for key, value in stats.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[f"kernel.{key}"] = value
        # decoupled kernel: per-cell calendars surface their own horizon,
        # queue depth, grant window and cross-cell merge counters
        for cell, fields in (stats.get("cells") or {}).items():
            for key, value in fields.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    out[f"kernel.cell.{cell}.{key}"] = value
        batches = stats.get("batches", 0)
        if batches:
            out["kernel.events_per_batch"] = stats["batched_events"] / batches
        t_allocs = stats.get("timeout_allocs", 0)
        t_reuses = stats.get("timeout_reuses", 0)
        if t_allocs + t_reuses:
            out["kernel.timeout_freelist_hit_rate"] = t_reuses / (t_allocs + t_reuses)
        return out

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def finish(self, **meta) -> List[MessageSpan]:
        """Take a final sample, stitch spans, and fill stage histograms.

        Idempotent; extra keyword arguments are merged into :attr:`meta`.
        """
        self.meta.update(meta)
        if self._finished:
            return self.spans()
        self._finished = True
        self.sampler.finish()
        spans = self.spans()
        for stage in SPAN_STAGE_HISTOGRAMS:
            hist = self.registry.histogram(
                f"span.{stage}", f"per-message {stage} latency")
            for span in spans:
                v = getattr(span, stage)
                if v is not None and v >= 0:
                    hist.observe(v)
        return spans

    def spans(self) -> List[MessageSpan]:
        """Per-message spans stitched from the trace (cached)."""
        if self._spans is None:
            self._spans = build_spans(self.tracer.events)
        return self._spans

    def export(self, fh, **meta) -> int:
        """Write the whole session as JSONL; returns the record count."""
        from .export import write_jsonl

        self.finish(**meta)
        return write_jsonl(fh, self)
