"""Per-message span stitching on top of :class:`~repro.trace.ProtocolTracer`.

A *span* follows one ``exs_send()`` end to end::

    submit ──▶ first WWI post ──▶ transport ack ──▶ (ring copy) ──▶ deliver
       queue_ns        transport_ns                       delivery_ns

The tracer records flat events per endpoint; this module stitches them into
one :class:`MessageSpan` per message, with stage latencies, so a
fallback-to-indirect episode can be explained end to end ("message #12
waited 80 µs for an ADVERT, went indirect, and spent 40 µs in the copy
pump").

Stitching works on stream offsets, which both endpoints share by
construction (the sender's sequence numbers *are* the receiver's stream
positions):

* ``send`` events (one per ``exs_send``) are cumulative: message *i* covers
  ``[sum(nbytes_0..i-1), sum(nbytes_0..i))`` of the byte stream.
* ``direct``/``indirect`` transfer events carry their plan's ``seq``; a
  plan never crosses a message boundary, so each transfer maps to exactly
  one span.
* ``send_done`` (full RC acknowledgement) maps by ``send_id``.
* ``deliver`` events on the **peer** connection are cumulative in stream
  order (RC delivery is ordered), giving exact delivered ranges.
* ``copy`` events carry the receiver stream position of the copied range.

The peer connection for each direction comes from the ``conn_open`` event
each endpoint emits during the EXS handshake (which carries the peer's
connection id).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["MessageSpan", "build_spans"]


@dataclass
class MessageSpan:
    """One message's life, stitched across both endpoints."""

    conn: int
    host: str
    send_id: int
    nbytes: int
    #: stream range [seq_start, seq_end) this message occupies
    seq_start: int
    seq_end: int
    #: stage timestamps (ns, simulated); None until the stage is observed
    submit_ns: Optional[int] = None
    first_post_ns: Optional[int] = None
    acked_ns: Optional[int] = None
    delivered_ns: Optional[int] = None
    #: transfer mix
    direct_bytes: int = 0
    indirect_bytes: int = 0
    transfers: int = 0
    #: receive-side copy activity overlapping this message
    copies: int = 0
    copied_bytes: int = 0

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """``direct`` / ``indirect`` / ``mixed`` / ``none``."""
        if self.direct_bytes and self.indirect_bytes:
            return "mixed"
        if self.direct_bytes:
            return "direct"
        if self.indirect_bytes:
            return "indirect"
        return "none"

    @property
    def complete(self) -> bool:
        """Every stage observed: submitted, posted, acked, and delivered."""
        return (
            self.submit_ns is not None
            and self.first_post_ns is not None
            and self.acked_ns is not None
            and self.delivered_ns is not None
        )

    @property
    def queue_ns(self) -> Optional[int]:
        """Submit → first WWI post (waiting on ADVERT / ring space / credits)."""
        if self.submit_ns is None or self.first_post_ns is None:
            return None
        return self.first_post_ns - self.submit_ns

    @property
    def transport_ns(self) -> Optional[int]:
        """First WWI post → full RC acknowledgement."""
        if self.first_post_ns is None or self.acked_ns is None:
            return None
        return self.acked_ns - self.first_post_ns

    @property
    def delivery_ns(self) -> Optional[int]:
        """First WWI post → last user delivery at the receiver."""
        if self.first_post_ns is None or self.delivered_ns is None:
            return None
        return self.delivered_ns - self.first_post_ns

    @property
    def e2e_ns(self) -> Optional[int]:
        """Submit → last user delivery (the whole span)."""
        if self.submit_ns is None or self.delivered_ns is None:
            return None
        return self.delivered_ns - self.submit_ns

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "conn": self.conn,
            "host": self.host,
            "send_id": self.send_id,
            "nbytes": self.nbytes,
            "seq_start": self.seq_start,
            "seq_end": self.seq_end,
            "submit_ns": self.submit_ns,
            "first_post_ns": self.first_post_ns,
            "acked_ns": self.acked_ns,
            "delivered_ns": self.delivered_ns,
            "direct_bytes": self.direct_bytes,
            "indirect_bytes": self.indirect_bytes,
            "transfers": self.transfers,
            "copies": self.copies,
            "copied_bytes": self.copied_bytes,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MessageSpan":
        return cls(**{k: d.get(k) for k in (
            "conn", "host", "send_id", "nbytes", "seq_start", "seq_end",
            "submit_ns", "first_post_ns", "acked_ns", "delivered_ns",
            "direct_bytes", "indirect_bytes", "transfers", "copies",
            "copied_bytes",
        )})


# ---------------------------------------------------------------------------
# stitching
# ---------------------------------------------------------------------------
def build_spans(events: Iterable) -> List[MessageSpan]:
    """Stitch tracer events into one :class:`MessageSpan` per message.

    *events* is any iterable of :class:`~repro.trace.TraceEvent`-shaped
    records in time order (a live tracer's ``events`` list).  Connections
    without ``send`` events (e.g. SOCK_SEQPACKET, or the pure-receiver
    side) produce no spans.
    """
    events = list(events)
    # (conn, host) -> peer conn id, from the handshake's conn_open events
    peers: Dict[Tuple[int, str], int] = {}
    by_endpoint: Dict[Tuple[int, str], List] = {}
    for e in events:
        key = (e.conn, e.host)
        by_endpoint.setdefault(key, []).append(e)
        if e.kind == "conn_open":
            peers[key] = e.get("peer", 0)

    spans: List[MessageSpan] = []
    for (conn, host), local in by_endpoint.items():
        direction = _stitch_direction(conn, host, local, peers, by_endpoint)
        spans.extend(direction)
    spans.sort(key=lambda s: (s.host, s.conn, s.send_id))
    return spans


def _stitch_direction(
    conn: int,
    host: str,
    local: List,
    peers: Dict[Tuple[int, str], int],
    by_endpoint: Dict[Tuple[int, str], List],
) -> List[MessageSpan]:
    sends = [e for e in local if e.kind == "send"]
    if not sends:
        return []

    # 1. one span per send, stream ranges by cumulative submit order
    spans: List[MessageSpan] = []
    by_send_id: Dict[int, MessageSpan] = {}
    cum = 0
    for e in sends:
        nbytes = e.get("nbytes", 0)
        span = MessageSpan(
            conn=conn, host=host,
            send_id=e.get("send_id", len(spans) + 1),
            nbytes=nbytes, seq_start=cum, seq_end=cum + nbytes,
            submit_ns=e.time_ns,
        )
        cum += nbytes
        spans.append(span)
        by_send_id[span.send_id] = span
    starts = [s.seq_start for s in spans]

    def span_at(seq: int) -> Optional[MessageSpan]:
        i = bisect_right(starts, seq) - 1
        if 0 <= i < len(spans) and spans[i].seq_start <= seq < spans[i].seq_end:
            return spans[i]
        return None

    def spans_overlapping(seq: int, nbytes: int) -> List[MessageSpan]:
        if nbytes <= 0:
            return []
        i = max(0, bisect_right(starts, seq) - 1)
        out = []
        while i < len(spans) and spans[i].seq_start < seq + nbytes:
            if spans[i].seq_end > seq:
                out.append(spans[i])
            i += 1
        return out

    # 2. transfers and acks from the local (sender) endpoint.  The
    # eager/rendezvous transport's transfer kinds map onto the same copy
    # classes: a rendezvous WRITE places directly into user memory (one
    # copy) and an eager SEND stages through a bounce slot (two copies).
    for e in local:
        if e.kind in ("direct", "indirect", "eager", "rendezvous"):
            span = span_at(e.get("seq", -1))
            if span is None:
                continue
            if span.first_post_ns is None or e.time_ns < span.first_post_ns:
                span.first_post_ns = e.time_ns
            span.transfers += 1
            nbytes = e.get("nbytes", 0)
            if e.kind in ("direct", "rendezvous"):
                span.direct_bytes += nbytes
            else:
                span.indirect_bytes += nbytes
        elif e.kind == "send_done":
            span = by_send_id.get(e.get("send_id"))
            if span is not None:
                span.acked_ns = e.time_ns

    # 3. deliveries and copies from the peer endpoint (the receiver of
    #    this direction); peer events live on the other host
    peer_conn = peers.get((conn, host))
    remote: List = []
    if peer_conn:
        for (c, h), evs in by_endpoint.items():
            if c == peer_conn and h != host:
                remote = evs
                break
    delivered_cum = 0
    for e in remote:
        if e.kind == "deliver":
            nbytes = e.get("nbytes", 0)
            for span in spans_overlapping(delivered_cum, nbytes):
                if span.delivered_ns is None or e.time_ns > span.delivered_ns:
                    span.delivered_ns = e.time_ns
            delivered_cum += nbytes
        elif e.kind == "copy":
            seq = e.get("seq")
            nbytes = e.get("nbytes", 0)
            if seq is None:
                continue
            for span in spans_overlapping(seq, nbytes):
                span.copies += 1
                lo = max(seq, span.seq_start)
                hi = min(seq + nbytes, span.seq_end)
                span.copied_bytes += max(0, hi - lo)

    # Zero-byte messages (legal exs_send) deliver nothing; mark them
    # delivered at the ack so `complete` has a consistent meaning.
    for span in spans:
        if span.nbytes == 0:
            if span.first_post_ns is None:
                span.first_post_ns = span.submit_ns
            if span.delivered_ns is None:
                span.delivered_ns = span.acked_ns
    return spans
