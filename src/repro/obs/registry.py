"""Metrics registry: named counters, gauges, and log-bucketed histograms.

One registry per telemetry session unifies the instrumentation that used to
be scattered over :class:`~repro.core.stats.ProtocolStats`,
:class:`~repro.simnet.link.LinkStats`, and the per-host CPU busy-interval
lists.  Three metric kinds:

* :class:`Counter` — a monotonically increasing integer, incremented by the
  instrumented code (``counter.inc()`` is one attribute add).
* :class:`Gauge` — *pull*-style: wraps a zero-argument callable that reads
  the current value straight out of existing simulation state.  Registering
  a gauge adds **zero** cost to the hot path — the value is only computed
  when the :class:`~repro.obs.sampler.Sampler` (or an exporter) asks.
* :class:`Histogram` — power-of-two ("log2") bucketed distribution for
  latency-style values; observing costs one ``bit_length`` and one list
  index.

The disabled-path discipline matches the tracer's: components hold a
telemetry reference that is ``None`` by default and guard emission with a
single attribute check (see ``ExsConnection.trace``).  Collectors let the
sampler pick up metrics for objects created *after* attachment (EXS
connections appear mid-simulation): a collector is a callable returning a
``{name: value}`` mapping evaluated at snapshot time.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: enough log2 buckets for values up to 2**63 ns (~292 years)
_HIST_BUCKETS = 64


class Counter:
    """A named monotonically increasing value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A named value read on demand from a zero-argument callable."""

    __slots__ = ("name", "help", "fn")

    def __init__(self, name: str, fn: Callable[[], float], help: str = "") -> None:
        self.name = name
        self.help = help
        self.fn = fn

    def read(self) -> float:
        return self.fn()


class Histogram:
    """Log2-bucketed distribution of non-negative integer observations.

    Bucket ``i`` counts values whose upper bound is ``2**i - 1`` (i.e. all
    values with ``bit_length() == i``; bucket 0 holds exact zeros).  This
    gives latency histograms spanning nanoseconds to seconds in 64 slots
    with O(1) observation cost.
    """

    __slots__ = ("name", "help", "counts", "count", "sum")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.counts: List[int] = [0] * _HIST_BUCKETS
        self.count = 0
        self.sum = 0

    def observe(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name!r}: negative observation {value}")
        self.counts[value.bit_length()] += 1
        self.count += 1
        self.sum += value

    def nonzero_buckets(self) -> List[Tuple[int, int]]:
        """``(upper_bound, count)`` for every populated bucket, ascending."""
        return [
            ((1 << i) - 1, c) for i, c in enumerate(self.counts) if c
        ]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Upper bound of the bucket containing the *q*-quantile (0..1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return 0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if c and seen >= target:
                return (1 << i) - 1
        return (1 << (_HIST_BUCKETS - 1)) - 1  # pragma: no cover - defensive


class MetricsRegistry:
    """Name-keyed home for counters, gauges, histograms, and collectors."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Callable[[], Dict[str, float]]] = []

    # ------------------------------------------------------------------
    # registration (idempotent by name)
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_unique(name)
            c = self._counters[name] = Counter(name, help)
        return c

    def gauge(self, name: str, fn: Callable[[], float], help: str = "") -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_unique(name)
            g = self._gauges[name] = Gauge(name, fn, help)
        return g

    def histogram(self, name: str, help: str = "") -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_unique(name)
            h = self._histograms[name] = Histogram(name, help)
        return h

    def add_collector(self, fn: Callable[[], Dict[str, float]]) -> None:
        """Register a callable producing ``{name: value}`` at snapshot time."""
        self._collectors.append(fn)

    def _check_unique(self, name: str) -> None:
        if name in self._counters or name in self._gauges or name in self._histograms:
            raise ValueError(f"metric {name!r} already registered with a different kind")

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Current scalar value of every counter, gauge, and collector entry.

        Histograms are excluded (they are not scalars); exporters read them
        through :meth:`histograms`.
        """
        out: Dict[str, float] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.read()
        for fn in self._collectors:
            out.update(fn())
        return out

    def histograms(self) -> Iterable[Histogram]:
        return self._histograms.values()

    def get_histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
