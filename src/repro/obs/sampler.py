"""Simulator-clock-driven metric sampling into time series.

The :class:`Sampler` snapshots a :class:`~repro.obs.registry.MetricsRegistry`
every ``interval_ns`` of *simulated* time, producing one
:class:`TimeSeries` per metric — queue depths, ring occupancy, credits,
link bytes, CPU busy time, direct/indirect transfer counts — so that
"direct-ratio over time" plots exist where the paper's Table III only has
end-of-run totals.

Observation discipline (the determinism contract): a sampler tick only
*reads* simulation state.  It schedules its own calendar entries, which
consume sequence numbers, but the relative order of all other events is
preserved (ties are broken by a monotone per-simulator counter), it never
consumes randomness, and it never touches protocol state — so simulated
results are bit-identical with sampling on or off.  The regression test in
``tests/obs/test_determinism.py`` enforces this.

The tick reschedules itself only while the calendar holds other events;
when the simulation quiesces the sampler stops, so ``Simulator.run()`` with
no ``until`` still terminates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..simnet import Simulator
from .registry import MetricsRegistry

__all__ = ["Sampler", "TimeSeries"]


class TimeSeries:
    """One metric's sampled ``(time_ns, value)`` points, in time order."""

    __slots__ = ("name", "points")

    def __init__(self, name: str, points: Optional[List[Tuple[int, float]]] = None) -> None:
        self.name = name
        self.points: List[Tuple[int, float]] = points if points is not None else []

    def append(self, t_ns: int, value: float) -> None:
        self.points.append((t_ns, value))

    def times(self) -> List[int]:
        return [t for t, _v in self.points]

    def values(self) -> List[float]:
        return [v for _t, v in self.points]

    def last(self) -> Optional[float]:
        return self.points[-1][1] if self.points else None

    def deltas(self, allow_negative: bool = False) -> List[Tuple[int, float]]:
        """Per-interval increments of a cumulative series.

        Cumulative counters only move forward, so a negative increment
        means the underlying source reset (reconnect, gauge re-registered
        mid-run); by default those are clamped to 0 rather than poisoning
        rate plots with a huge negative spike.  Pass ``allow_negative=True``
        for genuinely signed series (e.g. queue-depth gauges).
        """
        out: List[Tuple[int, float]] = []
        prev = 0.0
        for t, v in self.points:
            d = v - prev
            if d < 0 and not allow_negative:
                d = 0.0
            out.append((t, d))
            prev = v
        return out

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TimeSeries {self.name!r} n={len(self.points)}>"


class Sampler:
    """Periodic registry snapshots on the simulated clock."""

    def __init__(
        self,
        sim: Simulator,
        registry: MetricsRegistry,
        *,
        interval_ns: int = 100_000,
        max_samples: int = 100_000,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError("sample interval must be positive")
        self.sim = sim
        self.registry = registry
        self.interval_ns = int(interval_ns)
        self.max_samples = int(max_samples)
        self.series: Dict[str, TimeSeries] = {}
        self.samples_taken = 0
        #: True once the cap stopped further sampling (reported, not silent)
        self.truncated = False
        self._started = False
        #: simulated time of the most recent sample (-1 before the first)
        self.last_sample_ns = -1

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first tick ``interval_ns`` from now (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.call_in(self.interval_ns, self._tick, None)

    def _tick(self, _arg) -> None:
        self.sample_now()
        if self.samples_taken >= self.max_samples:
            # Bounded memory on very long runs; the truncation is surfaced
            # in exports/reports rather than silently losing the tail.
            self.truncated = True
            return
        # Reschedule only while the simulation is still live: if the
        # calendar is empty nothing can ever run again, and a standing
        # tick would keep `run(until=None)` from terminating.
        if self.sim.peek() is not None:
            self.sim.call_in(self.interval_ns, self._tick, None)
        else:
            self._started = False

    def sample_now(self) -> None:
        """Record one snapshot at the current simulated time."""
        now = self.sim.now
        series = self.series
        for name, value in self.registry.snapshot().items():
            ts = series.get(name)
            if ts is None:
                ts = series[name] = TimeSeries(name)
            ts.append(now, value)
        self.samples_taken += 1
        self.last_sample_ns = now

    def finish(self) -> None:
        """Flush one final sample at end-of-run time.

        The tick stream stops at the last multiple of ``interval_ns`` before
        the run ends, silently dropping the tail interval; teardown
        (``Telemetry.finish`` / ``Testbed.run``) calls this so every series
        extends to the run's actual end.  No-op when a sample already
        exists at the current instant, so repeated teardowns don't add
        duplicate points.
        """
        if self.last_sample_ns != self.sim.now:
            self.sample_now()

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[TimeSeries]:
        return self.series.get(name)

    def names(self) -> List[str]:
        return sorted(self.series)
