"""Critical-path latency attribution over the captured causal DAG.

A captured run (:func:`repro.simnet.causality.enable_capture`) records one
:class:`~repro.simnet.causality.CausalNode` per calendar placement, with
parent links.  This module walks that DAG backwards from each message's
final ``deliver`` event to its originating ``exs_send`` and attributes the
end-to-end latency to named segments:

============================ ==============================================
``cpu``                      host CPU work (post/copy/turnaround timeouts)
``link_serialization``       time on the transmitter (bytes / bandwidth)
``propagation``              wire flight time (incl. in-order clamping)
``queueing``                 calendar residency not otherwise classified
``credit_wait``              queueing that overlaps a sender credit stall
``retransmit_backoff``       retransmission / RNR timer arming delays
============================ ==============================================

The accounting is exact by construction: a chain node scheduled during its
parent's dispatch has ``sched_ns == parent.fire_ns``, so the chain's
``[sched_ns, fire_ns]`` intervals tile the window from submit to delivery
with no gaps or overlaps — per-message segment sums equal the span's
``e2e_ns`` to the nanosecond (enforced by ``tests/obs/test_causal.py``).

The bridge from spans to DAG nodes is the ``cause`` field that
:meth:`repro.exs.connection.ExsConnection.trace` stamps on every protocol
event under capture: the id of the calendar entry executing when the event
was emitted.  For a ``deliver`` event that is the entry whose dispatch
performed the delivery, and its ``fire_ns`` *is* the span's
``delivered_ns``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .spans import MessageSpan, build_spans

__all__ = [
    "SEGMENTS",
    "MessagePath",
    "CriticalPathReport",
    "critical_paths",
    "flight_chain",
]

#: attribution segments, in report order
SEGMENTS = (
    "cpu",
    "link_serialization",
    "propagation",
    "queueing",
    "credit_wait",
    "retransmit_backoff",
)


@dataclass
class MessagePath:
    """One message's critical path, attributed to segments."""

    span: MessageSpan
    #: segment name -> total ns on this message's path
    segments: Dict[str, int] = field(default_factory=dict)
    #: (start_ns, end_ns, segment) pieces in time order (tile [submit, deliver])
    intervals: List[Tuple[int, int, str]] = field(default_factory=list)
    #: chain length in DAG nodes (0 = no cause recorded; fell back to queueing)
    depth: int = 0

    @property
    def total_ns(self) -> int:
        return sum(self.segments.values())

    @property
    def reconciled(self) -> bool:
        """Segment sums equal the span's end-to-end latency (≤1 ns slack)."""
        e2e = self.span.e2e_ns
        return e2e is not None and abs(self.total_ns - e2e) <= 1

    def to_dict(self) -> dict:
        return {
            "send_id": self.span.send_id,
            "conn": self.span.conn,
            "host": self.span.host,
            "nbytes": self.span.nbytes,
            "e2e_ns": self.span.e2e_ns,
            "depth": self.depth,
            "segments": dict(self.segments),
        }


@dataclass
class CriticalPathReport:
    """Per-run critical-path attribution across all complete spans."""

    paths: List[MessagePath] = field(default_factory=list)
    #: segment name -> ns summed over every attributed message
    totals: Dict[str, int] = field(default_factory=dict)
    #: spans that could not be attributed (no deliver cause recorded)
    unattributed: int = 0

    @property
    def total_ns(self) -> int:
        return sum(self.totals.values())

    def to_dict(self) -> dict:
        return {
            "totals": dict(self.totals),
            "messages": len(self.paths),
            "unattributed": self.unattributed,
            "paths": [p.to_dict() for p in self.paths],
        }

    def render(self) -> str:
        """Human-readable per-segment breakdown."""
        lines = [f"critical-path attribution ({len(self.paths)} messages)"]
        total = self.total_ns or 1
        for seg in SEGMENTS:
            ns = self.totals.get(seg, 0)
            if not ns and seg not in self.totals:
                continue
            bar = "#" * int(round(40 * ns / total))
            lines.append(f"  {seg:<20s} {ns / 1e3:>12.3f} us  {ns * 100 / total:5.1f}%  |{bar}")
        lines.append(f"  {'total':<20s} {self.total_ns / 1e3:>12.3f} us")
        if self.unattributed:
            lines.append(f"  ({self.unattributed} spans without a recorded deliver cause)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# span -> deliver-cause bridge
# ---------------------------------------------------------------------------
def _deliver_causes(events: List, spans: List[MessageSpan]) -> Dict[Tuple[int, str, int], int]:
    """Map each span to the causal node id of its *final* deliver event.

    Mirrors the cumulative-delivery walk in
    :func:`repro.obs.spans._stitch_direction`: deliveries on the peer
    endpoint are cumulative in stream order, and the last deliver event
    overlapping a span's byte range is the one whose time became the
    span's ``delivered_ns``.
    """
    peers: Dict[Tuple[int, str], int] = {}
    by_endpoint: Dict[Tuple[int, str], List] = {}
    for e in events:
        by_endpoint.setdefault((e.conn, e.host), []).append(e)
        if e.kind == "conn_open":
            peers[(e.conn, e.host)] = e.get("peer", 0)

    spans_by_dir: Dict[Tuple[int, str], List[MessageSpan]] = {}
    for s in spans:
        spans_by_dir.setdefault((s.conn, s.host), []).append(s)

    causes: Dict[Tuple[int, str, int], int] = {}
    for (conn, host), dir_spans in spans_by_dir.items():
        dir_spans = sorted(dir_spans, key=lambda s: s.seq_start)
        starts = [s.seq_start for s in dir_spans]
        peer_conn = peers.get((conn, host))
        remote: List = []
        if peer_conn:
            for (c, h), evs in by_endpoint.items():
                if c == peer_conn and h != host:
                    remote = evs
                    break
        delivered_cum = 0
        for e in remote:
            if e.kind != "deliver":
                continue
            nbytes = e.get("nbytes", 0)
            cause = e.get("cause", -1)
            if nbytes > 0:
                i = max(0, bisect_right(starts, delivered_cum) - 1)
                while i < len(dir_spans) and dir_spans[i].seq_start < delivered_cum + nbytes:
                    span = dir_spans[i]
                    if span.seq_end > delivered_cum:
                        # events arrive in time order: the last overlapping
                        # deliver wins, matching the delivered_ns stitching
                        causes[(span.conn, span.host, span.send_id)] = cause
                    i += 1
            delivered_cum += nbytes
    return causes


# ---------------------------------------------------------------------------
# chain walking and segment attribution
# ---------------------------------------------------------------------------
def _split_node(node, lo: int, hi: int) -> List[Tuple[int, int, str]]:
    """Attribute one chain node's clipped window ``[lo, hi]`` to segments.

    Annotated link/ack edges split into sub-segments from the transmit
    site's timing decomposition (see ``LinkDirection.transmit`` /
    ``_send_ack_message``); timer edges are backoff; plain timeouts are
    host CPU work; everything else is calendar queueing.
    """
    cat = node.category
    if cat in ("rto_timer", "rnr_timer"):
        return [(lo, hi, "retransmit_backoff")]
    if cat == "timeout":
        return [(lo, hi, "cpu")]
    meta = node.meta
    if cat == "link" and meta is not None:
        parts = (
            ("queueing", meta.get("queue_ns", 0)),
            ("link_serialization", meta.get("tx_ns", 0)),
            ("propagation", meta.get("prop_ns", 0)),
        )
    elif cat == "ack" and meta is not None:
        parts = (
            ("cpu", meta.get("turnaround_ns", 0)),
            ("propagation", meta.get("prop_ns", 0)),
        )
    else:
        return [(lo, hi, "queueing")]
    out: List[Tuple[int, int, str]] = []
    pos = node.sched_ns
    for seg, length in parts:
        s, e = pos, pos + length
        pos = e
        s2, e2 = max(s, lo), min(e, hi)
        if e2 > s2:
            out.append((s2, e2, seg))
    if pos < hi:  # pragma: no cover - defensive (decomposition should tile)
        out.append((max(pos, lo), hi, "queueing"))
    return out


def _relabel_credit(
    intervals: List[Tuple[int, int, str]],
    windows: List[Tuple[int, int]],
) -> List[Tuple[int, int, str]]:
    """Relabel queueing time overlapping a credit-stall window.

    Totals-preserving: pieces are split, never stretched, so per-message
    reconciliation with ``e2e_ns`` is unaffected.
    """
    if not windows:
        return intervals
    out: List[Tuple[int, int, str]] = []
    for s, e, seg in intervals:
        if seg != "queueing":
            out.append((s, e, seg))
            continue
        cur = s
        for ws, we in windows:
            if we <= cur:
                continue
            if ws >= e:
                break
            os_, oe = max(cur, ws), min(e, we)
            if oe > os_:
                if os_ > cur:
                    out.append((cur, os_, "queueing"))
                out.append((os_, oe, "credit_wait"))
                cur = oe
        if cur < e:
            out.append((cur, e, "queueing"))
    return out


def _attribute(recorder, cause_cid: int, submit_ns: int, delivered_ns: int,
               windows: List[Tuple[int, int]]) -> Tuple[List[Tuple[int, int, str]], int]:
    """Walk the parent chain from *cause_cid* back past *submit_ns* and
    attribute ``[submit_ns, delivered_ns]``; returns (intervals, depth)."""
    chain = []
    node = recorder.node(cause_cid)
    while node is not None:
        chain.append(node)
        if node.sched_ns <= submit_ns:
            break
        node = recorder.node(node.parent) if node.parent >= 0 else None
    if not chain:
        # no recorded cause (capture partial / ring evicted): whole window
        # is unclassified queueing so totals still reconcile
        return _relabel_credit([(submit_ns, delivered_ns, "queueing")], windows), 0
    chain.reverse()
    intervals: List[Tuple[int, int, str]] = []
    first = chain[0]
    if first.sched_ns > submit_ns:
        # the chain was truncated (evicted ancestor): charge the unknown
        # prefix to queueing rather than dropping it
        intervals.append((submit_ns, first.sched_ns, "queueing"))
    for node in chain:
        lo = max(node.sched_ns, submit_ns)
        hi = node.fire_ns
        if hi > lo:
            intervals.extend(_split_node(node, lo, hi))
    return _relabel_credit(intervals, windows), len(chain)


def critical_paths(
    recorder,
    events: Iterable,
    spans: Optional[List[MessageSpan]] = None,
) -> CriticalPathReport:
    """Attribute every complete span's end-to-end latency to segments.

    *recorder* is the run's :class:`~repro.simnet.causality.CausalRecorder`
    (full-capture mode — ``capacity=None`` — for exact chains; ring mode
    yields truncated chains whose unknown prefix degrades to queueing).
    *events* is the tracer's event list; *spans* may be passed if already
    stitched.
    """
    events = list(events)
    if spans is None:
        spans = build_spans(events)
    causes = _deliver_causes(events, spans)

    windows_by_conn: Dict[int, List[Tuple[int, int]]] = {}
    for conn, start, end in recorder.credit_windows:
        windows_by_conn.setdefault(conn, []).append((start, end))
    for ws in windows_by_conn.values():
        ws.sort()

    report = CriticalPathReport()
    for span in spans:
        if not span.complete or span.e2e_ns is None or span.nbytes == 0:
            continue
        cause = causes.get((span.conn, span.host, span.send_id), -1)
        if cause < 0:
            report.unattributed += 1
            continue
        windows = windows_by_conn.get(span.conn, [])
        intervals, depth = _attribute(
            recorder, cause, span.submit_ns, span.delivered_ns, windows)
        path = MessagePath(span=span, intervals=intervals, depth=depth)
        for s, e, seg in intervals:
            path.segments[seg] = path.segments.get(seg, 0) + (e - s)
        report.paths.append(path)
        for seg, ns in path.segments.items():
            report.totals[seg] = report.totals.get(seg, 0) + ns
    return report


# ---------------------------------------------------------------------------
# flight-recorder dump interpretation
# ---------------------------------------------------------------------------
def flight_chain(dump: dict) -> List[dict]:
    """Reconstruct the causal chain ending at a flight dump's failure node.

    Returns node dicts from the failure backwards through its parent links,
    as far as the bounded ring retained them — e.g. ``qp_error`` ←
    ``rto_timer`` ← previous ``rto_timer`` ← the original ``link`` edge.
    """
    events = dump.get("events", [])
    if not events:
        return []
    by_id = {n["id"]: n for n in events}
    chain = []
    node = events[-1]
    seen = set()
    while node is not None and node["id"] not in seen:
        seen.add(node["id"])
        chain.append(node)
        node = by_id.get(node.get("parent", -1))
    return chain
