"""Run-report rendering: the human end of the telemetry pipeline.

Turns a live :class:`~repro.obs.telemetry.Telemetry` session or a loaded
:class:`~repro.obs.export.RunArtifact` into a text or Markdown report:

* run header (scenario metadata, simulated duration, sample count)
* per-connection summary table (transfers, bytes, direct ratio, switches)
* **direct-ratio over time** — the per-window direct fraction as a strip
  chart, the view of the protocol's adaptivity that Table III's end-of-run
  totals cannot show
* span timeline (D/I strips, like ``repro.trace.render_timeline`` but
  reconstructable offline from spans)
* top-k slowest message spans with per-stage latencies
* per-stage latency histograms (log2 buckets)
"""

from __future__ import annotations

import re as _re
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.report import format_table
from .export import RunArtifact, _normalize
from .sampler import TimeSeries
from .spans import MessageSpan

__all__ = ["render_report"]

#: glyph ramp for 0.0..1.0 ratios (direct fraction per window)
_RAMP = " .:-=+*#@"


def _fmt_ns(ns: Optional[float]) -> str:
    if ns is None:
        return "-"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{int(ns)}ns"


def _fmt_bytes(n: float) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MiB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KiB"
    return f"{int(n)}B"


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _table(headers, rows, markdown: bool) -> str:
    return _md_table(headers, rows) if markdown else format_table(headers, rows)


# ---------------------------------------------------------------------------
# sections
# ---------------------------------------------------------------------------
_CONN_KEY = _re.compile(r"^(conn\d+)\.([^.]+)\.(.+)$")


def _conn_rows(snapshot: Dict[str, float]) -> List[Tuple[str, Dict[str, float]]]:
    """Group ``conn<N>.<host>.*`` snapshot keys per connection."""
    groups: Dict[str, Dict[str, float]] = {}
    for name, value in snapshot.items():
        m = _CONN_KEY.match(name)
        if m is None:
            continue
        prefix, host, metric = m.groups()
        groups.setdefault(f"{prefix}@{host}", {})[metric] = value
    return sorted(groups.items())


def _summary_section(art: RunArtifact, markdown: bool) -> List[str]:
    rows = []
    for label, m in _conn_rows(art.snapshot):
        direct = m.get("tx.direct_transfers", 0)
        indirect = m.get("tx.indirect_transfers", 0)
        total = direct + indirect
        rows.append([
            label,
            int(direct), int(indirect),
            _fmt_bytes(m.get("tx.direct_bytes", 0)),
            _fmt_bytes(m.get("tx.indirect_bytes", 0)),
            f"{direct / total:.3f}" if total else "-",
            int(m.get("tx.mode_switches", 0)),
            int(m.get("rx.copies", 0)),
        ])
    if not rows:
        return []
    table = _table(
        ["connection", "direct", "indirect", "direct_B", "indirect_B",
         "direct_ratio", "switches", "copies"],
        rows, markdown)
    return ["## Connection summary" if markdown else "connection summary:", table]


_PORT_KEY = _re.compile(r"^fabric\.port\.([^.]+)\.([^.]+)\.(.+)$")
_SRQ_KEY = _re.compile(r"^srq\.([^.]+)\.(.+)$")


def _fabric_section(art: RunArtifact, markdown: bool) -> List[str]:
    """Switch-port queue/drop table + SRQ pool table (multi-host runs)."""
    ports: Dict[Tuple[str, str], Dict[str, float]] = {}
    pools: Dict[str, Dict[str, float]] = {}
    for name, value in art.snapshot.items():
        m = _PORT_KEY.match(name)
        if m is not None:
            switch, port, metric = m.groups()
            ports.setdefault((switch, port), {})[metric] = value
            continue
        m = _SRQ_KEY.match(name)
        if m is not None:
            host, metric = m.groups()
            pools.setdefault(host, {})[metric] = value
    out: List[str] = []
    if ports:
        rows = []
        for (switch, port), m in sorted(ports.items()):
            rows.append([
                f"{switch}:{port}",
                _fmt_bytes(m.get("forwarded_bytes", 0)),
                _fmt_bytes(m.get("peak_queue_bytes", 0)),
                int(m.get("drops", 0)),
                _fmt_bytes(m.get("dropped_bytes", 0)),
                int(m.get("backpressured", 0)),
            ])
        out += ["## Switch ports" if markdown else "switch ports:",
                _table(["port", "forwarded", "peak_queue", "drops",
                        "dropped", "backpressured"], rows, markdown)]
    if pools:
        rows = []
        for host, m in sorted(pools.items()):
            rows.append([
                host,
                int(m.get("attached", 0)),
                int(m.get("occupancy", 0)),
                int(m.get("min_free", 0)),
                int(m.get("empty_hits", 0)),
            ])
        out += ["## SRQ pools" if markdown else "srq pools:",
                _table(["host", "conns", "posted", "min_posted", "empty_hits"],
                       rows, markdown)]
    return out


_CELL_KEY = _re.compile(r"^kernel\.cell\.([^.]+)\.(.+)$")


def _cells_section(art: RunArtifact, markdown: bool) -> List[str]:
    """Per-cell calendar table (decoupled-kernel runs only)."""
    cells: Dict[str, Dict[str, float]] = {}
    for name, value in art.snapshot.items():
        m = _CELL_KEY.match(name)
        if m is not None:
            cell, metric = m.groups()
            cells.setdefault(cell, {})[metric] = value
    if not cells:
        return []
    rows = []
    for cell, m in sorted(cells.items()):
        window = m.get("safe_window_ns", -1)
        rows.append([
            cell,
            _fmt_ns(m.get("horizon_ns", 0)),
            int(m.get("queued", 0)),
            int(m.get("instants", 0)),
            int(m.get("events", 0)),
            _fmt_ns(window) if window >= 0 else "unbounded",
            int(m.get("inbox_merges", 0)),
            _fmt_ns(m.get("lookahead_ns", 0)),
        ])
    return ["## Kernel cells" if markdown else "kernel cells:",
            _table(["cell", "horizon", "queued", "instants", "events",
                    "last_window", "inbox_merges", "lookahead"],
                   rows, markdown)]


def _ratio_strip(direct: TimeSeries, indirect: TimeSeries, width: int) -> str:
    """Per-window direct fraction rendered as a glyph strip."""
    dd = direct.deltas()
    di = dict(indirect.deltas())
    windows: List[Optional[float]] = []
    for t, d in dd:
        i = di.get(t, 0.0)
        total = d + i
        windows.append(d / total if total else None)
    if not windows:
        return ""
    # resample to at most `width` buckets
    out = []
    n = len(windows)
    buckets = min(width, n)
    for b in range(buckets):
        chunk = [w for w in windows[b * n // buckets:(b + 1) * n // buckets]
                 if w is not None]
        if not chunk:
            out.append("·")
        else:
            ratio = sum(chunk) / len(chunk)
            out.append(_RAMP[min(len(_RAMP) - 1, int(ratio * (len(_RAMP) - 1) + 0.5))])
    return "".join(out)


def _ratio_section(art: RunArtifact, width: int, markdown: bool) -> List[str]:
    lines: List[str] = []
    for name in sorted(art.series):
        if not name.endswith(".tx.direct_transfers"):
            continue
        base = name[: -len(".direct_transfers")]
        indirect = art.series.get(base + ".indirect_transfers")
        direct = art.series[name]
        if indirect is None:
            continue
        if (direct.last() or 0) + (indirect.last() or 0) == 0:
            continue
        label = base[: -len(".tx")]
        strip = _ratio_strip(direct, indirect, width)
        if strip.strip("·"):
            lines.append(f"  {label:<16s} |{strip}|")
    if not lines:
        return []
    header = ("## Direct-ratio over time" if markdown
              else "direct-ratio over time (per sample window; "
                   f"' '=all indirect, '@'=all direct, '·'=idle):")
    body = "\n".join(lines)
    if markdown:
        body = "```\n" + body + "\n```"
    return [header, body]


def _span_timeline(spans: List[MessageSpan], width: int, markdown: bool) -> List[str]:
    active = [s for s in spans if s.first_post_ns is not None]
    if not active:
        return []
    t0 = min(s.first_post_ns for s in active)
    t1 = max(s.delivered_ns or s.acked_ns or s.first_post_ns for s in active)
    span_ns = max(1, t1 - t0)
    by_dir: Dict[str, List[MessageSpan]] = {}
    for s in active:
        by_dir.setdefault(f"conn{s.conn}@{s.host}", []).append(s)
    lines = []
    for label, group in sorted(by_dir.items()):
        buckets: List[set] = [set() for _ in range(width)]
        for s in group:
            idx = min(width - 1, (s.first_post_ns - t0) * width // span_ns)
            if s.direct_bytes:
                buckets[idx].add("D")
            if s.indirect_bytes:
                buckets[idx].add("I")
        strip = "".join(
            "*" if len(b) == 2 else (b.pop() if b else ".") for b in buckets)
        lines.append(f"  {label:<16s} |{strip}|")
    header = ("## Span timeline" if markdown
              else f"span timeline ({span_ns / 1e6:.3f} ms, {width} buckets; "
                   "D=direct I=indirect *=mixed):")
    body = "\n".join(lines)
    if markdown:
        body = "```\n" + body + "\n```"
    return [header, body]


def _slowest_section(spans: List[MessageSpan], top_k: int, markdown: bool) -> List[str]:
    measured = [s for s in spans if s.e2e_ns is not None]
    measured.sort(key=lambda s: s.e2e_ns, reverse=True)
    rows = []
    for s in measured[:top_k]:
        rows.append([
            f"conn{s.conn}@{s.host}#{s.send_id}",
            _fmt_bytes(s.nbytes), s.kind,
            _fmt_ns(s.queue_ns), _fmt_ns(s.transport_ns),
            _fmt_ns(s.delivery_ns), _fmt_ns(s.e2e_ns),
            s.copies,
        ])
    if not rows:
        return []
    table = _table(
        ["span", "bytes", "kind", "queue", "transport", "delivery", "e2e", "copies"],
        rows, markdown)
    head = (f"## Top {len(rows)} slowest spans" if markdown
            else f"top {len(rows)} slowest spans (by submit-to-delivery):")
    return [head, table]


def _hist_section(art: RunArtifact, markdown: bool) -> List[str]:
    span_hists = [h for h in art.hists if h["name"].startswith("span.")]
    if not any(h["count"] for h in span_hists):
        return []
    lines: List[str] = []
    for h in sorted(span_hists, key=lambda h: h["name"]):
        if not h["count"]:
            continue
        mean = h["sum"] / h["count"]
        lines.append(f"  {h['name']} (n={h['count']}, mean={_fmt_ns(mean)}):")
        peak = max(c for _ub, c in h["buckets"])
        for ub, c in h["buckets"]:
            bar = "#" * max(1, round(24 * c / peak))
            lines.append(f"    <= {_fmt_ns(ub):>8s} {c:>6d} {bar}")
    header = ("## Per-stage latency histograms" if markdown
              else "per-stage latency histograms (log2 buckets):")
    body = "\n".join(lines)
    if markdown:
        body = "```\n" + body + "\n```"
    return [header, body]


# ---------------------------------------------------------------------------
def render_report(
    source,
    *,
    fmt: str = "text",
    width: int = 64,
    top_k: int = 5,
) -> str:
    """Render the run report for a Telemetry session or loaded artifact.

    ``fmt`` is ``"text"`` (terminal) or ``"markdown"``.
    """
    if fmt not in ("text", "markdown"):
        raise ValueError(f"unknown report format {fmt!r}")
    markdown = fmt == "markdown"
    art = _normalize(source)

    meta = ", ".join(f"{k}={v}" for k, v in sorted(art.meta.items()))
    n_samples = max((len(ts) for ts in art.series.values()), default=0)
    complete = sum(1 for s in art.spans if s.complete)
    header_bits = [
        f"simulated {art.end_ns / 1e6:.3f} ms",
        f"{n_samples} samples",
        f"{len(art.spans)} spans ({complete} complete)",
    ]
    if meta:
        header_bits.append(meta)
    if art.truncated:
        header_bits.append("SAMPLING TRUNCATED at cap")

    sections: List[List[str]] = []
    if markdown:
        sections.append(["# Telemetry run report", " · ".join(header_bits)])
    else:
        sections.append(["=== telemetry run report ===", "  " + " | ".join(header_bits)])
    sections.append(_summary_section(art, markdown))
    sections.append(_fabric_section(art, markdown))
    sections.append(_cells_section(art, markdown))
    sections.append(_ratio_section(art, width, markdown))
    sections.append(_span_timeline(art.spans, width, markdown))
    sections.append(_slowest_section(art.spans, top_k, markdown))
    sections.append(_hist_section(art, markdown))

    return "\n\n".join("\n".join(s) for s in sections if s)
