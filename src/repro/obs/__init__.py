"""repro.obs — unified telemetry: metrics, sampling, spans, exports, reports.

The observability layer every perf/robustness change measures itself
against (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.registry` — named counters / pull gauges / log2 histograms
* :mod:`repro.obs.sampler` — simulator-clock time-series sampling
* :mod:`repro.obs.spans` — per-message span stitching over the tracer
* :mod:`repro.obs.telemetry` — the session facade (``Telemetry.attach``)
* :mod:`repro.obs.export` — JSONL / CSV / Prometheus-text artifacts
* :mod:`repro.obs.report` — text/Markdown run reports
* ``python -m repro.obs`` — run a scenario (or load an artifact) and report

:class:`~repro.hosts.memory.CopyMeter` (re-exported here) is the payload
plane's copy accounting: per-connection counters for payload bytes copied,
views forwarded, and pins outstanding, sampled into the per-connection
``connN.<host>.copy.*`` metrics.
"""

from ..hosts.memory import CopyMeter
from .causal import CriticalPathReport, MessagePath, critical_paths, flight_chain
from .export import (
    SCHEMA_VERSION,
    RunArtifact,
    load_jsonl,
    validate_records,
    write_csv,
    write_jsonl,
    write_prometheus,
)
from .perfetto import build_chrome_trace, validate_chrome_trace, write_chrome_trace
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .report import render_report
from .sampler import Sampler, TimeSeries
from .spans import MessageSpan, build_spans
from .telemetry import Telemetry

__all__ = [
    "CopyMeter",
    "Counter",
    "CriticalPathReport",
    "Gauge",
    "Histogram",
    "MessagePath",
    "MessageSpan",
    "MetricsRegistry",
    "RunArtifact",
    "SCHEMA_VERSION",
    "Sampler",
    "Telemetry",
    "TimeSeries",
    "build_chrome_trace",
    "build_spans",
    "critical_paths",
    "flight_chain",
    "load_jsonl",
    "render_report",
    "validate_chrome_trace",
    "validate_records",
    "write_chrome_trace",
    "write_csv",
    "write_jsonl",
    "write_prometheus",
]
