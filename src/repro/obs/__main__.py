"""``python -m repro.obs`` — run an observed scenario, or report an artifact.

Subcommands::

    python -m repro.obs run [--scenario quickstart|blast|adaptive]
                            [--messages N] [--seed N] [--interval-us N]
                            [--out run.jsonl] [--csv run.csv] [--prom run.prom]
                            [--format text|markdown] [--top K] [--width W]
    python -m repro.obs report run.jsonl [--format ...] [--top K] [--width W]
    python -m repro.obs smoke [--out run.jsonl]
    python -m repro.obs trace [--messages N] [--seed N]
                              [--loss none|light|heavy] [--out trace.json]
                              [--smoke]

``run`` with no arguments executes the quickstart scenario and prints the
text run report.  ``smoke`` is the CI gate: it runs a small traced
scenario, round-trips the JSONL artifact, validates the export schema, and
fails if any sent message is missing a complete span.

``trace`` runs a blast with **causal capture** enabled, prints the
critical-path latency attribution (``repro.obs.causal``), and optionally
writes a Chrome trace-event JSON (``--out``) loadable in
https://ui.perfetto.dev.  ``--smoke`` turns it into the ``make
trace-smoke`` CI gate: the export must pass the strict validator, every
message path must reconcile with its span's ``e2e_ns``, and a lossy run
must attribute time to ``retransmit_backoff``.
"""

from __future__ import annotations

import argparse
import io
import sys
from typing import List, Optional

from .export import load_jsonl, write_csv, write_jsonl, write_prometheus
from .report import render_report
from .telemetry import Telemetry

SCENARIOS = ("quickstart", "blast", "adaptive")


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------
def _run_quickstart(messages: int, seed: int, interval_us: int) -> Telemetry:
    """The quickstart byte stream (real data), with telemetry attached."""
    from ..config import ScenarioConfig
    from ..exs import BlockingSocket
    from ..testbed import Testbed

    port = 4000
    cycle = [64, 1_000, 64_000, 1_000_000, 250_000, 8]
    sizes = [cycle[i % len(cycle)] for i in range(messages)]
    total = sum(sizes)

    tb = Testbed.from_scenario(ScenarioConfig(seed=seed))
    tel = Telemetry.attach(tb, sample_interval_ns=interval_us * 1000)

    def server():
        conn = yield from BlockingSocket.accept_one(tb.server, port)
        got = 0
        while got < total:
            data = yield from conn.recv_bytes(1 << 20)
            got += len(data)

    def client():
        conn = yield from BlockingSocket.connect(tb.client, port)
        for i, size in enumerate(sizes):
            yield from conn.send_bytes(bytes([i % 251]) * size)
        yield from conn.close()

    tb.sim.process(server(), name="server")
    tb.sim.process(client(), name="client")
    tb.run(max_events=200_000_000)
    tel.finish(scenario="quickstart", messages=messages, seed=seed)
    return tel


def _run_blast(messages: int, seed: int, interval_us: int,
               adaptive: bool = False) -> Telemetry:
    """A blast run (synthetic data); ``adaptive`` uses a phased workload
    that forces direct<->indirect mode switches."""
    from ..apps.blast import BlastConfig, run_blast
    from ..apps.workloads import ExponentialSizes, FixedSizes, PhasedSizes
    from ..config import ScenarioConfig
    from ..testbed import Testbed

    if adaptive:
        third = max(1, messages // 3)
        sizes = PhasedSizes([
            (FixedSizes(1 << 20), third),
            (FixedSizes(32 << 10), messages - 2 * third),
            (FixedSizes(1 << 20), third),
        ])
        cfg = BlastConfig(total_messages=messages, sizes=sizes,
                          outstanding_sends=4, outstanding_recvs=4,
                          recv_buffer_bytes=1 << 20)
    else:
        cfg = BlastConfig(total_messages=messages,
                          sizes=ExponentialSizes(seed=seed))
    scenario = ScenarioConfig(seed=seed, max_events=400_000_000)
    tb = Testbed.from_scenario(scenario)
    tel = Telemetry.attach(tb, sample_interval_ns=interval_us * 1000)
    run_blast(cfg, testbed=tb, scenario=scenario)
    tel.finish(scenario="adaptive" if adaptive else "blast",
               messages=messages, seed=seed)
    return tel


def run_scenario(scenario: str, messages: int, seed: int, interval_us: int) -> Telemetry:
    if scenario == "quickstart":
        return _run_quickstart(messages, seed, interval_us)
    if scenario == "blast":
        return _run_blast(messages, seed, interval_us)
    if scenario == "adaptive":
        return _run_blast(messages, seed, interval_us, adaptive=True)
    raise ValueError(f"unknown scenario {scenario!r}")


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------
def _cmd_run(args) -> int:
    tel = run_scenario(args.scenario, args.messages, args.seed, args.interval_us)
    if args.out:
        with open(args.out, "w") as fh:
            n = write_jsonl(fh, tel)
        print(f"[wrote {n} records to {args.out}]", file=sys.stderr)
    if args.csv:
        with open(args.csv, "w") as fh:
            write_csv(fh, tel)
        print(f"[wrote series CSV to {args.csv}]", file=sys.stderr)
    if args.prom:
        with open(args.prom, "w") as fh:
            write_prometheus(fh, tel)
        print(f"[wrote Prometheus text to {args.prom}]", file=sys.stderr)
    print(render_report(tel, fmt=args.format, width=args.width, top_k=args.top))
    return 0


def _cmd_report(args) -> int:
    with open(args.artifact) as fh:
        art = load_jsonl(fh)
    print(render_report(art, fmt=args.format, width=args.width, top_k=args.top))
    return 0


def _cmd_smoke(args) -> int:
    """CI gate: run, export, re-load (schema check), verify span coverage."""
    messages = 24
    tel = run_scenario("quickstart", messages=messages, seed=7, interval_us=50)

    buf = io.StringIO()
    write_jsonl(buf, tel)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(buf.getvalue())
    buf.seek(0)
    try:
        art = load_jsonl(buf)  # raises on schema drift
    except ValueError as exc:
        print(f"obs smoke FAILED: {exc}", file=sys.stderr)
        return 1

    failures: List[str] = []
    if len(art.spans) != messages:
        failures.append(f"expected {messages} spans, got {len(art.spans)}")
    incomplete = [s for s in art.spans if not s.complete]
    if incomplete:
        failures.append(
            f"{len(incomplete)} incomplete spans "
            f"(e.g. send_id={incomplete[0].send_id} {incomplete[0].to_dict()})")
    if not any(n.endswith(".tx.direct_transfers") for n in art.series):
        failures.append("no per-connection transfer series sampled")
    if not any(h["count"] for h in art.hists if h["name"] == "span.e2e_ns"):
        failures.append("span.e2e_ns histogram is empty")
    report = render_report(art)
    for needle in ("telemetry run report", "connection summary",
                   "slowest spans", "latency histograms"):
        if needle not in report:
            failures.append(f"report section missing: {needle!r}")

    if failures:
        print("obs smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"obs smoke ok: {len(art.spans)} complete spans, "
          f"{len(art.series)} series, schema v1 round-trip clean")
    return 0


def _cmd_trace(args) -> int:
    """Causally-captured lossy blast → critical paths + Perfetto export."""
    from ..apps.blast import BlastConfig, run_blast
    from ..apps.workloads import ExponentialSizes
    from ..config import ScenarioConfig
    from ..simnet.faults import HEAVY_LOSS, LIGHT_LOSS
    from ..testbed import Testbed
    from .causal import critical_paths
    from .perfetto import build_chrome_trace, validate_chrome_trace, write_chrome_trace

    faults = {"none": None, "light": LIGHT_LOSS, "heavy": HEAVY_LOSS}[args.loss]
    scenario = ScenarioConfig(
        seed=args.seed, faults=faults, causal_capture=True,
        max_events=400_000_000,
    )
    tb = Testbed.from_scenario(scenario)
    tel = tb.attach_telemetry(sample_interval_ns=args.interval_us * 1000)
    run_blast(
        BlastConfig(total_messages=args.messages,
                    sizes=ExponentialSizes(seed=args.seed)),
        testbed=tb, scenario=scenario,
    )
    tel.finish(scenario="trace", messages=args.messages, seed=args.seed,
               loss=args.loss)

    doc = build_chrome_trace(tel.tracer.events, tel.spans())
    errors = validate_chrome_trace(doc)
    if errors:
        print("trace export INVALID:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as fh:
            n = write_chrome_trace(fh, doc)
        print(f"[wrote {n} trace events to {args.out}; "
              "open in https://ui.perfetto.dev]", file=sys.stderr)

    report = critical_paths(tb.causal, tel.tracer.events, tel.spans())
    print(report.render())
    if tb.causal is not None and tb.causal.dumps:
        print(f"[{len(tb.causal.dumps)} flight-recorder dump(s) captured]",
              file=sys.stderr)

    if args.smoke:
        failures: List[str] = []
        if not report.paths:
            failures.append("no attributed message paths")
        bad = [p for p in report.paths if not p.reconciled]
        if bad:
            p = bad[0]
            failures.append(
                f"{len(bad)} paths fail e2e reconciliation "
                f"(e.g. send_id={p.span.send_id}: segments={p.total_ns} "
                f"e2e={p.span.e2e_ns})")
        if report.unattributed:
            failures.append(f"{report.unattributed} spans unattributed")
        if args.loss != "none" and not report.totals.get("retransmit_backoff"):
            failures.append("lossy run attributed no retransmit_backoff time")
        if failures:
            print("trace smoke FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(f"trace smoke ok: {len(report.paths)} paths reconciled, "
              f"{len(doc['traceEvents'])} trace events valid")
    return 0


# ---------------------------------------------------------------------------
def _add_report_opts(p: argparse.ArgumentParser) -> None:
    p.add_argument("--format", choices=("text", "markdown"), default="text",
                   help="report flavour (default: text)")
    p.add_argument("--top", type=int, default=5, help="slowest spans to show")
    p.add_argument("--width", type=int, default=64, help="strip-chart width")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run an observed scenario or render a telemetry artifact.",
    )
    sub = parser.add_subparsers(dest="command")

    p_run = sub.add_parser("run", help="run a scenario with telemetry and report")
    p_run.add_argument("--scenario", choices=SCENARIOS, default="quickstart")
    p_run.add_argument("--messages", type=int, default=24)
    p_run.add_argument("--seed", type=int, default=7)
    p_run.add_argument("--interval-us", type=int, default=100,
                       help="sample interval in simulated microseconds")
    p_run.add_argument("--out", help="write the JSONL telemetry artifact here")
    p_run.add_argument("--csv", help="write the time-series CSV here")
    p_run.add_argument("--prom", help="write the Prometheus text snapshot here")
    _add_report_opts(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_rep = sub.add_parser("report", help="render a report from a JSONL artifact")
    p_rep.add_argument("artifact", help="path to a repro.obs JSONL export")
    _add_report_opts(p_rep)
    p_rep.set_defaults(fn=_cmd_report)

    p_smoke = sub.add_parser("smoke", help="CI schema/coverage gate")
    p_smoke.add_argument("--out", help="also write the artifact here (CI upload)")
    p_smoke.set_defaults(fn=_cmd_smoke)

    p_tr = sub.add_parser(
        "trace", help="causally-captured run: critical paths + Perfetto export")
    # defaults chosen so the heavy-loss run exercises an RTO on at least
    # one message's critical path (the --smoke gate asserts it)
    p_tr.add_argument("--messages", type=int, default=40)
    p_tr.add_argument("--seed", type=int, default=1)
    p_tr.add_argument("--loss", choices=("none", "light", "heavy"),
                      default="heavy", help="fault profile (default: heavy)")
    p_tr.add_argument("--interval-us", type=int, default=100)
    p_tr.add_argument("--out", help="write Chrome trace-event JSON here")
    p_tr.add_argument("--smoke", action="store_true",
                      help="CI gate: fail on validator/reconciliation errors")
    p_tr.set_defaults(fn=_cmd_trace)

    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    if args.command is None:
        args = parser.parse_args(["run"])
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
