"""Chrome trace-event (Perfetto) export of a traced run.

Converts a :class:`~repro.trace.ProtocolTracer` event stream plus stitched
:class:`~repro.obs.spans.MessageSpan` records into the Chrome trace-event
JSON format that https://ui.perfetto.dev and ``chrome://tracing`` load
directly:

* one *process* track per host (``client`` / ``server`` / ``link``),
  one *thread* track per connection (``ph:"M"`` metadata events);
* one complete event (``ph:"X"``) per message span on the sender's track,
  from submit to final delivery;
* one flow arrow (``ph:"s"`` → ``ph:"f"``) per message, keyed by
  ``conn:send_id``, from the sender's first WWI post to the receiver's
  final delivery — the cross-track "message travels the wire" arrows;
* instant events (``ph:"i"``) for protocol phase changes and every
  reliability/fault event (retransmits, NAKs, RNR, drops, outages, QP and
  connection errors).

Timestamps are microseconds (the format's unit) with nanosecond fractions
preserved.  :func:`validate_chrome_trace` is the strict checker the CI
``trace-smoke`` gate and the test-suite validator run — required fields per
phase type, per-track timestamp monotonicity, and matched flow begin/end
pairs.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Optional, Tuple

from ..trace import RELIABILITY_KINDS
from .spans import MessageSpan, build_spans

__all__ = ["build_chrome_trace", "validate_chrome_trace", "write_chrome_trace"]

#: tracer kinds rendered as instant events, beyond the reliability set
_INSTANT_KINDS = RELIABILITY_KINDS + ("phase", "advert_drop")


def _us(t_ns: int) -> float:
    return t_ns / 1000.0


def build_chrome_trace(
    events: Iterable,
    spans: Optional[List[MessageSpan]] = None,
) -> dict:
    """Build a Chrome trace-event document from tracer *events*.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}``; feed it to
    :func:`write_chrome_trace` or ``json.dump`` and open in Perfetto.
    """
    events = list(events)
    if spans is None:
        spans = build_spans(events)

    # (conn, host) -> peer conn id, for flow-arrow endpoints
    peers: Dict[Tuple[int, str], int] = {}
    hosts: List[str] = []
    tracks: Dict[Tuple[str, int], None] = {}
    for e in events:
        if e.host not in hosts:
            hosts.append(e.host)
        tracks.setdefault((e.host, e.conn), None)
        if e.kind == "conn_open":
            peers[(e.conn, e.host)] = e.get("peer", 0)
    pid_of = {host: i + 1 for i, host in enumerate(sorted(hosts))}

    def conn_host(conn: int, not_host: str) -> Optional[str]:
        """The host owning connection *conn* other than *not_host*."""
        for (h, c) in tracks:
            if c == conn and h != not_host:
                return h
        return None

    out: List[dict] = []
    # ---- metadata: process per host, thread per connection ----------------
    for host, pid in sorted(pid_of.items(), key=lambda kv: kv[1]):
        out.append({"name": "process_name", "ph": "M", "pid": pid,
                    "args": {"name": host}})
    for host, conn in sorted(tracks):
        out.append({"name": "thread_name", "ph": "M", "pid": pid_of[host],
                    "tid": max(conn, 0),
                    "args": {"name": f"conn {conn}" if conn >= 0 else "events"}})

    body: List[dict] = []
    # ---- message spans as complete events on the sender's track -----------
    for span in spans:
        if not span.complete or span.e2e_ns is None:
            continue
        body.append({
            "name": f"msg {span.send_id} ({span.kind})",
            "cat": "message",
            "ph": "X",
            "ts": _us(span.submit_ns),
            "dur": _us(span.e2e_ns),
            "pid": pid_of[span.host],
            "tid": max(span.conn, 0),
            "args": {
                "nbytes": span.nbytes,
                "direct_bytes": span.direct_bytes,
                "indirect_bytes": span.indirect_bytes,
                "copies": span.copies,
                "queue_ns": span.queue_ns,
                "e2e_ns": span.e2e_ns,
            },
        })
        # flow arrow: first post at the sender -> final delivery at the peer
        peer_conn = peers.get((span.conn, span.host))
        rx_host = conn_host(peer_conn, span.host) if peer_conn else None
        if rx_host is None or span.first_post_ns is None:
            continue
        flow_id = f"{span.conn}:{span.send_id}"
        body.append({
            "name": "msg", "cat": "flow", "ph": "s", "id": flow_id,
            "ts": _us(span.first_post_ns),
            "pid": pid_of[span.host], "tid": max(span.conn, 0),
        })
        body.append({
            "name": "msg", "cat": "flow", "ph": "f", "bp": "e", "id": flow_id,
            "ts": _us(span.delivered_ns),
            "pid": pid_of[rx_host], "tid": max(peer_conn, 0),
        })

    # ---- instants: phase changes, faults, reliability events --------------
    for e in events:
        if e.kind not in _INSTANT_KINDS:
            continue
        body.append({
            "name": e.kind,
            "cat": "fault" if e.kind in RELIABILITY_KINDS else "protocol",
            "ph": "i",
            "s": "t",
            "ts": _us(e.time_ns),
            "pid": pid_of[e.host],
            "tid": max(e.conn, 0),
            "args": dict(e.fields),
        })

    # The format requires non-decreasing timestamps per track; a global
    # stable sort by ts satisfies that and keeps same-instant order.
    body.sort(key=lambda ev: ev["ts"])
    out.extend(body)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# validation (the trace-smoke gate)
# ---------------------------------------------------------------------------
_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "M": ("name", "pid", "args"),
    "X": ("name", "cat", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid", "s"),
    "s": ("name", "cat", "id", "ts", "pid", "tid"),
    "f": ("name", "cat", "id", "ts", "pid", "tid"),
}


def validate_chrome_trace(trace) -> List[str]:
    """Strictly check a Chrome trace-event document.

    Returns a list of human-readable violations (empty = valid):
    required fields per phase type, numeric non-negative ``ts``/``dur``,
    non-decreasing ``ts`` per ``(pid, tid)`` track, and exactly one
    matched ``s``/``f`` pair per flow id with ``s.ts <= f.ts``.
    """
    errors: List[str] = []
    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        return ["not a trace document: expected {'traceEvents': [...]}"]
    last_ts: Dict[Tuple, float] = {}
    flows: Dict[str, Dict[str, dict]] = {}
    for i, ev in enumerate(trace["traceEvents"]):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        req = _REQUIRED.get(ph)
        if req is None:
            errors.append(f"event {i}: unknown/missing ph {ph!r}")
            continue
        missing = [k for k in req if k not in ev]
        if missing:
            errors.append(f"event {i} (ph={ph}): missing fields {missing}")
            continue
        if ph == "M":
            if ev["name"] not in ("process_name", "thread_name"):
                errors.append(f"event {i}: unknown metadata {ev['name']!r}")
            elif "name" not in ev.get("args", {}):
                errors.append(f"event {i}: metadata args lack 'name'")
            continue
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"event {i} (ph={ph}): bad ts {ts!r}")
            continue
        if ph == "X":
            dur = ev["dur"]
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {i}: bad dur {dur!r}")
        if ph == "i" and ev["s"] not in ("t", "p", "g"):
            errors.append(f"event {i}: bad instant scope {ev['s']!r}")
        if ph == "f" and ev.get("bp") != "e":
            errors.append(f"event {i}: flow end without bp='e'")
        track = (ev["pid"], ev["tid"])
        prev = last_ts.get(track)
        if prev is not None and ts < prev:
            errors.append(
                f"event {i} (ph={ph}): ts {ts} < {prev} on track pid={track[0]} tid={track[1]}")
        last_ts[track] = ts
        if ph in ("s", "f"):
            slot = flows.setdefault(str(ev["id"]), {})
            if ph in slot:
                errors.append(f"event {i}: duplicate flow {ph!r} for id {ev['id']!r}")
            slot[ph] = ev
    for fid, slot in sorted(flows.items()):
        if "s" not in slot or "f" not in slot:
            errors.append(f"flow {fid!r}: unmatched (have {sorted(slot)})")
        elif slot["s"]["ts"] > slot["f"]["ts"]:
            errors.append(f"flow {fid!r}: start ts after finish ts")
    return errors


def write_chrome_trace(fh: IO[str], trace: dict) -> int:
    """Serialize a trace document; returns the event count."""
    json.dump(trace, fh, separators=(",", ":"), sort_keys=True)
    fh.write("\n")
    return len(trace.get("traceEvents", ()))
