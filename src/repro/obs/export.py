"""Telemetry exporters: JSONL (lossless), CSV (series), Prometheus text.

The JSONL artifact is the canonical per-run format — one self-describing
JSON record per line, ``schema`` versioned so the ``make obs-smoke`` CI
gate can fail on drift:

========== ==============================================================
``meta``   ``{"type":"meta","schema":1,"end_ns":...,"run":{...}}``
``series`` ``{"type":"series","name":...,"points":[[t_ns,value],...]}``
``hist``   ``{"type":"hist","name":...,"count":...,"sum":...,
           "buckets":[[upper_bound,count],...]}``
``snapshot`` ``{"type":"snapshot","values":{name: value}}``
``span``   ``{"type":"span", ...MessageSpan fields...}``
========== ==============================================================

:func:`load_jsonl` reads an artifact back into a :class:`RunArtifact`, the
same shape the report renderer consumes, so
``python -m repro.obs report run.jsonl`` reproduces the live report
offline.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field as dc_field
from typing import IO, Any, Dict, Iterable, List, Optional, Tuple

from .sampler import TimeSeries
from .spans import MessageSpan

__all__ = [
    "SCHEMA_VERSION",
    "RunArtifact",
    "write_jsonl",
    "load_jsonl",
    "write_csv",
    "write_prometheus",
    "validate_records",
]

SCHEMA_VERSION = 1

#: required keys per record type (the schema the smoke gate enforces)
_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "meta": ("schema", "end_ns", "run"),
    "series": ("name", "points"),
    "hist": ("name", "count", "sum", "buckets"),
    "snapshot": ("values",),
    "span": ("conn", "host", "send_id", "nbytes", "seq_start", "seq_end"),
}


@dataclass
class RunArtifact:
    """An exported telemetry run, loaded back into memory."""

    meta: Dict[str, Any] = dc_field(default_factory=dict)
    end_ns: int = 0
    truncated: bool = False
    series: Dict[str, TimeSeries] = dc_field(default_factory=dict)
    hists: List[dict] = dc_field(default_factory=list)
    snapshot: Dict[str, float] = dc_field(default_factory=dict)
    spans: List[MessageSpan] = dc_field(default_factory=list)


def _normalize(source) -> RunArtifact:
    """Accept either a live Telemetry session or a loaded RunArtifact."""
    if isinstance(source, RunArtifact):
        return source
    # live session (duck-typed to avoid a circular import)
    hists = [
        {
            "name": h.name,
            "count": h.count,
            "sum": h.sum,
            "buckets": [[ub, c] for ub, c in h.nonzero_buckets()],
        }
        for h in source.registry.histograms()
    ]
    return RunArtifact(
        meta=dict(source.meta),
        end_ns=source.sim.now,
        truncated=source.sampler.truncated,
        series=dict(source.sampler.series),
        hists=hists,
        snapshot=source.registry.snapshot(),
        spans=source.spans(),
    )


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------
def write_jsonl(fh: IO[str], source) -> int:
    """Write the full session/artifact as JSONL; returns the record count."""
    art = _normalize(source)
    n = 0

    def emit(record: dict) -> None:
        nonlocal n
        fh.write(json.dumps(record, separators=(",", ":"), sort_keys=True, default=str))
        fh.write("\n")
        n += 1

    emit({
        "type": "meta",
        "schema": SCHEMA_VERSION,
        "end_ns": art.end_ns,
        "truncated": art.truncated,
        "run": art.meta,
    })
    for name in sorted(art.series):
        ts = art.series[name]
        emit({"type": "series", "name": name,
              "points": [[t, v] for t, v in ts.points]})
    for h in art.hists:
        emit({"type": "hist", **h})
    emit({"type": "snapshot", "values": art.snapshot})
    for span in art.spans:
        emit({"type": "span", **span.to_dict()})
    return n


def load_jsonl(fh: IO[str]) -> RunArtifact:
    """Parse a JSONL artifact back into a :class:`RunArtifact`.

    Raises ``ValueError`` on malformed lines or schema violations, so
    loading doubles as validation.
    """
    records = []
    for lineno, line in enumerate(fh, 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON ({exc})") from exc
    errors = validate_records(records)
    if errors:
        raise ValueError("telemetry schema violations:\n  " + "\n  ".join(errors))

    art = RunArtifact()
    for rec in records:
        kind = rec["type"]
        if kind == "meta":
            art.meta = rec["run"]
            art.end_ns = rec["end_ns"]
            art.truncated = bool(rec.get("truncated", False))
        elif kind == "series":
            art.series[rec["name"]] = TimeSeries(
                rec["name"], [(int(t), v) for t, v in rec["points"]])
        elif kind == "hist":
            art.hists.append({k: rec[k] for k in ("name", "count", "sum", "buckets")})
        elif kind == "snapshot":
            art.snapshot = rec["values"]
        elif kind == "span":
            art.spans.append(MessageSpan.from_dict(rec))
    return art


def validate_records(records: Iterable[dict]) -> List[str]:
    """Schema check; returns a list of human-readable violations (empty = ok)."""
    errors: List[str] = []
    saw_meta = False
    for i, rec in enumerate(records):
        kind = rec.get("type")
        if kind not in _REQUIRED:
            errors.append(f"record {i}: unknown type {kind!r}")
            continue
        missing = [k for k in _REQUIRED[kind] if k not in rec]
        if missing:
            errors.append(f"record {i} ({kind}): missing keys {missing}")
        if kind == "meta":
            saw_meta = True
            if rec.get("schema") != SCHEMA_VERSION:
                errors.append(
                    f"record {i}: schema {rec.get('schema')!r} != {SCHEMA_VERSION}")
    if not saw_meta:
        errors.append("no meta record")
    return errors


# ---------------------------------------------------------------------------
# CSV
# ---------------------------------------------------------------------------
def write_csv(fh: IO[str], source) -> int:
    """Long-form time-series CSV (``name,t_ns,value``); returns row count."""
    import csv as _csv

    art = _normalize(source)
    writer = _csv.writer(fh)
    writer.writerow(["name", "t_ns", "value"])
    rows = 0
    for name in sorted(art.series):
        for t, v in art.series[name].points:
            writer.writerow([name, t, v])
            rows += 1
    return rows


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into exposition-grammar form.

    Metric names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``; the ``repro_``
    prefix guarantees a valid first character even for names starting
    with a digit.
    """
    return "repro_" + _PROM_BAD.sub("_", name)


def _prom_escape(value: str) -> str:
    """Escape a label value per the text exposition format (backslash,
    double quote, newline)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(name: str, pname: str, extra: str = "") -> str:
    """Label block carrying the original dotted name when sanitization
    changed it (``conn1.client.tx.ring_free`` → label), so distinct dotted
    names stay distinguishable after the lossy ``_`` mapping."""
    labels = []
    if pname != "repro_" + name:
        labels.append(f'name="{_prom_escape(name)}"')
    if extra:
        labels.append(extra)
    return "{" + ",".join(labels) + "}" if labels else ""


def write_prometheus(fh: IO[str], source) -> int:
    """Final-state snapshot in Prometheus text exposition format.

    Scalars become gauges; histograms become the conventional
    ``_bucket``/``_sum``/``_count`` triplet with cumulative ``le`` labels.
    Names are sanitized to the exposition grammar and label values are
    escaped, with the original dotted name preserved as a ``name`` label.
    Returns the number of samples written.
    """
    art = _normalize(source)
    n = 0
    for name in sorted(art.snapshot):
        pname = _prom_name(name)
        labels = _prom_labels(name, pname)
        fh.write(f"# TYPE {pname} gauge\n{pname}{labels} {art.snapshot[name]}\n")
        n += 1
    for h in sorted(art.hists, key=lambda h: h["name"]):
        name = h["name"]
        pname = _prom_name(name)
        fh.write(f"# TYPE {pname} histogram\n")
        cum = 0
        for ub, c in h["buckets"]:
            cum += c
            labels = _prom_labels(name, pname, f'le="{_prom_escape(ub)}"')
            fh.write(f"{pname}_bucket{labels} {cum}\n")
            n += 1
        labels = _prom_labels(name, pname, 'le="+Inf"')
        fh.write(f"{pname}_bucket{labels} {h['count']}\n")
        fh.write(f"{pname}_sum{_prom_labels(name, pname)} {h['sum']}\n")
        fh.write(f"{pname}_count{_prom_labels(name, pname)} {h['count']}\n")
        n += 3
    return n
