"""N-host fabric assembly: the multi-host generalisation of the testbed.

:class:`Fabric` wires a :class:`~repro.simnet.fabric.Topology` — hosts and
store-and-forward switches joined by links — into a runnable simulation:
one host / RDMA device / EXS stack per topology host, one
:class:`~repro.simnet.link.Link` per edge, one
:class:`~repro.simnet.fabric.Switch` per switch node, plus the routing
registry (QPN → device) that lets any wire message find its destination
across the fabric::

    topo = Topology.star([f"h{i}" for i in range(8)] + ["sink"])
    fabric = Fabric.from_scenario(ScenarioConfig(seed=1, topology=topo))
    pair = fabric.connect("h0", "sink")
    ... run ...

The two-host :class:`repro.testbed.Testbed` is re-implemented on top of
this class (the trivial point-to-point topology); its event sequences are
bit-identical to the historical standalone implementation because the
direct two-host wire takes exactly the legacy assembly path: devices are
cross-wired as peers on one link with no switch, no frame wrapping, and no
routing lookups.

Seed derivation is positional so the classic seeds are unchanged: host
``i`` gets stack seed ``seed*2+1+i`` (client/server = ``seed*2+1`` /
``seed*2+2``), edge ``i`` gets emulator seed ``seed+7+17*i`` and
impairment seed ``seed+13+29*i`` (edge 0 = the legacy ``seed+7`` /
``seed+13``).
"""

from __future__ import annotations

import itertools
import os
from contextlib import nullcontext
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Union

from .bench.profiles import FDR_INFINIBAND, HardwareProfile
from .config import ScenarioConfig
from .exs import ExsSocketOptions, ExsStack
from .exs.eventqueue import ExsEventType
from .hosts import Host
from .simnet import (
    DelayEmulator,
    Event,
    FaultProfile,
    ImpairmentModel,
    Link,
    NicPort,
    SimulationError,
    Simulator,
    Switch,
    Topology,
)
from .simnet.fabric import host_delivery
from .simnet.schedule import SchedulePolicy
from .verbs import ConnectionManager, RdmaDevice, ReliabilityConfig, VerbsError
from .verbs.comp_channel import uniform_wakeup

__all__ = ["Fabric", "FabricConnection"]


class FabricConnection:
    """A connected EXS socket pair created by :meth:`Fabric.connect`.

    The handshake is asynchronous (it needs the simulation to run);
    :attr:`established` is an event succeeding with the handle once both
    endpoint sockets exist.  ``a_socket``/``b_socket`` are the connected
    :class:`~repro.exs.socket.ExsSocket` ends, ``a_eq``/``b_eq`` dedicated
    event queues usable for subsequent data-path completions.
    """

    def __init__(self, fabric: "Fabric", a: str, b: str, port: int) -> None:
        self.fabric = fabric
        self.a = a
        self.b = b
        self.port = port
        self.a_socket = None
        self.b_socket = None
        self.a_eq = None
        self.b_eq = None
        self.established: Event = Event(fabric.sim)
        self.error: Optional[str] = None
        self._pending_sides = 2
        # per-side connected events, created on demand by ready() so that
        # legacy runs which never ask for them schedule nothing extra
        self._ready: Dict[str, Optional[Event]] = {"a": None, "b": None}

    def wait(self) -> Event:
        """The event to ``yield`` on until both sides are connected."""
        return self.established

    def ready(self, side: str) -> Event:
        """Event succeeding (with this handle) when *side* is connected.

        Unlike :attr:`established` — which fires wherever the *second*
        side happens to complete — the per-side event fires in that
        endpoint's own execution context, so under the cells kernel a
        process waiting on it resumes on its host's calendar instead of
        migrating to the peer host's.  Fails if that side's handshake
        errors.
        """
        if side not in ("a", "b"):
            raise ValueError(f"side must be 'a' or 'b', not {side!r}")
        ev = self._ready[side]
        if ev is None:
            ev = self._ready[side] = Event(self.fabric.sim)
        return ev

    def wait_side(self, side: str) -> Event:
        """Cells-safe wait for one endpoint: :meth:`ready` under the cells
        kernel, the shared :attr:`established` event on legacy kernels
        (whose single-calendar resume order is the historical one, bit for
        bit)."""
        if self.fabric.sim.is_cells:
            return self.ready(side)
        return self.established

    def _side_done(self, side: str, event) -> None:
        # Runs in the finishing endpoint's execution context (the watcher
        # process resumes wherever the EQ event was posted — that host's
        # cell under the cells kernel).  Per-side results resolve here;
        # the *shared* established event resolves via defer_control: the
        # control cell on the cells kernel (a deterministic rendezvous
        # ordered after every cell finishes the instant, however the two
        # sides' completions interleave), a direct call on legacy kernels
        # (the exact historical sequence).
        if event.kind is ExsEventType.ERROR:
            err = event.error or "handshake failed"
            ev = self._ready[side]
            if ev is not None and not ev.triggered:
                ev.fail(RuntimeError(f"fabric connect {self.a}->{self.b}: {err}"))
            self.fabric.sim.defer_control(self._finish_side, (side, err))
            return
        if side == "a":
            self.a_socket = event.socket
        else:
            self.b_socket = event.socket
        ev = self._ready[side]
        if ev is not None:
            ev.succeed(self)
        self.fabric.sim.defer_control(self._finish_side, (side, None))

    def _finish_side(self, args) -> None:
        side, err = args
        if err is not None:
            self.error = err
            if not self.established.triggered:
                self.established.fail(RuntimeError(
                    f"fabric connect {self.a}->{self.b}: {self.error}"
                ))
            return
        self._pending_sides -= 1
        if self._pending_sides == 0 and not self.established.triggered:
            self.established.succeed(self)


class Fabric:
    """Hosts, switches, links, devices, and EXS stacks for one topology."""

    #: not a pytest test class, despite the importable name
    __test__ = False

    def __init__(
        self,
        scenario: Optional[ScenarioConfig] = None,
        *,
        topology: Optional[Topology] = None,
        jitter: Optional[Callable] = None,
        trace: Optional[Callable[[int, str, str], None]] = None,
        profile: Optional[HardwareProfile] = None,
        seed: int = 0,
        faults=None,
        reliability: Optional[ReliabilityConfig] = None,
        schedule_policy: Optional[SchedulePolicy] = None,
        srq_depth: Optional[int] = None,
        cq_shards: int = 0,
    ) -> None:
        if scenario is not None:
            if (profile is not None or seed != 0 or faults is not None
                    or reliability is not None or schedule_policy is not None
                    or srq_depth is not None or cq_shards != 0):
                raise ValueError(
                    "pass either scenario= or the individual profile/seed/"
                    "faults/reliability/schedule_policy knobs, not both"
                )
            if topology is not None and scenario.topology is not None:
                raise ValueError("topology given both directly and in the scenario")
            topology = topology or scenario.topology
            profile = scenario.resolve_profile()
            seed = scenario.seed
            faults = scenario.faults
            reliability = scenario.reliability
            schedule_policy = scenario.schedule_policy()
            srq_depth = scenario.srq_depth
            cq_shards = scenario.cq_shards
        profile = profile or FDR_INFINIBAND
        self.topology = topology or Topology.point_to_point()
        self.scenario = scenario
        self.profile = profile
        self.seed = seed

        # ---- event-kernel selection (see repro.simnet.cells) ----------
        kernel = scenario.kernel if scenario is not None else None
        if kernel is None:
            kernel = os.environ.get("REPRO_KERNEL") or None
        if kernel == "decoupled":
            kernel = "cells"
        #: the :class:`~repro.simnet.cells.CellMap` when this fabric runs
        #: on the cells kernel, else ``None``
        self.cellmap = None
        #: resolved kernel: ``"cells"``, ``"cells-lockstep"``, or
        #: ``"legacy"`` (the monolithic Simulator, whichever calendar
        #: backend it selects)
        self.kernel = "legacy"
        if kernel in ("cells", "cells-lockstep"):
            # Fallback matrix (documented in docs/SIMULATION.md): the cells
            # kernel needs a switched topology (every edge must cross a
            # host/switch cell boundary — direct host-to-host wires take
            # the legacy peer assembly), FIFO same-instant order (schedule
            # policies re-key a single global calendar), no causal capture
            # (the recorder wraps the monolithic drain), and jitter-free
            # delay emulation (a jitter callable samples one shared RNG
            # whose draw order is the global wall order).
            switches = set(self.topology.switches)
            compatible = (
                bool(switches)
                and all(a in switches or b in switches for a, b in self.topology.edges)
                and schedule_policy is None
                and jitter is None
                and not (scenario is not None
                         and (scenario.causal_capture or scenario.flight_recorder))
            )
            if compatible:
                from .simnet.cells import CellMap, CellSimulator

                # jitter-free per-edge propagation = link base + emulator
                # base (matches Link.propagation_ns for every edge)
                prop = profile.propagation_delay_ns + profile.emulator_delay_ns
                self.cellmap = CellMap.from_topology(self.topology, prop)
                self.sim = CellSimulator(
                    self.cellmap, trace=trace, decouple=(kernel == "cells")
                )
                self.kernel = kernel
            else:
                self.sim = Simulator(trace=trace, schedule_policy=schedule_policy)
        else:
            self.sim = Simulator(
                trace=trace, schedule_policy=schedule_policy,
                calendar=kernel if kernel in ("wheel", "heap") else None,
            )

        #: the run's :class:`~repro.simnet.causality.CausalRecorder` when the
        #: scenario asked for capture (``causal_capture``/``flight_recorder``)
        self.causal = None
        if scenario is not None and (scenario.causal_capture or scenario.flight_recorder):
            from .simnet.causality import CausalRecorder, enable_capture

            try:
                scenario_dict = scenario.to_dict()
            except ValueError:  # ad-hoc unregistered profile: dump without it
                scenario_dict = None
            self.causal = enable_capture(self.sim, CausalRecorder(
                capacity=None if scenario.causal_capture else scenario.flight_recorder,
                dump_dir=scenario.telemetry_dir,
                scenario=scenario_dict,
            ))

        topo = self.topology
        self._hosts: Dict[str, Host] = {}
        for name in topo.hosts:
            with self._in_cell(name):
                self._hosts[name] = Host(
                    self.sim, name,
                    copy_bandwidth_bps=profile.copy_bandwidth_bps,
                    cpu_costs=profile.cpu_costs,
                )
        # Completion-channel wake-up latency distribution (per host; the
        # per-channel RNG seed comes from the stack so runs are reproducible).
        sampler = uniform_wakeup(profile.wakeup_lo_ns, profile.wakeup_hi_ns)
        for host in self._hosts.values():
            host.wakeup_sampler = sampler

        #: per-edge impairment models, keyed by canonical edge name
        self.impairments: Dict[str, ImpairmentModel] = {}
        #: per-edge links, keyed by canonical edge name (topology order)
        self.links: Dict[str, Link] = {}
        edge_faults = self._resolve_faults(faults)
        any_impaired = False
        for i, (a, b) in enumerate(topo.edges):
            name = topo.edge_names[i]
            emulator = None
            if profile.emulator_delay_ns or jitter is not None:
                emulator = DelayEmulator(
                    profile.emulator_delay_ns, jitter=jitter, seed=seed + 7 + 17 * i
                )
            impairment = edge_faults.get(i)
            if impairment is not None:
                self.impairments[name] = impairment
                any_impaired = True
            self.links[name] = Link(
                self.sim,
                bandwidth_bps=profile.link_bandwidth_bps * topo.scale_for(i),
                propagation_delay_ns=profile.propagation_delay_ns,
                per_message_overhead_ns=profile.per_message_overhead_ns,
                emulator=emulator,
                impairment=impairment,
            )

        if any_impaired and reliability is None:
            reliability = ReliabilityConfig.for_path(self._worst_path_one_way_ns())
        # The CI variant matrix forces a reliability discipline across an
        # unmodified suite: derive a path-scaled config if none exists yet,
        # then pin its mode.
        mode_env = os.environ.get("REPRO_RELIABILITY_MODE", "").strip()
        if mode_env:
            if reliability is None:
                reliability = ReliabilityConfig.for_path(self._worst_path_one_way_ns())
            if reliability.mode != mode_env:
                reliability = replace(reliability, mode=mode_env)
        self.reliability = reliability
        device_config = profile.device
        if reliability is not None:
            device_config = replace(device_config, reliability=reliability)

        self._devices: Dict[str, RdmaDevice] = {}
        for name in topo.hosts:
            # the device's send-engine process must start on its host's
            # calendar under the cells kernel
            with self._in_cell(name):
                self._devices[name] = RdmaDevice(self.sim, self._hosts[name], device_config)

        #: QPN → owning device, for fabric-wide routing
        self._qpn_home: Dict[int, RdmaDevice] = {}
        #: per-switch runtime instances, keyed by switch name
        self.switches: Dict[str, Switch] = {}
        for name in topo.switches:
            with self._in_cell(name):
                self.switches[name] = Switch(self.sim, name, topo.switch)

        for i, (a, b) in enumerate(topo.edges):
            link = self.links[topo.edge_names[i]]
            a_is_host = a in self._devices
            b_is_host = b in self._devices
            if a_is_host and b_is_host:
                # the direct two-host wire: the classic peer-to-peer path,
                # bit-identical to the standalone Testbed assembly
                dev_a, dev_b = self._devices[a], self._devices[b]
                dev_a.attach_link(link, 0)
                dev_b.attach_link(link, 1)
                dev_a.peer = dev_b
                dev_b.peer = dev_a
                continue
            for endpoint, node, other in ((0, a, b), (1, b, a)):
                if node in self._devices:
                    device = self._devices[node]
                    direction = link.attach(endpoint, host_delivery(device._on_wire))
                    nic = NicPort(direction, self.destination_of)
                    device.attach_fabric(self, link, endpoint, nic)
                else:
                    self.switches[node].add_port(other, link, endpoint)
        for name, switch in self.switches.items():
            switch.build_routes(topo.next_hops(name))

        if self.sim.is_cells:
            # Cross-cell routing indices: each link direction delivers to
            # the node at its opposite endpoint (edge (a, b) ⇒ direction 0
            # sends from a toward b), and each device's out-of-band ACKs
            # land on its own host's calendar.
            idx = self.sim.cell_index
            for i, (a, b) in enumerate(topo.edges):
                link = self.links[topo.edge_names[i]]
                link.directions[0].dst_cell = idx(b)
                link.directions[1].dst_cell = idx(a)
            for name, device in self._devices.items():
                device.cell = idx(name)

        self._stacks: Dict[str, ExsStack] = {}
        self.srq_depth = srq_depth
        self.cq_shards = cq_shards
        for i, name in enumerate(topo.hosts):
            device = self._devices[name]
            # shard poller processes start on their host's calendar
            with self._in_cell(name):
                self._stacks[name] = ExsStack(
                    self.sim, self._hosts[name], device,
                    ConnectionManager(device), seed=seed * 2 + 1 + i,
                    srq_depth=srq_depth, cq_shards=cq_shards,
                )

        #: set by :meth:`attach_telemetry`
        self.telemetry = None
        self._auto_ports = itertools.count(61000)
        self._ack_path_cache: Dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _in_cell(self, name: str):
        """Construction context: placements land in cell *name* under the
        cells kernel; a no-op on legacy kernels."""
        return self.sim.cell(name) if self.sim.is_cells else nullcontext()

    @classmethod
    def from_scenario(
        cls,
        scenario: ScenarioConfig,
        *,
        topology: Optional[Topology] = None,
        jitter: Optional[Callable] = None,
        trace: Optional[Callable[[int, str, str], None]] = None,
    ) -> "Fabric":
        """Build the fabric a :class:`~repro.config.ScenarioConfig`
        describes.  ``jitter``/``trace`` are callables — not serializable,
        so not scenario fields — and compose on top.
        """
        return cls(scenario=scenario, topology=topology, jitter=jitter, trace=trace)

    def _resolve_faults(self, faults) -> Dict[int, ImpairmentModel]:
        """Normalize the faults spec into per-edge-index impairment models."""
        topo = self.topology
        seed = self.seed
        out: Dict[int, ImpairmentModel] = {}
        if faults is None:
            return out
        if isinstance(faults, ImpairmentModel):
            if not topo.direct:
                raise ValueError(
                    "a pre-built ImpairmentModel only fits the two-host wire; "
                    "use a {edge_name: FaultProfile} mapping on a topology"
                )
            out[0] = faults
            return out
        if isinstance(faults, FaultProfile):
            # one profile = every wire is lossy (each edge gets its own
            # seeded model so fault streams stay independent)
            for i in range(len(topo.edges)):
                out[i] = ImpairmentModel(faults, seed=seed + 13 + 29 * i)
            return out
        if isinstance(faults, dict):
            for name, spec in faults.items():
                i = topo.resolve_edge(name)  # raises on unknown edge names
                if isinstance(spec, ImpairmentModel):
                    out[i] = spec
                elif isinstance(spec, FaultProfile):
                    out[i] = ImpairmentModel(spec, seed=seed + 13 + 29 * i)
                else:
                    raise TypeError(
                        f"faults[{name!r}] must be a FaultProfile or "
                        f"ImpairmentModel, not {type(spec).__name__}"
                    )
            return out
        raise TypeError(
            f"faults must be a FaultProfile, ImpairmentModel, or per-edge "
            f"mapping, not {type(faults).__name__}"
        )

    def _worst_path_one_way_ns(self) -> int:
        """Largest host-to-host one-way latency estimate (for reliability
        timer scaling): per-link propagation + emulator delay, plus the
        switch forwarding latency of every intermediate hop."""
        profile = self.profile
        per_edge = profile.propagation_delay_ns + profile.emulator_delay_ns
        worst = per_edge
        hosts = self.topology.hosts
        for i, a in enumerate(hosts):
            for b in hosts[i + 1:]:
                path = self.topology.path(a, b)
                n_edges = len(path) - 1
                n_switches = max(0, len(path) - 2)
                est = n_edges * per_edge + n_switches * self.topology.switch.forward_ns
                if est > worst:
                    worst = est
        return worst

    # ------------------------------------------------------------------
    # routing registry (used by devices and NIC ports)
    # ------------------------------------------------------------------
    def register_qpn(self, qpn: int, device: RdmaDevice) -> None:
        self._qpn_home[qpn] = device

    def device_of_qpn(self, qpn: int) -> RdmaDevice:
        device = self._qpn_home.get(qpn)
        if device is None:
            raise VerbsError(f"fabric has no device owning QP {qpn}")
        return device

    def destination_of(self, payload) -> str:
        """Destination host name for a wire payload (routing resolver)."""
        dst_qpn = getattr(payload, "dst_qpn", 0)
        if dst_qpn:
            return self.device_of_qpn(dst_qpn).host.name
        dst_lid = getattr(payload, "dst_lid", "")
        if dst_lid:
            if dst_lid not in self._hosts:
                raise SimulationError(f"unknown destination host {dst_lid!r}")
            return dst_lid
        raise SimulationError(
            f"unroutable payload {payload!r}: no destination QPN, and a CM "
            "REQ on a multi-host fabric needs an explicit destination host "
            "(connect(..., to=host))"
        )

    def ack_path_ns(self, src: RdmaDevice, dst: RdmaDevice) -> int:
        """Propagation estimate for an out-of-band ACK between two devices.

        The summed jitter-free propagation of every link on the routed path
        (ACKs model coalesced link-level packets: they bypass switch queues
        and serialization, like the point-to-point model's out-of-band
        delivery).
        """
        key = (src.host.name, dst.host.name)
        cached = self._ack_path_cache.get(key)
        if cached is not None:
            return cached
        path = self.topology.path(*key)
        total = 0
        for a, b in zip(path, path[1:]):
            i = self.topology.resolve_edge(f"{a}-{b}")
            total += self.links[self.topology.edge_names[i]].propagation_ns()
        self._ack_path_cache[key] = total
        return total

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    def host(self, name: str) -> Host:
        """The :class:`~repro.hosts.Host` called *name*."""
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(
                f"unknown host {name!r} (hosts: {', '.join(self.topology.hosts)})"
            ) from None

    def stack(self, name: str) -> ExsStack:
        """The EXS stack on host *name*."""
        self.host(name)  # raise the helpful error on typos
        return self._stacks[name]

    def device(self, name: str) -> RdmaDevice:
        """The RDMA device on host *name*."""
        self.host(name)
        return self._devices[name]

    @property
    def all_hosts(self) -> List[Host]:
        """Hosts in topology order."""
        return [self._hosts[n] for n in self.topology.hosts]

    @property
    def host_names(self) -> tuple:
        return self.topology.hosts

    def connect(self, a: str, b: str, *, options: Optional[ExsSocketOptions] = None,
                port: Optional[int] = None) -> FabricConnection:
        """Create a connected EXS socket pair from host *a* to host *b*.

        Spawns the listener/connector handshake processes; the returned
        :class:`FabricConnection` populates once the simulation runs the
        handshake (``yield pair.wait()`` inside a process, or just call
        :meth:`run` and read ``pair.a_socket``/``pair.b_socket``).
        """
        options = options or ExsSocketOptions()
        if a == b:
            raise ValueError("cannot connect a host to itself")
        stack_a, stack_b = self.stack(a), self.stack(b)
        if port is None:
            port = next(self._auto_ports)
        handle = FabricConnection(self, a, b, port)
        listener = stack_b.socket(options=options)
        listener.bind_listen(port)
        handle.b_eq = stack_b.qcreate()
        handle.a_eq = stack_a.qcreate()
        listener.accept(handle.b_eq, context=handle, options=options)
        sock = stack_a.socket(options=options)
        sock.connect(port, handle.a_eq, context=handle, to=b)
        self.sim.process(self._watch_side(handle, "b", handle.b_eq),
                         name=f"fabric-accept-{b}:{port}")
        self.sim.process(self._watch_side(handle, "a", handle.a_eq),
                         name=f"fabric-connect-{a}:{port}")
        return handle

    @staticmethod
    def _watch_side(handle: FabricConnection, side: str, eq):
        event = yield eq.dequeue()
        handle._side_done(side, event)

    def attach_telemetry(self, **kwargs):
        """Attach a :class:`repro.obs.Telemetry` session to this fabric.

        Keyword arguments are forwarded to
        :meth:`repro.obs.Telemetry.attach` (``sample_interval_ns``,
        ``span_capacity``, ``max_samples``).  Returns the session.
        """
        from .obs import Telemetry

        self.telemetry = Telemetry.attach(self, **kwargs)
        return self.telemetry

    def run(self, until=None, *, max_events: Optional[int] = None):
        """Run the simulation (see :meth:`repro.simnet.Simulator.run`)."""
        try:
            return self.sim.run(until, max_events=max_events)
        finally:
            if self.telemetry is not None:
                # flush the tail interval the periodic tick never reaches
                self.telemetry.sampler.finish()

    @property
    def now(self) -> int:
        return self.sim.now

    # -- legacy two-host conveniences ----------------------------------
    @property
    def link(self) -> Link:
        """The single link of a direct two-host fabric."""
        if not self.topology.direct:
            raise AttributeError(
                "this fabric has multiple links; use fabric.links[edge_name]"
            )
        return self.links[self.topology.edge_names[0]]

    @property
    def impairment(self) -> Optional[ImpairmentModel]:
        """The single-edge impairment model (two-host wire), if any."""
        if self.topology.direct:
            return self.impairments.get(self.topology.edge_names[0])
        return None
