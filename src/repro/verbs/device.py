"""The simulated RDMA device (HCA) and its RC transport engine.

One :class:`RdmaDevice` is attached to a host and to one end of a
:class:`~repro.simnet.link.Link`.  It owns:

* a protection domain (memory registration),
* queue pairs and completion queues,
* a **send engine** process that drains send queues (one WR at a time,
  modelling the HCA's WQE-processing pipeline) onto the link, and
* the **arrival handler** that executes incoming messages: placing payloads
  directly into registered memory (the zero-copy DMA path — note that no
  host CPU time is charged for it), consuming RECVs, raising completions,
  and returning cumulative transport ACKs.

Send completions follow RC semantics: a send WR completes only when the
responder's ACK arrives, which is what makes send-credit return latency a
round trip on long-delay paths (paper §IV-B2).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Set

from ..hosts.host import Host
from ..hosts.memory import Chunk
from ..simnet import Signal, Simulator
from ..simnet.faults import Corrupted
from ..simnet.link import Link, LinkDirection
from .comp_channel import CompletionChannel, WakeupSampler
from .cq import CompletionQueue, WorkCompletion
from .enums import Access, Opcode, QPState, WCOpcode, WCStatus
from .errors import BadWorkRequest, ReceiverNotReady, RemoteAccessError, VerbsError
from .mr import ProtectionDomain
from .qp import QueuePair
from .reliability import ACCEPT, DUPLICATE, ReliabilityConfig, ReliabilityEngine
from .srq import SharedReceiveQueue
from .wire import AckMessage, CmMessage, DataMessage, HEADER_BYTES, TermMessage

__all__ = ["DeviceConfig", "RdmaDevice", "connect_devices"]


@dataclass(frozen=True)
class DeviceConfig:
    """Timing characteristics of the simulated HCA."""

    #: per-WR processing time in the send pipeline (doorbell → wire)
    wr_overhead_ns: int = 150
    #: responder-side processing before placing a message / generating an ACK
    rx_overhead_ns: int = 100
    #: time for the responder to turn around a transport ACK
    ack_turnaround_ns: int = 100
    #: messages larger than this pay a per-byte penalty on the portion above
    #: the threshold (models the on-HCA/LLC caching effect the paper suggests
    #: explains the throughput dip past 2 MiB in its Fig. 12a); None disables.
    large_msg_threshold: Optional[int] = None
    #: extra nanoseconds per byte beyond the threshold
    large_msg_extra_ns_per_byte: float = 0.0
    #: maximum RC message size
    max_msg_bytes: int = 1 << 31
    #: enable the RC reliability layer (retransmission / NAK / RNR / QP
    #: error teardown).  ``None`` keeps the historical lossless-wire model,
    #: whose event sequence is bit-identical to pre-reliability builds.
    reliability: Optional[ReliabilityConfig] = None


class RdmaDevice:
    """A software HCA bound to a host and one link endpoint."""

    _ids = itertools.count(1)

    def __init__(self, sim: Simulator, host: Host, config: Optional[DeviceConfig] = None) -> None:
        self.sim = sim
        self.host = host
        self.config = config or DeviceConfig()
        self.device_id = next(RdmaDevice._ids)
        host.device = self

        self.pd = ProtectionDomain(self)
        self._qps: Dict[int, QueuePair] = {}
        # QPNs are globally unique (the device counter is process-wide), so
        # a fabric can route any message by destination QPN alone; the wide
        # stride keeps them unique even for thousand-QP devices.
        self._next_qpn = itertools.count(self.device_id * 1_000_000 + 1)

        self.link: Optional[Link] = None
        self.endpoint: Optional[int] = None
        self.tx: Optional[LinkDirection] = None
        self.peer: Optional["RdmaDevice"] = None
        #: the multi-host fabric this device is attached to, if any
        #: (see :meth:`attach_fabric`; ``None`` on the classic p2p wire)
        self.fabric = None
        #: cells-kernel routing: index of the cell owning this device's
        #: host (set by Fabric assembly under the cells kernel; None keeps
        #: legacy single-calendar delivery for out-of-band ACKs)
        self.cell: Optional[int] = None

        # send engine
        self._service: Deque[QueuePair] = deque()
        self._in_service: Set[int] = set()
        self._engine_kick = Signal(sim)
        self._engine = sim.process(self._send_engine(), name=f"hca{self.device_id}-send")

        # connection management hook (set by repro.verbs.cm)
        self.cm_handler = None

        # per-peer-QP cumulative consumed message counters (for ACKs)
        self._consumed_msn: Dict[int, int] = {}

        # RC reliability machinery (None = historical lossless-wire model)
        self.reliability: Optional[ReliabilityEngine] = (
            ReliabilityEngine(self, self.config.reliability)
            if self.config.reliability is not None
            else None
        )

        # diagnostics
        self.data_messages_sent = 0
        self.acks_sent = 0
        self.acks_lost = 0
        self.terms_sent = 0

    # ------------------------------------------------------------------
    # resource creation
    # ------------------------------------------------------------------
    def create_channel(self, wakeup: Optional[WakeupSampler] = None, seed: int = 0) -> CompletionChannel:
        return CompletionChannel(self.sim, wakeup=wakeup, seed=seed)

    def create_cq(self, channel: Optional[CompletionChannel] = None) -> CompletionQueue:
        return CompletionQueue(channel)

    def create_qp(self, send_cq: CompletionQueue, recv_cq: CompletionQueue,
                  srq: Optional[SharedReceiveQueue] = None) -> QueuePair:
        qp = QueuePair(self, next(self._next_qpn), send_cq, recv_cq, srq=srq)
        self._qps[qp.qpn] = qp
        if self.fabric is not None:
            self.fabric.register_qpn(qp.qpn, self)
        return qp

    def create_srq(self, max_wr: int) -> SharedReceiveQueue:
        """Create a shared receive queue; pass it to :meth:`create_qp`."""
        return SharedReceiveQueue(self, max_wr)

    def register(self, buffer, access: Access = Access.remote()):
        """Register a buffer in this device's protection domain."""
        return self.pd.register(buffer, access)

    # ------------------------------------------------------------------
    # link attachment
    # ------------------------------------------------------------------
    def attach_link(self, link: Link, endpoint: int) -> None:
        if self.link is not None:
            raise VerbsError("device already attached to a link")
        self.link = link
        self.endpoint = endpoint
        self.tx = link.attach(endpoint, self._on_wire)

    def attach_fabric(self, fabric, link: Link, endpoint: int, tx) -> None:
        """Bind this device to a multi-host fabric.

        *link* is the host's access link (kept for latency and ACK-loss
        queries), *tx* the addressed NIC port the fabric built (a
        :class:`~repro.simnet.fabric.NicPort`).  The fabric wires the
        delivery handler itself, stripping fabric frames before they reach
        :meth:`_on_wire`.
        """
        if self.link is not None:
            raise VerbsError("device already attached to a link")
        self.fabric = fabric
        self.link = link
        self.endpoint = endpoint
        self.tx = tx
        for qpn in self._qps:
            fabric.register_qpn(qpn, self)

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------
    def kick_send(self, qp: QueuePair) -> None:
        """Tell the send engine that *qp* has work (called by post_send)."""
        if qp.qpn not in self._in_service:
            self._in_service.add(qp.qpn)
            self._service.append(qp)
        self._engine_kick.fire()

    def _send_engine(self):
        """HCA send pipeline: one WR at a time, round-robin across QPs."""
        cfg = self.config
        while True:
            if not self._service:
                yield self._engine_kick.wait()
                continue
            qp = self._service.popleft()
            self._in_service.discard(qp.qpn)
            if not qp.sq or qp.state is not QPState.READY:
                continue
            wr = qp.sq.popleft()
            if cfg.wr_overhead_ns:
                yield self.sim.timeout(cfg.wr_overhead_ns)
            self._transmit_wr(qp, wr)
            if qp.sq:
                if qp.qpn not in self._in_service:
                    self._in_service.add(qp.qpn)
                    self._service.append(qp)

    def _large_msg_penalty_ns(self, nbytes: int) -> int:
        thr = self.config.large_msg_threshold
        if thr is None or nbytes <= thr:
            return 0
        return int((nbytes - thr) * self.config.large_msg_extra_ns_per_byte)

    def _transmit_wr(self, qp: QueuePair, wr) -> None:
        if self.tx is None:
            raise VerbsError("device not attached to a link")
        if wr.length > self.config.max_msg_bytes:
            raise BadWorkRequest(f"message of {wr.length}B exceeds max_msg_bytes")
        seq = qp.next_seq()
        payload = wr.payload
        if payload is None and wr.opcode is not Opcode.RDMA_READ:
            # DMA-fetch the payload from local registered memory.  Like a
            # real HCA the engine reads the memory in place — the wire
            # carries a zero-copy view, valid under the RC contract that
            # the application must not touch the buffer until completion.
            mr = self.pd.lookup_lkey(wr.sge.lkey)
            mr.require(wr.sge.addr, wr.sge.length, Access.LOCAL_READ)
            payload = Chunk(0, wr.sge.length, mr.view(wr.sge.addr, wr.sge.length))
        msg = DataMessage(
            src_qpn=qp.qpn,
            dst_qpn=qp.remote_qpn,
            opcode=wr.opcode,
            seq=seq,
            payload=None if wr.opcode is Opcode.RDMA_READ else payload,
            remote_addr=wr.remote_addr,
            rkey=wr.rkey,
            imm_data=wr.imm_data,
            read_len=wr.sge.length if wr.opcode is Opcode.RDMA_READ else 0,
            wr_id=wr.wr_id,
        )
        qp.inflight[seq] = wr
        qp.messages_sent += 1
        self.data_messages_sent += 1
        wire = HEADER_BYTES if wr.opcode is Opcode.RDMA_READ else msg.wire_bytes()
        # The large-message penalty (HCA/LLC caching effect) slows the data
        # stream itself, so it occupies the wire rather than the WQE pipeline.
        extra_tx = self._large_msg_penalty_ns(msg.payload_bytes)
        self.tx.transmit(msg, wire, extra_tx_ns=extra_tx)
        if self.reliability is not None:
            self.reliability.on_transmit(qp, wr, msg, wire, extra_tx)

    # ------------------------------------------------------------------
    # arrival path
    # ------------------------------------------------------------------
    def _on_wire(self, msg) -> None:
        if isinstance(msg, DataMessage):
            self._on_data(msg)
        elif isinstance(msg, AckMessage):
            self._on_ack(msg)
        elif isinstance(msg, Corrupted):
            self._on_corrupt(msg)
        elif isinstance(msg, TermMessage):
            self._on_term(msg)
        elif isinstance(msg, CmMessage):
            if self.cm_handler is None:
                raise VerbsError(f"CM message {msg.kind!r} arrived with no CM listener")
            self.cm_handler(msg)
        else:  # pragma: no cover - defensive
            raise VerbsError(f"unknown wire message {msg!r}")

    def _on_corrupt(self, wrapped: Corrupted) -> None:
        """A frame failed its CRC: discard silently, like a real port.

        Recovery (if any) is the sender's problem — its retransmission
        timer or a NAK for the resulting gap brings the data back.
        """
        if self.reliability is not None:
            self.reliability.stats.corrupt_discarded += 1
        if self.sim.tracing:
            self.sim.trace("rel", f"hca{self.device_id} discarded corrupt frame")

    def _on_data(self, msg: DataMessage, from_buffer: bool = False) -> None:
        if msg.is_read_response:
            self._complete_read(msg)
            return
        qp = self._qps.get(msg.dst_qpn)
        if qp is None:
            raise VerbsError(f"message for unknown QP {msg.dst_qpn}")
        rel = self.reliability
        if rel is not None:
            if qp.state is QPState.ERROR:
                return  # arrivals on a dead QP are silently dropped
            verdict = rel.check_incoming(qp, msg)
            if verdict is not ACCEPT:
                if verdict is DUPLICATE:
                    rel.stats.duplicates_dropped += 1
                    if msg.opcode is Opcode.RDMA_READ:
                        # Re-serve: the retransmitted response re-completes
                        # the requester's still-waiting READ.
                        self._serve_read(msg)
                    else:
                        # Re-ACK so a sender whose ACK was lost advances.
                        self._send_ack_message(qp)
                else:  # FUTURE: sequence gap
                    if rel.selective and msg.opcode is not Opcode.RDMA_READ:
                        # Selective repeat: hold the frame for in-order
                        # release; the NAK advertises it in the SACK bitmap.
                        rel.buffer_future(qp, msg)
                    rel.send_nak(qp)
                return
            if (msg.opcode in (Opcode.SEND, Opcode.RDMA_WRITE_WITH_IMM)
                    and not qp.has_recv()):
                if qp.srq is not None:
                    qp.srq.empty_hits += 1
                rel.send_rnr(qp)
                return
        qp.messages_received += 1

        if msg.opcode is Opcode.SEND:
            self._place_send(qp, msg)
        elif msg.opcode is Opcode.RDMA_WRITE:
            self._place_write(msg)
        elif msg.opcode is Opcode.RDMA_WRITE_WITH_IMM:
            self._place_write(msg)
            self._consume_recv(qp, msg, with_imm=True)
        elif msg.opcode is Opcode.RDMA_READ:
            if rel is not None:
                # The response doubles as the ACK, but the seq must still
                # count as consumed for the responder's sequence check.
                prev = self._consumed_msn.get(qp.qpn, -1)
                if msg.seq > prev:
                    self._consumed_msn[qp.qpn] = msg.seq
            self._serve_read(msg)
            if rel is not None and rel.selective and not from_buffer:
                self._drain_ooo(qp, rel)
            return  # READ response acts as the ack
        else:  # pragma: no cover - defensive
            raise VerbsError(f"unexpected opcode {msg.opcode}")

        self._schedule_ack(qp, msg.seq)
        if rel is not None and rel.selective and not from_buffer:
            self._drain_ooo(qp, rel)

    def _drain_ooo(self, qp: QueuePair, rel: ReliabilityEngine) -> None:
        """Release buffered out-of-order frames now contiguous with the
        consumed msn, in order, through the normal placement path.

        A release can stall mid-run (e.g. a buffered SEND hitting an empty
        receive queue raises RNR); the blocked frame then stays buffered and
        the requester's RNR retransmit of the window head re-triggers
        delivery.  If frames remain buffered behind a *new* gap, a fresh NAK
        (the responder's rate limit is per expected seq, which just moved)
        tells the requester which holes to fill.
        """
        while True:
            consumed = self._consumed_msn.get(qp.qpn, -1)
            rel.purge_buffered_through(qp, consumed)
            buffered = rel.peek_buffered(qp, consumed + 1)
            if buffered is None:
                if rel.has_buffered(qp):
                    rel.send_nak(qp)
                return
            self._on_data(buffered, from_buffer=True)
            if self._consumed_msn.get(qp.qpn, -1) <= consumed:
                return  # blocked (RNR or dead QP); keep the frame buffered
            rel.pop_buffered(qp, buffered.seq)

    def _place_send(self, qp: QueuePair, msg: DataMessage) -> None:
        if not qp.has_recv():
            if qp.srq is not None:
                qp.srq.empty_hits += 1
            raise ReceiverNotReady(
                f"SEND of {msg.payload_bytes}B on QP {qp.qpn} with empty receive queue "
                "(EXS credit accounting bug?)"
            )
        wr = qp.take_recv()
        if msg.payload_bytes > wr.length:
            raise BadWorkRequest(
                f"SEND of {msg.payload_bytes}B overflows RECV of {wr.length}B"
            )
        if wr.sge is not None and msg.payload is not None:
            mr = self.pd.lookup_lkey(wr.sge.lkey)
            mr.require(wr.sge.addr, msg.payload_bytes, Access.LOCAL_WRITE)
            off = mr.offset_of(wr.sge.addr)
            mr.buffer.write_chunk(off, msg.payload)
        qp.recv_cq.push(
            WorkCompletion(
                wr_id=wr.wr_id,
                opcode=WCOpcode.RECV,
                status=WCStatus.SUCCESS,
                byte_len=msg.payload_bytes,
                imm_data=0,
                qp_num=qp.qpn,
                context=wr.context,
                meta={"chunk": msg.payload, "remote_addr": 0},
            )
        )

    def _place_write(self, msg: DataMessage) -> None:
        mr = self.pd.lookup_rkey(msg.rkey)
        if mr is None:
            raise RemoteAccessError(f"RDMA WRITE with unknown rkey {msg.rkey}")
        mr.require(msg.remote_addr, msg.payload_bytes, Access.REMOTE_WRITE)
        if msg.payload is not None:
            off = mr.offset_of(msg.remote_addr)
            mr.buffer.write_chunk(off, msg.payload)

    def _consume_recv(self, qp: QueuePair, msg: DataMessage, with_imm: bool) -> None:
        if not qp.has_recv():
            if qp.srq is not None:
                qp.srq.empty_hits += 1
            raise ReceiverNotReady(
                f"WRITE_WITH_IMM on QP {qp.qpn} with empty receive queue "
                "(EXS credit accounting bug?)"
            )
        wr = qp.take_recv()
        qp.recv_cq.push(
            WorkCompletion(
                wr_id=wr.wr_id,
                opcode=WCOpcode.RECV_RDMA_WITH_IMM,
                status=WCStatus.SUCCESS,
                byte_len=msg.payload_bytes,
                imm_data=msg.imm_data,
                qp_num=qp.qpn,
                wc_flags_with_imm=with_imm,
                context=wr.context,
                meta={"chunk": msg.payload, "remote_addr": msg.remote_addr},
            )
        )

    def _serve_read(self, msg: DataMessage) -> None:
        mr = self.pd.lookup_rkey(msg.rkey)
        if mr is None:
            raise RemoteAccessError(f"RDMA READ with unknown rkey {msg.rkey}")
        mr.require(msg.remote_addr, msg.read_len, Access.REMOTE_READ)
        # Served in place, like the DMA fetch: the response carries a view
        # of responder memory that is only materialised at the requester's
        # placement (a concurrent local write racing a remote READ is just
        # as undefined here as on real hardware).
        resp = DataMessage(
            src_qpn=msg.dst_qpn,
            dst_qpn=msg.src_qpn,
            opcode=Opcode.RDMA_READ,
            seq=msg.seq,
            payload=Chunk(0, msg.read_len, mr.view(msg.remote_addr, msg.read_len)),
            is_read_response=True,
            wr_id=msg.wr_id,
        )
        self.tx.transmit(resp, resp.wire_bytes())

    def _complete_read(self, msg: DataMessage) -> None:
        qp = self._qps.get(msg.dst_qpn)
        if qp is None:
            raise VerbsError(f"READ response for unknown QP {msg.dst_qpn}")
        if self.reliability is not None:
            if qp.state is QPState.ERROR:
                return
            wr = self.reliability.on_read_response(qp, msg.seq)
            if wr is None:
                return  # duplicate response (request was retransmitted)
        else:
            wr = qp.inflight.pop(msg.seq, None)
            if wr is None:
                raise VerbsError("READ response with no matching in-flight WR")
        if wr.sge is not None and msg.payload is not None:
            mr = self.pd.lookup_lkey(wr.sge.lkey)
            mr.require(wr.sge.addr, msg.payload.nbytes, Access.LOCAL_WRITE)
            off = mr.offset_of(wr.sge.addr)
            mr.buffer.write_chunk(off, msg.payload)
        qp.send_cq.push(
            WorkCompletion(
                wr_id=wr.wr_id,
                opcode=WCOpcode.RDMA_READ,
                status=WCStatus.SUCCESS,
                byte_len=msg.payload.nbytes if msg.payload else 0,
                qp_num=qp.qpn,
                context=wr.context,
            )
        )

    # ------------------------------------------------------------------
    # acknowledgements
    # ------------------------------------------------------------------
    def _schedule_ack(self, qp: QueuePair, seq: int) -> None:
        """Return a cumulative ACK to the peer, out of band."""
        prev = self._consumed_msn.get(qp.qpn, -1)
        if seq > prev:
            self._consumed_msn[qp.qpn] = seq
        self._send_ack_message(qp)

    def _send_ack_message(self, qp: QueuePair, kind: str = "ack") -> None:
        """Send an ACK/NAK/RNR carrying the cumulative consumed msn.

        ACKs travel out of band (tiny coalesced link-layer packets), so
        impairment applies only drop/outage to them — checked *before* the
        jitter draw so a lost ACK consumes no jitter sample.  On a fabric
        the destination device is resolved through the QPN registry and the
        delay is the summed propagation of the routed path (ACKs bypass
        switch queues, like the coalesced link-level packets they model).
        """
        peer = self.peer
        if peer is None and self.fabric is not None:
            peer = self.fabric.device_of_qpn(qp.remote_qpn)
        if peer is None or self.link is None:
            raise VerbsError("device has no peer for ACK delivery")
        msn = self._consumed_msn.get(qp.qpn, -1)
        impairment = self.link.impairment
        if impairment is not None and impairment.ack_lost(self.endpoint, self.sim.now):
            self.acks_lost += 1
            if self.sim.tracing:
                self.sim.trace("rel", f"hca{self.device_id} {kind} msn={msn} lost")
            return
        sack = (self.reliability.sack_bitmap(qp)
                if self.reliability is not None else 0)
        ack = AckMessage(dst_qpn=qp.remote_qpn, msn=msn, kind=kind, sack=sack)
        if self.peer is not None:
            # point-to-point: identical to the classic model (jitter draw
            # from this link's emulator included)
            prop = self.link.sample_propagation_ns(self.endpoint)
        else:
            prop = self.fabric.ack_path_ns(self, peer)
        delay = self.config.ack_turnaround_ns + prop
        if peer.cell is None:
            self.sim.call_in(delay, peer._on_ack, ack)
        else:
            # cells kernel: the ACK lands on the peer host's calendar; the
            # delay includes the routed path's propagation, which is >= the
            # peer cell's inbound lookahead by construction.
            self.sim.call_in_cell(peer.cell, delay, peer._on_ack, ack)
        if self.sim._recorder is not None:
            self.sim._recorder.annotate_last(
                1,
                turnaround_ns=self.config.ack_turnaround_ns,
                prop_ns=delay - self.config.ack_turnaround_ns,
            )
        self.acks_sent += 1

    _ACK_WC_OPCODE = {
        Opcode.SEND: WCOpcode.SEND,
        Opcode.RDMA_WRITE: WCOpcode.RDMA_WRITE,
        Opcode.RDMA_WRITE_WITH_IMM: WCOpcode.RDMA_WRITE,
    }

    def _on_ack(self, ack: AckMessage) -> None:
        qp = self._qps.get(ack.dst_qpn)
        if qp is None:
            raise VerbsError(f"ACK for unknown QP {ack.dst_qpn}")
        rel = self.reliability
        if rel is None:
            done = qp.ack_up_to(ack.msn)
        else:
            if qp.state is QPState.ERROR:
                return
            if ack.kind == "nak":
                done = rel.on_nak(qp, ack.msn, ack.sack)
            elif ack.kind == "rnr":
                done = rel.on_rnr(qp, ack.msn, ack.sack)
            else:
                done = rel.on_ack(qp, ack.msn, ack.sack)
        for wr in done:
            qp.send_cq.push(
                WorkCompletion(
                    wr_id=wr.wr_id,
                    opcode=self._ACK_WC_OPCODE[wr.opcode],
                    status=WCStatus.SUCCESS,
                    byte_len=wr.length,
                    qp_num=qp.qpn,
                    context=wr.context,
                )
            )

    # ------------------------------------------------------------------
    # fatal-error teardown (reliability layer)
    # ------------------------------------------------------------------
    def _qp_fatal(self, qp: QueuePair, status: WCStatus, pending: list) -> None:
        """Retries exhausted: error the QP, flush completions, tell the peer.

        *pending* is the unacked window in transmission order; its head
        carries *status* (the root cause), everything else flushes.  The
        terminate notification rides the fault-exempt CM-level path so the
        peer learns of the death even on a dead wire.
        """
        if qp.state is QPState.ERROR:
            return
        qp.to_error()
        if self.sim.tracing:
            self.sim.trace("rel", f"qp{qp.qpn} fatal {status.value}")
        tracer = getattr(self.host, "tracer", None)
        if tracer is not None:
            tracer.emit(self.sim.now, qp.qpn, self.host.name, "qp_error",
                        status=status.value, pending=len(pending))
        rec = self.sim._recorder
        if rec is not None:
            rec.failure(
                "qp_error",
                self.sim.now,
                qpn=qp.qpn,
                status=status.value,
                device=self.device_id,
                host=self.host.name,
                pending=len(pending),
            )
        qp.flush(status, pending)
        if self.tx is not None and qp.remote_qpn is not None:
            term = TermMessage(dst_qpn=qp.remote_qpn, reason=status.value)
            self.tx.transmit(term, term.wire_bytes())
            self.terms_sent += 1

    def _on_term(self, msg: TermMessage) -> None:
        """Peer QP died: mirror the error locally and flush our queues."""
        qp = self._qps.get(msg.dst_qpn)
        if qp is None or qp.state is QPState.ERROR:
            return
        qp.to_error()
        if self.sim.tracing:
            self.sim.trace("rel", f"qp{qp.qpn} peer terminated ({msg.reason})")
        pending = (self.reliability.peer_terminated(qp)
                   if self.reliability is not None else list(qp.inflight.values()))
        qp.flush(WCStatus.WR_FLUSH_ERR, pending)

    # ------------------------------------------------------------------
    # CM transmission helper (used by repro.verbs.cm)
    # ------------------------------------------------------------------
    def send_cm(self, msg: CmMessage) -> None:
        if self.tx is None:
            raise VerbsError("device not attached to a link")
        self.tx.transmit(msg, msg.wire_bytes())


def connect_devices(sim: Simulator, host_a: Host, host_b: Host, link: Link,
                    config_a: Optional[DeviceConfig] = None,
                    config_b: Optional[DeviceConfig] = None) -> tuple[RdmaDevice, RdmaDevice]:
    """Create two devices on *link* endpoints 0/1 and cross-wire them."""
    dev_a = RdmaDevice(sim, host_a, config_a)
    dev_b = RdmaDevice(sim, host_b, config_b)
    dev_a.attach_link(link, 0)
    dev_b.attach_link(link, 1)
    dev_a.peer = dev_b
    dev_b.peer = dev_a
    return dev_a, dev_b
