"""Error types for the simulated verbs layer."""

from __future__ import annotations

__all__ = [
    "VerbsError",
    "BadWorkRequest",
    "RemoteAccessError",
    "ReceiverNotReady",
    "QPStateError",
]


class VerbsError(RuntimeError):
    """Base class for verbs-layer failures."""


class BadWorkRequest(VerbsError):
    """A malformed work request was posted (bad SGE, missing rkey, ...)."""


class RemoteAccessError(VerbsError):
    """An RDMA operation referenced memory outside a registered region or
    without the required access rights."""


class ReceiverNotReady(VerbsError):
    """A SEND / WRITE-WITH-IMM arrived with no RECV posted (RNR).

    Real RC hardware would NAK and retry; the simulation treats it as a hard
    error because the EXS credit protocol is supposed to make it impossible —
    hitting this exception in a test means the credit accounting is wrong.
    """


class QPStateError(VerbsError):
    """Operation attempted on a queue pair in the wrong state."""
