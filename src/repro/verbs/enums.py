"""Enumerations mirroring the OFA verbs API surface used by UNH EXS."""

from __future__ import annotations

import enum

__all__ = ["Opcode", "WCOpcode", "WCStatus", "QPState", "Access", "SendFlags"]


class Opcode(enum.Enum):
    """Send-queue work-request opcodes (subset of ``ibv_wr_opcode``)."""

    SEND = "send"
    RDMA_WRITE = "rdma_write"
    RDMA_WRITE_WITH_IMM = "rdma_write_with_imm"
    RDMA_READ = "rdma_read"


class WCOpcode(enum.Enum):
    """Completion opcodes (subset of ``ibv_wc_opcode``)."""

    SEND = "send"
    RDMA_WRITE = "rdma_write"
    RDMA_READ = "rdma_read"
    RECV = "recv"
    #: receive completion consumed by an RDMA WRITE WITH IMM
    RECV_RDMA_WITH_IMM = "recv_rdma_with_imm"


class WCStatus(enum.Enum):
    """Completion status (subset of ``ibv_wc_status``)."""

    SUCCESS = "success"
    LOC_LEN_ERR = "local_length_error"
    REM_ACCESS_ERR = "remote_access_error"
    RETRY_EXC_ERR = "retry_exceeded"
    RNR_RETRY_EXC_ERR = "rnr_retry_exceeded"
    WR_FLUSH_ERR = "flushed"


class QPState(enum.Enum):
    """Queue-pair state machine (collapsed INIT/RTR/RTS of real verbs)."""

    RESET = "reset"
    READY = "ready"
    ERROR = "error"


class Access(enum.Flag):
    """Memory-region access flags (subset of ``ibv_access_flags``)."""

    LOCAL_READ = enum.auto()  # implicit in real verbs; explicit here for symmetry
    LOCAL_WRITE = enum.auto()
    REMOTE_READ = enum.auto()
    REMOTE_WRITE = enum.auto()

    @classmethod
    def local(cls) -> "Access":
        return cls.LOCAL_READ | cls.LOCAL_WRITE

    @classmethod
    def remote(cls) -> "Access":
        return cls.local() | cls.REMOTE_READ | cls.REMOTE_WRITE


class SendFlags(enum.Flag):
    """Per-WR flags (subset of ``ibv_send_flags``)."""

    NONE = 0
    SIGNALED = enum.auto()
    #: payload is copied into the WQE at post time (small messages);
    #: the sender may reuse its buffer immediately.
    INLINE = enum.auto()
