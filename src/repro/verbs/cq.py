"""Completion queues and work completions."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional

from .enums import WCOpcode, WCStatus

__all__ = ["WorkCompletion", "CompletionQueue"]


@dataclass(frozen=True)
class WorkCompletion:
    """One completion-queue entry (``ibv_wc``)."""

    wr_id: int
    opcode: WCOpcode
    status: WCStatus
    byte_len: int = 0
    imm_data: int = 0
    qp_num: int = 0
    #: True when the completion carries an immediate value (WWI receives)
    wc_flags_with_imm: bool = False
    context: Any = None
    #: model-level delivery metadata for receive completions: the payload
    #: chunk and the remote address it was placed at.  A real system infers
    #: both from DMA placement; the simulation surfaces them so upper layers
    #: can run their safety checks against ground truth.
    meta: Any = None

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS


class CompletionQueue:
    """FIFO of :class:`WorkCompletion` with optional event notification.

    Mirrors the verbs usage pattern::

        cq.req_notify()           # arm
        yield channel.wait()      # sleep until something completes
        wcs = cq.poll()           # drain

    ``req_notify`` arms a one-shot notification on the attached channel;
    pushing a CQE onto an armed CQ fires the channel (which models the OS
    wake-up latency, see :class:`~repro.verbs.comp_channel.CompletionChannel`).
    """

    def __init__(self, channel: "Optional[object]" = None, capacity: int = 1 << 16) -> None:
        self._entries: Deque[WorkCompletion] = deque()
        self.channel = channel
        self.capacity = capacity
        self._armed = False
        #: cumulative counters for diagnostics
        self.total_pushed = 0
        self.overflowed = False

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, wc: WorkCompletion) -> None:
        """Add a completion (called by the transport engine)."""
        if len(self._entries) >= self.capacity:  # pragma: no cover - defensive
            self.overflowed = True
            raise RuntimeError("completion queue overflow")
        self._entries.append(wc)
        self.total_pushed += 1
        if self._armed and self.channel is not None:
            self._armed = False
            self.channel.notify()  # type: ignore[attr-defined]

    def poll(self, max_entries: int = 0) -> List[WorkCompletion]:
        """Remove and return up to *max_entries* completions (0 = all)."""
        entries = self._entries
        if not entries:
            return []
        if max_entries <= 0 or max_entries >= len(entries):
            out = list(entries)
            entries.clear()
            return out
        return [entries.popleft() for _ in range(max_entries)]

    def req_notify(self) -> None:
        """Arm a one-shot notification for the next pushed completion."""
        self._armed = True
        # Verbs semantics: arming with entries already queued does not fire
        # the channel; callers must poll before sleeping.  The EXS progress
        # engine does exactly that.
