"""Shared receive queues.

A :class:`SharedReceiveQueue` (SRQ) lets N queue pairs on one device draw
receive work requests from a single posted-buffer pool instead of each QP
pre-posting its own — the resource-multiplexing trick that makes
thousand-connection endpoints affordable (cf. RDMAvisor, PAPERS.md): the
posted-buffer footprint scales with the *pool depth*, not with the number
of connections.

RNR semantics are preserved exactly: an arriving SEND (or WRITE_WITH_IMM)
that finds the pool empty triggers an RNR NAK on the **arriving QP**, and
the sender's reliability layer backs off and retransmits once a buffer is
reposted, just as with a per-QP receive queue (IBTA behaviour: the RNR
condition is evaluated against the SRQ when the QP is SRQ-attached).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque

from .errors import VerbsError
from .wr import RecvWR

if TYPE_CHECKING:  # pragma: no cover
    from .device import RdmaDevice

__all__ = ["SharedReceiveQueue"]


class SharedReceiveQueue:
    """A device-level pool of receive WRs shared by SRQ-attached QPs."""

    def __init__(self, device: "RdmaDevice", max_wr: int) -> None:
        if max_wr <= 0:
            raise VerbsError("SRQ max_wr must be positive")
        self.device = device
        self.max_wr = max_wr
        self._wrs: Deque[RecvWR] = deque()
        # occupancy accounting (telemetry reads these as pull gauges)
        self.posted_total = 0
        self.consumed_total = 0
        #: arrivals that found the pool empty (each one is an RNR episode
        #: on the arriving QP when reliability is enabled)
        self.empty_hits = 0
        self.min_free = max_wr

    # ------------------------------------------------------------------
    def post_recv(self, wr: RecvWR) -> None:
        """Add one receive WR to the shared pool."""
        if len(self._wrs) >= self.max_wr:
            raise VerbsError(
                f"SRQ overflow: {self.max_wr} WRs already posted"
            )
        self._wrs.append(wr)
        self.posted_total += 1

    def take(self) -> RecvWR:
        """Consume the head WR (transport side; pool must be non-empty)."""
        wr = self._wrs.popleft()
        self.consumed_total += 1
        free = len(self._wrs)
        if free < self.min_free:
            self.min_free = free
        return wr

    def __len__(self) -> int:
        return len(self._wrs)

    @property
    def depth(self) -> int:
        """WRs currently posted and unconsumed."""
        return len(self._wrs)

    @property
    def free(self) -> int:
        """Headroom before :meth:`post_recv` overflows."""
        return self.max_wr - len(self._wrs)
