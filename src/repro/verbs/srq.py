"""Shared receive queues.

A :class:`SharedReceiveQueue` (SRQ) lets N queue pairs on one device draw
receive work requests from a single posted-buffer pool instead of each QP
pre-posting its own — the resource-multiplexing trick that makes
thousand-connection endpoints affordable (cf. RDMAvisor, PAPERS.md): the
posted-buffer footprint scales with the *pool depth*, not with the number
of connections.

RNR semantics are preserved exactly: an arriving SEND (or WRITE_WITH_IMM)
that finds the pool empty triggers an RNR NAK on the **arriving QP**, and
the sender's reliability layer backs off and retransmits once a buffer is
reposted, just as with a per-QP receive queue (IBTA behaviour: the RNR
condition is evaluated against the SRQ when the QP is SRQ-attached).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque

from .errors import VerbsError
from .wr import RecvWR

if TYPE_CHECKING:  # pragma: no cover
    from .device import RdmaDevice

__all__ = ["SharedReceiveQueue"]


class SharedReceiveQueue:
    """A device-level pool of receive WRs shared by SRQ-attached QPs."""

    def __init__(self, device: "RdmaDevice", max_wr: int) -> None:
        if max_wr <= 0:
            raise VerbsError("SRQ max_wr must be positive")
        self.device = device
        self.max_wr = max_wr
        self._wrs: Deque[RecvWR] = deque()
        # lazily materialised prefill slots (see :meth:`prefill`): these
        # count as posted-and-unconsumed but only become RecvWR objects
        # when taken, in FIFO position ahead of every later post_recv().
        self._lazy = 0
        self._lazy_next_id = 0
        self._lazy_sge = None
        # occupancy accounting (telemetry reads these as pull gauges)
        self.posted_total = 0
        self.consumed_total = 0
        #: arrivals that found the pool empty (each one is an RNR episode
        #: on the arriving QP when reliability is enabled)
        self.empty_hits = 0
        self.min_free = max_wr

    # ------------------------------------------------------------------
    def post_recv(self, wr: RecvWR) -> None:
        """Add one receive WR to the shared pool."""
        if self._lazy + len(self._wrs) >= self.max_wr:
            raise VerbsError(
                f"SRQ overflow: {self.max_wr} WRs already posted"
            )
        self._wrs.append(wr)
        self.posted_total += 1

    def prefill(self, count: int, sge, wr_id_start: int) -> None:
        """Bulk-post *count* interchangeable WRs without materialising them.

        Pool bring-up posts the full depth of identical slots (same backing
        SGE, sequential wr_ids) of which only the consumed prefix ever
        turns into completions; at 10k-connection depths building tens of
        thousands of :class:`RecvWR` up front dominated stack construction.
        The observable end state is identical to posting
        ``RecvWR(wr_id_start + i, sge)`` for each ``i`` in order: lazily
        consumed slots produce exactly those WRs, FIFO ahead of anything
        later posted through :meth:`post_recv`.
        """
        if count < 0:
            raise VerbsError("SRQ prefill count must be non-negative")
        if self._lazy + len(self._wrs) + count > self.max_wr:
            raise VerbsError(
                f"SRQ overflow: bulk post of {count} WRs exceeds {self.max_wr}"
            )
        if self._lazy == 0:
            self._lazy_next_id = wr_id_start
        elif self._wrs or self._lazy_next_id + self._lazy != wr_id_start:
            raise VerbsError("SRQ prefill must extend the lazy range contiguously")
        self._lazy += count
        self._lazy_sge = sge
        self.posted_total += count

    def take(self) -> RecvWR:
        """Consume the head WR (transport side; pool must be non-empty)."""
        if self._lazy:
            wr = RecvWR(self._lazy_next_id, self._lazy_sge)
            self._lazy_next_id += 1
            self._lazy -= 1
        else:
            wr = self._wrs.popleft()
        self.consumed_total += 1
        free = self._lazy + len(self._wrs)
        if free < self.min_free:
            self.min_free = free
        return wr

    def __len__(self) -> int:
        return self._lazy + len(self._wrs)

    @property
    def depth(self) -> int:
        """WRs currently posted and unconsumed."""
        return self._lazy + len(self._wrs)

    @property
    def free(self) -> int:
        """Headroom before :meth:`post_recv` overflows."""
        return self.max_wr - self._lazy - len(self._wrs)
