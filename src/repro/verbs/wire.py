"""On-wire message records exchanged between simulated HCAs.

These are *model* records, not byte-accurate packets: the link layer charges
``wire_bytes`` of serialization time for each, and the receiving device
interprets the fields.  Three kinds exist:

* :class:`DataMessage` — one RC message (SEND / RDMA WRITE / WWI / READ
  request / READ response).  Messages on a QP carry a per-QP sequence
  number (``seq``) used by cumulative acknowledgements.
* :class:`AckMessage` — transport-level cumulative ACK (or NAK / RNR NAK).
  Real IB ACKs are tiny link-layer packets that coalesce; the model
  delivers them out of band (no serialization cost) after the link's
  propagation delay.
* :class:`CmMessage` — connection-management datagrams (REQ/REP/RTU/...).
* :class:`TermMessage` — fatal-error notification toward the peer QP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..hosts.memory import Chunk
from .enums import Opcode

__all__ = [
    "DataMessage",
    "AckMessage",
    "CmMessage",
    "TermMessage",
    "HEADER_BYTES",
    "CM_WIRE_BYTES",
    "CTRL_WIRE_BYTES_GUESS",
]

#: per-message header/framing charge (BTH/RETH etc., amortised per message)
HEADER_BYTES = 64
#: size of a CM datagram on the wire
CM_WIRE_BYTES = 256
#: nominal size of an upper-layer control message (used by analytic models;
#: the EXS layer defines its own authoritative constant)
CTRL_WIRE_BYTES_GUESS = 48


@dataclass
class DataMessage:
    """One RC transport message.

    ``payload`` is forwarded by reference end to end (the zero-copy plane):
    for real-bytes runs the chunk usually wraps a ``memoryview`` of sender
    memory that is only materialised at final placement.  Consumers that
    need owned bytes (hashing, trace capture) must use
    :meth:`~repro.hosts.memory.Chunk.materialize`.
    """

    src_qpn: int
    dst_qpn: int
    opcode: Opcode
    seq: int
    payload: Optional[Chunk] = None
    remote_addr: int = 0
    rkey: int = 0
    imm_data: int = 0
    #: for READ: number of bytes requested
    read_len: int = 0
    #: True when this is the response half of an RDMA_READ
    is_read_response: bool = False
    #: wr bookkeeping at the requester
    wr_id: int = 0

    @property
    def payload_bytes(self) -> int:
        return self.payload.nbytes if self.payload is not None else 0

    def wire_bytes(self) -> int:
        return HEADER_BYTES + self.payload_bytes


@dataclass
class AckMessage:
    """Cumulative transport acknowledgement for a QP direction.

    ``kind`` distinguishes the positive cumulative ACK from the negative
    acknowledgements the reliability layer uses: ``"nak"`` (sequence gap
    detected — go back to ``msn + 1``) and ``"rnr"`` (receiver not ready —
    back off, then resend from ``msn + 1``).
    """

    dst_qpn: int
    #: highest message sequence number consumed at the responder
    msn: int
    kind: str = "ack"  # "ack" | "nak" | "rnr"
    #: selective-repeat only: bitmap of sequences received *above* ``msn``
    #: (bit ``i`` set means ``msn + 1 + i`` is buffered at the responder).
    #: Always 0 under go-back-N.
    sack: int = 0


@dataclass
class CmMessage:
    """Connection-management datagram."""

    # CM datagrams ride the separately-protected management path (MAD-level
    # retries), which the model collapses into reliable delivery.
    fault_exempt = True

    kind: str  # "req" | "rep" | "rtu" | "rej" | "disconnect"
    port: int
    src_qpn: int = 0
    dst_qpn: int = 0
    #: destination host name on a multi-host fabric (REQ only — every
    #: other kind is routed by ``dst_qpn``); empty on the classic
    #: point-to-point wire, where the peer is implicit
    dst_lid: str = ""
    private_data: Dict[str, Any] = field(default_factory=dict)

    def wire_bytes(self) -> int:
        return CM_WIRE_BYTES


@dataclass
class TermMessage:
    """Notification that the sending QP entered a fatal error state.

    Models the CM-level disconnect/terminate detection a real stack gets
    from DREQ or QP-event hardware paths, so it is exempt from wire faults
    — a dying endpoint must be able to tell its peer even on a bad wire.
    """

    fault_exempt = True

    dst_qpn: int
    reason: str = ""

    def wire_bytes(self) -> int:
        return HEADER_BYTES
