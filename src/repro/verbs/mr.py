"""Memory regions and protection domains.

RDMA requires user memory to be *registered* before the HCA may touch it.
Registration yields a local key (``lkey``) used in scatter/gather entries
and a remote key (``rkey``) that, together with a virtual address, lets the
peer target the region with RDMA READ/WRITE.  The simulation enforces the
same discipline: every transfer is bounds- and access-checked against a
registered region, so the EXS layer cannot cheat.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..hosts.memory import Buffer
from .enums import Access
from .errors import RemoteAccessError, VerbsError

__all__ = ["MemoryRegion", "ProtectionDomain"]


class MemoryRegion:
    """A registered window over a :class:`~repro.hosts.memory.Buffer`."""

    def __init__(self, pd: "ProtectionDomain", buffer: Buffer, access: Access, lkey: int, rkey: int) -> None:
        self.pd = pd
        self.buffer = buffer
        self.access = access
        self.lkey = lkey
        self.rkey = rkey
        self.valid = True

    @property
    def addr(self) -> int:
        """Starting virtual address of the registered range."""
        return self.buffer.addr

    @property
    def length(self) -> int:
        return self.buffer.nbytes

    def contains(self, addr: int, nbytes: int) -> bool:
        return self.addr <= addr and addr + nbytes <= self.addr + self.length

    def offset_of(self, addr: int) -> int:
        """Translate a virtual address within the region to a buffer offset."""
        if not (self.addr <= addr <= self.addr + self.length):
            raise RemoteAccessError(f"address 0x{addr:x} outside region")
        return addr - self.addr

    def view(self, addr: int, nbytes: int) -> Optional[memoryview]:
        """Zero-copy view of ``[addr, addr+nbytes)`` of the registered buffer.

        The simulated HCA's DMA engine reads registered memory through
        this (``None`` for synthetic buffers); bounds are checked via
        :meth:`offset_of`, access rights by the caller's :meth:`require`.
        """
        return self.buffer.view(self.offset_of(addr), nbytes)

    def require(self, addr: int, nbytes: int, access: Access) -> None:
        """Raise unless [addr, addr+nbytes) is inside and *access* is allowed."""
        if not self.valid:
            raise RemoteAccessError("memory region has been deregistered")
        if not self.contains(addr, nbytes):
            raise RemoteAccessError(
                f"range [0x{addr:x}, +{nbytes}) outside region [0x{self.addr:x}, +{self.length})"
            )
        if access & self.access != access:
            raise RemoteAccessError(f"region lacks access {access!r} (has {self.access!r})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MR lkey={self.lkey} rkey={self.rkey} addr=0x{self.addr:x} len={self.length}>"


class ProtectionDomain:
    """Registry of memory regions belonging to one device context."""

    _keys = itertools.count(0x1000)

    def __init__(self, device: "object") -> None:
        self.device = device
        self._by_lkey: Dict[int, MemoryRegion] = {}
        self._by_rkey: Dict[int, MemoryRegion] = {}

    def register(self, buffer: Buffer, access: Access = Access.remote()) -> MemoryRegion:
        """Register *buffer* and return the new region."""
        lkey = next(self._keys)
        rkey = next(self._keys)
        mr = MemoryRegion(self, buffer, access, lkey, rkey)
        self._by_lkey[lkey] = mr
        self._by_rkey[rkey] = mr
        return mr

    def deregister(self, mr: MemoryRegion) -> None:
        """Invalidate a region; later wire accesses to it fail."""
        if not mr.valid:
            raise VerbsError("region already deregistered")
        mr.valid = False
        del self._by_lkey[mr.lkey]
        del self._by_rkey[mr.rkey]

    def lookup_lkey(self, lkey: int) -> MemoryRegion:
        mr = self._by_lkey.get(lkey)
        if mr is None:
            raise RemoteAccessError(f"unknown lkey {lkey}")
        return mr

    def lookup_rkey(self, rkey: int) -> Optional[MemoryRegion]:
        return self._by_rkey.get(rkey)

    @property
    def region_count(self) -> int:
        return len(self._by_lkey)
