"""Connection manager (rdma_cm analogue) for the point-to-point fabric.

Implements the three-way REQ → REP → RTU rendezvous used by ``rdma_cm``:

* the passive side listens on a port and receives
  :class:`ConnectionRequest` objects;
* :meth:`ConnectionRequest.accept` binds a QP and returns a REP (carrying
  opaque ``private_data`` — UNH EXS uses this to exchange the intermediate
  buffer address/rkey and credit configuration);
* the active side's :meth:`ConnectionManager.connect` completes when the
  REP arrives, then confirms with RTU.

The handshake timing matters for the protocol under study: the passive
side's ``accept`` returns roughly half an RTT *before* the active side's
``connect`` does, so receives posted immediately after ``accept`` generate
ADVERTs that race the REP to the sender (see DESIGN.md §5).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Tuple

from ..simnet import Event, Simulator, Store
from .device import RdmaDevice
from .errors import VerbsError
from .qp import QueuePair
from .wire import CmMessage

__all__ = ["ConnectionManager", "CmListener", "ConnectionRequest"]


class ConnectionRequest:
    """An incoming connection awaiting :meth:`accept` or :meth:`reject`."""

    def __init__(self, cm: "ConnectionManager", port: int, remote_qpn: int, private_data: Dict[str, Any]) -> None:
        self.cm = cm
        self.port = port
        self.remote_qpn = remote_qpn
        self.private_data = private_data
        #: fires when the RTU arrives (rdma_cm ESTABLISHED on the passive side)
        self.established: Event = Event(cm.sim)
        self._answered = False

    def accept(self, qp: QueuePair, private_data: Optional[Dict[str, Any]] = None) -> QueuePair:
        """Bind *qp* to the requester and send the REP.

        The QP is usable immediately on return — receives may be posted
        before the RTU arrives, exactly as with real rdma_cm.
        """
        if self._answered:
            raise VerbsError("connection request already answered")
        self._answered = True
        qp.connect(self.remote_qpn)
        self.cm._pending_rtu[qp.qpn] = self
        self.cm.device.send_cm(
            CmMessage(
                kind="rep",
                port=self.port,
                src_qpn=qp.qpn,
                dst_qpn=self.remote_qpn,
                private_data=dict(private_data or {}),
            )
        )
        return qp

    def reject(self, reason: str = "") -> None:
        if self._answered:
            raise VerbsError("connection request already answered")
        self._answered = True
        self.cm.device.send_cm(
            CmMessage(
                kind="rej",
                port=self.port,
                dst_qpn=self.remote_qpn,
                private_data={"reason": reason},
            )
        )


class CmListener:
    """A passive endpoint bound to a port; yields connection requests."""

    def __init__(self, cm: "ConnectionManager", port: int) -> None:
        self.cm = cm
        self.port = port
        self._incoming: Store = Store(cm.sim)

    def get_request(self) -> Event:
        """Event firing with the next :class:`ConnectionRequest`."""
        return self._incoming.get()

    @property
    def backlog(self) -> int:
        return len(self._incoming)

    def close(self) -> None:
        self.cm._listeners.pop(self.port, None)


class ConnectionRejected(VerbsError):
    """The passive side rejected the connection."""


class ConnectionManager:
    """Per-device CM endpoint."""

    def __init__(self, device: RdmaDevice) -> None:
        self.device = device
        self.sim: Simulator = device.sim
        self._listeners: Dict[int, CmListener] = {}
        #: active-side connects awaiting REP, keyed by our qpn
        self._pending_rep: Dict[int, tuple] = {}  # qpn -> (done event, QueuePair)
        #: passive-side accepts awaiting RTU, keyed by our qpn
        self._pending_rtu: Dict[int, ConnectionRequest] = {}
        device.cm_handler = self._on_cm

    # -- passive side ---------------------------------------------------
    def listen(self, port: int) -> CmListener:
        if port in self._listeners:
            raise VerbsError(f"port {port} already listening")
        listener = CmListener(self, port)
        self._listeners[port] = listener
        return listener

    # -- active side ------------------------------------------------------
    def connect(self, port: int, qp: QueuePair, private_data: Optional[Dict[str, Any]] = None,
                *, to: Optional[str] = None) -> Event:
        """Start connecting *qp* to *port* on the peer.

        Returns an event that succeeds with ``(remote_qpn, private_data)``
        from the REP, after which the QP is connected and RTU has been sent.
        On a multi-host fabric *to* names the destination host (the REQ is
        the one CM datagram that cannot be routed by QPN); the classic
        point-to-point wire has an implicit peer and ignores it.
        """
        done = Event(self.sim)
        # remember qp alongside the event so the REP handler can bind it
        self._pending_rep[qp.qpn] = (done, qp)
        self.device.send_cm(
            CmMessage(
                kind="req",
                port=port,
                src_qpn=qp.qpn,
                dst_lid=to or "",
                private_data=dict(private_data or {}),
            )
        )
        return done

    # -- dispatch ---------------------------------------------------------
    def _on_cm(self, msg: CmMessage) -> None:
        if msg.kind == "req":
            listener = self._listeners.get(msg.port)
            if listener is None:
                self.device.send_cm(
                    CmMessage(kind="rej", port=msg.port, dst_qpn=msg.src_qpn,
                              private_data={"reason": "connection refused"})
                )
                return
            listener._incoming.put(
                ConnectionRequest(self, msg.port, msg.src_qpn, msg.private_data)
            )
        elif msg.kind == "rep":
            pending = self._pending_rep.pop(msg.dst_qpn, None)
            if pending is None:
                raise VerbsError("REP with no pending connect")
            done, qp = pending
            qp.connect(msg.src_qpn)
            self.device.send_cm(
                CmMessage(kind="rtu", port=msg.port, src_qpn=qp.qpn, dst_qpn=msg.src_qpn)
            )
            done.succeed((msg.src_qpn, msg.private_data))
        elif msg.kind == "rtu":
            req = self._pending_rtu.pop(msg.dst_qpn, None)
            if req is not None and not req.established.triggered:
                req.established.succeed()
        elif msg.kind == "rej":
            pending = self._pending_rep.pop(msg.dst_qpn, None)
            if pending is not None:
                pending[0].fail(ConnectionRejected(msg.private_data.get("reason", "rejected")))
        else:  # pragma: no cover - defensive
            raise VerbsError(f"unknown CM message kind {msg.kind!r}")
