"""RC transport reliability: retransmission, NAK/RNR recovery, QP teardown.

The device's base transport assumes a lossless wire, which is what RC
hardware *presents* to verbs consumers — but only because the HCA runs
exactly this machinery underneath: every request carries a PSN, the
responder ACKs cumulatively and NAKs sequence gaps, and the requester
retries on a timeout with bounded attempts (``retry_cnt`` / ``rnr_retry``
in ``ibv_qp_attr``) before moving the QP to ERROR and flushing its work
queues with error completions.

:class:`ReliabilityEngine` implements that machinery for the simulated
device, per QP:

* **Requester side** — every transmitted message is held in an
  insertion-ordered unacked window.  A retransmission timer (exponential
  backoff, capped) re-sends the whole window go-back-N style when the
  responder stays silent; ``retry_cnt`` consecutive timeouts move the QP
  to ERROR with a ``RETRY_EXC_ERR`` completion.  NAKs trigger an immediate
  go-back-N; RNR NAKs pause for ``rnr_timeout_ns`` then re-send, with a
  separate ``rnr_retry`` budget.
* **Responder side** — arrivals are sequence-checked against the expected
  next message: duplicates are dropped (and re-ACKed so the sender can
  advance), future messages raise a (rate-limited) NAK, and SEND/WWI
  arrivals with an empty receive queue raise an RNR NAK instead of the
  hard :class:`~repro.verbs.errors.ReceiverNotReady` error.

Timer discipline: the engine keeps at most one live timer per QP, using a
generation counter to invalidate superseded calendar entries (the DES
kernel has no cancel).  The timer fires at the earliest possible deadline
and re-arms itself against ``last_progress_ns``, so ACK arrivals never
schedule anything — the hot path stays allocation-free.

Retransmission replays the *original* message object, payload included —
no bytes are copied into the window.  With the zero-copy payload plane
(:mod:`repro.hosts.memory`) that payload may be a live ``memoryview`` of
the sender's buffer; this is safe because a range stays pinned until the
cumulative ACK that empties it from this window, and the pin is exactly
what entitles the requester to replay identical bytes go-back-N style.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .enums import Opcode, WCStatus
from .wire import DataMessage

if TYPE_CHECKING:  # pragma: no cover
    from .device import RdmaDevice
    from .qp import QueuePair
    from .wr import SendWR

__all__ = ["ReliabilityConfig", "ReliabilityStats", "ReliabilityEngine",
           "ACCEPT", "DUPLICATE", "FUTURE",
           "MODE_GO_BACK_N", "MODE_SELECTIVE_REPEAT"]

#: verdicts from :meth:`ReliabilityEngine.check_incoming`
ACCEPT = "accept"
DUPLICATE = "duplicate"
FUTURE = "future"

#: reliability disciplines selectable via :attr:`ReliabilityConfig.mode`
MODE_GO_BACK_N = "gobackn"
MODE_SELECTIVE_REPEAT = "selective_repeat"


@dataclass(frozen=True)
class ReliabilityConfig:
    """Retry/timeout knobs, mirroring ``ibv_qp_attr`` semantics."""

    #: base requester timeout before the first retransmission
    retry_timeout_ns: int = 500_000
    #: consecutive timeouts tolerated before the QP goes to ERROR
    retry_cnt: int = 7
    #: RNR NAKs tolerated before the QP goes to ERROR
    rnr_retry: int = 7
    #: pause after an RNR NAK before re-sending
    rnr_timeout_ns: int = 200_000
    #: multiplicative backoff applied per consecutive timeout
    backoff: float = 2.0
    #: ceiling on the backed-off timeout
    max_timeout_ns: int = 50_000_000
    #: reliability discipline: :data:`MODE_GO_BACK_N` (cumulative ACK, whole
    #: window resent on loss) or :data:`MODE_SELECTIVE_REPEAT` (SACK bitmap
    #: piggybacked on ACKs, out-of-order buffering, per-frame retransmit
    #: deadlines).
    mode: str = MODE_GO_BACK_N
    #: hard cap on the backed-off RTO; ``None`` falls back to
    #: ``max_timeout_ns``.  The cap is enforced *during* the backoff
    #: computation, so a large attempt count can never overflow.
    max_rto_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.retry_timeout_ns <= 0 or self.rnr_timeout_ns <= 0:
            raise ValueError("timeouts must be positive")
        if self.retry_cnt < 0 or self.rnr_retry < 0:
            raise ValueError("retry budgets must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if self.mode not in (MODE_GO_BACK_N, MODE_SELECTIVE_REPEAT):
            raise ValueError(f"unknown reliability mode {self.mode!r}")
        if self.max_rto_ns is not None and self.max_rto_ns <= 0:
            raise ValueError("max_rto_ns must be positive")

    @classmethod
    def for_path(cls, one_way_ns: int, **kw: object) -> "ReliabilityConfig":
        """Config scaled to a path's one-way latency.

        The timeout must comfortably exceed a round trip plus serialization
        of a large message, or a slow-but-healthy path retransmits
        spuriously; the floor keeps short paths from sub-RTT timers.
        """
        rto = max(2_000_000, 8 * int(one_way_ns))
        kw.setdefault("retry_timeout_ns", rto)  # type: ignore[arg-type]
        kw.setdefault("max_timeout_ns", max(rto * 100, 50_000_000))  # type: ignore[arg-type]
        return cls(**kw)  # type: ignore[arg-type]


@dataclass
class ReliabilityStats:
    """Cumulative per-device reliability counters (feed the obs registry)."""

    retransmits: int = 0
    timeouts: int = 0
    naks_sent: int = 0
    naks_received: int = 0
    rnr_naks_sent: int = 0
    rnr_naks_received: int = 0
    duplicates_dropped: int = 0
    gaps_detected: int = 0
    corrupt_discarded: int = 0
    qp_fatal: int = 0
    #: completed loss-recovery episodes and their latency
    recoveries: int = 0
    recovery_ns_total: int = 0
    recovery_ns_max: int = 0
    #: stale cumulative ACK/NAK/RNR frames ignored (dup fault replays)
    stale_acks_ignored: int = 0
    #: selective repeat: frames marked received via a SACK bitmap
    sacked_frames: int = 0
    #: selective repeat: out-of-order frames buffered at the responder
    ooo_buffered: int = 0
    #: selective repeat: buffered frames released in order after a gap fill
    ooo_released: int = 0


class _SentMessage:
    """One transmitted-but-unacked message, replayable verbatim."""

    __slots__ = ("seq", "wr", "msg", "wire_bytes", "extra_tx_ns", "request_acked",
                 "sacked", "last_tx_ns")

    def __init__(self, seq: int, wr: "SendWR", msg: DataMessage,
                 wire_bytes: int, extra_tx_ns: int, now: int) -> None:
        self.seq = seq
        self.wr = wr
        self.msg = msg
        self.wire_bytes = wire_bytes
        self.extra_tx_ns = extra_tx_ns
        #: READ only: the cumulative ACK covered the request, but the
        #: response (which is the real completion) is still outstanding.
        self.request_acked = False
        #: selective repeat: the responder reported this frame received
        #: out of order — it must not be retransmitted, but completes only
        #: when the cumulative ack covers it (completions stay in order).
        self.sacked = False
        #: selective repeat: last (re)transmission time, for the per-frame
        #: retransmit deadline
        self.last_tx_ns = now


class _QpRel:
    """Per-QP requester/responder reliability state."""

    __slots__ = ("unacked", "attempts", "rnr_attempts", "highest_acked",
                 "timer_gen", "timer_armed", "last_progress_ns",
                 "recovering_since", "last_nak_for", "fatal", "ooo")

    def __init__(self) -> None:
        #: seq -> _SentMessage, insertion-ordered (dict preserves order)
        self.unacked: Dict[int, _SentMessage] = {}
        self.attempts = 0
        self.rnr_attempts = 0
        self.highest_acked = -1
        self.timer_gen = 0
        self.timer_armed = False
        self.last_progress_ns = 0
        self.recovering_since: Optional[int] = None
        #: responder: expected seq we already NAKed (rate-limits NAK storms)
        self.last_nak_for: Optional[int] = None
        self.fatal = False
        #: responder, selective repeat: seq -> buffered out-of-order arrival
        self.ooo: Dict[int, DataMessage] = {}


class ReliabilityEngine:
    """Per-device RC reliability machinery (see module docstring)."""

    def __init__(self, device: "RdmaDevice", config: ReliabilityConfig) -> None:
        self.device = device
        self.config = config
        self.stats = ReliabilityStats()
        self._qp_state: Dict[int, _QpRel] = {}
        #: True when running the selective-repeat discipline
        self.selective = config.mode == MODE_SELECTIVE_REPEAT

    def _st(self, qp: "QueuePair") -> _QpRel:
        st = self._qp_state.get(qp.qpn)
        if st is None:
            st = self._qp_state[qp.qpn] = _QpRel()
        return st

    def _emit(self, kind: str, qp: "QueuePair", **fields: object) -> None:
        """Emit a reliability event to the host's protocol tracer, if any.

        These are the retransmit/NAK/RNR kinds that make chaos-run
        summaries meaningful (:func:`repro.trace.summarize`).
        """
        tracer = getattr(self.device.host, "tracer", None)
        if tracer is not None:
            tracer.emit(self.device.sim.now, qp.qpn, self.device.host.name,
                        kind, **fields)

    # ------------------------------------------------------------------
    # requester side
    # ------------------------------------------------------------------
    def on_transmit(self, qp: "QueuePair", wr: "SendWR", msg: DataMessage,
                    wire_bytes: int, extra_tx_ns: int) -> None:
        """Record a freshly transmitted message and ensure a timer covers it."""
        st = self._st(qp)
        now = self.device.sim.now
        st.unacked[msg.seq] = _SentMessage(msg.seq, wr, msg, wire_bytes,
                                           extra_tx_ns, now)
        if not st.timer_armed:
            st.last_progress_ns = now
            self._arm(qp, st, self._current_rto(st))

    def _current_rto(self, st: _QpRel) -> int:
        """Backed-off RTO, clamped to ``max_rto_ns``/``max_timeout_ns``.

        The backoff is applied stepwise and stops as soon as it crosses the
        cap: evaluating ``backoff ** attempts`` first would overflow to an
        effectively unbounded timer after a long link-down window.
        """
        cfg = self.config
        cap = cfg.max_rto_ns if cfg.max_rto_ns is not None else cfg.max_timeout_ns
        rto = float(cfg.retry_timeout_ns)
        if cfg.backoff > 1.0:
            for _ in range(st.attempts):
                rto *= cfg.backoff
                if rto >= cap:
                    return cap
        return min(int(rto), cap)

    def _arm(self, qp: "QueuePair", st: _QpRel, delay: int) -> None:
        st.timer_gen += 1
        st.timer_armed = True
        self.device.sim.call_in(delay, self._on_timer, (qp, st.timer_gen))

    def _on_timer(self, arg: Tuple["QueuePair", int]) -> None:
        qp, gen = arg
        st = self._st(qp)
        if st.fatal or gen != st.timer_gen:
            return  # superseded or dead: stale calendar entry, no-op
        st.timer_armed = False
        if not st.unacked:
            return  # everything acked since arming; go quiet
        if self.selective:
            self._on_timer_sr(qp, st)
            return
        sim = self.device.sim
        rto = self._current_rto(st)
        elapsed = sim.now - st.last_progress_ns
        if elapsed < rto:
            # Progress happened since arming: push the deadline out instead
            # of retransmitting (ACK arrivals never touch the calendar).
            self._arm(qp, st, rto - elapsed)
            return
        st.attempts += 1
        self.stats.timeouts += 1
        if st.attempts > self.config.retry_cnt:
            self.fatal(qp, WCStatus.RETRY_EXC_ERR)
            return
        if st.recovering_since is None:
            st.recovering_since = sim.now
        if sim.tracing:
            sim.trace("rel", f"qp{qp.qpn} timeout#{st.attempts} "
                             f"retransmit {len(st.unacked)} msgs")
        self._retransmit_window(qp, st, cause="timeout", attempt=st.attempts)
        st.last_progress_ns = sim.now
        self._arm(qp, st, self._current_rto(st))

    def _on_timer_sr(self, qp: "QueuePair", st: _QpRel) -> None:
        """Selective repeat: retransmit only frames past their own deadline.

        One calendar timer per QP still covers the whole window; each frame
        carries its own last-transmission time, so a firing that finds no
        overdue un-SACKed frame simply re-arms at the earliest deadline.
        """
        sim = self.device.sim
        rto = self._current_rto(st)
        overdue = [sm for sm in st.unacked.values()
                   if not sm.sacked and sim.now - sm.last_tx_ns >= rto]
        if not overdue:
            next_deadline = min(
                (sm.last_tx_ns + rto for sm in st.unacked.values()
                 if not sm.sacked),
                default=sim.now + rto)
            self._arm(qp, st, max(next_deadline - sim.now, 1))
            return
        st.attempts += 1
        self.stats.timeouts += 1
        if st.attempts > self.config.retry_cnt:
            self.fatal(qp, WCStatus.RETRY_EXC_ERR)
            return
        if st.recovering_since is None:
            st.recovering_since = sim.now
        if sim.tracing:
            sim.trace("rel", f"qp{qp.qpn} sr-timeout#{st.attempts} "
                             f"retransmit {len(overdue)} msgs")
        self._resend(qp, overdue, cause="timeout", attempt=st.attempts)
        st.last_progress_ns = sim.now
        self._arm(qp, st, self._current_rto(st))

    def _resend(self, qp: "QueuePair", frames: List[_SentMessage],
                **why: object) -> None:
        tx = self.device.tx
        now = self.device.sim.now
        for sm in frames:
            tx.transmit(sm.msg, sm.wire_bytes, extra_tx_ns=sm.extra_tx_ns)
            sm.last_tx_ns = now
        self.stats.retransmits += len(frames)
        if frames:
            self._emit("retransmit", qp, count=len(frames), **why)

    def _retransmit_window(self, qp: "QueuePair", st: _QpRel,
                           **why: object) -> None:
        self._resend(qp, list(st.unacked.values()), **why)

    def _retransmit_holes(self, qp: "QueuePair", st: _QpRel,
                          **why: object) -> None:
        """Selective repeat NAK response: resend only the known holes.

        A hole is an un-SACKed frame at or below the highest SACKed seq.
        With no SACK information yet, only the window head (the frame the
        NAK names as missing) is resent — everything later may still be in
        flight.
        """
        max_sacked = max(
            (seq for seq, sm in st.unacked.items() if sm.sacked), default=None)
        targets: List[_SentMessage] = []
        for seq, sm in st.unacked.items():
            if sm.sacked:
                continue
            if max_sacked is None:
                targets.append(sm)
                break
            if seq > max_sacked:
                break
            targets.append(sm)
        self._resend(qp, targets, **why)

    def _progress(self, st: _QpRel) -> None:
        sim = self.device.sim
        st.last_progress_ns = sim.now
        st.attempts = 0
        st.rnr_attempts = 0
        if st.recovering_since is not None:
            dt = sim.now - st.recovering_since
            self.stats.recoveries += 1
            self.stats.recovery_ns_total += dt
            if dt > self.stats.recovery_ns_max:
                self.stats.recovery_ns_max = dt
            st.recovering_since = None

    def _complete_through(self, qp: "QueuePair", st: _QpRel,
                          msn: int) -> List["SendWR"]:
        """Complete the window prefix covered by a cumulative *msn*.

        READ requests covered by *msn* are marked acked but stay in the
        window until their response arrives — the response is the real
        completion (and its loss must still be recoverable by timeout).
        Returns the completed WRs in order.
        """
        done: List["SendWR"] = []
        for seq in list(st.unacked):
            if seq > msn:
                break
            sm = st.unacked[seq]
            if sm.msg.opcode is Opcode.RDMA_READ and not sm.msg.is_read_response:
                sm.request_acked = True
                continue
            del st.unacked[seq]
            qp.inflight.pop(seq, None)
            done.append(sm.wr)
        return done

    def _apply_sack(self, st: _QpRel, msn: int, sack: int) -> None:
        """Mark window frames the responder reports buffered out of order."""
        seq = msn + 1
        while sack:
            if sack & 1:
                sm = st.unacked.get(seq)
                if sm is not None and not sm.sacked:
                    sm.sacked = True
                    self.stats.sacked_frames += 1
            sack >>= 1
            seq += 1

    def on_ack(self, qp: "QueuePair", msn: int, sack: int = 0) -> List["SendWR"]:
        """Cumulative ACK: complete the covered window prefix.

        An *msn* at or below the already-acked point is a stale duplicate
        (the dup fault replays data frames, and every duplicate is re-ACKed)
        — it carries no new progress and must not reset the retransmission
        timer or the attempt counters.  A piggybacked SACK bitmap is applied
        either way: it can carry fresh receive information even when the
        cumulative point is old.
        """
        st = self._st(qp)
        if sack:
            self._apply_sack(st, msn, sack)
        if msn <= st.highest_acked:
            self.stats.stale_acks_ignored += 1
            return []
        done = self._complete_through(qp, st, msn)
        st.highest_acked = msn
        self._progress(st)
        return done

    def on_read_response(self, qp: "QueuePair", seq: int) -> Optional["SendWR"]:
        """READ response arrival; returns the WR, or ``None`` for a duplicate."""
        st = self._st(qp)
        sm = st.unacked.pop(seq, None)
        if sm is None:
            self.stats.duplicates_dropped += 1
            return None
        qp.inflight.pop(seq, None)
        self._progress(st)
        return sm.wr

    def on_nak(self, qp: "QueuePair", msn: int, sack: int = 0) -> List["SendWR"]:
        """Sequence-gap NAK: ack the prefix, then retransmit the gap.

        Go-back-N resends the whole window from ``msn+1``; selective repeat
        resends only the known holes (un-SACKed frames below the highest
        SACKed seq).  A NAK whose *msn* regressed below the already-acked
        point is stale (replayed by the dup fault or overtaken by a newer
        ACK) and is ignored outright — retransmitting from it would only
        extend the timer and delay recovery.
        """
        st = self._st(qp)
        self.stats.naks_received += 1
        if sack:
            self._apply_sack(st, msn, sack)
        if msn < st.highest_acked:
            self.stats.stale_acks_ignored += 1
            return []
        done: List["SendWR"] = []
        if msn > st.highest_acked:
            done = self._complete_through(qp, st, msn)
            st.highest_acked = msn
            self._progress(st)
        if st.fatal:
            return done
        if st.recovering_since is None:
            st.recovering_since = self.device.sim.now
        if st.unacked:
            if self.device.sim.tracing:
                self.device.sim.trace(
                    "rel", f"qp{qp.qpn} nak msn={msn} "
                           f"{'holes' if self.selective else 'go-back'}-"
                           f"{len(st.unacked)}")
            if self.selective:
                self._retransmit_holes(qp, st, cause="nak", msn=msn)
            else:
                self._retransmit_window(qp, st, cause="nak", msn=msn)
            st.last_progress_ns = self.device.sim.now
            if not st.timer_armed:
                self._arm(qp, st, self._current_rto(st))
        return done

    def on_rnr(self, qp: "QueuePair", msn: int, sack: int = 0) -> List["SendWR"]:
        """RNR NAK: ack the prefix, pause, then re-send the window.

        Stale RNR frames (msn below the acked point) are ignored without
        consuming the ``rnr_retry`` budget or superseding the live timer.
        """
        st = self._st(qp)
        self.stats.rnr_naks_received += 1
        if sack:
            self._apply_sack(st, msn, sack)
        if msn < st.highest_acked:
            self.stats.stale_acks_ignored += 1
            return []
        done: List["SendWR"] = []
        if msn > st.highest_acked:
            done = self._complete_through(qp, st, msn)
            st.highest_acked = msn
            self._progress(st)
        if st.fatal:
            return done
        st.rnr_attempts += 1
        if st.rnr_attempts > self.config.rnr_retry:
            self.fatal(qp, WCStatus.RNR_RETRY_EXC_ERR)
            return done
        if st.recovering_since is None:
            st.recovering_since = self.device.sim.now
        # Supersede the retransmission timer with the RNR pause.
        st.timer_gen += 1
        st.timer_armed = True
        self.device.sim.call_in(
            self.config.rnr_timeout_ns, self._on_rnr_timer, (qp, st.timer_gen))
        return done

    def _on_rnr_timer(self, arg: Tuple["QueuePair", int]) -> None:
        qp, gen = arg
        st = self._st(qp)
        if st.fatal or gen != st.timer_gen:
            return
        st.timer_armed = False
        if not st.unacked:
            return
        if self.selective:
            # The window head must go out even if SACKed: the responder
            # buffered it before hitting RNR, and only its in-order
            # re-arrival re-triggers delivery once receives are posted.
            frames = [sm for i, sm in enumerate(st.unacked.values())
                      if i == 0 or not sm.sacked]
            self._resend(qp, frames, cause="rnr")
        else:
            self._retransmit_window(qp, st, cause="rnr")
        st.last_progress_ns = self.device.sim.now
        self._arm(qp, st, self._current_rto(st))

    # ------------------------------------------------------------------
    # responder side
    # ------------------------------------------------------------------
    def check_incoming(self, qp: "QueuePair", msg: DataMessage) -> str:
        """Sequence-check an arrival: ``accept``/``duplicate``/``future``."""
        expected = self.device._consumed_msn.get(qp.qpn, -1) + 1
        if msg.seq == expected:
            self._st(qp).last_nak_for = None
            return ACCEPT
        if msg.seq < expected:
            return DUPLICATE
        if self.selective and msg.seq in self._st(qp).ooo:
            return DUPLICATE  # already buffered out of order
        self.stats.gaps_detected += 1
        return FUTURE

    def buffer_future(self, qp: "QueuePair", msg: DataMessage) -> None:
        """Selective repeat: hold a future frame for in-order release."""
        st = self._st(qp)
        st.ooo[msg.seq] = msg
        self.stats.ooo_buffered += 1

    def peek_buffered(self, qp: "QueuePair", seq: int) -> Optional[DataMessage]:
        st = self._qp_state.get(qp.qpn)
        return st.ooo.get(seq) if st is not None else None

    def pop_buffered(self, qp: "QueuePair", seq: int) -> None:
        st = self._qp_state.get(qp.qpn)
        if st is not None and st.ooo.pop(seq, None) is not None:
            self.stats.ooo_released += 1

    def purge_buffered_through(self, qp: "QueuePair", msn: int) -> None:
        """Drop buffered frames the cumulative point has overtaken (a
        blocked frame can be re-delivered in order by an RNR retransmit
        while its buffered copy is still held)."""
        st = self._qp_state.get(qp.qpn)
        if st is None:
            return
        for seq in [s for s in st.ooo if s <= msn]:
            del st.ooo[seq]

    def has_buffered(self, qp: "QueuePair") -> bool:
        st = self._qp_state.get(qp.qpn)
        return bool(st is not None and st.ooo)

    def sack_bitmap(self, qp: "QueuePair") -> int:
        """Bitmap of buffered seqs above the consumed msn (bit i ⇒ msn+1+i)."""
        st = self._qp_state.get(qp.qpn)
        if st is None or not st.ooo:
            return 0
        base = self.device._consumed_msn.get(qp.qpn, -1) + 1
        bits = 0
        for seq in st.ooo:
            if seq >= base:
                bits |= 1 << (seq - base)
        return bits

    def send_nak(self, qp: "QueuePair") -> None:
        """NAK the current gap (once per expected seq, to avoid storms)."""
        st = self._st(qp)
        expected = self.device._consumed_msn.get(qp.qpn, -1) + 1
        if st.last_nak_for == expected:
            return
        st.last_nak_for = expected
        self.stats.naks_sent += 1
        self._emit("nak", qp, expected=expected)
        self.device._send_ack_message(qp, kind="nak")

    def send_rnr(self, qp: "QueuePair") -> None:
        self.stats.rnr_naks_sent += 1
        self._emit("rnr", qp)
        self.device._send_ack_message(qp, kind="rnr")

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def fatal(self, qp: "QueuePair", status: WCStatus) -> None:
        """Exhausted retries: move the QP to ERROR and flush completions."""
        st = self._st(qp)
        if st.fatal:
            return
        st.fatal = True
        st.timer_gen += 1  # invalidate any live timer
        st.timer_armed = False
        self.stats.qp_fatal += 1
        pending = [sm.wr for sm in st.unacked.values()]
        st.unacked.clear()
        st.ooo.clear()
        self.device._qp_fatal(qp, status, pending)

    def peer_terminated(self, qp: "QueuePair") -> List["SendWR"]:
        """Peer announced a fatal error: silence timers, drain the window."""
        st = self._st(qp)
        st.fatal = True
        st.timer_gen += 1
        st.timer_armed = False
        pending = [sm.wr for sm in st.unacked.values()]
        st.unacked.clear()
        st.ooo.clear()
        return pending
