"""Work requests and scatter/gather entries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..hosts.memory import Chunk
from .enums import Opcode, SendFlags
from .errors import BadWorkRequest

__all__ = ["SGE", "SendWR", "RecvWR"]


@dataclass(frozen=True)
class SGE:
    """Scatter/gather entry: (address, length, lkey)."""

    addr: int
    length: int
    lkey: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise BadWorkRequest("negative SGE length")


@dataclass
class SendWR:
    """A send-queue work request.

    For ``RDMA_WRITE`` / ``RDMA_WRITE_WITH_IMM`` the remote target is given
    by ``(remote_addr, rkey)``.  ``WRITE_WITH_IMM`` additionally consumes a
    RECV at the responder and delivers ``imm_data`` in that completion.

    ``payload`` optionally carries the actual byte-stream chunk being moved
    (see :class:`~repro.hosts.memory.Chunk`); the verbs layer treats it as
    opaque and simply materialises it at the destination.
    """

    opcode: Opcode
    wr_id: int = 0
    sge: Optional[SGE] = None
    remote_addr: int = 0
    rkey: int = 0
    imm_data: int = 0
    flags: SendFlags = SendFlags.SIGNALED
    payload: Optional[Chunk] = None
    context: Any = None

    def validate(self) -> None:
        if self.opcode in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM, Opcode.RDMA_READ):
            if self.rkey == 0:
                raise BadWorkRequest(f"{self.opcode.value} requires an rkey")
        if self.sge is None:
            raise BadWorkRequest("send WR requires an SGE")
        if self.payload is not None and self.payload.nbytes != self.sge.length:
            raise BadWorkRequest("payload length does not match SGE length")
        if SendFlags.INLINE in self.flags and self.opcode is Opcode.RDMA_READ:
            raise BadWorkRequest("RDMA_READ cannot be inline")

    @property
    def length(self) -> int:
        return self.sge.length if self.sge else 0


@dataclass(slots=True)
class RecvWR:
    """A receive-queue work request.

    A zero-length RECV (``sge=None``) is legal and is exactly what UNH EXS
    posts to absorb WRITE-WITH-IMM notifications: the data lands via RDMA,
    the RECV only conveys the immediate value.

    ``slots=True`` matters here: SRQ pools post tens of thousands of these
    during stack bring-up (one per slot at 10k-connection depths), and the
    per-instance dict is the dominant allocation cost.
    """

    wr_id: int = 0
    sge: Optional[SGE] = None
    context: Any = None

    @property
    def length(self) -> int:
        return self.sge.length if self.sge else 0
