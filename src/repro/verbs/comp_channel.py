"""Completion channels with OS wake-up latency.

When an RDMA application uses *event notification* (as all of the paper's
experiments do, §IV-B: "All tests use event notification for retrieving
RDMA completion events"), a thread blocks in the kernel on a completion
channel and is woken when an armed CQ receives a completion.  That wake-up
is **not free**: the interrupt, scheduler, and return-to-userspace path cost
several microseconds, and that latency is variable.

This latency turns out to be *load-bearing* for reproducing the paper: the
receiver's ADVERT regeneration path includes one of these wake-ups, while
the sender's send-credit return path is pure hardware ACK.  The difference
is what lets a saturating sender outrun the receiver's advertisements and
fall into indirect mode (paper Table III, Figs. 9, 11, 12).

:class:`CompletionChannel` therefore delays wake-ups by a sample from a
seeded distribution.  A thread that is already awake and polling (the
latched case) pays nothing, which models the natural batching of a busy
progress thread.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..simnet import Event, Simulator

__all__ = ["CompletionChannel", "uniform_wakeup", "fixed_wakeup"]

WakeupSampler = Callable[[random.Random], float]


def uniform_wakeup(lo_ns: int, hi_ns: int) -> WakeupSampler:
    """Wake-up latency uniform in ``[lo_ns, hi_ns]``."""

    def sample(rng: random.Random) -> float:
        return rng.uniform(float(lo_ns), float(hi_ns))

    return sample


def fixed_wakeup(ns: int) -> WakeupSampler:
    """Deterministic wake-up latency (useful in unit tests)."""

    def sample(_rng: random.Random) -> float:
        return float(ns)

    return sample


class CompletionChannel:
    """Event channel connecting CQs to a sleeping progress thread."""

    def __init__(
        self,
        sim: Simulator,
        wakeup: Optional[WakeupSampler] = None,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.wakeup = wakeup or fixed_wakeup(0)
        self._rng = random.Random(seed)
        self._waiter: Optional[Event] = None
        self._latched = 0
        #: diagnostics
        self.notifications = 0
        self.slept_wakeups = 0

    def wait(self) -> Event:
        """Return an event that fires when the channel is next notified.

        If notifications were latched while the caller was busy, the event
        fires immediately (the thread never actually slept).
        Only one waiting thread is supported — one progress thread per
        channel, as in the EXS design; calling ``wait`` again while a
        previous wait is still pending returns the *same* event, so the
        idiomatic "wait on channel OR work-queue kick" loop works.
        """
        if self._waiter is not None and not self._waiter.triggered:
            return self._waiter
        ev = Event(self.sim)
        if self._latched:
            self._latched = 0
            ev.succeed()
        else:
            self._waiter = ev
        return ev

    def notify(self) -> None:
        """Signal the channel (called by an armed CQ)."""
        self.notifications += 1
        waiter = self._waiter
        if waiter is not None and not waiter.triggered:
            self._waiter = None
            self.slept_wakeups += 1
            delay = int(round(self.wakeup(self._rng)))
            waiter.succeed(delay=delay)
        else:
            self._latched += 1
