"""Simulated RDMA verbs layer.

A software model of the OFA verbs API surface UNH EXS is built on:
protection domains, memory regions with lkeys/rkeys, RC queue pairs,
completion queues with event channels, and the SEND / RDMA WRITE /
RDMA WRITE WITH IMM / RDMA READ transfer operations, with faithful
semantics (pre-posted RECV requirement, in-order reliable delivery,
ACK-driven send completions) and an explicit timing model.
"""

from .cm import CmListener, ConnectionManager, ConnectionRequest
from .comp_channel import CompletionChannel, fixed_wakeup, uniform_wakeup
from .cq import CompletionQueue, WorkCompletion
from .device import DeviceConfig, RdmaDevice, connect_devices
from .enums import Access, Opcode, QPState, SendFlags, WCOpcode, WCStatus
from .errors import (
    BadWorkRequest,
    QPStateError,
    ReceiverNotReady,
    RemoteAccessError,
    VerbsError,
)
from .mr import MemoryRegion, ProtectionDomain
from .qp import QueuePair
from .reliability import ReliabilityConfig, ReliabilityEngine, ReliabilityStats
from .srq import SharedReceiveQueue
from .wire import HEADER_BYTES, AckMessage, CmMessage, DataMessage, TermMessage
from .wr import SGE, RecvWR, SendWR

__all__ = [
    "Access",
    "AckMessage",
    "BadWorkRequest",
    "CmListener",
    "CmMessage",
    "CompletionChannel",
    "CompletionQueue",
    "ConnectionManager",
    "ConnectionRequest",
    "DataMessage",
    "DeviceConfig",
    "HEADER_BYTES",
    "MemoryRegion",
    "Opcode",
    "ProtectionDomain",
    "QPState",
    "QPStateError",
    "QueuePair",
    "RdmaDevice",
    "ReceiverNotReady",
    "RecvWR",
    "ReliabilityConfig",
    "ReliabilityEngine",
    "ReliabilityStats",
    "RemoteAccessError",
    "SGE",
    "SharedReceiveQueue",
    "TermMessage",
    "SendFlags",
    "SendWR",
    "VerbsError",
    "WCOpcode",
    "WCStatus",
    "WorkCompletion",
    "connect_devices",
    "fixed_wakeup",
    "uniform_wakeup",
]
