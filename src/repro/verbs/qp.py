"""Reliable-connected queue pairs."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

from .cq import CompletionQueue, WorkCompletion
from .enums import Opcode, QPState, SendFlags, WCOpcode, WCStatus
from .errors import BadWorkRequest, QPStateError
from .wr import RecvWR, SendWR

if TYPE_CHECKING:  # pragma: no cover
    from .device import RdmaDevice
    from .srq import SharedReceiveQueue

__all__ = ["QueuePair"]


class QueuePair:
    """An RC queue pair bound 1:1 to a peer QP on the remote device.

    Work requests are posted asynchronously (:meth:`post_send`,
    :meth:`post_recv`); the owning device's transport engine drains the send
    queue and the remote device consumes receive-queue entries on message
    arrival.  Completions land on the attached CQs.
    """

    def __init__(
        self,
        device: "RdmaDevice",
        qpn: int,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        max_inline: int = 256,
        srq: Optional["SharedReceiveQueue"] = None,
    ) -> None:
        self.device = device
        self.qpn = qpn
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.max_inline = max_inline
        #: when set, receives come from the shared pool, not :attr:`rq`
        self.srq = srq
        self.state = QPState.RESET
        self.remote_qpn: Optional[int] = None

        self.sq: Deque[SendWR] = deque()
        self.rq: Deque[RecvWR] = deque()
        #: sends transmitted but not yet acked, keyed by message seq
        self.inflight: Dict[int, SendWR] = {}
        self._next_seq = 0
        self._last_acked = -1

        # statistics
        self.sends_posted = 0
        self.recvs_posted = 0
        self.messages_sent = 0
        self.messages_received = 0

    # ------------------------------------------------------------------
    def connect(self, remote_qpn: int) -> None:
        """Bind to the peer QP and enter the READY state."""
        if self.state is not QPState.RESET:
            raise QPStateError(f"QP {self.qpn} cannot connect from state {self.state}")
        self.remote_qpn = remote_qpn
        self.state = QPState.READY

    def to_error(self) -> None:
        self.state = QPState.ERROR

    _FLUSH_OPCODE = {
        Opcode.SEND: WCOpcode.SEND,
        Opcode.RDMA_WRITE: WCOpcode.RDMA_WRITE,
        Opcode.RDMA_WRITE_WITH_IMM: WCOpcode.RDMA_WRITE,
        Opcode.RDMA_READ: WCOpcode.RDMA_READ,
    }

    def flush(self, first_status: WCStatus, pending: Optional[list] = None) -> int:
        """Error-complete every outstanding WR (QP must already be in ERROR).

        *pending* is the reliability layer's unacked-WR list in transmission
        order; the first entry carries *first_status* (the root cause, e.g.
        RETRY_EXC_ERR) and everything after it — remaining unacked sends,
        queued SQ entries, posted RECVs — flushes with WR_FLUSH_ERR, exactly
        like a real QP draining after the fatal completion.  Returns the
        number of completions generated.
        """
        if self.state is not QPState.ERROR:
            raise QPStateError(f"flush on QP {self.qpn} in state {self.state}")
        flushed = 0
        status = first_status
        for wr in pending or ():
            self.send_cq.push(
                WorkCompletion(
                    wr_id=wr.wr_id,
                    opcode=self._FLUSH_OPCODE[wr.opcode],
                    status=status,
                    byte_len=wr.length,
                    qp_num=self.qpn,
                    context=wr.context,
                )
            )
            status = WCStatus.WR_FLUSH_ERR
            flushed += 1
        self.inflight.clear()
        while self.sq:
            wr = self.sq.popleft()
            self.send_cq.push(
                WorkCompletion(
                    wr_id=wr.wr_id,
                    opcode=self._FLUSH_OPCODE[wr.opcode],
                    status=status,
                    byte_len=wr.length,
                    qp_num=self.qpn,
                    context=wr.context,
                )
            )
            status = WCStatus.WR_FLUSH_ERR
            flushed += 1
        while self.rq:
            rwr = self.rq.popleft()
            self.recv_cq.push(
                WorkCompletion(
                    wr_id=rwr.wr_id,
                    opcode=WCOpcode.RECV,
                    status=WCStatus.WR_FLUSH_ERR,
                    byte_len=0,
                    qp_num=self.qpn,
                    context=rwr.context,
                )
            )
            flushed += 1
        return flushed

    # ------------------------------------------------------------------
    def post_send(self, wr: SendWR) -> None:
        """Queue a send work request (returns immediately)."""
        if self.state is not QPState.READY:
            raise QPStateError(f"post_send on QP {self.qpn} in state {self.state}")
        wr.validate()
        if SendFlags.INLINE in wr.flags and wr.length > self.max_inline:
            raise BadWorkRequest(
                f"inline send of {wr.length}B exceeds max_inline={self.max_inline}"
            )
        self.sq.append(wr)
        self.sends_posted += 1
        self.device.kick_send(self)

    def post_recv(self, wr: RecvWR) -> None:
        """Queue a receive work request (returns immediately)."""
        if self.state is QPState.ERROR:
            raise QPStateError(f"post_recv on QP {self.qpn} in ERROR state")
        if self.srq is not None:
            raise BadWorkRequest(
                f"QP {self.qpn} is SRQ-attached; post receives to the SRQ"
            )
        self.rq.append(wr)
        self.recvs_posted += 1

    # -- receive-source indirection (per-QP RQ or shared SRQ) ----------
    def has_recv(self) -> bool:
        """True when a receive WR is available for an arriving message."""
        if self.srq is not None:
            return len(self.srq) > 0
        return bool(self.rq)

    def take_recv(self) -> RecvWR:
        """Consume the next receive WR (RQ head, or the SRQ pool's)."""
        if self.srq is not None:
            return self.srq.take()
        return self.rq.popleft()

    # ------------------------------------------------------------------
    # used by the transport engine
    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def ack_up_to(self, msn: int) -> list[SendWR]:
        """Cumulative ack: pop and return all in-flight WRs with seq <= msn."""
        done = []
        for seq in sorted(self.inflight):
            if seq <= msn:
                done.append(self.inflight.pop(seq))
        if msn > self._last_acked:
            self._last_acked = msn
        return done

    @property
    def send_queue_depth(self) -> int:
        return len(self.sq)

    @property
    def recv_queue_depth(self) -> int:
        return len(self.rq)
