"""Hardware profiles: the testbeds of the paper's evaluation, as parameters.

Two physical testbeds are modelled (paper §IV-B), plus the QDR setup the
paper mentions in passing:

* :data:`FDR_INFINIBAND` — two nodes with Mellanox ConnectX-3 FDR HCAs
  through an FDR switch (Xeon E5-2690, PCIe gen 3).  Calibration anchors:
  measured one-way latency 0.76 µs for 64 B (``ib_write_lat``); direct
  stream throughput 35–46.5 Gb/s; indirect 20–27 Gb/s (memcpy-bound).
* :data:`ROCE_10G_WAN` — ConnectX-2 at 10 GbE RoCE through an Anue
  network emulator adding a fixed 48 ms RTT (Xeon X5670, PCIe gen 2).
* :data:`QDR_INFINIBAND` — the paper notes that on QDR "the indirect
  protocol compares much more favorably ... since the maximum possible
  throughput of QDR is not dramatically higher than the memory copy
  throughput"; this profile exists to reproduce that remark as an
  ablation.

Every number that is *not* stated in the paper is a documented calibration
choice; the ablation benchmarks vary the influential ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ..hosts.cpu import CpuCostModel
from ..verbs.device import DeviceConfig

__all__ = [
    "HardwareProfile",
    "FDR_INFINIBAND",
    "ROCE_10G_WAN",
    "ROCE_10G_LAN",
    "QDR_INFINIBAND",
    "PROFILES",
]


@dataclass(frozen=True)
class HardwareProfile:
    """All timing constants describing one two-node testbed."""

    name: str
    #: effective end-to-end data bandwidth of the path (wire/PCIe combined)
    link_bandwidth_bps: float
    #: base one-way propagation delay (NIC-to-NIC through the switch)
    propagation_delay_ns: int
    #: fixed per-message serialization overhead (framing, switch forwarding)
    per_message_overhead_ns: int
    #: sustained library memcpy bandwidth (bits/s) — the indirect ceiling
    copy_bandwidth_bps: float
    #: per-operation software-path costs
    cpu_costs: CpuCostModel = field(default_factory=CpuCostModel)
    #: HCA pipeline characteristics
    device: DeviceConfig = field(default_factory=DeviceConfig)
    #: completion-channel wake-up latency range (uniform), ns
    wakeup_lo_ns: int = 2_000
    wakeup_hi_ns: int = 16_000
    #: extra fixed one-way delay from a network emulator (0 = none)
    emulator_delay_ns: int = 0

    def with_overrides(self, **kw) -> "HardwareProfile":
        """A copy with some fields replaced (used by ablation benches)."""
        return replace(self, **kw)


#: FDR InfiniBand testbed (paper §IV-B1).
#: 47 Gb/s effective data rate ≈ FDR 54.5 Gb/s wire limited by PCIe gen 3
#: x8 and HCA efficiency — chosen so the direct protocol peaks around the
#: paper's 44–46.5 Gb/s once protocol overheads are paid.  3.2 GB/s memcpy
#: puts the indirect ceiling at ≈ 25 Gb/s (paper: 20–27).  The 2 MiB
#: large-message penalty reproduces the paper's Fig. 12a dip, which the
#: authors attribute to HCA/LLC caching effects.
FDR_INFINIBAND = HardwareProfile(
    name="fdr",
    link_bandwidth_bps=47e9,
    propagation_delay_ns=400,
    per_message_overhead_ns=110,
    copy_bandwidth_bps=3.2e9 * 8,
    device=DeviceConfig(
        wr_overhead_ns=150,
        rx_overhead_ns=100,
        ack_turnaround_ns=100,
        large_msg_threshold=2 * 1024 * 1024,
        large_msg_extra_ns_per_byte=0.012,
    ),
)

#: 10 GbE RoCE through the Anue emulator at 48 ms RTT (paper §IV-B2).
#: Older Westmere nodes: slower memcpy, slower software path.
ROCE_10G_WAN = HardwareProfile(
    name="roce-wan",
    link_bandwidth_bps=9.4e9,
    propagation_delay_ns=1_000,
    per_message_overhead_ns=300,
    copy_bandwidth_bps=2.5e9 * 8,
    cpu_costs=CpuCostModel(
        post_wr_ns=260,
        completion_ns=450,
        control_ns=320,
        send_control_ns=380,
        app_repost_ns=650,
        copy_setup_ns=200,
    ),
    device=DeviceConfig(wr_overhead_ns=200, rx_overhead_ns=130, ack_turnaround_ns=130),
    emulator_delay_ns=24_000_000,  # 48 ms RTT
)

#: The same RoCE hardware with the emulator set to zero added delay
#: (useful as a baseline in the WAN experiments and tests).
ROCE_10G_LAN = ROCE_10G_WAN.with_overrides(name="roce-lan", emulator_delay_ns=0)

#: QDR InfiniBand (paper's aside in §IV-B1): 25.6 Gb/s data rate barely
#: above the memcpy rate, so direct and indirect converge.
QDR_INFINIBAND = FDR_INFINIBAND.with_overrides(
    name="qdr",
    link_bandwidth_bps=25.6e9,
)

PROFILES = {
    p.name: p
    for p in (FDR_INFINIBAND, ROCE_10G_WAN, ROCE_10G_LAN, QDR_INFINIBAND)
}
