"""Plain-text rendering of experiment results (the tables the paper plots)."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_series_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    x_name: str,
    xs: Sequence[object],
    series: Dict[str, Sequence[object]],
    title: str = "",
) -> str:
    """Render one row per x value with a column per series (figure data)."""
    headers = [x_name] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title)
