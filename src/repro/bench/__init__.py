"""Experiment harness: hardware profiles, sweeps, and per-figure runners."""

from .profiles import (
    FDR_INFINIBAND,
    PROFILES,
    QDR_INFINIBAND,
    ROCE_10G_LAN,
    ROCE_10G_WAN,
    HardwareProfile,
)

__all__ = [
    "FDR_INFINIBAND",
    "PROFILES",
    "QDR_INFINIBAND",
    "ROCE_10G_LAN",
    "ROCE_10G_WAN",
    "HardwareProfile",
]
