"""Experiment execution: repeated runs, aggregation, quality levels.

The paper ran each configuration 10 times and reported mean ± 95% CI.  The
same scheme is used here, with a *quality* knob controlling how many
messages per run and how many repetitions (seeds) — so the benchmark suite
can run as a quick smoke pass or at full paper scale:

* ``smoke`` — minimal, for CI (~minutes for the whole suite)
* ``quick`` — the default; shapes are stable
* ``paper`` — 10 repetitions, long runs

Select with the ``REPRO_BENCH_QUALITY`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..apps.blast import BlastConfig, BlastResult, run_blast
from ..apps.metrics import MeanCI, mean_ci
from ..config import ScenarioConfig, deprecated_signature
from ..sweep import run_sweep
from .profiles import FDR_INFINIBAND, HardwareProfile

__all__ = [
    "RunQuality",
    "SMOKE",
    "QUICK",
    "PAPER",
    "quality_from_env",
    "AggregateResult",
    "run_repeated",
    "run_grid",
]


@dataclass(frozen=True)
class RunQuality:
    """How much work to spend per experiment point."""

    name: str
    #: messages per run for exponential-size workloads
    messages: int
    #: seeds (= repetitions); the paper used 10
    seeds: tuple
    #: total-bytes budget used to scale message counts for fixed-size sweeps
    bytes_budget: int = 96 * 1024 * 1024

    def fixed_size_messages(self, size: int, lo: int = 30, hi: int = 800) -> int:
        """Message count for a fixed-size run, bounded to keep runs sane."""
        return max(lo, min(hi, self.bytes_budget // size))


SMOKE = RunQuality("smoke", messages=120, seeds=(1, 2), bytes_budget=48 * 1024 * 1024)
QUICK = RunQuality("quick", messages=300, seeds=(1, 2, 3))
PAPER = RunQuality("paper", messages=1500, seeds=tuple(range(1, 11)), bytes_budget=512 * 1024 * 1024)

_QUALITIES = {q.name: q for q in (SMOKE, QUICK, PAPER)}


def quality_from_env(default: RunQuality = QUICK) -> RunQuality:
    """Quality selected by ``REPRO_BENCH_QUALITY`` (smoke/quick/paper)."""
    name = os.environ.get("REPRO_BENCH_QUALITY", "").strip().lower()
    return _QUALITIES.get(name, default)


@dataclass
class AggregateResult:
    """Mean±CI of the standard metrics over repeated runs."""

    throughput_bps: MeanCI
    receiver_cpu: MeanCI
    sender_cpu: MeanCI
    direct_ratio: MeanCI
    mode_switches: MeanCI
    runs: List[BlastResult]

    @property
    def throughput_gbps(self) -> float:
        return self.throughput_bps.mean / 1e9

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps.mean / 1e6


def _blast_worker(unit, seed: int) -> BlastResult:
    """Sweep worker: one simulation run.  Module-level so it pickles.

    The unit carries a fully-resolved :class:`~repro.config.ScenarioConfig`
    (seed already folded in), so workers need no environment-variable side
    channel; *seed* is the sweep bookkeeping copy of ``scenario.seed``.
    """
    cfg, scenario, max_events = unit
    return run_blast(cfg, scenario=scenario, max_events=max_events)


def _reseeded(config: BlastConfig, seed: int) -> BlastConfig:
    """The per-repetition config: message-size generator mixed with *seed*."""
    sizes = config.sizes
    if hasattr(sizes, "seed"):
        sizes = replace_seed(sizes, seed)
    return replace(config, sizes=sizes)


def _aggregate(runs: List[BlastResult]) -> AggregateResult:
    return AggregateResult(
        throughput_bps=mean_ci([r.throughput_bps for r in runs]),
        receiver_cpu=mean_ci([r.receiver_cpu for r in runs]),
        sender_cpu=mean_ci([r.sender_cpu for r in runs]),
        direct_ratio=mean_ci([r.direct_ratio for r in runs]),
        mode_switches=mean_ci([float(r.mode_switches) for r in runs]),
        runs=runs,
    )


def run_grid(
    configs: Sequence[BlastConfig],
    profile: Optional[HardwareProfile] = None,
    quality: RunQuality = QUICK,
    *,
    processes: int = 1,
    max_events: Optional[int] = 400_000_000,
    telemetry_dir: Optional[str] = None,
    scenario: Optional[ScenarioConfig] = None,
) -> List[AggregateResult]:
    """Run every config once per seed — optionally in parallel — and
    aggregate per config, preserving config order.

    Expands ``configs × quality.seeds`` into independent simulation units
    and executes them through :func:`repro.sweep.run_sweep`; each unit
    reseeds both the testbed (wake-up latencies) and the message-size
    generator, as independent runs of the real tool would.  Results are
    identical for any ``processes`` value (simulations are deterministic
    and self-contained).

    *scenario* is the run-environment template: each unit gets a copy with
    that repetition's seed folded in (``replace(scenario, seed=seed)``), and
    the copy travels inside the pickled work unit, so sweep workers need no
    environment-variable side channel.  ``scenario.telemetry_dir`` makes
    every unit write a per-run :mod:`repro.obs` JSONL artifact into that
    directory (created if missing).

    The legacy spelling — ``profile=`` / ``telemetry_dir=`` keywords, plus
    the ``REPRO_TELEMETRY_DIR`` environment variable — still works as a
    deprecation shim that assembles the scenario template internally.
    """
    if scenario is not None:
        if profile is not None or telemetry_dir is not None:
            raise ValueError(
                "pass either scenario= or the profile/telemetry_dir knobs, not both"
            )
    else:
        env_dir = os.environ.get("REPRO_TELEMETRY_DIR", "").strip() or None
        if profile is not None or telemetry_dir is not None or env_dir:
            deprecated_signature(
                "run_grid(profile=, telemetry_dir=) / REPRO_TELEMETRY_DIR",
                "pass run_grid(configs, scenario=ScenarioConfig(...)) instead",
            )
        scenario = ScenarioConfig(
            profile=profile if profile is not None else FDR_INFINIBAND,
            telemetry_dir=telemetry_dir if telemetry_dir is not None else env_dir,
        )
    if scenario.telemetry_dir:
        os.makedirs(scenario.telemetry_dir, exist_ok=True)
    units = []
    unit_seeds: List[int] = []
    for config in configs:
        for seed in quality.seeds:
            units.append((_reseeded(config, seed), replace(scenario, seed=seed), max_events))
            unit_seeds.append(seed)
    results = run_sweep(units, _blast_worker, processes, seeds=unit_seeds)
    reps = len(quality.seeds)
    return [_aggregate(results[i * reps:(i + 1) * reps]) for i in range(len(configs))]


def run_repeated(
    config: BlastConfig,
    profile: Optional[HardwareProfile] = None,
    quality: RunQuality = QUICK,
    *,
    processes: int = 1,
    max_events: Optional[int] = 400_000_000,
    telemetry_dir: Optional[str] = None,
    scenario: Optional[ScenarioConfig] = None,
) -> AggregateResult:
    """Run *config* once per seed and aggregate the paper's metrics."""
    return run_grid([config], profile, quality, processes=processes,
                    max_events=max_events, telemetry_dir=telemetry_dir,
                    scenario=scenario)[0]


def replace_seed(gen, seed: int):
    """Copy a size generator with a new seed (mixing in its original)."""
    import copy

    out = copy.copy(gen)
    out.seed = gen.seed * 1000 + seed
    return out
