"""Per-figure experiment runners: one function per paper table/figure.

Each runner sweeps exactly the parameter grid of the corresponding paper
artifact, aggregates over repetitions, and returns a :class:`FigureData`
whose ``text()`` renders the same rows/series the paper plots.  The
benchmark suite (``benchmarks/``) calls these and asserts the *shape*
claims (who wins, by what factor, where crossovers fall).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..apps.blast import BlastConfig
from ..config import ScenarioConfig
from ..apps.workloads import KIB, MIB, ExponentialSizes, FixedSizes
from ..core import ProtocolMode
from ..exs import ExsSocketOptions
from .experiment import AggregateResult, QUICK, RunQuality, run_grid, run_repeated
from .profiles import FDR_INFINIBAND, ROCE_10G_WAN, HardwareProfile
from .report import format_series_table, format_table

__all__ = [
    "FigureData",
    "PROTOCOLS",
    "OUTSTANDING_SWEEP",
    "fig9a",
    "fig9b",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "fig13",
    "table3",
]

#: protocol series, in the paper's legend order
PROTOCOLS = (ProtocolMode.DIRECT_ONLY, ProtocolMode.DYNAMIC, ProtocolMode.INDIRECT_ONLY)

#: the paper's x axis for Figs. 9, 10, 13
OUTSTANDING_SWEEP = (1, 2, 4, 8, 16, 32)

#: Fig. 11's fixed message sizes
FIG11_SIZES = (512, 8 * KIB, 128 * KIB, 1 * MIB)

#: Fig. 12's size sweep: 512 B ... 128 MiB in powers of 4 (paper x axis)
FIG12_SIZES = tuple(512 * 4**k for k in range(10))

#: intermediate buffer used for the over-distance runs (sized above the
#: bandwidth-delay product so indirect transfers can fill the pipe)
WAN_OPTIONS = ExsSocketOptions(ring_capacity=64 * MIB)


@dataclass
class FigureData:
    """One figure's (or table's) results."""

    figure_id: str
    x_name: str
    xs: List
    #: series name -> one AggregateResult per x
    series: Dict[str, List[AggregateResult]]
    description: str = ""

    def metric(self, series_name: str, fn: Callable[[AggregateResult], float]) -> List[float]:
        return [fn(agg) for agg in self.series[series_name]]

    def throughputs_gbps(self, series_name: str) -> List[float]:
        return self.metric(series_name, lambda a: a.throughput_gbps)

    def text(self, metric: str = "throughput") -> str:
        """Render the figure's data as an aligned table."""
        fmt: Dict[str, Callable[[AggregateResult], str]] = {
            "throughput": lambda a: f"{a.throughput_gbps:8.2f} Gb/s ±{a.throughput_bps.half_width / 1e9:5.2f}",
            "throughput_mbps": lambda a: f"{a.throughput_mbps:8.1f} Mb/s ±{a.throughput_bps.half_width / 1e6:6.1f}",
            "cpu": lambda a: f"{a.receiver_cpu.mean * 100:5.1f}% ±{a.receiver_cpu.half_width * 100:4.1f}",
            "ratio": lambda a: f"{a.direct_ratio.mean:5.3f} ±{a.direct_ratio.half_width:5.3f}",
            "switches": lambda a: f"{a.mode_switches.mean:6.1f} ±{a.mode_switches.half_width:5.1f}",
        }[metric]
        return format_series_table(
            self.x_name,
            self.xs,
            {name: [fmt(a) for a in aggs] for name, aggs in self.series.items()},
            title=f"{self.figure_id}: {self.description}",
        )


# ---------------------------------------------------------------------------
# Figures 9 and 10: outstanding-operation sweeps, three protocols
# ---------------------------------------------------------------------------
def _outstanding_sweep(
    figure_id: str,
    description: str,
    sends_of: Callable[[int], int],
    quality: RunQuality,
    profile: HardwareProfile,
    xs: Sequence[int] = OUTSTANDING_SWEEP,
    options: Optional[ExsSocketOptions] = None,
    processes: int = 1,
) -> FigureData:
    # Build the whole (x, protocol) grid up front so a parallel sweep can
    # spread every point across workers; the grid order (x-major, protocol
    # order within each x) is part of the deterministic contract.
    grid = [
        BlastConfig(
            total_messages=quality.messages,
            sizes=ExponentialSizes(seed=40),
            outstanding_sends=max(1, sends_of(n)),
            outstanding_recvs=n,
            mode=mode,
            options=options,
        )
        for n in xs
        for mode in PROTOCOLS
    ]
    aggs = run_grid(grid, quality=quality, processes=processes,
                    scenario=ScenarioConfig(profile=profile))
    series: Dict[str, List[AggregateResult]] = {m.value: [] for m in PROTOCOLS}
    for i, agg in enumerate(aggs):
        series[PROTOCOLS[i % len(PROTOCOLS)].value].append(agg)
    return FigureData(figure_id, "outstanding_recvs", list(xs), series, description)


def fig9a(quality: RunQuality = QUICK, profile: HardwareProfile = FDR_INFINIBAND,
          processes: int = 1) -> FigureData:
    """Fig. 9a: throughput vs outstanding ops, sender == receiver (FDR IB)."""
    return _outstanding_sweep(
        "fig9a", "throughput, equal outstanding ops, exp sizes (max 4 MiB)",
        lambda n: n, quality, profile, processes=processes,
    )


def fig9b(quality: RunQuality = QUICK, profile: HardwareProfile = FDR_INFINIBAND,
          processes: int = 1) -> FigureData:
    """Fig. 9b: throughput vs outstanding ops, sender = receiver / 2."""
    return _outstanding_sweep(
        "fig9b", "throughput, sender outstanding = half of receiver",
        lambda n: n // 2, quality, profile, xs=[x for x in OUTSTANDING_SWEEP if x >= 2],
        processes=processes,
    )


def fig10a(quality: RunQuality = QUICK, profile: HardwareProfile = FDR_INFINIBAND,
           processes: int = 1) -> FigureData:
    """Fig. 10a: receiver CPU% vs outstanding ops, equal (same runs as 9a)."""
    fd = fig9a(quality, profile, processes)
    return replace_id(fd, "fig10a", "receiver CPU usage, equal outstanding ops")


def fig10b(quality: RunQuality = QUICK, profile: HardwareProfile = FDR_INFINIBAND,
           processes: int = 1) -> FigureData:
    """Fig. 10b: receiver CPU% vs outstanding ops, sender = receiver / 2."""
    fd = fig9b(quality, profile, processes)
    return replace_id(fd, "fig10b", "receiver CPU usage, sender = receiver/2")


def replace_id(fd: FigureData, figure_id: str, description: str) -> FigureData:
    return FigureData(figure_id, fd.x_name, fd.xs, fd.series, description)


# ---------------------------------------------------------------------------
# Figure 11: outstanding sends sweep at fixed sizes, receiver fixed at 32
# ---------------------------------------------------------------------------
def fig11(
    quality: RunQuality = QUICK,
    profile: HardwareProfile = FDR_INFINIBAND,
    sends: Sequence[int] = (1, 2, 5, 10, 15, 20, 25, 32),
    processes: int = 1,
) -> FigureData:
    """Figs. 11a/11b: dynamic protocol, receiver fixed at 32 outstanding.

    Series per message size; ``throughput`` and ``ratio`` metrics of the
    same runs correspond to the paper's 11a and 11b.
    """
    grid = [
        BlastConfig(
            total_messages=quality.fixed_size_messages(size),
            sizes=FixedSizes(size),
            outstanding_sends=ns,
            outstanding_recvs=32,
            recv_buffer_bytes=max(size, 4096),
            mode=ProtocolMode.DYNAMIC,
        )
        for size in FIG11_SIZES
        for ns in sends
    ]
    aggs = run_grid(grid, quality=quality, processes=processes,
                    scenario=ScenarioConfig(profile=profile))
    series: Dict[str, List[AggregateResult]] = {}
    for i, size in enumerate(FIG11_SIZES):
        series[_size_label(size)] = aggs[i * len(sends):(i + 1) * len(sends)]
    return FigureData(
        "fig11", "outstanding_sends", list(sends), series,
        "dynamic protocol, receiver outstanding fixed at 32",
    )


# ---------------------------------------------------------------------------
# Figure 12: message-size sweep, receiver 4 / sender 2
# ---------------------------------------------------------------------------
def fig12(
    quality: RunQuality = QUICK,
    profile: HardwareProfile = FDR_INFINIBAND,
    sizes: Sequence[int] = FIG12_SIZES,
    processes: int = 1,
) -> FigureData:
    """Figs. 12a/12b: effect of message size on the dynamic protocol."""
    grid = [
        BlastConfig(
            total_messages=quality.fixed_size_messages(size, lo=12),
            sizes=FixedSizes(size),
            outstanding_sends=2,
            outstanding_recvs=4,
            recv_buffer_bytes=max(size, 4096),
            mode=ProtocolMode.DYNAMIC,
        )
        for size in sizes
    ]
    aggs = run_grid(grid, quality=quality, processes=processes,
                    scenario=ScenarioConfig(profile=profile))
    return FigureData(
        "fig12", "message_size", [_size_label(s) for s in sizes],
        {"dynamic": aggs},
        "dynamic protocol, receiver 4 / sender 2 outstanding",
    )


# ---------------------------------------------------------------------------
# Figure 13: over-distance sweep (RoCE 10G + 48 ms RTT)
# ---------------------------------------------------------------------------
def fig13(quality: RunQuality = QUICK, profile: HardwareProfile = ROCE_10G_WAN,
          processes: int = 1) -> FigureData:
    """Fig. 13: throughput vs outstanding ops at 48 ms RTT, equal sender/receiver."""
    return _outstanding_sweep(
        "fig13", "throughput over 48 ms RTT (RoCE 10G + emulator), equal outstanding",
        lambda n: n, quality, profile, options=WAN_OPTIONS, processes=processes,
    )


# ---------------------------------------------------------------------------
# Table III: mode switches and direct:total ratio
# ---------------------------------------------------------------------------
TABLE3_CONFIGS = (
    (1, 1), (2, 2), (4, 4), (8, 8), (16, 16), (32, 32),
    (2, 1), (4, 2), (8, 4), (16, 8), (32, 16),
)


def table3(quality: RunQuality = QUICK, profile: HardwareProfile = FDR_INFINIBAND,
           processes: int = 1):
    """Table III: average mode switches and direct-transfer ratio per config.

    Returns ``(rows, text)`` where each row is
    ``(recvs, sends, switches_ci, ratio_ci)``.
    """
    grid = [
        BlastConfig(
            total_messages=quality.messages,
            sizes=ExponentialSizes(seed=40),
            outstanding_sends=ns,
            outstanding_recvs=nr,
            mode=ProtocolMode.DYNAMIC,
        )
        for nr, ns in TABLE3_CONFIGS
    ]
    aggs = run_grid(grid, quality=quality, processes=processes,
                    scenario=ScenarioConfig(profile=profile))
    rows = []
    for (nr, ns), agg in zip(TABLE3_CONFIGS, aggs):
        rows.append((nr, ns, agg.mode_switches, agg.direct_ratio, agg))
    text = format_table(
        ["recvs", "sends", "mode switches", "direct:total ratio"],
        [
            (nr, ns, f"{sw.mean:6.1f} ±{sw.half_width:5.1f}", f"{ra.mean:6.3f} ±{ra.half_width:5.3f}")
            for nr, ns, sw, ra, _ in rows
        ],
        title="Table III: mode switches / direct-transfer ratio (dynamic protocol)",
    )
    return rows, text


def _size_label(size: int) -> str:
    if size >= MIB and size % MIB == 0:
        return f"{size // MIB}MiB"
    if size >= KIB and size % KIB == 0:
        return f"{size // KIB}KiB"
    return f"{size}B"
