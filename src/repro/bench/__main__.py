"""Command-line figure runner: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench                 # every figure + Table III (quick)
    python -m repro.bench fig9a fig13     # a subset
    python -m repro.bench --quality smoke # faster / --quality paper for 10 reps
    python -m repro.bench --list

Prints each artifact as an aligned table (the data behind the paper's
plots).  See EXPERIMENTS.md for the paper-vs-simulation comparison.
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiment import PAPER, QUICK, SMOKE
from .figures import fig9a, fig9b, fig10a, fig10b, fig11, fig12, fig13, table3

QUALITIES = {"smoke": SMOKE, "quick": QUICK, "paper": PAPER}


def _figure_runners():
    return {
        "fig9a": lambda q: fig9a(q).text("throughput"),
        "fig9b": lambda q: fig9b(q).text("throughput"),
        "fig10a": lambda q: fig10a(q).text("cpu"),
        "fig10b": lambda q: fig10b(q).text("cpu"),
        "fig11a": lambda q: fig11(q).text("throughput"),
        "fig11b": lambda q: fig11(q).text("ratio"),
        "fig12a": lambda q: fig12(q).text("throughput"),
        "fig12b": lambda q: fig12(q).text("ratio"),
        "fig13": lambda q: fig13(q).text("throughput_mbps"),
        "table3": lambda q: table3(q)[1],
    }


def main(argv=None) -> int:
    runners = _figure_runners()
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument("artifacts", nargs="*", metavar="ARTIFACT",
                        help=f"which to run (default: all): {', '.join(runners)}")
    parser.add_argument("--quality", choices=sorted(QUALITIES), default="quick",
                        help="run length / repetition count (default: quick)")
    parser.add_argument("--list", action="store_true", help="list artifacts and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in runners:
            print(name)
        return 0

    selected = args.artifacts or list(runners)
    unknown = [a for a in selected if a not in runners]
    if unknown:
        parser.error(f"unknown artifact(s): {', '.join(unknown)}")

    quality = QUALITIES[args.quality]
    for name in selected:
        t0 = time.time()
        text = runners[name](quality)
        print(text)
        print(f"[{name} done in {time.time() - t0:.1f}s at quality={quality.name}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
