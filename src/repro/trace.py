"""Protocol tracing and timeline rendering.

Understanding *why* a connection fell back to buffered mode (or failed to
recover) requires seeing the interleaving of ADVERTs, transfers, copies
and phase changes.  :class:`ProtocolTracer` records structured events from
every EXS connection on a testbed, and the renderers turn them into a
time-bucketed ASCII timeline or CSV for external tooling.

Usage::

    tb = Testbed.from_scenario(ScenarioConfig(seed=1))
    tracer = ProtocolTracer.attach(tb)
    ... run ...
    print(render_timeline(tracer, width=72))
    tracer.to_csv(open("trace.csv", "w"))

Tracing is off unless attached; the emission points cost one attribute
check when disabled.
"""

from __future__ import annotations

import csv as _csv
import json as _json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import IO, Dict, Iterable, List, Optional, Tuple

__all__ = ["TraceEvent", "ProtocolTracer", "events_from_csv",
           "render_timeline", "summarize"]


@dataclass(frozen=True)
class TraceEvent:
    """One structured protocol event."""

    time_ns: int
    #: connection id (unique per endpoint)
    conn: int
    #: endpoint host name ("client"/"server" on a Testbed)
    host: str
    #: event kind: phase, direct, indirect, advert_tx, advert_rx,
    #: advert_drop, copy, ring_ack, fin, ...
    kind: str
    #: kind-specific payload (nbytes, seq, phase, ...)
    fields: Tuple[Tuple[str, object], ...] = ()

    def get(self, key: str, default=None):
        for k, v in self.fields:
            if k == key:
                return v
        return default


class ProtocolTracer:
    """Collects :class:`TraceEvent` records from EXS connections."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, testbed, capacity: int = 1_000_000) -> "ProtocolTracer":
        """Create a tracer and attach it to every host of a testbed/fabric.

        Connections created afterwards emit events into it.
        """
        tracer = cls(capacity)
        hosts = getattr(testbed, "all_hosts", None)
        if hosts is None:  # pre-fabric testbed shapes
            hosts = [testbed.host("client"), testbed.host("server")]
        for host in hosts:
            host.tracer = tracer
        return tracer

    def emit(self, time_ns: int, conn: int, host: str, kind: str, **fields) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(time_ns, conn, host, kind, tuple(sorted(fields.items())))
        )

    # ------------------------------------------------------------------
    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def connections(self) -> List[Tuple[int, str]]:
        """Distinct (conn, host) pairs in first-seen order."""
        seen: Dict[Tuple[int, str], None] = {}
        for e in self.events:
            seen.setdefault((e.conn, e.host), None)
        return list(seen)

    def to_csv(self, fh: IO[str]) -> int:
        """Write all events as CSV; returns the row count.

        The kind-specific payload goes into the ``fields`` column as one
        JSON object (a ``k=v;k=v`` packing would corrupt on values that
        themselves contain ``;`` or ``=``).  :func:`events_from_csv`
        round-trips the export.
        """
        writer = _csv.writer(fh)
        writer.writerow(["time_ns", "conn", "host", "kind", "fields"])
        for e in self.events:
            writer.writerow(
                [e.time_ns, e.conn, e.host, e.kind,
                 _json.dumps(dict(e.fields), sort_keys=True, default=str,
                             separators=(",", ":"))]
            )
        return len(self.events)


def events_from_csv(fh: IO[str]) -> List[TraceEvent]:
    """Parse a :meth:`ProtocolTracer.to_csv` export back into events.

    JSON-representable field values (ints, floats, strings, bools) come
    back exactly; anything else was stringified on export.
    """
    reader = _csv.reader(fh)
    header = next(reader, None)
    if header != ["time_ns", "conn", "host", "kind", "fields"]:
        raise ValueError(f"not a protocol-trace CSV (header {header!r})")
    events: List[TraceEvent] = []
    for row in reader:
        if not row:
            continue
        time_ns, conn, host, kind, fields_json = row
        fields = _json.loads(fields_json) if fields_json else {}
        events.append(TraceEvent(int(time_ns), int(conn), host, kind,
                                 tuple(sorted(fields.items()))))
    return events


def render_timeline(tracer: ProtocolTracer, width: int = 72) -> str:
    """ASCII strip per sending direction: ``D`` direct, ``I`` indirect,
    ``*`` both within one bucket, ``.`` quiet.  A compact view of when the
    protocol switched modes."""
    transfers = tracer.of_kind("direct", "indirect")
    if not transfers:
        return "(no transfers recorded)"
    t0 = min(e.time_ns for e in transfers)
    t1 = max(e.time_ns for e in transfers)
    span = max(1, t1 - t0)
    by_dir: Dict[Tuple[int, str], List[TraceEvent]] = defaultdict(list)
    for e in transfers:
        by_dir[(e.conn, e.host)].append(e)

    lines = [f"transfer timeline ({span / 1e6:.3f} ms, {width} buckets; "
             f"D=direct I=indirect *=mixed)"]
    for (conn, host), events in sorted(by_dir.items()):
        buckets = [set() for _ in range(width)]
        for e in events:
            idx = min(width - 1, (e.time_ns - t0) * width // span)
            buckets[idx].add(e.kind)
        strip = "".join(
            "*" if len(b) == 2 else ("D" if "direct" in b else "I" if "indirect" in b else ".")
            for b in buckets
        )
        lines.append(f"  conn {conn} @{host:<7s} |{strip}|")
    return "\n".join(lines)


#: event kinds emitted by the reliability/fault layer (PR 3 onwards); they
#: get their own section in :func:`summarize` so chaos runs read at a glance
RELIABILITY_KINDS = (
    "retransmit", "nak", "rnr", "frame_drop", "link_down",
    "qp_error", "conn_error",
)


def summarize(tracer: ProtocolTracer) -> str:
    """Per-connection event counts, byte totals, direct ratio — and, when
    the run was lossy, a reliability section (retransmits, NAKs, RNR
    pauses, dropped/outage frames, QP and connection errors)."""
    counts: Dict[Tuple[int, str], Dict[str, int]] = defaultdict(lambda: defaultdict(int))
    tx_bytes: Dict[Tuple[int, str], Dict[str, int]] = defaultdict(
        lambda: {"direct": 0, "indirect": 0})
    rel_counts: Dict[str, int] = defaultdict(int)
    rel_detail: Dict[Tuple[int, str], Dict[str, int]] = defaultdict(lambda: defaultdict(int))
    retransmitted_msgs = 0
    rel_kinds = set(RELIABILITY_KINDS)
    for e in tracer.events:
        key = (e.conn, e.host)
        if e.kind in rel_kinds:
            rel_counts[e.kind] += 1
            rel_detail[key][e.kind] += 1
            if e.kind == "retransmit":
                retransmitted_msgs += e.get("count", 0)
            continue
        counts[key][e.kind] += 1
        if e.kind in ("direct", "indirect"):
            tx_bytes[key][e.kind] += e.get("nbytes", 0)
    lines = ["per-connection event counts:"]
    for (conn, host), kinds in sorted(counts.items()):
        detail = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        lines.append(f"  conn {conn} @{host}: {detail}")
        transfers = kinds.get("direct", 0) + kinds.get("indirect", 0)
        if transfers:
            b = tx_bytes[(conn, host)]
            ratio = kinds.get("direct", 0) / transfers
            lines.append(
                f"    bytes: direct={b['direct']}, indirect={b['indirect']}, "
                f"total={b['direct'] + b['indirect']}; direct_ratio={ratio:.3f}"
            )
    if rel_counts:
        lines.append("reliability events:")
        totals = ", ".join(
            f"{k}={rel_counts[k]}" for k in RELIABILITY_KINDS if rel_counts.get(k)
        )
        lines.append(f"  totals: {totals}")
        if retransmitted_msgs:
            lines.append(f"  messages retransmitted: {retransmitted_msgs}")
        for (conn, host), kinds in sorted(rel_detail.items()):
            detail = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
            lines.append(f"  conn {conn} @{host}: {detail}")
    if tracer.dropped:
        lines.append(f"  ({tracer.dropped} events dropped at capacity)")
    return "\n".join(lines)
