"""Pluggable same-timestamp tie-break policies for the event calendar.

The kernel keeps simulated time exact, so the only scheduling freedom left
in a run is the order of events that fire at the *same* nanosecond.  By
default that order is FIFO (by scheduling sequence number) — deterministic,
but it means every test exercises exactly one interleaving of each
same-instant race.  A :class:`SchedulePolicy` re-keys those ties, letting
:mod:`repro.check` drive full-stack runs through adversarial-but-
reproducible interleavings (the schedule-fuzzer half of the protocol
conformance checker).

Policies are pure functions of ``(time_ns, seq)``: no RNG object state, no
platform-dependent hashing — the same policy instance produces the same
schedule on every run, machine, and Python version.  Events at *different*
timestamps are never reordered (simulated time stays causal); a policy can
only permute genuinely concurrent events.

Under the timing-wheel calendar a policy is applied per same-instant
batch: every placement gets a seq, and each batch is dispatched as a
``(tiebreak, seq, entry)`` heap — exactly the key the flat-heap kernel
sorted globally, so both backends replay the same order bit for bit
(property-tested in ``tests/simnet/test_timing_wheel.py``).
"""

from __future__ import annotations

__all__ = ["SchedulePolicy", "FifoPolicy", "RandomTiebreakPolicy", "policy_from_spec"]

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a fast, well-distributed 64-bit int hash."""
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK64
    return (x ^ (x >> 31)) & _MASK64


class SchedulePolicy:
    """Decides the firing order of events scheduled for the same instant.

    :meth:`tiebreak` returns an integer sort key; among events with equal
    ``time_ns``, lower keys fire first, and equal keys fall back to FIFO
    (scheduling order).  Implementations must be deterministic functions of
    their constructor arguments and ``(time_ns, seq)``.
    """

    def tiebreak(self, time_ns: int, seq: int) -> int:
        raise NotImplementedError

    def spec(self) -> tuple:
        """Serializable ``(kind, seed)`` form (see :func:`policy_from_spec`)."""
        raise NotImplementedError


class FifoPolicy(SchedulePolicy):
    """The kernel's native order, spelled as a policy.

    A run under ``FifoPolicy`` is bit-identical to a run with no policy at
    all — the regression test for the fuzzer harness itself.
    """

    def tiebreak(self, time_ns: int, seq: int) -> int:
        return 0  # equal keys everywhere -> pure FIFO fallback

    def spec(self) -> tuple:
        return ("fifo", 0)

    def __repr__(self) -> str:
        return "FifoPolicy()"


class RandomTiebreakPolicy(SchedulePolicy):
    """Seeded pseudo-random permutation of every same-instant group.

    Each ``(seed, time_ns, seq)`` triple hashes to an independent 64-bit
    key, so any two events that collide on the clock are ordered by a coin
    flip that is fixed for the whole run — randomized schedules that replay
    exactly from the seed alone.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        # pre-mix the seed so consecutive seeds give unrelated schedules
        self._seed_mix = _mix64(self.seed ^ 0x9E3779B97F4A7C15)

    def tiebreak(self, time_ns: int, seq: int) -> int:
        return _mix64(self._seed_mix ^ _mix64(time_ns) ^ (seq * 0xD1B54A32D192ED03 & _MASK64))

    def spec(self) -> tuple:
        return ("random", self.seed)

    def __repr__(self) -> str:
        return f"RandomTiebreakPolicy(seed={self.seed})"


def policy_from_spec(spec) -> "SchedulePolicy | None":
    """Build a policy from its serializable spec.

    Accepts ``None`` (kernel default), a :class:`SchedulePolicy` instance
    (returned as-is), or a ``(kind, seed)`` pair with kind ``"fifo"`` or
    ``"random"`` — the form stored in scenario/counterexample JSON.
    """
    if spec is None or isinstance(spec, SchedulePolicy):
        return spec
    kind, seed = spec
    if kind == "fifo":
        return FifoPolicy()
    if kind == "random":
        return RandomTiebreakPolicy(int(seed))
    raise ValueError(f"unknown schedule policy kind {kind!r}")
