"""Network delay emulator (software Anue).

The paper's over-distance experiments used an Anue hardware network emulator
to add a fixed 48 ms round-trip delay on a 10 GbE path; its future work
section proposes adding a *jitter function*.  :class:`DelayEmulator` models
both: a fixed one-way base delay plus an optional pluggable jitter sampler.

Jitter is sampled from a seeded RNG so runs remain reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

__all__ = ["DelayEmulator", "uniform_jitter", "gaussian_jitter"]

JitterFn = Callable[[random.Random], float]


def uniform_jitter(spread_ns: int) -> JitterFn:
    """Jitter uniform in ``[0, spread_ns]``."""

    def sample(rng: random.Random) -> float:
        return rng.uniform(0.0, float(spread_ns))

    return sample


def gaussian_jitter(mean_ns: int, sigma_ns: int) -> JitterFn:
    """Non-negative Gaussian jitter with the given mean/sigma."""

    def sample(rng: random.Random) -> float:
        return max(0.0, rng.gauss(float(mean_ns), float(sigma_ns)))

    return sample


class DelayEmulator:
    """Adds delay (and optional jitter) to every message on a link.

    Parameters
    ----------
    base_delay_ns:
        Fixed extra one-way delay.  The paper's WAN setup used a 48 ms RTT,
        i.e. ``base_delay_ns = 24_000_000`` per direction.
    jitter:
        Optional callable ``jitter(rng) -> float`` returning extra ns per
        message.
    seed:
        RNG seed for the jitter sampler.
    """

    def __init__(
        self,
        base_delay_ns: int,
        jitter: Optional[JitterFn] = None,
        seed: int = 0,
    ) -> None:
        if base_delay_ns < 0:
            raise ValueError("base delay must be >= 0")
        self.base_delay_ns = int(base_delay_ns)
        self.jitter = jitter
        self._rng = random.Random(seed)
        #: number of samples drawn (diagnostics)
        self.samples = 0

    @classmethod
    def from_rtt(cls, rtt_ns: int, **kw: object) -> "DelayEmulator":
        """Build an emulator adding ``rtt_ns`` of round-trip delay."""
        return cls(rtt_ns // 2, **kw)  # type: ignore[arg-type]

    def sample_ns(self) -> int:
        """Delay to add to the next message (base + jitter draw)."""
        self.samples += 1
        extra = self.jitter(self._rng) if self.jitter is not None else 0.0
        return self.base_delay_ns + int(round(extra))
