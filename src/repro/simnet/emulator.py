"""Network delay emulator (software Anue).

The paper's over-distance experiments used an Anue hardware network emulator
to add a fixed 48 ms round-trip delay on a 10 GbE path; its future work
section proposes adding a *jitter function*.  :class:`DelayEmulator` models
both: a fixed one-way base delay plus an optional pluggable jitter sampler.

Jitter is sampled from a seeded RNG so runs remain reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Tuple

__all__ = ["DelayEmulator", "uniform_jitter", "gaussian_jitter"]

JitterFn = Callable[[random.Random], float]


def uniform_jitter(spread_ns: int) -> JitterFn:
    """Jitter uniform in ``[0, spread_ns]``."""

    def sample(rng: random.Random) -> float:
        return rng.uniform(0.0, float(spread_ns))

    return sample


def gaussian_jitter(mean_ns: int, sigma_ns: int) -> JitterFn:
    """Non-negative Gaussian jitter with the given mean/sigma."""

    def sample(rng: random.Random) -> float:
        return max(0.0, rng.gauss(float(mean_ns), float(sigma_ns)))

    return sample


class DelayEmulator:
    """Adds delay (and optional jitter) to every message on a link.

    Parameters
    ----------
    base_delay_ns:
        Fixed extra one-way delay.  The paper's WAN setup used a 48 ms RTT,
        i.e. ``base_delay_ns = 24_000_000`` per direction.
    jitter:
        Optional callable ``jitter(rng) -> float`` returning extra ns per
        message.
    seed:
        RNG seed for the jitter sampler.
    per_direction_base_ns:
        Optional ``(dir0_ns, dir1_ns)`` pair overriding *base_delay_ns*
        per link direction.  :meth:`from_rtt` uses this to preserve an odd
        round-trip budget exactly (one direction gets the extra nanosecond).
    """

    def __init__(
        self,
        base_delay_ns: int,
        jitter: Optional[JitterFn] = None,
        seed: int = 0,
        per_direction_base_ns: Optional[Tuple[int, int]] = None,
    ) -> None:
        if base_delay_ns < 0:
            raise ValueError("base delay must be >= 0")
        self.base_delay_ns = int(base_delay_ns)
        if per_direction_base_ns is None:
            self.per_direction_base_ns: Tuple[int, int] = (
                self.base_delay_ns,
                self.base_delay_ns,
            )
        else:
            d0, d1 = (int(per_direction_base_ns[0]), int(per_direction_base_ns[1]))
            if d0 < 0 or d1 < 0:
                raise ValueError("per-direction base delays must be >= 0")
            self.per_direction_base_ns = (d0, d1)
        self.jitter = jitter
        self._rng = random.Random(seed)
        #: number of samples drawn (diagnostics)
        self.samples = 0

    @classmethod
    def from_rtt(cls, rtt_ns: int, **kw: object) -> "DelayEmulator":
        """Build an emulator adding exactly ``rtt_ns`` of round-trip delay.

        For odd ``rtt_ns`` the two directions split the budget as
        ``(rtt // 2, rtt - rtt // 2)`` so no nanosecond is lost.
        """
        half = rtt_ns // 2
        return cls(  # type: ignore[arg-type]
            half,
            per_direction_base_ns=(half, rtt_ns - half),
            **kw,
        )

    @property
    def rtt_ns(self) -> int:
        """Total round-trip base delay contributed by the emulator."""
        return self.per_direction_base_ns[0] + self.per_direction_base_ns[1]

    def sample_ns(self, direction: Optional[int] = None) -> int:
        """Delay to add to the next message (base + jitter draw).

        *direction* selects the per-direction base delay; ``None`` uses the
        symmetric ``base_delay_ns``.
        """
        self.samples += 1
        base = (
            self.base_delay_ns
            if direction is None
            else self.per_direction_base_ns[direction]
        )
        extra = self.jitter(self._rng) if self.jitter is not None else 0.0
        return base + int(round(extra))

    def base_ns(self, direction: Optional[int] = None) -> int:
        """Jitter-free base delay for a direction (no RNG side effects)."""
        if direction is None:
            return self.base_delay_ns
        return self.per_direction_base_ns[direction]
