/* _speedup.c — optional CPython accelerator for the timing-wheel kernel.
 *
 * Compiled on demand by `_accel.py` (plain `cc -O2 -shared -fPIC`, no
 * build-system dependency); when the compile or the `configure()`
 * handshake fails, the kernel silently keeps its pure-Python paths,
 * which are semantically identical (property-tested in
 * tests/simnet/test_timing_wheel.py).
 *
 * Two entry points are bound per Simulator instance:
 *
 *   bind_timeout(sim)   -> C replacement for Simulator._timeout_wheel
 *                          (the stash + register-park fast path; every
 *                          guard miss calls the Python slow path)
 *   bind_reg_drain(sim) -> C drain of the *register regime* used by
 *                          _core.drain_fifo: pops the one-entry register
 *                          until it is empty, including the
 *                          `yield sim.timeout(d)` chain spin.
 *   bind_batch_run(sim) -> C dispatch of one same-instant *batch* (the
 *                          sorted list regime that dominates fabric-scale
 *                          runs, where concurrent hosts keep the register
 *                          from ever holding a lone event).  Takes an
 *                          optional event budget so the gated drain can
 *                          reuse it; the policy regime keeps its pure
 *                          loop (its batches are live heaps, not lists).
 *
 * Both read the same `__slots__` the Python code reads, through member
 * offsets captured at configure() time, and perform every store the
 * Python fast paths perform, in the same order — bit-identical event
 * ordering is the contract, speed is just fewer interpreter dispatches.
 *
 * The refcount-based Timeout recycling translates directly: the Python
 * spin's `getrefcount(e) == 2` (frame local + getrefcount argument)
 * becomes `Py_REFCNT(e) == 1` here, because this code owns exactly one
 * strong reference to the dispatched event at the check site.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* ------------------------------------------------------------------ */
/* configured state                                                    */
/* ------------------------------------------------------------------ */
static struct {
    int configured;
    PyTypeObject *sim_type;
    PyTypeObject *timeout_type;
    PyTypeObject *process_type;
    PyTypeObject *cbe_type;
    /* Simulator slots */
    Py_ssize_t o_stash, o_reg_free, o_single, o_single_when, o_now;
    Py_ssize_t o_finish, o_cbe_pool, o_creg_n;
    Py_ssize_t o_batch, o_bi, o_timeout_pool;
    /* Event/Timeout slots (resolved on the Timeout type, through the MRO) */
    Py_ssize_t o_ev_sim, o_ev_cb1, o_ev_cbs, o_ev_value, o_to_delay;
    /* Process slot */
    Py_ssize_t o_pr_send;
    /* CallbackEntry slots */
    Py_ssize_t o_cbe_fn, o_cbe_arg;
    long cbe_pool_max;
    long timeout_pool_max;
    PyObject *processed;    /* _core._PROCESSED sentinel */
    PyObject *timeout_slow; /* Simulator._timeout_wheel_slow (plain function) */
    PyObject *wait_on;      /* Process._wait_on (plain function) */
    PyObject *str_run;      /* interned "_run" */
} S;

#define SLOT(ob, off) (*(PyObject **)((char *)(ob) + (off)))

/* Replace the object in a slot with a reference we own; drops the old one. */
static inline void
store_slot(PyObject *ob, Py_ssize_t off, PyObject *newref)
{
    PyObject **p = (PyObject **)((char *)ob + off);
    PyObject *old = *p;
    *p = newref;
    Py_XDECREF(old);
}

static int
member_offset(PyObject *type, const char *name, Py_ssize_t *out)
{
    PyObject *d = PyObject_GetAttrString(type, name);
    if (d == NULL)
        return -1;
    if (!Py_IS_TYPE(d, &PyMemberDescr_Type)) {
        Py_DECREF(d);
        PyErr_Format(PyExc_TypeError, "%s is not a __slots__ member", name);
        return -1;
    }
    PyMemberDef *m = ((PyMemberDescrObject *)d)->d_member;
    if (m->type != T_OBJECT_EX) {
        Py_DECREF(d);
        PyErr_Format(PyExc_TypeError, "%s is not an object slot", name);
        return -1;
    }
    *out = m->offset;
    Py_DECREF(d);
    return 0;
}

/* ------------------------------------------------------------------ */
/* configure                                                           */
/* ------------------------------------------------------------------ */
static PyObject *
configure(PyObject *Py_UNUSED(mod), PyObject *ns)
{
    if (!PyDict_Check(ns)) {
        PyErr_SetString(PyExc_TypeError, "configure() expects a dict");
        return NULL;
    }
#define GET(name)                                                       \
    PyObject *name = PyDict_GetItemString(ns, #name);                   \
    if (name == NULL) {                                                 \
        PyErr_SetString(PyExc_KeyError, #name);                         \
        return NULL;                                                    \
    }
    GET(Simulator) GET(Timeout) GET(Process) GET(CallbackEntry)
    GET(processed) GET(timeout_slow) GET(wait_on) GET(cbe_pool_max)
    GET(timeout_pool_max)
#undef GET
    if (!PyType_Check(Simulator) || !PyType_Check(Timeout) ||
        !PyType_Check(Process) || !PyType_Check(CallbackEntry)) {
        PyErr_SetString(PyExc_TypeError, "expected type objects");
        return NULL;
    }
    if (member_offset(Simulator, "_stash", &S.o_stash) < 0 ||
        member_offset(Simulator, "_reg_free", &S.o_reg_free) < 0 ||
        member_offset(Simulator, "_single", &S.o_single) < 0 ||
        member_offset(Simulator, "_single_when", &S.o_single_when) < 0 ||
        member_offset(Simulator, "_now", &S.o_now) < 0 ||
        member_offset(Simulator, "_proc_finish", &S.o_finish) < 0 ||
        member_offset(Simulator, "_cbe_pool", &S.o_cbe_pool) < 0 ||
        member_offset(Simulator, "_creg_n", &S.o_creg_n) < 0 ||
        member_offset(Simulator, "_batch", &S.o_batch) < 0 ||
        member_offset(Simulator, "_bi", &S.o_bi) < 0 ||
        member_offset(Simulator, "_timeout_pool", &S.o_timeout_pool) < 0 ||
        member_offset(Timeout, "sim", &S.o_ev_sim) < 0 ||
        member_offset(Timeout, "_cb1", &S.o_ev_cb1) < 0 ||
        member_offset(Timeout, "_cbs", &S.o_ev_cbs) < 0 ||
        member_offset(Timeout, "_value", &S.o_ev_value) < 0 ||
        member_offset(Timeout, "delay", &S.o_to_delay) < 0 ||
        member_offset(Process, "send", &S.o_pr_send) < 0 ||
        member_offset(CallbackEntry, "fn", &S.o_cbe_fn) < 0 ||
        member_offset(CallbackEntry, "arg", &S.o_cbe_arg) < 0)
        return NULL;
    S.cbe_pool_max = PyLong_AsLong(cbe_pool_max);
    if (S.cbe_pool_max == -1 && PyErr_Occurred())
        return NULL;
    S.timeout_pool_max = PyLong_AsLong(timeout_pool_max);
    if (S.timeout_pool_max == -1 && PyErr_Occurred())
        return NULL;
    S.sim_type = (PyTypeObject *)Py_NewRef(Simulator);
    S.timeout_type = (PyTypeObject *)Py_NewRef(Timeout);
    S.process_type = (PyTypeObject *)Py_NewRef(Process);
    S.cbe_type = (PyTypeObject *)Py_NewRef(CallbackEntry);
    S.processed = Py_NewRef(processed);
    S.timeout_slow = Py_NewRef(timeout_slow);
    S.wait_on = Py_NewRef(wait_on);
    S.str_run = PyUnicode_InternFromString("_run");
    if (S.str_run == NULL)
        return NULL;
    S.configured = 1;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* timeout fast path                                                   */
/* ------------------------------------------------------------------ */
static PyObject *
accel_timeout(PyObject *sim, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    PyObject *delay = NULL, *value = Py_None;
    if (nargs > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "timeout() takes at most 2 positional arguments");
        return NULL;
    }
    if (nargs >= 1)
        delay = args[0];
    if (nargs == 2)
        value = args[1];
    if (kwnames != NULL) {
        Py_ssize_t nk = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nk; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            PyObject *v = args[nargs + i];
            if (PyUnicode_CompareWithASCIIString(name, "value") == 0) {
                if (nargs == 2) {
                    PyErr_SetString(PyExc_TypeError,
                                    "timeout() got multiple values for 'value'");
                    return NULL;
                }
                value = v;
            }
            else if (PyUnicode_CompareWithASCIIString(name, "delay") == 0) {
                if (delay != NULL) {
                    PyErr_SetString(PyExc_TypeError,
                                    "timeout() got multiple values for 'delay'");
                    return NULL;
                }
                delay = v;
            }
            else {
                PyErr_Format(PyExc_TypeError,
                             "timeout() got an unexpected keyword argument %R",
                             name);
                return NULL;
            }
        }
    }
    if (delay == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "timeout() missing required argument: 'delay'");
        return NULL;
    }
    /* Fast path — mirrors Simulator._timeout_wheel: recycled timeout in
     * the stash, exact non-negative int delay, empty calendar. */
    PyObject *t = SLOT(sim, S.o_stash);
    if (t != NULL && t != Py_None && PyLong_CheckExact(delay) &&
        SLOT(sim, S.o_reg_free) == Py_True &&
        SLOT(sim, S.o_single) == Py_None) {
        long long dv = PyLong_AsLongLong(delay);
        if (dv == -1 && PyErr_Occurred()) {
            PyErr_Clear(); /* > 63-bit delay: let the slow path handle it */
        }
        else if (dv >= 0) {
            PyObject *nowo = SLOT(sim, S.o_now);
            long long nv = nowo == NULL ? -1 : PyLong_AsLongLong(nowo);
            if (nv == -1 && PyErr_Occurred())
                PyErr_Clear();
            else if (nv >= 0 && dv <= LLONG_MAX - nv) {
                PyObject *when = PyLong_FromLongLong(nv + dv);
                if (when == NULL)
                    return NULL;
                /* pop the stash: the slot's reference becomes ours */
                SLOT(sim, S.o_stash) = Py_NewRef(Py_None);
                store_slot(t, S.o_to_delay, Py_NewRef(delay));
                store_slot(t, S.o_ev_value, Py_NewRef(value));
                store_slot(t, S.o_ev_cb1, Py_NewRef(Py_None));
                Py_INCREF(t);
                store_slot(sim, S.o_single, t);
                store_slot(sim, S.o_single_when, when);
                return t;
            }
        }
    }
    PyObject *cargs[3] = {sim, delay, value};
    return PyObject_Vectorcall(S.timeout_slow, cargs, 3, NULL);
}

/* ------------------------------------------------------------------ */
/* register-regime drain                                               */
/* ------------------------------------------------------------------ */

/* Run and clear e._cbs (`for fn in cbs: fn(e)` on a stolen list). */
static int
run_cbs(PyObject *e)
{
    PyObject *cbs = SLOT(e, S.o_ev_cbs);
    if (cbs == NULL) {
        PyErr_SetString(PyExc_AttributeError, "_cbs");
        return -1;
    }
    if (cbs == Py_None)
        return 0;
    Py_INCREF(cbs);
    store_slot(e, S.o_ev_cbs, Py_NewRef(Py_None));
    PyObject *it = PyObject_GetIter(cbs);
    Py_DECREF(cbs);
    if (it == NULL)
        return -1;
    PyObject *fn;
    while ((fn = PyIter_Next(it)) != NULL) {
        PyObject *r = PyObject_CallOneArg(fn, e);
        Py_DECREF(fn);
        if (r == NULL) {
            Py_DECREF(it);
            return -1;
        }
        Py_DECREF(r);
    }
    Py_DECREF(it);
    return PyErr_Occurred() ? -1 : 0;
}

/* Consume our reference to a dispatched event: stash it when provably
 * external-free (the Python spin's `if getrefcount(e) == 2`), else drop. */
static inline void
recycle_register(PyObject *sim, PyObject *e)
{
    if (Py_REFCNT(e) == 1) {
        PyObject *old = SLOT(sim, S.o_stash);
        SLOT(sim, S.o_stash) = e; /* steals our reference */
        Py_XDECREF(old);
    }
    else {
        Py_DECREF(e);
    }
}

/* The generator raised (or returned): normalize the exception, run the
 * process-finish protocol exactly as `except BaseException as exc:
 * finish(cb, exc)` would, with the exception installed as "currently
 * handled" so secondary raises chain their __context__. */
static int
finish_process(PyObject *sim, PyObject *cb, PyObject *e)
{
    PyObject *et, *ev, *tb;
    PyErr_Fetch(&et, &ev, &tb);
    if (et == NULL) {
        PyErr_SetString(PyExc_SystemError, "send failed without an exception");
        return -1;
    }
    PyErr_NormalizeException(&et, &ev, &tb);
    if (tb != NULL)
        PyException_SetTraceback(ev, tb);
#if PY_VERSION_HEX >= 0x030B0000
    PyObject *prev = PyErr_GetHandledException();
    PyErr_SetHandledException(ev);
#else
    PyObject *pt, *pv, *ptb;
    PyErr_GetExcInfo(&pt, &pv, &ptb);
    PyErr_SetExcInfo(Py_NewRef(et), Py_NewRef(ev),
                     tb ? Py_NewRef(tb) : NULL);
#endif
    int ok = -1;
    PyObject *fin = SLOT(sim, S.o_finish);
    if (fin == NULL) {
        PyErr_SetString(PyExc_AttributeError, "_proc_finish");
    }
    else {
        PyObject *fargs[2] = {cb, ev};
        PyObject *r = PyObject_Vectorcall(fin, fargs, 2, NULL);
        if (r != NULL) {
            Py_DECREF(r);
            if (run_cbs(e) == 0)
                ok = 0;
        }
    }
#if PY_VERSION_HEX >= 0x030B0000
    PyErr_SetHandledException(prev);
    Py_XDECREF(prev);
#else
    PyErr_SetExcInfo(pt, pv, ptb);
#endif
    Py_DECREF(et);
    Py_DECREF(ev);
    Py_XDECREF(tb);
    return ok;
}

static PyObject *
accel_reg_drain(PyObject *sim, PyObject *Py_UNUSED(ignored))
{
    long long count = 0;
    for (;;) {
        PyObject *cb = NULL;
        PyObject *e = SLOT(sim, S.o_single);
        if (e == NULL || e == Py_None)
            break;
        /* pop the register (the slot's reference becomes ours) */
        SLOT(sim, S.o_single) = Py_NewRef(Py_None);
        PyObject *w = SLOT(sim, S.o_single_when);
        if (w == NULL) {
            PyErr_SetString(PyExc_AttributeError, "_single_when");
            goto err_e;
        }
        store_slot(sim, S.o_now, Py_NewRef(w));
        PyTypeObject *cls = Py_TYPE(e);
        if (cls == S.timeout_type) {
            cb = SLOT(e, S.o_ev_cb1);
            if (cb == NULL) {
                PyErr_SetString(PyExc_AttributeError, "_cb1");
                goto err_e;
            }
            Py_INCREF(cb);
            store_slot(e, S.o_ev_cb1, Py_NewRef(S.processed));
            if (Py_TYPE(cb) == S.process_type) {
                /* Chain spin: keep driving this process while each resume
                 * parks a fresh timeout in the register (the dominant
                 * `yield sim.timeout(...)` pattern). */
                for (;;) {
                    count++;
                    PyObject *send = SLOT(cb, S.o_pr_send);
                    PyObject *val = SLOT(e, S.o_ev_value);
                    if (send == NULL || val == NULL) {
                        PyErr_SetString(PyExc_AttributeError,
                                        send == NULL ? "send" : "_value");
                        goto err_e_cb;
                    }
                    Py_INCREF(send);
                    Py_INCREF(val);
                    PyObject *nxt = PyObject_CallOneArg(send, val);
                    Py_DECREF(send);
                    Py_DECREF(val);
                    if (nxt == NULL) {
                        if (finish_process(sim, cb, e) < 0)
                            goto err_e_cb;
                        recycle_register(sim, e);
                        Py_DECREF(cb);
                        break;
                    }
                    if (Py_TYPE(nxt) == S.timeout_type &&
                        SLOT(nxt, S.o_ev_cb1) == Py_None &&
                        SLOT(nxt, S.o_ev_sim) == sim) {
                        /* wire: nxt._cb1 = cb */
                        store_slot(nxt, S.o_ev_cb1, Py_NewRef(cb));
                        if (run_cbs(e) < 0) {
                            Py_DECREF(nxt);
                            goto err_e_cb;
                        }
                        recycle_register(sim, e);
                        /* spin continues iff nxt still sits in the register
                         * (an e._cbs callback may have migrated it) */
                        if (SLOT(sim, S.o_single) == nxt) {
                            e = SLOT(sim, S.o_single); /* take the slot ref */
                            SLOT(sim, S.o_single) = Py_NewRef(Py_None);
                            Py_DECREF(nxt); /* drop the call-result ref */
                            w = SLOT(sim, S.o_single_when);
                            if (w == NULL) {
                                PyErr_SetString(PyExc_AttributeError,
                                                "_single_when");
                                goto err_e_cb;
                            }
                            store_slot(sim, S.o_now, Py_NewRef(w));
                            store_slot(e, S.o_ev_cb1, Py_NewRef(S.processed));
                            continue;
                        }
                        Py_DECREF(nxt);
                        Py_DECREF(cb);
                        break;
                    }
                    /* generic yield target: cb._wait_on(nxt) */
                    {
                        PyObject *wargs[2] = {cb, nxt};
                        PyObject *r =
                            PyObject_Vectorcall(S.wait_on, wargs, 2, NULL);
                        Py_DECREF(nxt);
                        if (r == NULL)
                            goto err_e_cb;
                        Py_DECREF(r);
                    }
                    if (run_cbs(e) < 0)
                        goto err_e_cb;
                    recycle_register(sim, e);
                    Py_DECREF(cb);
                    break;
                }
            }
            else {
                /* plain-callback (or no-callback) timeout */
                count++;
                if (cb != Py_None) {
                    PyObject *r = PyObject_CallOneArg(cb, e);
                    if (r == NULL)
                        goto err_e_cb;
                    Py_DECREF(r);
                }
                if (run_cbs(e) < 0)
                    goto err_e_cb;
                recycle_register(sim, e);
                Py_DECREF(cb);
            }
        }
        else if (cls == S.cbe_type) {
            count++;
            PyObject *fn = SLOT(e, S.o_cbe_fn);
            PyObject *arg = SLOT(e, S.o_cbe_arg);
            if (fn == NULL || arg == NULL) {
                PyErr_SetString(PyExc_AttributeError,
                                fn == NULL ? "fn" : "arg");
                goto err_e;
            }
            Py_INCREF(fn);
            Py_INCREF(arg);
            PyObject *r = PyObject_CallOneArg(fn, arg);
            Py_DECREF(fn);
            Py_DECREF(arg);
            if (r == NULL)
                goto err_e;
            Py_DECREF(r);
            PyObject *pool = SLOT(sim, S.o_cbe_pool);
            if (pool != NULL && PyList_CheckExact(pool) &&
                PyList_GET_SIZE(pool) < S.cbe_pool_max) {
                store_slot(e, S.o_cbe_fn, Py_NewRef(Py_None));
                store_slot(e, S.o_cbe_arg, Py_NewRef(Py_None));
                if (PyList_Append(pool, e) < 0)
                    goto err_e;
            }
            Py_DECREF(e);
        }
        else {
            count++;
            PyObject *r = PyObject_CallMethodNoArgs(e, S.str_run);
            if (r == NULL)
                goto err_e;
            Py_DECREF(r);
            Py_DECREF(e);
        }
        continue;
    err_e_cb:
        Py_DECREF(cb);
    err_e:
        Py_DECREF(e);
        goto fail;
    }
    return PyLong_FromLongLong(count);

fail:;
    /* Record the partial count (the interrupted event included, exactly
     * like the pure loop's `n += 1`-before-dispatch) for drain_fifo's
     * `except` handler, without disturbing the in-flight exception. */
    {
        PyObject *et, *ev, *tb;
        PyErr_Fetch(&et, &ev, &tb);
        PyObject *cn = PyLong_FromLongLong(count);
        if (cn != NULL)
            store_slot(sim, S.o_creg_n, cn);
        else
            PyErr_Clear();
        PyErr_Restore(et, ev, tb);
    }
    return NULL;
}

/* ------------------------------------------------------------------ */
/* same-instant batch dispatch                                         */
/* ------------------------------------------------------------------ */

/* Consume our reference to a batch-dispatched Timeout, mirroring the
 * Python batch loop's two-level recycle: the stash first (only when
 * empty — the batch loop, unlike the register spin, never overwrites
 * it), then the timeout pool. */
static int
recycle_batch(PyObject *sim, PyObject *e)
{
    if (Py_REFCNT(e) != 1) {
        Py_DECREF(e);
        return 0;
    }
    PyObject *st = SLOT(sim, S.o_stash);
    if (st == NULL || st == Py_None) {
        SLOT(sim, S.o_stash) = e; /* steals our reference */
        Py_XDECREF(st);
        return 0;
    }
    PyObject *pool = SLOT(sim, S.o_timeout_pool);
    if (pool != NULL && PyList_CheckExact(pool) &&
        PyList_GET_SIZE(pool) < S.timeout_pool_max) {
        int rc = PyList_Append(pool, e);
        Py_DECREF(e);
        return rc;
    }
    Py_DECREF(e);
    return 0;
}

/* Dispatch the current same-instant batch (sim._batch, a list already
 * timestamped and sorted by the caller), exactly as the pure loops in
 * _core.drain_fifo / drain_fifo_gated do: take-and-null each slot, count
 * in sim._bi before dispatching, re-check the length at the end so
 * same-instant arrivals appended by callbacks run in this batch.
 *
 * `budget` < 0 means uncapped; otherwise dispatch stops once `budget`
 * entries ran (the gated drain turns that into its max_events raise).
 * Returns the number of entries consumed; on an escaping exception the
 * partial count (interrupted entry included) is left in sim._creg_n for
 * the caller's restore_fifo, like the register drain does. */
static PyObject *
accel_batch_run(PyObject *sim, PyObject *const *args, Py_ssize_t nargs)
{
    long long budget = -1;
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError,
                        "_cbatch_run() takes at most one argument");
        return NULL;
    }
    if (nargs == 1) {
        budget = PyLong_AsLongLong(args[0]);
        if (budget == -1 && PyErr_Occurred())
            return NULL;
    }
    PyObject *ls = SLOT(sim, S.o_batch);
    if (ls == NULL || !PyList_CheckExact(ls)) {
        PyErr_SetString(PyExc_TypeError, "_batch is not a list");
        return NULL;
    }
    Py_INCREF(ls);
    Py_ssize_t i = 0;
    Py_ssize_t blen = PyList_GET_SIZE(ls);
    for (;;) {
        PyObject *cb = NULL;
        PyObject *e = PyList_GET_ITEM(ls, i); /* borrowed */
        Py_INCREF(e);                          /* ours */
        PyList_SET_ITEM(ls, i, Py_NewRef(Py_None));
        Py_DECREF(e); /* pay back the list reference SET_ITEM leaked */
        i++;
        {
            PyObject *io = PyLong_FromSsize_t(i);
            if (io == NULL)
                goto err_e;
            store_slot(sim, S.o_bi, io);
        }
        PyTypeObject *cls = Py_TYPE(e);
        if (cls == S.timeout_type) {
            cb = SLOT(e, S.o_ev_cb1);
            if (cb == NULL) {
                PyErr_SetString(PyExc_AttributeError, "_cb1");
                goto err_e;
            }
            Py_INCREF(cb);
            store_slot(e, S.o_ev_cb1, Py_NewRef(S.processed));
            if (Py_TYPE(cb) == S.process_type) {
                PyObject *send = SLOT(cb, S.o_pr_send);
                PyObject *val = SLOT(e, S.o_ev_value);
                if (send == NULL || val == NULL) {
                    PyErr_SetString(PyExc_AttributeError,
                                    send == NULL ? "send" : "_value");
                    goto err_e_cb;
                }
                Py_INCREF(send);
                Py_INCREF(val);
                PyObject *nxt = PyObject_CallOneArg(send, val);
                Py_DECREF(send);
                Py_DECREF(val);
                if (nxt == NULL) {
                    /* finish_process runs e._cbs itself */
                    if (finish_process(sim, cb, e) < 0)
                        goto err_e_cb;
                }
                else {
                    if (Py_TYPE(nxt) == S.timeout_type &&
                        SLOT(nxt, S.o_ev_cb1) == Py_None &&
                        SLOT(nxt, S.o_ev_sim) == sim) {
                        store_slot(nxt, S.o_ev_cb1, Py_NewRef(cb));
                        Py_DECREF(nxt);
                    }
                    else {
                        PyObject *wargs[2] = {cb, nxt};
                        PyObject *r =
                            PyObject_Vectorcall(S.wait_on, wargs, 2, NULL);
                        Py_DECREF(nxt);
                        if (r == NULL)
                            goto err_e_cb;
                        Py_DECREF(r);
                    }
                    if (run_cbs(e) < 0)
                        goto err_e_cb;
                }
            }
            else {
                if (cb != Py_None) {
                    PyObject *r = PyObject_CallOneArg(cb, e);
                    if (r == NULL)
                        goto err_e_cb;
                    Py_DECREF(r);
                }
                if (run_cbs(e) < 0)
                    goto err_e_cb;
            }
            Py_DECREF(cb);
            cb = NULL;
            if (recycle_batch(sim, e) < 0)
                goto fail;
        }
        else if (cls == S.cbe_type) {
            PyObject *fn = SLOT(e, S.o_cbe_fn);
            PyObject *arg = SLOT(e, S.o_cbe_arg);
            if (fn == NULL || arg == NULL) {
                PyErr_SetString(PyExc_AttributeError,
                                fn == NULL ? "fn" : "arg");
                goto err_e;
            }
            Py_INCREF(fn);
            Py_INCREF(arg);
            PyObject *r = PyObject_CallOneArg(fn, arg);
            Py_DECREF(fn);
            Py_DECREF(arg);
            if (r == NULL)
                goto err_e;
            Py_DECREF(r);
            PyObject *pool = SLOT(sim, S.o_cbe_pool);
            if (pool != NULL && PyList_CheckExact(pool) &&
                PyList_GET_SIZE(pool) < S.cbe_pool_max) {
                store_slot(e, S.o_cbe_fn, Py_NewRef(Py_None));
                store_slot(e, S.o_cbe_arg, Py_NewRef(Py_None));
                if (PyList_Append(pool, e) < 0)
                    goto err_e;
            }
            Py_DECREF(e);
        }
        else {
            PyObject *r = PyObject_CallMethodNoArgs(e, S.str_run);
            if (r == NULL)
                goto err_e;
            Py_DECREF(r);
            Py_DECREF(e);
        }
        if (budget >= 0 && i >= budget)
            break; /* caller raises its max_events error and restores */
        if (i == blen) {
            blen = PyList_GET_SIZE(ls);
            if (i == blen)
                break;
        }
        continue;
    err_e_cb:
        Py_DECREF(cb);
    err_e:
        Py_DECREF(e);
        goto fail;
    }
    Py_DECREF(ls);
    return PyLong_FromSsize_t(i);

fail:;
    {
        PyObject *et, *ev, *tb;
        PyErr_Fetch(&et, &ev, &tb);
        PyObject *cn = PyLong_FromSsize_t(i);
        if (cn != NULL)
            store_slot(sim, S.o_creg_n, cn);
        else
            PyErr_Clear();
        PyErr_Restore(et, ev, tb);
    }
    Py_DECREF(ls);
    return NULL;
}

/* ================================================================== */
/* cells engine — C port of repro.simnet.cells                         */
/* ================================================================== */
/* Mirrors CellSimulator._place/_take_instant/_run_instant/_drain_cells
 * plus the per-cell wheel primitives from _core (insert/_cascade_fifo/
 * next_batch_fifo/peek_structures) operating on _Cell objects.  All
 * state lives in the same Python __slots__ the pure code uses, so C and
 * pure paths interleave freely (step() stays pure) and a mid-run
 * exception leaves a calendar the pure code can resume.
 *
 * The per-instant heaps hold (key, entry) tuples with *unique* keys
 * (the (target, source, cnt) placement key), so pop order equals sorted
 * order regardless of internal heap layout — the C binary heap need not
 * replicate heapq's array layout, and restores (which re-insert in list
 * order and re-heapify at the next take) cannot observe it either. */

#define CS0_BITS 12
#define CS0_SIZE (1LL << CS0_BITS)
#define CS0_MASK (CS0_SIZE - 1)
#define CS1_SIZE 4096LL
#define CS1_MASK (CS1_SIZE - 1)
#define CWHEEL_HORIZON ((CS1_SIZE - 1) << CS0_BITS)
#define CLL_INF LLONG_MAX

static struct {
    int configured;
    PyTypeObject *cellsim_type;
    PyTypeObject *cell_type;
    PyTypeObject *event_type;
    PyObject *sim_error; /* SimulationError */
    PyObject *inf;       /* float('inf') — the pure code's INF sentinel */
    PyObject *str_seq;   /* interned "_seq" */
    /* pure-Python fallbacks (plain functions, called with sim prepended) */
    PyObject *py_schedule, *py_call_in, *py_timeout, *py_call_in_cell;
    /* CellSimulator slots */
    Py_ssize_t o_cellmap, o_cells, o_nexts, o_ctrl, o_cur, o_decouple,
        o_cnt, o_rtcell, o_rttime, o_rheap, o_W, o_maxe, o_grants;
    /* Simulator counter slots (resolved through the CellSimulator MRO) */
    Py_ssize_t o_events_exec, o_batches, o_batched, o_maxbatch, o_to_allocs,
        o_to_reuses, o_cbe_allocs, o_cbe_reuses, o_to_cls;
    /* Event._seq (one offset for every Event subclass) / CallbackEntry._seq */
    Py_ssize_t o_ev_seq, o_cbe_seq;
    /* Event._ok and Process.throw (the generic-event dispatch fast path) */
    Py_ssize_t o_ev_ok, o_pr_throw;
    /* _Cell slots */
    Py_ssize_t c_i, c_name, c_now, c_single, c_single_when, c_slots0,
        c_slots1, c_t0, c_t1, c_hq, c_dirty, c_base, c_nstruct, c_reg_free,
        c_l0, c_l1, c_hqi, c_casc, c_instants, c_events, c_inbox, c_lastwin;
    /* CellMap slots */
    Py_ssize_t m_names, m_look;
    /* live next-instant mirror: while a C drain runs, cells_place keeps
     * this native copy of `_nexts` in sync so the grant loop's argmin
     * scans never unbox Python ints.  NULL outside a drain. */
    long long *nx_arr;
    Py_ssize_t nx_n;
} C;

/* Read a time/counter slot value: exact int, or float (only ever the INF
 * sentinel) mapping to CLL_INF.  Returns -1 with an exception set on
 * conversion failure (real values are never negative). */
static long long
obj_ll(PyObject *o)
{
    if (o == NULL) {
        PyErr_SetString(PyExc_AttributeError, "unset slot");
        return -1;
    }
    if (PyFloat_Check(o))
        return CLL_INF;
    return PyLong_AsLongLong(o);
}

#define LL_ERR(v) ((v) == -1 && PyErr_Occurred())

/* slot += d for an int-valued slot */
static int
bump_slot(PyObject *ob, Py_ssize_t off, long long d)
{
    long long v = obj_ll(SLOT(ob, off));
    if (LL_ERR(v))
        return -1;
    PyObject *nw = PyLong_FromLongLong(v + d);
    if (nw == NULL)
        return -1;
    store_slot(ob, off, nw);
    return 0;
}

/* ------------------------------------------------------------------ */
/* binary heap on a Python list, ordered by PyObject_RichCompareBool   */
/* (items are int/tuple keys — identical ordering to heapq's)          */
/* ------------------------------------------------------------------ */
static int
heap_push(PyObject *h, PyObject *item)
{
    if (PyList_Append(h, item) < 0)
        return -1;
    Py_ssize_t pos = PyList_GET_SIZE(h) - 1;
    while (pos > 0) {
        Py_ssize_t par = (pos - 1) >> 1;
        PyObject *pi = PyList_GET_ITEM(h, par);
        PyObject *ci = PyList_GET_ITEM(h, pos);
        int lt = PyObject_RichCompareBool(ci, pi, Py_LT);
        if (lt < 0)
            return -1;
        if (!lt)
            break;
        PyList_SET_ITEM(h, par, ci); /* references swap positions */
        PyList_SET_ITEM(h, pos, pi);
        pos = par;
    }
    return 0;
}

static int
heap_siftdown(PyObject *h, Py_ssize_t pos)
{
    Py_ssize_t n = PyList_GET_SIZE(h);
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n) {
            int lt = PyObject_RichCompareBool(PyList_GET_ITEM(h, child + 1),
                                              PyList_GET_ITEM(h, child),
                                              Py_LT);
            if (lt < 0)
                return -1;
            if (lt)
                child++;
        }
        PyObject *ci = PyList_GET_ITEM(h, child);
        PyObject *pi = PyList_GET_ITEM(h, pos);
        int lt = PyObject_RichCompareBool(ci, pi, Py_LT);
        if (lt < 0)
            return -1;
        if (!lt)
            break;
        PyList_SET_ITEM(h, pos, ci);
        PyList_SET_ITEM(h, child, pi);
        pos = child;
    }
    return 0;
}

/* Pop the minimum item; returns a new reference (NULL + IndexError when
 * empty, NULL + error on comparison failure). */
static PyObject *
heap_pop(PyObject *h)
{
    Py_ssize_t n = PyList_GET_SIZE(h);
    if (n == 0) {
        PyErr_SetString(PyExc_IndexError, "pop from empty heap");
        return NULL;
    }
    PyObject *last = PyList_GET_ITEM(h, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(h, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (n == 1)
        return last;
    PyObject *ret = PyList_GET_ITEM(h, 0);
    Py_INCREF(ret);
    PyList_SetItem(h, 0, last); /* steals last, releases the old head */
    if (heap_siftdown(h, 0) < 0) {
        Py_DECREF(ret);
        return NULL;
    }
    return ret;
}

/* ------------------------------------------------------------------ */
/* entry._seq access (the cells (target, source, cnt) key tuple)       */
/* ------------------------------------------------------------------ */
static PyObject * /* new reference */
get_seq(PyObject *e)
{
    PyTypeObject *t = Py_TYPE(e);
    PyObject *s;
    if (t == S.cbe_type)
        s = SLOT(e, C.o_cbe_seq);
    else if (t == S.timeout_type || PyObject_TypeCheck(e, C.event_type))
        s = SLOT(e, C.o_ev_seq);
    else
        return PyObject_GetAttr(e, C.str_seq);
    if (s == NULL) {
        PyErr_SetString(PyExc_AttributeError, "_seq");
        return NULL;
    }
    return Py_NewRef(s);
}

static int
set_seq(PyObject *e, PyObject *key)
{
    PyTypeObject *t = Py_TYPE(e);
    if (t == S.cbe_type)
        store_slot(e, C.o_cbe_seq, Py_NewRef(key));
    else if (t == S.timeout_type || PyObject_TypeCheck(e, C.event_type))
        store_slot(e, C.o_ev_seq, Py_NewRef(key));
    else
        return PyObject_SetAttr(e, C.str_seq, key);
    return 0;
}

/* ------------------------------------------------------------------ */
/* per-cell wheel primitives (ports of _core insert/cascade/batch/peek)*/
/* ------------------------------------------------------------------ */

/* _core.insert(cell, when, entry): FIFO wheel insert.  `when_obj` must
 * be a borrowed int object equal to `when`. */
static int
cell_insert(PyObject *cell, long long when, PyObject *when_obj,
            PyObject *entry)
{
    store_slot(cell, C.c_reg_free, Py_NewRef(Py_False));
    long long base = obj_ll(SLOT(cell, C.c_base));
    if (LL_ERR(base))
        return -1;
    long long d = when - base;
    if (d < CS0_SIZE) {
        Py_ssize_t idx = (Py_ssize_t)(when & CS0_MASK);
        PyObject *s0 = SLOT(cell, C.c_slots0);
        PyObject *cur = PyList_GET_ITEM(s0, idx);
        if (cur == Py_None) {
            PyObject *nl = PyList_New(1);
            if (nl == NULL)
                return -1;
            PyList_SET_ITEM(nl, 0, Py_NewRef(entry));
            if (PyList_SetItem(s0, idx, nl) < 0)
                return -1;
            if (heap_push(SLOT(cell, C.c_t0), when_obj) < 0)
                return -1;
        }
        else if (PyList_Append(cur, entry) < 0)
            return -1;
        if (bump_slot(cell, C.c_l0, 1) < 0)
            return -1;
    }
    else if (d < CWHEEL_HORIZON) {
        long long b = when >> CS0_BITS;
        Py_ssize_t idx = (Py_ssize_t)(b & CS1_MASK);
        PyObject *item = PyTuple_Pack(2, when_obj, entry);
        if (item == NULL)
            return -1;
        PyObject *s1 = SLOT(cell, C.c_slots1);
        PyObject *cur = PyList_GET_ITEM(s1, idx);
        if (cur == Py_None) {
            PyObject *nl = PyList_New(1);
            if (nl == NULL) {
                Py_DECREF(item);
                return -1;
            }
            PyList_SET_ITEM(nl, 0, item); /* steals item */
            if (PyList_SetItem(s1, idx, nl) < 0)
                return -1;
            PyObject *bo = PyLong_FromLongLong(b);
            if (bo == NULL)
                return -1;
            int rc = heap_push(SLOT(cell, C.c_t1), bo);
            Py_DECREF(bo);
            if (rc < 0)
                return -1;
        }
        else {
            int rc = PyList_Append(cur, item);
            Py_DECREF(item);
            if (rc < 0)
                return -1;
        }
        if (bump_slot(cell, C.c_l1, 1) < 0)
            return -1;
    }
    else {
        PyObject *seq = get_seq(entry);
        if (seq == NULL)
            return -1;
        PyObject *trip = PyTuple_Pack(3, when_obj, seq, entry);
        Py_DECREF(seq);
        if (trip == NULL)
            return -1;
        int rc = heap_push(SLOT(cell, C.c_hq), trip);
        Py_DECREF(trip);
        if (rc < 0)
            return -1;
        if (bump_slot(cell, C.c_hqi, 1) < 0)
            return -1;
    }
    return bump_slot(cell, C.c_nstruct, 1);
}

/* _core._cascade_fifo(cell, b) */
static int
cell_cascade(PyObject *cell, long long b)
{
    PyObject *popped = heap_pop(SLOT(cell, C.c_t1));
    if (popped == NULL)
        return -1;
    Py_DECREF(popped);
    Py_ssize_t idx = (Py_ssize_t)(b & CS1_MASK);
    PyObject *s1 = SLOT(cell, C.c_slots1);
    PyObject *entries = PyList_GET_ITEM(s1, idx);
    Py_INCREF(entries);
    if (PyList_SetItem(s1, idx, Py_NewRef(Py_None)) < 0) {
        Py_DECREF(entries);
        return -1;
    }
    long long lb = b << CS0_BITS;
    long long base = obj_ll(SLOT(cell, C.c_base));
    if (LL_ERR(base))
        goto fail;
    if (lb > base) {
        PyObject *nb = PyLong_FromLongLong(lb);
        if (nb == NULL)
            goto fail;
        store_slot(cell, C.c_base, nb);
    }
    {
        PyObject *s0 = SLOT(cell, C.c_slots0);
        PyObject *t0 = SLOT(cell, C.c_t0);
        PyObject *dirty = SLOT(cell, C.c_dirty);
        char *db = PyByteArray_AsString(dirty);
        if (db == NULL)
            goto fail;
        Py_ssize_t n = PyList_GET_SIZE(entries);
        for (Py_ssize_t k = 0; k < n; k++) {
            PyObject *item = PyList_GET_ITEM(entries, k); /* (when, entry) */
            PyObject *wo = PyTuple_GET_ITEM(item, 0);
            PyObject *entry = PyTuple_GET_ITEM(item, 1);
            long long when = obj_ll(wo);
            if (LL_ERR(when))
                goto fail;
            Py_ssize_t i = (Py_ssize_t)(when & CS0_MASK);
            PyObject *cur = PyList_GET_ITEM(s0, i);
            if (cur == Py_None) {
                PyObject *nl = PyList_New(1);
                if (nl == NULL)
                    goto fail;
                PyList_SET_ITEM(nl, 0, Py_NewRef(entry));
                if (PyList_SetItem(s0, i, nl) < 0)
                    goto fail;
                if (heap_push(t0, wo) < 0)
                    goto fail;
            }
            else if (PyList_Append(cur, entry) < 0)
                goto fail;
            db[i] = 1;
        }
    }
    Py_DECREF(entries);
    return bump_slot(cell, C.c_casc, 1);
fail:
    Py_DECREF(entries);
    return -1;
}

/* _Cell.peek(): CLL_INF when idle, -1 with an exception on failure. */
static long long
cell_peek(PyObject *cell)
{
    PyObject *single = SLOT(cell, C.c_single);
    if (single != Py_None) {
        long long w = obj_ll(SLOT(cell, C.c_single_when));
        return LL_ERR(w) ? -1 : w;
    }
    long long ns = obj_ll(SLOT(cell, C.c_nstruct));
    if (LL_ERR(ns))
        return -1;
    if (ns == 0)
        return CLL_INF;
    /* _core.peek_structures */
    long long t = CLL_INF;
    PyObject *t0 = SLOT(cell, C.c_t0);
    if (PyList_GET_SIZE(t0)) {
        t = obj_ll(PyList_GET_ITEM(t0, 0));
        if (LL_ERR(t))
            return -1;
    }
    PyObject *hq = SLOT(cell, C.c_hq);
    if (PyList_GET_SIZE(hq)) {
        long long th =
            obj_ll(PyTuple_GET_ITEM(PyList_GET_ITEM(hq, 0), 0));
        if (LL_ERR(th))
            return -1;
        if (th < t)
            t = th;
    }
    PyObject *t1 = SLOT(cell, C.c_t1);
    if (PyList_GET_SIZE(t1)) {
        long long b = obj_ll(PyList_GET_ITEM(t1, 0));
        if (LL_ERR(b))
            return -1;
        if ((b << CS0_BITS) < t) {
            PyObject *bucket =
                PyList_GET_ITEM(SLOT(cell, C.c_slots1),
                                (Py_ssize_t)(b & CS1_MASK));
            long long bm = CLL_INF;
            Py_ssize_t n = PyList_GET_SIZE(bucket);
            for (Py_ssize_t k = 0; k < n; k++) {
                long long w = obj_ll(
                    PyTuple_GET_ITEM(PyList_GET_ITEM(bucket, k), 0));
                if (LL_ERR(w))
                    return -1;
                if (w < bm)
                    bm = w;
            }
            if (bm < t)
                t = bm;
        }
    }
    return t;
}

/* CellSimulator._take_instant: pop the minimum instant as a heapified
 * list of (key, entry) tuples.  Returns NULL with *t_out == CLL_INF and
 * no exception when the cell is empty; NULL with an exception on error.
 * (The pure code's dirty-slot seq sort and overflow-merge sort are
 * subsumed by building the keyed heap — keys are unique, so pop order
 * is total regardless.) */
static PyObject *
cell_take(PyObject *cell, long long *t_out)
{
    *t_out = CLL_INF;
    PyObject *s = SLOT(cell, C.c_single);
    if (s != Py_None) {
        Py_INCREF(s);
        store_slot(cell, C.c_single, Py_NewRef(Py_None));
        long long w = obj_ll(SLOT(cell, C.c_single_when));
        if (LL_ERR(w)) {
            Py_DECREF(s);
            return NULL;
        }
        PyObject *key = get_seq(s);
        if (key == NULL) {
            Py_DECREF(s);
            return NULL;
        }
        PyObject *tup = PyTuple_Pack(2, key, s);
        Py_DECREF(key);
        Py_DECREF(s);
        if (tup == NULL)
            return NULL;
        PyObject *h = PyList_New(1);
        if (h == NULL) {
            Py_DECREF(tup);
            return NULL;
        }
        PyList_SET_ITEM(h, 0, tup);
        *t_out = w;
        return h;
    }
    /* _core.next_batch_fifo */
    PyObject *t0h = SLOT(cell, C.c_t0);
    PyObject *t1h = SLOT(cell, C.c_t1);
    PyObject *hq = SLOT(cell, C.c_hq);
    while (PyList_GET_SIZE(t1h)) {
        long long b = obj_ll(PyList_GET_ITEM(t1h, 0));
        if (LL_ERR(b))
            return NULL;
        long long lb = b << CS0_BITS;
        if (PyList_GET_SIZE(t0h)) {
            long long f = obj_ll(PyList_GET_ITEM(t0h, 0));
            if (LL_ERR(f))
                return NULL;
            if (f < lb)
                break;
        }
        if (PyList_GET_SIZE(hq)) {
            long long f =
                obj_ll(PyTuple_GET_ITEM(PyList_GET_ITEM(hq, 0), 0));
            if (LL_ERR(f))
                return NULL;
            if (f < lb)
                break;
        }
        if (cell_cascade(cell, b) < 0)
            return NULL;
    }
    PyObject *ls = NULL;
    long long t = 0;
    if (PyList_GET_SIZE(t0h)) {
        t = obj_ll(PyList_GET_ITEM(t0h, 0));
        if (LL_ERR(t))
            return NULL;
        long long hq0 = CLL_INF;
        if (PyList_GET_SIZE(hq)) {
            hq0 = obj_ll(PyTuple_GET_ITEM(PyList_GET_ITEM(hq, 0), 0));
            if (LL_ERR(hq0))
                return NULL;
        }
        if (t <= hq0) {
            PyObject *popped = heap_pop(t0h);
            if (popped == NULL)
                return NULL;
            Py_DECREF(popped);
            Py_ssize_t idx = (Py_ssize_t)(t & CS0_MASK);
            PyObject *s0 = SLOT(cell, C.c_slots0);
            ls = PyList_GET_ITEM(s0, idx);
            Py_INCREF(ls);
            if (PyList_SetItem(s0, idx, Py_NewRef(Py_None)) < 0)
                goto fail;
            {
                char *db = PyByteArray_AsString(SLOT(cell, C.c_dirty));
                if (db == NULL)
                    goto fail;
                db[idx] = 0;
            }
            while (PyList_GET_SIZE(hq)) {
                long long f =
                    obj_ll(PyTuple_GET_ITEM(PyList_GET_ITEM(hq, 0), 0));
                if (LL_ERR(f))
                    goto fail;
                if (f != t)
                    break;
                PyObject *trip = heap_pop(hq);
                if (trip == NULL)
                    goto fail;
                int rc = PyList_Append(ls, PyTuple_GET_ITEM(trip, 2));
                Py_DECREF(trip);
                if (rc < 0)
                    goto fail;
            }
            goto build;
        }
    }
    if (PyList_GET_SIZE(hq)) {
        t = obj_ll(PyTuple_GET_ITEM(PyList_GET_ITEM(hq, 0), 0));
        if (LL_ERR(t))
            return NULL;
        ls = PyList_New(0);
        if (ls == NULL)
            return NULL;
        for (;;) {
            PyObject *trip = heap_pop(hq);
            if (trip == NULL)
                goto fail;
            int rc = PyList_Append(ls, PyTuple_GET_ITEM(trip, 2));
            Py_DECREF(trip);
            if (rc < 0)
                goto fail;
            if (!PyList_GET_SIZE(hq))
                break;
            long long f =
                obj_ll(PyTuple_GET_ITEM(PyList_GET_ITEM(hq, 0), 0));
            if (LL_ERR(f))
                goto fail;
            if (f != t)
                break;
        }
        goto build;
    }
    return NULL; /* empty calendar: *t_out stays CLL_INF, no exception */

build:;
    {
        Py_ssize_t blen = PyList_GET_SIZE(ls);
        if (bump_slot(cell, C.c_nstruct, -blen) < 0)
            goto fail;
        PyObject *to = PyLong_FromLongLong(t);
        if (to == NULL)
            goto fail;
        store_slot(cell, C.c_base, to); /* cell._base = t */
        PyObject *h = PyList_New(0);
        if (h == NULL)
            goto fail;
        for (Py_ssize_t k = 0; k < blen; k++) {
            PyObject *e = PyList_GET_ITEM(ls, k);
            PyObject *key = get_seq(e);
            if (key == NULL)
                goto fail_h;
            PyObject *tup = PyTuple_Pack(2, key, e);
            Py_DECREF(key);
            if (tup == NULL)
                goto fail_h;
            int rc = heap_push(h, tup);
            Py_DECREF(tup);
            if (rc < 0)
                goto fail_h;
        }
        Py_DECREF(ls);
        *t_out = t;
        return h;
    fail_h:
        Py_DECREF(h);
    }
fail:
    Py_XDECREF(ls);
    return NULL;
}

/* cells._restore_cell: re-insert an interrupted instant's remaining
 * (key, entry) heap, spilling a parked register first. */
static int
cell_restore(PyObject *cell, long long t, PyObject *heap)
{
    PyObject *s = SLOT(cell, C.c_single);
    if (s != Py_None) {
        Py_INCREF(s);
        store_slot(cell, C.c_single, Py_NewRef(Py_None));
        PyObject *wo = SLOT(cell, C.c_single_when);
        long long w = obj_ll(wo);
        if (LL_ERR(w)) {
            Py_DECREF(s);
            return -1;
        }
        int rc = cell_insert(cell, w, wo, s);
        Py_DECREF(s);
        if (rc < 0)
            return -1;
    }
    PyObject *to = PyLong_FromLongLong(t);
    if (to == NULL)
        return -1;
    Py_ssize_t n = PyList_GET_SIZE(heap);
    for (Py_ssize_t k = 0; k < n; k++) {
        PyObject *e = PyTuple_GET_ITEM(PyList_GET_ITEM(heap, k), 1);
        if (cell_insert(cell, t, to, e) < 0) {
            Py_DECREF(to);
            return -1;
        }
    }
    Py_DECREF(to);
    return 0;
}

/* ------------------------------------------------------------------ */
/* placement (CellSimulator._place)                                    */
/* ------------------------------------------------------------------ */
static int
cells_place(PyObject *sim, long long target, PyObject *entry, long long when)
{
    long long src = obj_ll(SLOT(sim, C.o_cur));
    if (LL_ERR(src))
        return -1;
    PyObject *row = PyList_GET_ITEM(SLOT(sim, C.o_cnt), (Py_ssize_t)target);
    PyObject *cobj = PyList_GET_ITEM(row, (Py_ssize_t)src);
    Py_INCREF(cobj);
    long long cv = PyLong_AsLongLong(cobj);
    if (LL_ERR(cv)) {
        Py_DECREF(cobj);
        return -1;
    }
    PyObject *nv = PyLong_FromLongLong(cv + 1);
    if (nv == NULL || PyList_SetItem(row, (Py_ssize_t)src, nv) < 0) {
        Py_DECREF(cobj);
        return -1;
    }
    PyObject *key = PyTuple_New(3);
    if (key == NULL) {
        Py_DECREF(cobj);
        return -1;
    }
    PyObject *tgt_o = PyLong_FromLongLong(target);
    PyObject *src_o = PyLong_FromLongLong(src);
    if (tgt_o == NULL || src_o == NULL) {
        Py_XDECREF(tgt_o);
        Py_XDECREF(src_o);
        Py_DECREF(cobj);
        Py_DECREF(key);
        return -1;
    }
    PyTuple_SET_ITEM(key, 0, tgt_o);
    PyTuple_SET_ITEM(key, 1, src_o);
    PyTuple_SET_ITEM(key, 2, cobj); /* steals our reference */
    if (set_seq(entry, key) < 0)
        goto fail;
    {
        long long rtc = obj_ll(SLOT(sim, C.o_rtcell));
        if (LL_ERR(rtc))
            goto fail;
        if (rtc == target) {
            long long rtt = obj_ll(SLOT(sim, C.o_rttime));
            if (LL_ERR(rtt))
                goto fail;
            if (when == rtt) {
                PyObject *tup = PyTuple_Pack(2, key, entry);
                if (tup == NULL)
                    goto fail;
                int rc = heap_push(SLOT(sim, C.o_rheap), tup);
                Py_DECREF(tup);
                if (rc < 0)
                    goto fail;
                Py_DECREF(key);
                return 0;
            }
        }
    }
    {
        PyObject *cell =
            PyList_GET_ITEM(SLOT(sim, C.o_cells), (Py_ssize_t)target);
        long long cnow = obj_ll(SLOT(cell, C.c_now));
        if (LL_ERR(cnow))
            goto fail;
        if (when < cnow) {
            PyObject *names = SLOT(SLOT(sim, C.o_cellmap), C.m_names);
            PyObject *sname = PySequence_GetItem(names, (Py_ssize_t)src);
            if (sname == NULL)
                goto fail;
            PyErr_Format(
                C.sim_error,
                "causality violation: cell %R posted into %R at %lld ns, "
                "but that cell's clock is already %lld ns (lookahead table "
                "overstates the minimum cross-cell latency?)",
                sname, SLOT(cell, C.c_name), when, cnow);
            Py_DECREF(sname);
            goto fail;
        }
        PyObject *when_obj = PyLong_FromLongLong(when);
        if (when_obj == NULL)
            goto fail;
        PyObject *s = SLOT(cell, C.c_single);
        if (s == Py_None) {
            long long ns = obj_ll(SLOT(cell, C.c_nstruct));
            if (LL_ERR(ns)) {
                Py_DECREF(when_obj);
                goto fail;
            }
            if (ns == 0) {
                /* park in the register */
                store_slot(cell, C.c_single, Py_NewRef(entry));
                store_slot(cell, C.c_single_when, Py_NewRef(when_obj));
                goto update_next;
            }
        }
        else {
            /* spill the parked register entry into the wheel first */
            Py_INCREF(s);
            store_slot(cell, C.c_single, Py_NewRef(Py_None));
            store_slot(cell, C.c_base, Py_NewRef(SLOT(cell, C.c_now)));
            PyObject *swo = SLOT(cell, C.c_single_when);
            long long sw = obj_ll(swo);
            if (LL_ERR(sw)) {
                Py_DECREF(s);
                Py_DECREF(when_obj);
                goto fail;
            }
            int rc = cell_insert(cell, sw, swo, s);
            Py_DECREF(s);
            if (rc < 0) {
                Py_DECREF(when_obj);
                goto fail;
            }
        }
        if (cell_insert(cell, when, when_obj, entry) < 0) {
            Py_DECREF(when_obj);
            goto fail;
        }
    update_next:;
        PyObject *nexts = SLOT(sim, C.o_nexts);
        long long cur_next =
            obj_ll(PyList_GET_ITEM(nexts, (Py_ssize_t)target));
        if (LL_ERR(cur_next)) {
            Py_DECREF(when_obj);
            goto fail;
        }
        if (when < cur_next) {
            if (PyList_SetItem(nexts, (Py_ssize_t)target,
                               Py_NewRef(when_obj)) < 0) {
                Py_DECREF(when_obj);
                goto fail;
            }
        }
        if (C.nx_arr != NULL && (Py_ssize_t)target < C.nx_n &&
            when < C.nx_arr[target])
            C.nx_arr[target] = when;
        Py_DECREF(when_obj);
    }
    Py_DECREF(key);
    return 0;
fail:
    Py_DECREF(key);
    return -1;
}

/* ------------------------------------------------------------------ */
/* fallback into the pure methods (odd signatures, non-int delays)     */
/* ------------------------------------------------------------------ */
static PyObject *
call_pure(PyObject *fn, PyObject *sim, PyObject *const *args,
          Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *stack[8];
    Py_ssize_t total =
        nargs + (kwnames != NULL ? PyTuple_GET_SIZE(kwnames) : 0);
    if (total + 1 > 8) {
        PyErr_SetString(PyExc_TypeError, "too many arguments");
        return NULL;
    }
    stack[0] = sim;
    for (Py_ssize_t i = 0; i < total; i++)
        stack[i + 1] = args[i];
    return PyObject_Vectorcall(fn, stack, nargs + 1, kwnames);
}

/* ------------------------------------------------------------------ */
/* bound entry points: schedule / call_in / timeout / call_in_cell     */
/* ------------------------------------------------------------------ */
static PyObject *
cells_schedule(PyObject *sim, PyObject *const *args, Py_ssize_t nargs,
               PyObject *kwnames)
{
    if (kwnames != NULL || nargs < 1 || nargs > 2 ||
        (nargs == 2 && !PyLong_CheckExact(args[1])))
        return call_pure(C.py_schedule, sim, args, nargs, kwnames);
    long long dl = 0;
    if (nargs == 2) {
        dl = PyLong_AsLongLong(args[1]);
        if (LL_ERR(dl))
            return NULL;
    }
    if (dl < 0)
        return PyErr_Format(C.sim_error,
                            "cannot schedule in the past (delay=%lld)", dl);
    long long now = obj_ll(SLOT(sim, S.o_now));
    if (LL_ERR(now))
        return NULL;
    long long cur = obj_ll(SLOT(sim, C.o_cur));
    if (LL_ERR(cur))
        return NULL;
    if (cells_place(sim, cur, args[0], now + dl) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* Pop a recycled CallbackEntry (or allocate one), with fn/arg wired and
 * the alloc/reuse counters bumped; returns a new reference. */
static PyObject *
cbe_acquire(PyObject *sim, PyObject *fn, PyObject *arg)
{
    PyObject *pool = SLOT(sim, S.o_cbe_pool);
    Py_ssize_t psz = PyList_GET_SIZE(pool);
    PyObject *e;
    if (psz > 0) {
        e = PyList_GET_ITEM(pool, psz - 1);
        Py_INCREF(e);
        if (PyList_SetSlice(pool, psz - 1, psz, NULL) < 0) {
            Py_DECREF(e);
            return NULL;
        }
        store_slot(e, S.o_cbe_fn, Py_NewRef(fn));
        store_slot(e, S.o_cbe_arg, Py_NewRef(arg));
        if (bump_slot(sim, C.o_cbe_reuses, 1) < 0) {
            Py_DECREF(e);
            return NULL;
        }
    }
    else {
        e = PyObject_CallFunctionObjArgs((PyObject *)S.cbe_type, fn, arg,
                                         NULL);
        if (e == NULL)
            return NULL;
        if (bump_slot(sim, C.o_cbe_allocs, 1) < 0) {
            Py_DECREF(e);
            return NULL;
        }
    }
    return e;
}

static PyObject *
cells_call_in(PyObject *sim, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    if (kwnames != NULL || nargs < 2 || nargs > 3 ||
        !PyLong_CheckExact(args[0]))
        return call_pure(C.py_call_in, sim, args, nargs, kwnames);
    long long dl = PyLong_AsLongLong(args[0]);
    if (LL_ERR(dl))
        return NULL;
    if (dl < 0)
        return PyErr_Format(C.sim_error,
                            "cannot schedule in the past (delay=%lld)", dl);
    PyObject *e = cbe_acquire(sim, args[1], nargs == 3 ? args[2] : Py_None);
    if (e == NULL)
        return NULL;
    long long now = obj_ll(SLOT(sim, S.o_now));
    long long cur = obj_ll(SLOT(sim, C.o_cur));
    if (LL_ERR(now) || LL_ERR(cur) ||
        cells_place(sim, cur, e, now + dl) < 0) {
        Py_DECREF(e);
        return NULL;
    }
    Py_DECREF(e);
    Py_RETURN_NONE;
}

static PyObject *
cells_timeout(PyObject *sim, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    if (kwnames != NULL || nargs < 1 || nargs > 2 ||
        !PyLong_CheckExact(args[0]))
        return call_pure(C.py_timeout, sim, args, nargs, kwnames);
    long long dl = PyLong_AsLongLong(args[0]);
    if (LL_ERR(dl))
        return NULL;
    PyObject *value = nargs == 2 ? args[1] : Py_None;
    PyObject *t = SLOT(sim, S.o_stash);
    if (t != Py_None) {
        Py_INCREF(t);
        store_slot(sim, S.o_stash, Py_NewRef(Py_None));
    }
    else {
        PyObject *pool = SLOT(sim, S.o_timeout_pool);
        Py_ssize_t psz = PyList_GET_SIZE(pool);
        if (psz == 0) {
            if (dl < 0)
                return PyErr_Format(C.sim_error, "negative timeout: %lld",
                                    dl);
            if (bump_slot(sim, C.o_to_allocs, 1) < 0)
                return NULL;
            /* Timeout.__init__ schedules through sim.schedule (rebound
             * to the C path above), so construction is the placement. */
            return PyObject_CallFunctionObjArgs(SLOT(sim, C.o_to_cls), sim,
                                                args[0], value, NULL);
        }
        t = PyList_GET_ITEM(pool, psz - 1);
        Py_INCREF(t);
        if (PyList_SetSlice(pool, psz - 1, psz, NULL) < 0) {
            Py_DECREF(t);
            return NULL;
        }
    }
    if (dl < 0) {
        PyObject *pool = SLOT(sim, S.o_timeout_pool);
        int rc = PyList_Append(pool, t);
        Py_DECREF(t);
        if (rc < 0)
            return NULL;
        return PyErr_Format(C.sim_error, "negative timeout: %lld", dl);
    }
    if (bump_slot(sim, C.o_to_reuses, 1) < 0) {
        Py_DECREF(t);
        return NULL;
    }
    store_slot(t, S.o_to_delay, Py_NewRef(args[0]));
    store_slot(t, S.o_ev_value, Py_NewRef(value));
    store_slot(t, S.o_ev_cb1, Py_NewRef(Py_None));
    long long now = obj_ll(SLOT(sim, S.o_now));
    long long cur = obj_ll(SLOT(sim, C.o_cur));
    if (LL_ERR(now) || LL_ERR(cur) ||
        cells_place(sim, cur, t, now + dl) < 0) {
        Py_DECREF(t);
        return NULL;
    }
    return t;
}

static PyObject *
cells_call_in_cell(PyObject *sim, PyObject *const *args, Py_ssize_t nargs,
                   PyObject *kwnames)
{
    if (kwnames != NULL || nargs < 3 || nargs > 4 ||
        !PyLong_CheckExact(args[0]) || !PyLong_CheckExact(args[1]))
        return call_pure(C.py_call_in_cell, sim, args, nargs, kwnames);
    long long target = PyLong_AsLongLong(args[0]);
    long long dl = PyLong_AsLongLong(args[1]);
    if (LL_ERR(target) || LL_ERR(dl))
        return NULL;
    if (dl < 0)
        return PyErr_Format(C.sim_error,
                            "cannot schedule in the past (delay=%lld)", dl);
    if (target < 0 || target >= PyList_GET_SIZE(SLOT(sim, C.o_cells)))
        return call_pure(C.py_call_in_cell, sim, args, nargs, kwnames);
    PyObject *e = cbe_acquire(sim, args[2], nargs == 4 ? args[3] : Py_None);
    if (e == NULL)
        return NULL;
    long long now = obj_ll(SLOT(sim, S.o_now));
    long long cur = obj_ll(SLOT(sim, C.o_cur));
    if (LL_ERR(now) || LL_ERR(cur))
        goto fail;
    {
        long long when = now + dl;
        if (target != cur) {
            PyObject *cell = PyList_GET_ITEM(SLOT(sim, C.o_cells),
                                             (Py_ssize_t)target);
            if (bump_slot(cell, C.c_inbox, 1) < 0)
                goto fail;
            long long W = obj_ll(SLOT(sim, C.o_W));
            if (LL_ERR(W))
                goto fail;
            if (when < W) {
                PyObject *wo = PyLong_FromLongLong(when);
                if (wo == NULL)
                    goto fail;
                store_slot(sim, C.o_W, wo);
            }
        }
        if (cells_place(sim, target, e, when) < 0)
            goto fail;
    }
    Py_DECREF(e);
    Py_RETURN_NONE;
fail:
    Py_DECREF(e);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* dispatch of one entry (shared body of the pure _run_instant loop;   */
/* same protocol as accel_batch_run's per-entry dispatch)              */
/* ------------------------------------------------------------------ */
static int
dispatch_entry(PyObject *sim, PyObject *e) /* consumes the e reference */
{
    PyObject *cb = NULL;
    PyTypeObject *cls = Py_TYPE(e);
    if (cls == S.timeout_type) {
        cb = SLOT(e, S.o_ev_cb1);
        if (cb == NULL) {
            PyErr_SetString(PyExc_AttributeError, "_cb1");
            goto err_e;
        }
        Py_INCREF(cb);
        store_slot(e, S.o_ev_cb1, Py_NewRef(S.processed));
        if (Py_TYPE(cb) == S.process_type) {
            PyObject *send = SLOT(cb, S.o_pr_send);
            PyObject *val = SLOT(e, S.o_ev_value);
            if (send == NULL || val == NULL) {
                PyErr_SetString(PyExc_AttributeError,
                                send == NULL ? "send" : "_value");
                goto err_e_cb;
            }
            Py_INCREF(send);
            Py_INCREF(val);
            PyObject *nxt = PyObject_CallOneArg(send, val);
            Py_DECREF(send);
            Py_DECREF(val);
            if (nxt == NULL) {
                /* finish_process runs e._cbs itself */
                if (finish_process(sim, cb, e) < 0)
                    goto err_e_cb;
            }
            else {
                if (Py_TYPE(nxt) == S.timeout_type &&
                    SLOT(nxt, S.o_ev_cb1) == Py_None &&
                    SLOT(nxt, S.o_ev_sim) == sim) {
                    store_slot(nxt, S.o_ev_cb1, Py_NewRef(cb));
                    Py_DECREF(nxt);
                }
                else {
                    PyObject *wargs[2] = {cb, nxt};
                    PyObject *r =
                        PyObject_Vectorcall(S.wait_on, wargs, 2, NULL);
                    Py_DECREF(nxt);
                    if (r == NULL)
                        goto err_e_cb;
                    Py_DECREF(r);
                }
                if (run_cbs(e) < 0)
                    goto err_e_cb;
            }
        }
        else {
            if (cb != Py_None) {
                PyObject *r = PyObject_CallOneArg(cb, e);
                if (r == NULL)
                    goto err_e_cb;
                Py_DECREF(r);
            }
            if (run_cbs(e) < 0)
                goto err_e_cb;
        }
        Py_DECREF(cb);
        return recycle_batch(sim, e);
    }
    else if (cls == S.cbe_type) {
        PyObject *fn = SLOT(e, S.o_cbe_fn);
        PyObject *arg = SLOT(e, S.o_cbe_arg);
        if (fn == NULL || arg == NULL) {
            PyErr_SetString(PyExc_AttributeError, fn == NULL ? "fn" : "arg");
            goto err_e;
        }
        Py_INCREF(fn);
        Py_INCREF(arg);
        PyObject *r = PyObject_CallOneArg(fn, arg);
        Py_DECREF(fn);
        Py_DECREF(arg);
        if (r == NULL)
            goto err_e;
        Py_DECREF(r);
        PyObject *pool = SLOT(sim, S.o_cbe_pool);
        if (pool != NULL && PyList_CheckExact(pool) &&
            PyList_GET_SIZE(pool) < S.cbe_pool_max) {
            store_slot(e, S.o_cbe_fn, Py_NewRef(Py_None));
            store_slot(e, S.o_cbe_arg, Py_NewRef(Py_None));
            if (PyList_Append(pool, e) < 0)
                goto err_e;
        }
        Py_DECREF(e);
        return 0;
    }
    else if (cls == C.event_type) {
        /* plain Event: Event._run + the Process.__call__/_wait_on resume
         * path collapsed into C (the dominant Signal/handshake wake-up
         * shape).  No recycling — plain events are GC'd like in pure. */
        cb = SLOT(e, S.o_ev_cb1);
        if (cb == NULL) {
            PyErr_SetString(PyExc_AttributeError, "_cb1");
            goto err_e;
        }
        Py_INCREF(cb);
        store_slot(e, S.o_ev_cb1, Py_NewRef(S.processed));
        if (Py_TYPE(cb) == S.process_type) {
            PyObject *fn = SLOT(e, C.o_ev_ok) == Py_True
                               ? SLOT(cb, S.o_pr_send)
                               : SLOT(cb, C.o_pr_throw);
            PyObject *val = SLOT(e, S.o_ev_value);
            if (fn == NULL || val == NULL) {
                PyErr_SetString(PyExc_AttributeError,
                                fn == NULL ? "send/throw" : "_value");
                goto err_e_cb;
            }
            Py_INCREF(fn);
            Py_INCREF(val);
            PyObject *nxt = PyObject_CallOneArg(fn, val);
            Py_DECREF(fn);
            Py_DECREF(val);
            if (nxt == NULL) {
                if (finish_process(sim, cb, e) < 0)
                    goto err_e_cb;
            }
            else {
                if (Py_TYPE(nxt) == S.timeout_type &&
                    SLOT(nxt, S.o_ev_cb1) == Py_None &&
                    SLOT(nxt, S.o_ev_sim) == sim) {
                    /* same wiring _wait_on would do: fresh local timeout
                     * takes the process as its single waiter */
                    store_slot(nxt, S.o_ev_cb1, Py_NewRef(cb));
                    Py_DECREF(nxt);
                }
                else {
                    PyObject *wargs[2] = {cb, nxt};
                    PyObject *r =
                        PyObject_Vectorcall(S.wait_on, wargs, 2, NULL);
                    Py_DECREF(nxt);
                    if (r == NULL)
                        goto err_e_cb;
                    Py_DECREF(r);
                }
                if (run_cbs(e) < 0)
                    goto err_e_cb;
            }
        }
        else {
            if (cb != Py_None) {
                PyObject *r = PyObject_CallOneArg(cb, e);
                if (r == NULL)
                    goto err_e_cb;
                Py_DECREF(r);
            }
            if (run_cbs(e) < 0)
                goto err_e_cb;
        }
        Py_DECREF(cb);
        Py_DECREF(e);
        return 0;
    }
    else {
        PyObject *r = PyObject_CallMethodNoArgs(e, S.str_run);
        if (r == NULL)
            goto err_e;
        Py_DECREF(r);
        Py_DECREF(e);
        return 0;
    }
err_e_cb:
    Py_DECREF(cb);
err_e:
    Py_DECREF(e);
    return -1;
}

/* ------------------------------------------------------------------ */
/* instant execution (CellSimulator._run_instant)                      */
/* ------------------------------------------------------------------ */
static int
cells_run_instant(PyObject *sim, PyObject *cell, long long t, PyObject *h,
                  long long budget, long long *ran)
{
    /* Per-instant/per-batch counters (cell.instants/events, batches,
     * batched, max_batch) and the _cur/_rt_cell stores live in the drain:
     * they are hoisted to the burst level and flushed once per grant /
     * per drain, which is unobservable mid-instant (nothing dispatches
     * between instants of a burst) but saves five boxing round-trips on
     * every instant. */
    *ran = 0;
    PyObject *t_obj = PyLong_FromLongLong(t);
    if (t_obj == NULL)
        return -1;
    store_slot(sim, S.o_now, Py_NewRef(t_obj));
    store_slot(cell, C.c_now, Py_NewRef(t_obj));
    store_slot(sim, C.o_rttime, t_obj); /* steals */
    store_slot(sim, C.o_rheap, Py_NewRef(h));
    long long n = 0;
    int rc = 0;
    while (PyList_GET_SIZE(h) > 0) {
        PyObject *item = heap_pop(h);
        if (item == NULL) {
            rc = -1;
            break;
        }
        PyObject *e = PyTuple_GET_ITEM(item, 1);
        Py_INCREF(e);
        Py_DECREF(item);
        n++;
        if (dispatch_entry(sim, e) < 0) {
            rc = -1;
            break;
        }
        if (n >= budget) {
            PyErr_Format(C.sim_error, "exceeded max_events=%S",
                         SLOT(sim, C.o_maxe));
            rc = -1;
            break;
        }
    }
    if (rc < 0) {
        /* mirror the pure `except`: restore the remaining heap with its
         * keys, then let the original exception propagate */
        PyObject *et, *ev, *tb;
        PyErr_Fetch(&et, &ev, &tb);
        if (cell_restore(cell, t, h) < 0)
            PyErr_Clear(); /* a failed restore never masks the original */
        PyErr_Restore(et, ev, tb);
    }
    *ran = n;
    return rc;
}

/* ------------------------------------------------------------------ */
/* the drain (CellSimulator._drain_cells)                              */
/* ------------------------------------------------------------------ */
static PyObject *
cells_drain(PyObject *sim, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "_cdrain() takes (stop, max_events)");
        return NULL;
    }
    long long stop = obj_ll(args[0]);
    if (LL_ERR(stop)) {
        PyErr_Clear();
        stop = CLL_INF; /* beyond-LLONG stop times are effectively inf */
    }
    long long maxe = obj_ll(args[1]);
    if (LL_ERR(maxe)) {
        PyErr_Clear();
        maxe = CLL_INF;
    }
    store_slot(sim, C.o_maxe, Py_NewRef(args[1]));
    PyObject *cells = SLOT(sim, C.o_cells);
    PyObject *nexts = SLOT(sim, C.o_nexts);
    PyObject *lookT = SLOT(SLOT(sim, C.o_cellmap), C.m_look);
    long long ctrl = obj_ll(SLOT(sim, C.o_ctrl));
    if (LL_ERR(ctrl))
        return NULL;
    int decouple = SLOT(sim, C.o_decouple) == Py_True;
    Py_ssize_t ncells = PyList_GET_SIZE(cells);
    long long n = 0;
    long long n0 = obj_ll(SLOT(sim, C.o_events_exec));
    if (LL_ERR(n0))
        return NULL;
    long long mb0 = obj_ll(SLOT(sim, C.o_maxbatch));
    if (LL_ERR(mb0))
        return NULL;
    /* One native block: the (immutable) lookahead row, plus the live
     * next-instant mirror the argmin scans read instead of unboxing the
     * `_nexts` list on every grant. */
    long long *lk_arr = PyMem_Malloc(sizeof(long long) * (size_t)ncells * 2);
    if (lk_arr == NULL)
        return PyErr_NoMemory();
    long long *nx = lk_arr + ncells;
    for (Py_ssize_t i = 0; i < ncells; i++) {
        PyObject *lo = PySequence_GetItem(lookT, i);
        if (lo == NULL) {
            PyMem_Free(lk_arr);
            return NULL;
        }
        lk_arr[i] = PyLong_AsLongLong(lo);
        Py_DECREF(lo);
        if (LL_ERR(lk_arr[i])) {
            PyMem_Free(lk_arr);
            return NULL;
        }
    }
    /* recompute the next-instant table from scratch (see the pure drain) */
    for (Py_ssize_t i = 0; i < ncells; i++) {
        long long t = cell_peek(PyList_GET_ITEM(cells, i));
        if ((t < 0 && PyErr_Occurred())) {
            PyMem_Free(lk_arr);
            return NULL;
        }
        nx[i] = t;
        PyObject *v =
            t == CLL_INF ? Py_NewRef(C.inf) : PyLong_FromLongLong(t);
        if (v == NULL || PyList_SetItem(nexts, i, v) < 0) {
            PyMem_Free(lk_arr);
            return NULL;
        }
    }
    C.nx_arr = nx;
    C.nx_n = ncells;
    /* batch bookkeeping, flushed once per drain (and per burst for the
     * per-cell counters) instead of once per instant */
    long long d_batches = 0, d_batched = 0, d_maxb = mb0;
    PyObject *bcell = NULL; /* burst cell with unflushed counters */
    long long b_count = 0, b_events = 0;
    int rc = 0;
    for (;;) {
        long long bt = CLL_INF;
        Py_ssize_t bi = -1;
        for (Py_ssize_t i = 0; i < ncells; i++) {
            if (nx[i] < bt) {
                bt = nx[i];
                bi = i;
            }
        }
        if (bt == CLL_INF)
            break;
        if (bt > stop) {
            store_slot(sim, S.o_now, Py_NewRef(args[0]));
            break;
        }
        PyObject *cell = PyList_GET_ITEM(cells, bi);
        nx[bi] = CLL_INF;
        if (PyList_SetItem(nexts, bi, Py_NewRef(C.inf)) < 0) {
            rc = -1;
            goto out;
        }
        long long m2 = CLL_INF;
        for (Py_ssize_t i = 0; i < ncells; i++) {
            if (nx[i] < m2)
                m2 = nx[i];
        }
        long long W = m2;
        if (m2 != CLL_INF)
            W = m2 + lk_arr[bi];
        if (bi != ctrl && nx[ctrl] < W)
            W = nx[ctrl];
        if (stop < W)
            W = stop == CLL_INF ? CLL_INF : stop + 1;
        {
            PyObject *wo =
                W == CLL_INF ? Py_NewRef(C.inf) : PyLong_FromLongLong(W);
            if (wo == NULL) {
                rc = -1;
                goto out;
            }
            store_slot(sim, C.o_W, wo);
            PyObject *lw =
                PyLong_FromLongLong(W == CLL_INF ? -1 : W - bt);
            if (lw == NULL) {
                rc = -1;
                goto out;
            }
            store_slot(cell, C.c_lastwin, lw);
        }
        if (bump_slot(sim, C.o_grants, 1) < 0) {
            rc = -1;
            goto out;
        }
        /* _cur and _rt_cell hold for the whole burst: nothing dispatches
         * between the instants of a grant, so per-instant stores would be
         * unobservable churn */
        {
            PyObject *ci = SLOT(cell, C.c_i);
            store_slot(sim, C.o_cur, Py_NewRef(ci));
            store_slot(sim, C.o_rtcell, Py_NewRef(ci));
        }
        bcell = cell;
        b_count = 0;
        b_events = 0;
        {
            int first = 1;
            for (;;) {
                /* peek before taking: an instant beyond the window (or the
                 * stop time) is left in place — no take + restore cycle at
                 * the window boundary (matches the pure burst loop) */
                long long t = cell_peek(cell);
                if (t < 0 && PyErr_Occurred()) {
                    rc = -1;
                    goto out;
                }
                if (t == CLL_INF)
                    break; /* cell went empty: burst over */
                long long Wnow = obj_ll(SLOT(sim, C.o_W));
                if (LL_ERR(Wnow)) {
                    rc = -1;
                    goto out;
                }
                if ((!first && (t >= Wnow || !decouple)) || t > stop)
                    break;
                PyObject *h = cell_take(cell, &t);
                if (h == NULL) {
                    rc = -1;
                    goto out;
                }
                first = 0;
                {
                    PyObject *ee = PyLong_FromLongLong(n0 + n);
                    if (ee == NULL) {
                        Py_DECREF(h);
                        rc = -1;
                        goto out;
                    }
                    store_slot(sim, C.o_events_exec, ee);
                }
                long long budget = maxe == CLL_INF ? CLL_INF : maxe - n;
                long long ran = 0;
                int r = cells_run_instant(sim, cell, t, h, budget, &ran);
                n += ran;
                b_count++;
                b_events += ran;
                d_batches++;
                d_batched += ran;
                if (ran > d_maxb)
                    d_maxb = ran;
                Py_DECREF(h);
                if (r < 0) {
                    rc = -1;
                    goto out;
                }
            }
        }
        if (b_count &&
            (bump_slot(cell, C.c_instants, b_count) < 0 ||
             bump_slot(cell, C.c_events, b_events) < 0)) {
            rc = -1;
            goto out;
        }
        bcell = NULL;
        {
            long long t = cell_peek(cell);
            if (t < 0 && PyErr_Occurred()) {
                rc = -1;
                goto out;
            }
            nx[bi] = t;
            PyObject *v =
                t == CLL_INF ? Py_NewRef(C.inf) : PyLong_FromLongLong(t);
            if (v == NULL || PyList_SetItem(nexts, bi, v) < 0) {
                rc = -1;
                goto out;
            }
        }
    }
out:;
    C.nx_arr = NULL;
    C.nx_n = 0;
    PyMem_Free(lk_arr);
    /* mirror the pure `finally` */
    {
        PyObject *et, *ev, *tb;
        PyErr_Fetch(&et, &ev, &tb);
        if (bcell != NULL && b_count &&
            (bump_slot(bcell, C.c_instants, b_count) < 0 ||
             bump_slot(bcell, C.c_events, b_events) < 0))
            PyErr_Clear(); /* an interrupted burst still flushes */
        PyObject *ee = PyLong_FromLongLong(n0 + n);
        if (ee != NULL)
            store_slot(sim, C.o_events_exec, ee);
        else
            PyErr_Clear();
        if (bump_slot(sim, C.o_batches, d_batches) < 0 ||
            bump_slot(sim, C.o_batched, d_batched) < 0)
            PyErr_Clear();
        if (d_maxb > mb0) {
            PyObject *nb = PyLong_FromLongLong(d_maxb);
            if (nb != NULL)
                store_slot(sim, C.o_maxbatch, nb);
            else
                PyErr_Clear();
        }
        PyObject *m1 = PyLong_FromLong(-1);
        if (m1 != NULL)
            store_slot(sim, C.o_rtcell, m1);
        else
            PyErr_Clear();
        PyObject *fresh = PyList_New(0);
        if (fresh != NULL)
            store_slot(sim, C.o_rheap, fresh);
        else
            PyErr_Clear();
        store_slot(sim, C.o_cur, Py_NewRef(SLOT(sim, C.o_ctrl)));
        PyErr_Restore(et, ev, tb);
    }
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* cells configure + binding                                           */
/* ------------------------------------------------------------------ */
static PyObject *
configure_cells(PyObject *Py_UNUSED(mod), PyObject *ns)
{
    if (!S.configured) {
        PyErr_SetString(PyExc_RuntimeError, "configure() has not run");
        return NULL;
    }
    if (!PyDict_Check(ns)) {
        PyErr_SetString(PyExc_TypeError, "configure_cells() expects a dict");
        return NULL;
    }
#define GET(name)                                                       \
    PyObject *name = PyDict_GetItemString(ns, #name);                   \
    if (name == NULL) {                                                 \
        PyErr_SetString(PyExc_KeyError, #name);                         \
        return NULL;                                                    \
    }
    GET(CellSimulator) GET(Cell) GET(CellMap) GET(Event)
    GET(SimulationError) GET(schedule_py) GET(call_in_py) GET(timeout_py)
    GET(call_in_cell_py)
#undef GET
    if (!PyType_Check(CellSimulator) || !PyType_Check(Cell) ||
        !PyType_Check(CellMap) || !PyType_Check(Event)) {
        PyErr_SetString(PyExc_TypeError, "expected type objects");
        return NULL;
    }
    if (member_offset(CellSimulator, "_cellmap", &C.o_cellmap) < 0 ||
        member_offset(CellSimulator, "_cells", &C.o_cells) < 0 ||
        member_offset(CellSimulator, "_nexts", &C.o_nexts) < 0 ||
        member_offset(CellSimulator, "_ctrl", &C.o_ctrl) < 0 ||
        member_offset(CellSimulator, "_cur", &C.o_cur) < 0 ||
        member_offset(CellSimulator, "_decouple", &C.o_decouple) < 0 ||
        member_offset(CellSimulator, "_cnt", &C.o_cnt) < 0 ||
        member_offset(CellSimulator, "_rt_cell", &C.o_rtcell) < 0 ||
        member_offset(CellSimulator, "_rt_time", &C.o_rttime) < 0 ||
        member_offset(CellSimulator, "_rheap", &C.o_rheap) < 0 ||
        member_offset(CellSimulator, "_W", &C.o_W) < 0 ||
        member_offset(CellSimulator, "_maxe", &C.o_maxe) < 0 ||
        member_offset(CellSimulator, "_grants", &C.o_grants) < 0 ||
        member_offset(CellSimulator, "events_executed", &C.o_events_exec) < 0 ||
        member_offset(CellSimulator, "_batches", &C.o_batches) < 0 ||
        member_offset(CellSimulator, "_batched_events", &C.o_batched) < 0 ||
        member_offset(CellSimulator, "_max_batch", &C.o_maxbatch) < 0 ||
        member_offset(CellSimulator, "_timeout_allocs", &C.o_to_allocs) < 0 ||
        member_offset(CellSimulator, "_timeout_reuses", &C.o_to_reuses) < 0 ||
        member_offset(CellSimulator, "_cbe_allocs", &C.o_cbe_allocs) < 0 ||
        member_offset(CellSimulator, "_cbe_reuses", &C.o_cbe_reuses) < 0 ||
        member_offset(CellSimulator, "_timeout_cls", &C.o_to_cls) < 0 ||
        member_offset(Event, "_seq", &C.o_ev_seq) < 0 ||
        member_offset(Event, "_ok", &C.o_ev_ok) < 0 ||
        member_offset((PyObject *)S.process_type, "throw", &C.o_pr_throw) < 0 ||
        member_offset((PyObject *)S.cbe_type, "_seq", &C.o_cbe_seq) < 0 ||
        member_offset(Cell, "_i", &C.c_i) < 0 ||
        member_offset(Cell, "_name", &C.c_name) < 0 ||
        member_offset(Cell, "_now", &C.c_now) < 0 ||
        member_offset(Cell, "_single", &C.c_single) < 0 ||
        member_offset(Cell, "_single_when", &C.c_single_when) < 0 ||
        member_offset(Cell, "_slots0", &C.c_slots0) < 0 ||
        member_offset(Cell, "_slots1", &C.c_slots1) < 0 ||
        member_offset(Cell, "_t0", &C.c_t0) < 0 ||
        member_offset(Cell, "_t1", &C.c_t1) < 0 ||
        member_offset(Cell, "_hq", &C.c_hq) < 0 ||
        member_offset(Cell, "_dirty", &C.c_dirty) < 0 ||
        member_offset(Cell, "_base", &C.c_base) < 0 ||
        member_offset(Cell, "_nstruct", &C.c_nstruct) < 0 ||
        member_offset(Cell, "_reg_free", &C.c_reg_free) < 0 ||
        member_offset(Cell, "_l0_inserts", &C.c_l0) < 0 ||
        member_offset(Cell, "_l1_inserts", &C.c_l1) < 0 ||
        member_offset(Cell, "_hq_inserts", &C.c_hqi) < 0 ||
        member_offset(Cell, "_cascades", &C.c_casc) < 0 ||
        member_offset(Cell, "_instants", &C.c_instants) < 0 ||
        member_offset(Cell, "_events", &C.c_events) < 0 ||
        member_offset(Cell, "_inbox_merges", &C.c_inbox) < 0 ||
        member_offset(Cell, "_last_window", &C.c_lastwin) < 0 ||
        member_offset(CellMap, "names", &C.m_names) < 0 ||
        member_offset(CellMap, "lookahead_in", &C.m_look) < 0)
        return NULL;
    C.cellsim_type = (PyTypeObject *)Py_NewRef(CellSimulator);
    C.cell_type = (PyTypeObject *)Py_NewRef(Cell);
    C.event_type = (PyTypeObject *)Py_NewRef(Event);
    C.sim_error = Py_NewRef(SimulationError);
    C.py_schedule = Py_NewRef(schedule_py);
    C.py_call_in = Py_NewRef(call_in_py);
    C.py_timeout = Py_NewRef(timeout_py);
    C.py_call_in_cell = Py_NewRef(call_in_cell_py);
    C.inf = PyFloat_FromDouble(Py_HUGE_VAL);
    if (C.inf == NULL)
        return NULL;
    C.str_seq = PyUnicode_InternFromString("_seq");
    if (C.str_seq == NULL)
        return NULL;
    C.configured = 1;
    Py_RETURN_NONE;
}

static PyMethodDef cells_schedule_md = {
    "schedule", (PyCFunction)(void (*)(void))cells_schedule,
    METH_FASTCALL | METH_KEYWORDS,
    "C fast path for CellSimulator.schedule."};
static PyMethodDef cells_call_in_md = {
    "call_in", (PyCFunction)(void (*)(void))cells_call_in,
    METH_FASTCALL | METH_KEYWORDS,
    "C fast path for CellSimulator.call_in."};
static PyMethodDef cells_timeout_md = {
    "timeout", (PyCFunction)(void (*)(void))cells_timeout,
    METH_FASTCALL | METH_KEYWORDS,
    "C fast path for CellSimulator.timeout."};
static PyMethodDef cells_call_in_cell_md = {
    "call_in_cell", (PyCFunction)(void (*)(void))cells_call_in_cell,
    METH_FASTCALL | METH_KEYWORDS,
    "C fast path for CellSimulator.call_in_cell."};
static PyMethodDef cells_drain_md = {
    "_cdrain", (PyCFunction)(void (*)(void))cells_drain, METH_FASTCALL,
    "C drain of the cells calendar (CellSimulator._drain_cells)."};

static PyObject *
bind_cells_checked(PyObject *sim, PyMethodDef *md)
{
    if (!C.configured) {
        PyErr_SetString(PyExc_RuntimeError, "configure_cells() has not run");
        return NULL;
    }
    if (!PyObject_TypeCheck(sim, C.cellsim_type)) {
        PyErr_SetString(PyExc_TypeError, "expected a CellSimulator");
        return NULL;
    }
    return PyCFunction_New(md, sim);
}

static PyObject *
bind_cells_schedule(PyObject *Py_UNUSED(mod), PyObject *sim)
{
    return bind_cells_checked(sim, &cells_schedule_md);
}
static PyObject *
bind_cells_call_in(PyObject *Py_UNUSED(mod), PyObject *sim)
{
    return bind_cells_checked(sim, &cells_call_in_md);
}
static PyObject *
bind_cells_timeout(PyObject *Py_UNUSED(mod), PyObject *sim)
{
    return bind_cells_checked(sim, &cells_timeout_md);
}
static PyObject *
bind_cells_call_in_cell(PyObject *Py_UNUSED(mod), PyObject *sim)
{
    return bind_cells_checked(sim, &cells_call_in_cell_md);
}
static PyObject *
bind_cells_drain(PyObject *Py_UNUSED(mod), PyObject *sim)
{
    return bind_cells_checked(sim, &cells_drain_md);
}

/* ------------------------------------------------------------------ */
/* per-instance binding                                                */
/* ------------------------------------------------------------------ */
static PyMethodDef timeout_md = {
    "timeout", (PyCFunction)(void (*)(void))accel_timeout,
    METH_FASTCALL | METH_KEYWORDS,
    "C fast path for Simulator.timeout (timing-wheel FIFO backend)."};

static PyMethodDef reg_drain_md = {
    "_creg_drain", (PyCFunction)accel_reg_drain, METH_NOARGS,
    "C drain of the one-entry register regime for _core.drain_fifo."};

static PyMethodDef batch_run_md = {
    "_cbatch_run", (PyCFunction)(void (*)(void))accel_batch_run,
    METH_FASTCALL,
    "C dispatch of the current same-instant batch (optional event budget)."};

static PyObject *
bind_checked(PyObject *sim, PyMethodDef *md)
{
    if (!S.configured) {
        PyErr_SetString(PyExc_RuntimeError, "configure() has not run");
        return NULL;
    }
    if (!PyObject_TypeCheck(sim, S.sim_type)) {
        PyErr_SetString(PyExc_TypeError, "expected a Simulator");
        return NULL;
    }
    return PyCFunction_New(md, sim);
}

static PyObject *
bind_timeout(PyObject *Py_UNUSED(mod), PyObject *sim)
{
    return bind_checked(sim, &timeout_md);
}

static PyObject *
bind_reg_drain(PyObject *Py_UNUSED(mod), PyObject *sim)
{
    return bind_checked(sim, &reg_drain_md);
}

static PyObject *
bind_batch_run(PyObject *Py_UNUSED(mod), PyObject *sim)
{
    return bind_checked(sim, &batch_run_md);
}

static PyMethodDef module_methods[] = {
    {"configure", configure, METH_O,
     "Capture types, slot offsets and helpers from the pure kernel."},
    {"bind_timeout", bind_timeout, METH_O,
     "Return a C `timeout` callable bound to one Simulator."},
    {"bind_reg_drain", bind_reg_drain, METH_O,
     "Return a C register-drain callable bound to one Simulator."},
    {"bind_batch_run", bind_batch_run, METH_O,
     "Return a C batch-dispatch callable bound to one Simulator."},
    {"configure_cells", configure_cells, METH_O,
     "Capture the cells-kernel types and slot offsets (after configure())."},
    {"bind_cells_schedule", bind_cells_schedule, METH_O,
     "Return a C `schedule` callable bound to one CellSimulator."},
    {"bind_cells_call_in", bind_cells_call_in, METH_O,
     "Return a C `call_in` callable bound to one CellSimulator."},
    {"bind_cells_timeout", bind_cells_timeout, METH_O,
     "Return a C `timeout` callable bound to one CellSimulator."},
    {"bind_cells_call_in_cell", bind_cells_call_in_cell, METH_O,
     "Return a C `call_in_cell` callable bound to one CellSimulator."},
    {"bind_cells_drain", bind_cells_drain, METH_O,
     "Return a C cells-drain callable bound to one CellSimulator."},
    {NULL, NULL, 0, NULL}};

static struct PyModuleDef speedup_module = {
    PyModuleDef_HEAD_INIT, "_speedup",
    "On-demand-compiled accelerator for the timing-wheel kernel.", -1,
    module_methods};

PyMODINIT_FUNC
PyInit__speedup(void)
{
    return PyModule_Create(&speedup_module);
}
