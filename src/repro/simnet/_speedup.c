/* _speedup.c — optional CPython accelerator for the timing-wheel kernel.
 *
 * Compiled on demand by `_accel.py` (plain `cc -O2 -shared -fPIC`, no
 * build-system dependency); when the compile or the `configure()`
 * handshake fails, the kernel silently keeps its pure-Python paths,
 * which are semantically identical (property-tested in
 * tests/simnet/test_timing_wheel.py).
 *
 * Two entry points are bound per Simulator instance:
 *
 *   bind_timeout(sim)   -> C replacement for Simulator._timeout_wheel
 *                          (the stash + register-park fast path; every
 *                          guard miss calls the Python slow path)
 *   bind_reg_drain(sim) -> C drain of the *register regime* used by
 *                          _core.drain_fifo: pops the one-entry register
 *                          until it is empty, including the
 *                          `yield sim.timeout(d)` chain spin.
 *
 * Both read the same `__slots__` the Python code reads, through member
 * offsets captured at configure() time, and perform every store the
 * Python fast paths perform, in the same order — bit-identical event
 * ordering is the contract, speed is just fewer interpreter dispatches.
 *
 * The refcount-based Timeout recycling translates directly: the Python
 * spin's `getrefcount(e) == 2` (frame local + getrefcount argument)
 * becomes `Py_REFCNT(e) == 1` here, because this code owns exactly one
 * strong reference to the dispatched event at the check site.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* ------------------------------------------------------------------ */
/* configured state                                                    */
/* ------------------------------------------------------------------ */
static struct {
    int configured;
    PyTypeObject *sim_type;
    PyTypeObject *timeout_type;
    PyTypeObject *process_type;
    PyTypeObject *cbe_type;
    /* Simulator slots */
    Py_ssize_t o_stash, o_reg_free, o_single, o_single_when, o_now;
    Py_ssize_t o_finish, o_cbe_pool, o_creg_n;
    /* Event/Timeout slots (resolved on the Timeout type, through the MRO) */
    Py_ssize_t o_ev_sim, o_ev_cb1, o_ev_cbs, o_ev_value, o_to_delay;
    /* Process slot */
    Py_ssize_t o_pr_send;
    /* CallbackEntry slots */
    Py_ssize_t o_cbe_fn, o_cbe_arg;
    long cbe_pool_max;
    PyObject *processed;    /* _core._PROCESSED sentinel */
    PyObject *timeout_slow; /* Simulator._timeout_wheel_slow (plain function) */
    PyObject *wait_on;      /* Process._wait_on (plain function) */
    PyObject *str_run;      /* interned "_run" */
} S;

#define SLOT(ob, off) (*(PyObject **)((char *)(ob) + (off)))

/* Replace the object in a slot with a reference we own; drops the old one. */
static inline void
store_slot(PyObject *ob, Py_ssize_t off, PyObject *newref)
{
    PyObject **p = (PyObject **)((char *)ob + off);
    PyObject *old = *p;
    *p = newref;
    Py_XDECREF(old);
}

static int
member_offset(PyObject *type, const char *name, Py_ssize_t *out)
{
    PyObject *d = PyObject_GetAttrString(type, name);
    if (d == NULL)
        return -1;
    if (!Py_IS_TYPE(d, &PyMemberDescr_Type)) {
        Py_DECREF(d);
        PyErr_Format(PyExc_TypeError, "%s is not a __slots__ member", name);
        return -1;
    }
    PyMemberDef *m = ((PyMemberDescrObject *)d)->d_member;
    if (m->type != T_OBJECT_EX) {
        Py_DECREF(d);
        PyErr_Format(PyExc_TypeError, "%s is not an object slot", name);
        return -1;
    }
    *out = m->offset;
    Py_DECREF(d);
    return 0;
}

/* ------------------------------------------------------------------ */
/* configure                                                           */
/* ------------------------------------------------------------------ */
static PyObject *
configure(PyObject *Py_UNUSED(mod), PyObject *ns)
{
    if (!PyDict_Check(ns)) {
        PyErr_SetString(PyExc_TypeError, "configure() expects a dict");
        return NULL;
    }
#define GET(name)                                                       \
    PyObject *name = PyDict_GetItemString(ns, #name);                   \
    if (name == NULL) {                                                 \
        PyErr_SetString(PyExc_KeyError, #name);                         \
        return NULL;                                                    \
    }
    GET(Simulator) GET(Timeout) GET(Process) GET(CallbackEntry)
    GET(processed) GET(timeout_slow) GET(wait_on) GET(cbe_pool_max)
#undef GET
    if (!PyType_Check(Simulator) || !PyType_Check(Timeout) ||
        !PyType_Check(Process) || !PyType_Check(CallbackEntry)) {
        PyErr_SetString(PyExc_TypeError, "expected type objects");
        return NULL;
    }
    if (member_offset(Simulator, "_stash", &S.o_stash) < 0 ||
        member_offset(Simulator, "_reg_free", &S.o_reg_free) < 0 ||
        member_offset(Simulator, "_single", &S.o_single) < 0 ||
        member_offset(Simulator, "_single_when", &S.o_single_when) < 0 ||
        member_offset(Simulator, "_now", &S.o_now) < 0 ||
        member_offset(Simulator, "_proc_finish", &S.o_finish) < 0 ||
        member_offset(Simulator, "_cbe_pool", &S.o_cbe_pool) < 0 ||
        member_offset(Simulator, "_creg_n", &S.o_creg_n) < 0 ||
        member_offset(Timeout, "sim", &S.o_ev_sim) < 0 ||
        member_offset(Timeout, "_cb1", &S.o_ev_cb1) < 0 ||
        member_offset(Timeout, "_cbs", &S.o_ev_cbs) < 0 ||
        member_offset(Timeout, "_value", &S.o_ev_value) < 0 ||
        member_offset(Timeout, "delay", &S.o_to_delay) < 0 ||
        member_offset(Process, "send", &S.o_pr_send) < 0 ||
        member_offset(CallbackEntry, "fn", &S.o_cbe_fn) < 0 ||
        member_offset(CallbackEntry, "arg", &S.o_cbe_arg) < 0)
        return NULL;
    S.cbe_pool_max = PyLong_AsLong(cbe_pool_max);
    if (S.cbe_pool_max == -1 && PyErr_Occurred())
        return NULL;
    S.sim_type = (PyTypeObject *)Py_NewRef(Simulator);
    S.timeout_type = (PyTypeObject *)Py_NewRef(Timeout);
    S.process_type = (PyTypeObject *)Py_NewRef(Process);
    S.cbe_type = (PyTypeObject *)Py_NewRef(CallbackEntry);
    S.processed = Py_NewRef(processed);
    S.timeout_slow = Py_NewRef(timeout_slow);
    S.wait_on = Py_NewRef(wait_on);
    S.str_run = PyUnicode_InternFromString("_run");
    if (S.str_run == NULL)
        return NULL;
    S.configured = 1;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* timeout fast path                                                   */
/* ------------------------------------------------------------------ */
static PyObject *
accel_timeout(PyObject *sim, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    PyObject *delay = NULL, *value = Py_None;
    if (nargs > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "timeout() takes at most 2 positional arguments");
        return NULL;
    }
    if (nargs >= 1)
        delay = args[0];
    if (nargs == 2)
        value = args[1];
    if (kwnames != NULL) {
        Py_ssize_t nk = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nk; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            PyObject *v = args[nargs + i];
            if (PyUnicode_CompareWithASCIIString(name, "value") == 0) {
                if (nargs == 2) {
                    PyErr_SetString(PyExc_TypeError,
                                    "timeout() got multiple values for 'value'");
                    return NULL;
                }
                value = v;
            }
            else if (PyUnicode_CompareWithASCIIString(name, "delay") == 0) {
                if (delay != NULL) {
                    PyErr_SetString(PyExc_TypeError,
                                    "timeout() got multiple values for 'delay'");
                    return NULL;
                }
                delay = v;
            }
            else {
                PyErr_Format(PyExc_TypeError,
                             "timeout() got an unexpected keyword argument %R",
                             name);
                return NULL;
            }
        }
    }
    if (delay == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "timeout() missing required argument: 'delay'");
        return NULL;
    }
    /* Fast path — mirrors Simulator._timeout_wheel: recycled timeout in
     * the stash, exact non-negative int delay, empty calendar. */
    PyObject *t = SLOT(sim, S.o_stash);
    if (t != NULL && t != Py_None && PyLong_CheckExact(delay) &&
        SLOT(sim, S.o_reg_free) == Py_True &&
        SLOT(sim, S.o_single) == Py_None) {
        long long dv = PyLong_AsLongLong(delay);
        if (dv == -1 && PyErr_Occurred()) {
            PyErr_Clear(); /* > 63-bit delay: let the slow path handle it */
        }
        else if (dv >= 0) {
            PyObject *nowo = SLOT(sim, S.o_now);
            long long nv = nowo == NULL ? -1 : PyLong_AsLongLong(nowo);
            if (nv == -1 && PyErr_Occurred())
                PyErr_Clear();
            else if (nv >= 0 && dv <= LLONG_MAX - nv) {
                PyObject *when = PyLong_FromLongLong(nv + dv);
                if (when == NULL)
                    return NULL;
                /* pop the stash: the slot's reference becomes ours */
                SLOT(sim, S.o_stash) = Py_NewRef(Py_None);
                store_slot(t, S.o_to_delay, Py_NewRef(delay));
                store_slot(t, S.o_ev_value, Py_NewRef(value));
                store_slot(t, S.o_ev_cb1, Py_NewRef(Py_None));
                Py_INCREF(t);
                store_slot(sim, S.o_single, t);
                store_slot(sim, S.o_single_when, when);
                return t;
            }
        }
    }
    PyObject *cargs[3] = {sim, delay, value};
    return PyObject_Vectorcall(S.timeout_slow, cargs, 3, NULL);
}

/* ------------------------------------------------------------------ */
/* register-regime drain                                               */
/* ------------------------------------------------------------------ */

/* Run and clear e._cbs (`for fn in cbs: fn(e)` on a stolen list). */
static int
run_cbs(PyObject *e)
{
    PyObject *cbs = SLOT(e, S.o_ev_cbs);
    if (cbs == NULL) {
        PyErr_SetString(PyExc_AttributeError, "_cbs");
        return -1;
    }
    if (cbs == Py_None)
        return 0;
    Py_INCREF(cbs);
    store_slot(e, S.o_ev_cbs, Py_NewRef(Py_None));
    PyObject *it = PyObject_GetIter(cbs);
    Py_DECREF(cbs);
    if (it == NULL)
        return -1;
    PyObject *fn;
    while ((fn = PyIter_Next(it)) != NULL) {
        PyObject *r = PyObject_CallOneArg(fn, e);
        Py_DECREF(fn);
        if (r == NULL) {
            Py_DECREF(it);
            return -1;
        }
        Py_DECREF(r);
    }
    Py_DECREF(it);
    return PyErr_Occurred() ? -1 : 0;
}

/* Consume our reference to a dispatched event: stash it when provably
 * external-free (the Python spin's `if getrefcount(e) == 2`), else drop. */
static inline void
recycle_register(PyObject *sim, PyObject *e)
{
    if (Py_REFCNT(e) == 1) {
        PyObject *old = SLOT(sim, S.o_stash);
        SLOT(sim, S.o_stash) = e; /* steals our reference */
        Py_XDECREF(old);
    }
    else {
        Py_DECREF(e);
    }
}

/* The generator raised (or returned): normalize the exception, run the
 * process-finish protocol exactly as `except BaseException as exc:
 * finish(cb, exc)` would, with the exception installed as "currently
 * handled" so secondary raises chain their __context__. */
static int
finish_process(PyObject *sim, PyObject *cb, PyObject *e)
{
    PyObject *et, *ev, *tb;
    PyErr_Fetch(&et, &ev, &tb);
    if (et == NULL) {
        PyErr_SetString(PyExc_SystemError, "send failed without an exception");
        return -1;
    }
    PyErr_NormalizeException(&et, &ev, &tb);
    if (tb != NULL)
        PyException_SetTraceback(ev, tb);
#if PY_VERSION_HEX >= 0x030B0000
    PyObject *prev = PyErr_GetHandledException();
    PyErr_SetHandledException(ev);
#else
    PyObject *pt, *pv, *ptb;
    PyErr_GetExcInfo(&pt, &pv, &ptb);
    PyErr_SetExcInfo(Py_NewRef(et), Py_NewRef(ev),
                     tb ? Py_NewRef(tb) : NULL);
#endif
    int ok = -1;
    PyObject *fin = SLOT(sim, S.o_finish);
    if (fin == NULL) {
        PyErr_SetString(PyExc_AttributeError, "_proc_finish");
    }
    else {
        PyObject *fargs[2] = {cb, ev};
        PyObject *r = PyObject_Vectorcall(fin, fargs, 2, NULL);
        if (r != NULL) {
            Py_DECREF(r);
            if (run_cbs(e) == 0)
                ok = 0;
        }
    }
#if PY_VERSION_HEX >= 0x030B0000
    PyErr_SetHandledException(prev);
    Py_XDECREF(prev);
#else
    PyErr_SetExcInfo(pt, pv, ptb);
#endif
    Py_DECREF(et);
    Py_DECREF(ev);
    Py_XDECREF(tb);
    return ok;
}

static PyObject *
accel_reg_drain(PyObject *sim, PyObject *Py_UNUSED(ignored))
{
    long long count = 0;
    for (;;) {
        PyObject *cb = NULL;
        PyObject *e = SLOT(sim, S.o_single);
        if (e == NULL || e == Py_None)
            break;
        /* pop the register (the slot's reference becomes ours) */
        SLOT(sim, S.o_single) = Py_NewRef(Py_None);
        PyObject *w = SLOT(sim, S.o_single_when);
        if (w == NULL) {
            PyErr_SetString(PyExc_AttributeError, "_single_when");
            goto err_e;
        }
        store_slot(sim, S.o_now, Py_NewRef(w));
        PyTypeObject *cls = Py_TYPE(e);
        if (cls == S.timeout_type) {
            cb = SLOT(e, S.o_ev_cb1);
            if (cb == NULL) {
                PyErr_SetString(PyExc_AttributeError, "_cb1");
                goto err_e;
            }
            Py_INCREF(cb);
            store_slot(e, S.o_ev_cb1, Py_NewRef(S.processed));
            if (Py_TYPE(cb) == S.process_type) {
                /* Chain spin: keep driving this process while each resume
                 * parks a fresh timeout in the register (the dominant
                 * `yield sim.timeout(...)` pattern). */
                for (;;) {
                    count++;
                    PyObject *send = SLOT(cb, S.o_pr_send);
                    PyObject *val = SLOT(e, S.o_ev_value);
                    if (send == NULL || val == NULL) {
                        PyErr_SetString(PyExc_AttributeError,
                                        send == NULL ? "send" : "_value");
                        goto err_e_cb;
                    }
                    Py_INCREF(send);
                    Py_INCREF(val);
                    PyObject *nxt = PyObject_CallOneArg(send, val);
                    Py_DECREF(send);
                    Py_DECREF(val);
                    if (nxt == NULL) {
                        if (finish_process(sim, cb, e) < 0)
                            goto err_e_cb;
                        recycle_register(sim, e);
                        Py_DECREF(cb);
                        break;
                    }
                    if (Py_TYPE(nxt) == S.timeout_type &&
                        SLOT(nxt, S.o_ev_cb1) == Py_None &&
                        SLOT(nxt, S.o_ev_sim) == sim) {
                        /* wire: nxt._cb1 = cb */
                        store_slot(nxt, S.o_ev_cb1, Py_NewRef(cb));
                        if (run_cbs(e) < 0) {
                            Py_DECREF(nxt);
                            goto err_e_cb;
                        }
                        recycle_register(sim, e);
                        /* spin continues iff nxt still sits in the register
                         * (an e._cbs callback may have migrated it) */
                        if (SLOT(sim, S.o_single) == nxt) {
                            e = SLOT(sim, S.o_single); /* take the slot ref */
                            SLOT(sim, S.o_single) = Py_NewRef(Py_None);
                            Py_DECREF(nxt); /* drop the call-result ref */
                            w = SLOT(sim, S.o_single_when);
                            if (w == NULL) {
                                PyErr_SetString(PyExc_AttributeError,
                                                "_single_when");
                                goto err_e_cb;
                            }
                            store_slot(sim, S.o_now, Py_NewRef(w));
                            store_slot(e, S.o_ev_cb1, Py_NewRef(S.processed));
                            continue;
                        }
                        Py_DECREF(nxt);
                        Py_DECREF(cb);
                        break;
                    }
                    /* generic yield target: cb._wait_on(nxt) */
                    {
                        PyObject *wargs[2] = {cb, nxt};
                        PyObject *r =
                            PyObject_Vectorcall(S.wait_on, wargs, 2, NULL);
                        Py_DECREF(nxt);
                        if (r == NULL)
                            goto err_e_cb;
                        Py_DECREF(r);
                    }
                    if (run_cbs(e) < 0)
                        goto err_e_cb;
                    recycle_register(sim, e);
                    Py_DECREF(cb);
                    break;
                }
            }
            else {
                /* plain-callback (or no-callback) timeout */
                count++;
                if (cb != Py_None) {
                    PyObject *r = PyObject_CallOneArg(cb, e);
                    if (r == NULL)
                        goto err_e_cb;
                    Py_DECREF(r);
                }
                if (run_cbs(e) < 0)
                    goto err_e_cb;
                recycle_register(sim, e);
                Py_DECREF(cb);
            }
        }
        else if (cls == S.cbe_type) {
            count++;
            PyObject *fn = SLOT(e, S.o_cbe_fn);
            PyObject *arg = SLOT(e, S.o_cbe_arg);
            if (fn == NULL || arg == NULL) {
                PyErr_SetString(PyExc_AttributeError,
                                fn == NULL ? "fn" : "arg");
                goto err_e;
            }
            Py_INCREF(fn);
            Py_INCREF(arg);
            PyObject *r = PyObject_CallOneArg(fn, arg);
            Py_DECREF(fn);
            Py_DECREF(arg);
            if (r == NULL)
                goto err_e;
            Py_DECREF(r);
            PyObject *pool = SLOT(sim, S.o_cbe_pool);
            if (pool != NULL && PyList_CheckExact(pool) &&
                PyList_GET_SIZE(pool) < S.cbe_pool_max) {
                store_slot(e, S.o_cbe_fn, Py_NewRef(Py_None));
                store_slot(e, S.o_cbe_arg, Py_NewRef(Py_None));
                if (PyList_Append(pool, e) < 0)
                    goto err_e;
            }
            Py_DECREF(e);
        }
        else {
            count++;
            PyObject *r = PyObject_CallMethodNoArgs(e, S.str_run);
            if (r == NULL)
                goto err_e;
            Py_DECREF(r);
            Py_DECREF(e);
        }
        continue;
    err_e_cb:
        Py_DECREF(cb);
    err_e:
        Py_DECREF(e);
        goto fail;
    }
    return PyLong_FromLongLong(count);

fail:;
    /* Record the partial count (the interrupted event included, exactly
     * like the pure loop's `n += 1`-before-dispatch) for drain_fifo's
     * `except` handler, without disturbing the in-flight exception. */
    {
        PyObject *et, *ev, *tb;
        PyErr_Fetch(&et, &ev, &tb);
        PyObject *cn = PyLong_FromLongLong(count);
        if (cn != NULL)
            store_slot(sim, S.o_creg_n, cn);
        else
            PyErr_Clear();
        PyErr_Restore(et, ev, tb);
    }
    return NULL;
}

/* ------------------------------------------------------------------ */
/* per-instance binding                                                */
/* ------------------------------------------------------------------ */
static PyMethodDef timeout_md = {
    "timeout", (PyCFunction)(void (*)(void))accel_timeout,
    METH_FASTCALL | METH_KEYWORDS,
    "C fast path for Simulator.timeout (timing-wheel FIFO backend)."};

static PyMethodDef reg_drain_md = {
    "_creg_drain", (PyCFunction)accel_reg_drain, METH_NOARGS,
    "C drain of the one-entry register regime for _core.drain_fifo."};

static PyObject *
bind_checked(PyObject *sim, PyMethodDef *md)
{
    if (!S.configured) {
        PyErr_SetString(PyExc_RuntimeError, "configure() has not run");
        return NULL;
    }
    if (!PyObject_TypeCheck(sim, S.sim_type)) {
        PyErr_SetString(PyExc_TypeError, "expected a Simulator");
        return NULL;
    }
    return PyCFunction_New(md, sim);
}

static PyObject *
bind_timeout(PyObject *Py_UNUSED(mod), PyObject *sim)
{
    return bind_checked(sim, &timeout_md);
}

static PyObject *
bind_reg_drain(PyObject *Py_UNUSED(mod), PyObject *sim)
{
    return bind_checked(sim, &reg_drain_md);
}

static PyMethodDef module_methods[] = {
    {"configure", configure, METH_O,
     "Capture types, slot offsets and helpers from the pure kernel."},
    {"bind_timeout", bind_timeout, METH_O,
     "Return a C `timeout` callable bound to one Simulator."},
    {"bind_reg_drain", bind_reg_drain, METH_O,
     "Return a C register-drain callable bound to one Simulator."},
    {NULL, NULL, 0, NULL}};

static struct PyModuleDef speedup_module = {
    PyModuleDef_HEAD_INIT, "_speedup",
    "On-demand-compiled accelerator for the timing-wheel kernel.", -1,
    module_methods};

PyMODINIT_FUNC
PyInit__speedup(void)
{
    return PyModule_Create(&speedup_module);
}
