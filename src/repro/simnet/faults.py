"""Seeded fault injection for the link layer.

The link model stands in for a *reliable connected* RDMA transport, but real
RC hardware earns its losslessness through retransmission and NAK machinery
over a lossy physical layer.  :class:`ImpairmentModel` makes that physical
layer explicit: plugged into a :class:`~repro.simnet.link.Link`, it lets
each transmitted message be dropped, duplicated, or corrupted, and models
scheduled link outages ("flaps") — all from dedicated seeded RNG streams so
every fault sequence is bit-for-bit reproducible per seed.

Design rules that keep runs deterministic and comparable:

* Each direction has its **own** RNG stream, so traffic on one direction
  never perturbs the fault sequence of the other.
* A probability of zero draws **nothing** from the RNG.  An
  :class:`ImpairmentModel` whose probabilities are all zero therefore
  produces exactly the same simulation as no model at all.
* The per-message decision order is fixed (down-window, drop, corrupt,
  duplicate) and documented, so a given seed always yields the same fault
  pattern for the same traffic.
* Payloads carrying a truthy ``fault_exempt`` attribute bypass impairment
  entirely.  Connection-management datagrams and terminate notifications
  use this: their real-world counterparts ride on separately-protected
  paths (CM timeouts, keepalives) that the model collapses into reliable
  delivery.

Corruption is modelled at the *detection* point: the link delivers a
:class:`Corrupted` wrapper, and the receiving device discards it exactly as
a real port discards a frame with a bad CRC — the sender's reliability
machinery is what recovers the loss.

Fault injection never copies or mutates payload bytes: duplication delivers
the same payload object twice and :class:`Corrupted` wraps it untouched.
Payload chunks may therefore carry live ``memoryview``s of sender memory
(the zero-copy plane, :mod:`repro.hosts.memory`); the view-pinning rule
guarantees the viewed range is unchanged for as long as any injected
re-delivery could still dereference it.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence, Tuple

__all__ = [
    "FaultProfile",
    "Fate",
    "Corrupted",
    "FaultStats",
    "ImpairmentModel",
    "LIGHT_LOSS",
    "HEAVY_LOSS",
    "DUP_AND_CORRUPT",
]


@dataclass(frozen=True)
class FaultProfile:
    """Per-direction impairment probabilities (all independent per message)."""

    #: probability a message vanishes on the wire
    drop_prob: float = 0.0
    #: probability a message arrives twice (same arrival instant, in order)
    duplicate_prob: float = 0.0
    #: probability a message arrives mangled (discarded by the receiver's CRC)
    corrupt_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_prob", "duplicate_prob", "corrupt_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")

    @property
    def impaired(self) -> bool:
        return bool(self.drop_prob or self.duplicate_prob or self.corrupt_prob)


#: drop profiles used by the chaos suite and available to experiments
LIGHT_LOSS = FaultProfile(drop_prob=0.01)
HEAVY_LOSS = FaultProfile(drop_prob=0.05, duplicate_prob=0.01, corrupt_prob=0.01)
DUP_AND_CORRUPT = FaultProfile(duplicate_prob=0.05, corrupt_prob=0.05)


class Fate(enum.Enum):
    """What the impairment model decided for one message."""

    DELIVER = "deliver"
    DROP = "drop"
    DUPLICATE = "duplicate"
    CORRUPT = "corrupt"
    #: lost because the link was administratively down (scheduled flap)
    DOWN = "down"


class Corrupted:
    """A message whose frame arrived with a bad CRC (payload unusable)."""

    __slots__ = ("payload",)

    def __init__(self, payload: Any) -> None:
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Corrupted({self.payload!r})"


@dataclass
class FaultStats:
    """Point-in-time snapshot of one direction's fault counters."""

    messages: int = 0
    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    down_dropped: int = 0
    acks_dropped: int = 0


class _DirectionState:
    """RNG stream plus counters for one link direction."""

    __slots__ = ("profile", "rng", "messages", "dropped", "duplicated",
                 "corrupted", "down_dropped", "acks_dropped")

    def __init__(self, profile: FaultProfile, seed: int, index: int) -> None:
        self.profile = profile
        # Dedicated stream per direction, derived from the model seed.
        self.rng = random.Random(seed * 2 + index)
        self.messages = 0
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        self.down_dropped = 0
        self.acks_dropped = 0

    @property
    def stats(self) -> FaultStats:
        return FaultStats(self.messages, self.dropped, self.duplicated,
                          self.corrupted, self.down_dropped, self.acks_dropped)


class ImpairmentModel:
    """Per-direction loss/duplication/corruption plus scheduled outages.

    Parameters
    ----------
    profile:
        Fault probabilities for direction 0 (and direction 1 unless
        *profile1* is given).  Each direction draws from its own RNG.
    profile1:
        Optional distinct profile for direction 1.
    seed:
        Base seed for the per-direction RNG streams.
    down_windows:
        Iterable of ``(start_ns, end_ns)`` half-open intervals during which
        the wire is dead: everything transmitted inside a window (both
        directions, ACKs included) is lost.
    """

    def __init__(
        self,
        profile: FaultProfile = FaultProfile(),
        profile1: Optional[FaultProfile] = None,
        *,
        seed: int = 0,
        down_windows: Iterable[Tuple[int, int]] = (),
    ) -> None:
        self.seed = seed
        self.down_windows: Sequence[Tuple[int, int]] = tuple(
            (int(a), int(b)) for a, b in down_windows
        )
        for start, end in self.down_windows:
            if end <= start or start < 0:
                raise ValueError(f"bad down window ({start}, {end})")
        self._dirs = (
            _DirectionState(profile, seed, 0),
            _DirectionState(profile1 if profile1 is not None else profile, seed, 1),
        )

    # ------------------------------------------------------------------
    def set_profile(self, direction: int, profile: FaultProfile) -> None:
        """Swap one direction's probabilities mid-run (RNG stream is kept).

        Lets tests and experiments stage scenarios like "corrupt the first
        transmission, then heal the wire" without rebuilding the link.
        """
        self._dirs[direction].profile = profile

    def link_down(self, now: int) -> bool:
        """True while *now* falls inside a scheduled outage window."""
        for start, end in self.down_windows:
            if start <= now < end:
                return True
        return False

    def classify(self, direction: int, now: int) -> Fate:
        """Decide the fate of one data message entering the wire.

        Decision order is fixed: down-window (no RNG draw), then drop, then
        corrupt, then duplicate — each guarded so a zero probability draws
        nothing from the stream.
        """
        d = self._dirs[direction]
        d.messages += 1
        if self.down_windows and self.link_down(now):
            d.down_dropped += 1
            return Fate.DOWN
        p = d.profile
        if p.drop_prob and d.rng.random() < p.drop_prob:
            d.dropped += 1
            return Fate.DROP
        if p.corrupt_prob and d.rng.random() < p.corrupt_prob:
            d.corrupted += 1
            return Fate.CORRUPT
        if p.duplicate_prob and d.rng.random() < p.duplicate_prob:
            d.duplicated += 1
            return Fate.DUPLICATE
        return Fate.DELIVER

    def ack_lost(self, direction: int, now: int) -> bool:
        """Fate of one out-of-band ACK/NAK (drop and outage only)."""
        d = self._dirs[direction]
        if self.down_windows and self.link_down(now):
            d.acks_dropped += 1
            return True
        p = d.profile
        if p.drop_prob and d.rng.random() < p.drop_prob:
            d.acks_dropped += 1
            return True
        return False

    # ------------------------------------------------------------------
    def stats(self, direction: int) -> FaultStats:
        """Snapshot of one direction's counters."""
        return self._dirs[direction].stats

    def _total(self, field: str) -> int:
        return sum(getattr(d, field) for d in self._dirs)

    @property
    def dropped_total(self) -> int:
        return self._total("dropped")

    @property
    def duplicated_total(self) -> int:
        return self._total("duplicated")

    @property
    def corrupted_total(self) -> int:
        return self._total("corrupted")

    @property
    def down_dropped_total(self) -> int:
        return self._total("down_dropped")

    @property
    def acks_dropped_total(self) -> int:
        return self._total("acks_dropped")

    @property
    def lost_total(self) -> int:
        """Messages that never reached the far end, for any reason."""
        return (self.dropped_total + self.corrupted_total
                + self.down_dropped_total + self.acks_dropped_total)
