"""Switched multi-host fabric: topology descriptions and the switch model.

The point-to-point :class:`~repro.simnet.link.Link` models one dedicated
wire.  This module composes many of them into a *fabric*: hosts and
store-and-forward switches joined by links, described by a frozen,
serializable :class:`Topology` that slots into
:class:`repro.config.ScenarioConfig`.

The switch model
----------------

A :class:`Switch` is a store-and-forward crossbar with *output queueing*:

* every attached link is one port; the egress side of a port is a bounded
  FIFO (:class:`SwitchPort`) that drains onto the link at line rate (the
  link's own serialized transmitter provides the drain clock);
* a frame is switched only after it has fully arrived on the ingress link
  (store-and-forward — the ingress :class:`~repro.simnet.link.Link`
  delivers at full-arrival time), then pays the switch's ``forward_ns``
  lookup/crossbar latency before joining the egress queue;
* when an egress queue is full the switch either **drops** the frame
  (``policy="drop"``, counted per port) or **backpressures**
  (``policy="backpressure"``): the frame waits in an unbounded pending
  staging area, modelling PFC-style lossless pause toward the upstream
  sender.  An empty queue always admits one frame regardless of size so
  a frame larger than the configured capacity cannot wedge the port.
* frames whose payload is fault-exempt (CM datagrams, TERM notifications
  — the separately-protected management path) bypass the capacity check
  entirely, so connection management cannot deadlock behind a congested
  data queue;
* a frame that arrives corrupted (wrapped in
  :class:`~repro.simnet.faults.Corrupted`) is discarded at the ingress
  port, exactly as a real switch drops frames failing their FCS.

Transport ACKs never traverse switches: the device model delivers them
out of band (see :meth:`repro.verbs.device.RdmaDevice._send_ack_message`),
charged with the summed propagation delay of the path.

Determinism: the switch adds no randomness.  Queue admission, drain
completion, and forwarding are all scheduled through ``sim.call_in`` with
delays derived from link arithmetic, so two runs of the same scenario are
bit-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from .kernel import SimulationError, Simulator
from .faults import Corrupted
from .link import Link, LinkDirection

__all__ = [
    "FabricFrame",
    "NicPort",
    "Switch",
    "SwitchConfig",
    "SwitchPort",
    "Topology",
]


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
class FabricFrame:
    """A wire message in transit across the fabric.

    Wraps the device-level payload with the routing destination (a host
    name) and the wire size, so intermediate switches can re-serialize the
    frame on their egress links without understanding the payload.  The
    wrapper is removed at the destination host's NIC.
    """

    __slots__ = ("payload", "wire_bytes", "dst")

    def __init__(self, payload: Any, wire_bytes: int, dst: str) -> None:
        self.payload = payload
        self.wire_bytes = wire_bytes
        self.dst = dst

    @property
    def fault_exempt(self) -> bool:
        """Management-path frames stay exempt across every hop."""
        return bool(getattr(self.payload, "fault_exempt", False))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FabricFrame({self.payload!r} -> {self.dst})"


class NicPort:
    """The device-facing side of a host's access link on a fabric.

    Looks like a :class:`~repro.simnet.link.LinkDirection` to the device
    (``transmit``/``busy_until``/``tracer``) but wraps every payload in a
    :class:`FabricFrame` addressed by the *resolve* callable (payload →
    destination host name), provided by the assembling fabric.
    """

    __slots__ = ("direction", "resolve")

    def __init__(self, direction: LinkDirection, resolve: Callable[[Any], str]) -> None:
        self.direction = direction
        self.resolve = resolve

    def transmit(self, payload: Any, wire_bytes: int, extra_tx_ns: int = 0) -> int:
        frame = FabricFrame(payload, wire_bytes, self.resolve(payload))
        return self.direction.transmit(frame, wire_bytes, extra_tx_ns)

    @property
    def busy_until(self) -> int:
        return self.direction.busy_until

    @property
    def tracer(self):
        return self.direction.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.direction.tracer = value


def host_delivery(handler: Callable[[Any], None]) -> Callable[[Any], None]:
    """Wrap a device arrival handler to strip :class:`FabricFrame` wrappers.

    Corrupted frames keep their :class:`Corrupted` envelope (the device
    discards them) but the fabric wrapper inside is removed so the device
    never sees fabric-internal types.
    """

    def _deliver(frame: Any) -> None:
        if isinstance(frame, FabricFrame):
            handler(frame.payload)
        elif isinstance(frame, Corrupted) and isinstance(frame.payload, FabricFrame):
            handler(Corrupted(frame.payload.payload))
        else:
            handler(frame)

    return _deliver


# ----------------------------------------------------------------------
# switch
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SwitchConfig:
    """Timing and queueing discipline of a store-and-forward switch."""

    #: lookup + crossbar latency charged per forwarded frame
    forward_ns: int = 300
    #: bound on each egress port's output queue, in wire bytes (counts the
    #: frame currently serializing onto the link)
    port_queue_bytes: int = 256 * 1024
    #: what happens when an egress queue is full: ``"drop"`` loses the
    #: frame (counted), ``"backpressure"`` holds it losslessly until the
    #: queue drains (PFC-style pause)
    policy: str = "drop"

    def __post_init__(self) -> None:
        if self.policy not in ("drop", "backpressure"):
            raise ValueError(f"unknown switch policy {self.policy!r}")
        if self.forward_ns < 0 or self.port_queue_bytes <= 0:
            raise ValueError("forward_ns must be >= 0 and port_queue_bytes > 0")


class SwitchPort:
    """One egress port: a bounded FIFO draining onto a link direction.

    ``queued_bytes`` counts every admitted frame until its serialization
    onto the link finishes (the drain callback), so the bound covers both
    waiting frames and the one on the wire — standard output-queue
    accounting.
    """

    __slots__ = ("switch", "neighbor", "direction", "queued_bytes",
                 "queued_frames", "pending", "pending_bytes", "forwarded",
                 "forwarded_bytes", "drops", "dropped_bytes",
                 "backpressured", "peak_queue_bytes")

    def __init__(self, switch: "Switch", neighbor: str, direction: LinkDirection) -> None:
        self.switch = switch
        self.neighbor = neighbor
        self.direction = direction
        self.queued_bytes = 0
        self.queued_frames = 0
        #: frames held under backpressure, FIFO
        self.pending: Deque[FabricFrame] = deque()
        self.pending_bytes = 0
        self.forwarded = 0
        self.forwarded_bytes = 0
        self.drops = 0
        self.dropped_bytes = 0
        self.backpressured = 0
        self.peak_queue_bytes = 0

    @property
    def name(self) -> str:
        """Port label: the neighbor node the port faces."""
        return self.neighbor

    def enqueue(self, frame: FabricFrame) -> None:
        """Admit *frame* to the egress queue (or drop / hold it)."""
        cfg = self.switch.config
        fits = (
            self.queued_frames == 0
            or self.queued_bytes + frame.wire_bytes <= cfg.port_queue_bytes
        )
        if not fits and not frame.fault_exempt:
            if cfg.policy == "drop":
                self.drops += 1
                self.dropped_bytes += frame.wire_bytes
                sim = self.switch.sim
                if sim.tracing:
                    sim.trace("fabric", f"{self.switch.name}:{self.neighbor} "
                                        f"drop {frame.wire_bytes}B (queue full)")
                return
            self.backpressured += 1
            self.pending.append(frame)
            self.pending_bytes += frame.wire_bytes
            return
        self._admit(frame)

    def _admit(self, frame: FabricFrame) -> None:
        self.queued_bytes += frame.wire_bytes
        self.queued_frames += 1
        if self.queued_bytes > self.peak_queue_bytes:
            self.peak_queue_bytes = self.queued_bytes
        self.forwarded += 1
        self.forwarded_bytes += frame.wire_bytes
        sim = self.switch.sim
        self.direction.transmit(frame, frame.wire_bytes)
        # The link direction serializes frames back to back; its busy_until
        # after the transmit is exactly when this frame leaves the queue.
        self._schedule_drain(frame.wire_bytes, sim)

    def _schedule_drain(self, wire_bytes: int, sim: Simulator) -> None:
        sim.call_in(self.direction.busy_until - sim.now, self._drained, wire_bytes)

    def _drained(self, wire_bytes: int) -> None:
        self.queued_bytes -= wire_bytes
        self.queued_frames -= 1
        cfg = self.switch.config
        while self.pending:
            head = self.pending[0]
            if (self.queued_frames > 0
                    and self.queued_bytes + head.wire_bytes > cfg.port_queue_bytes):
                break
            self.pending.popleft()
            self.pending_bytes -= head.wire_bytes
            self._admit(head)


class Switch:
    """A store-and-forward switch instance inside a running fabric.

    Built by the fabric assembler (:class:`repro.fabric.Fabric`), not
    directly by users: ports are added as topology edges are wired, and
    the route table (destination host → egress port) comes from the
    topology's deterministic shortest-path computation.
    """

    def __init__(self, sim: Simulator, name: str, config: Optional[SwitchConfig] = None) -> None:
        self.sim = sim
        self.name = name
        self.config = config or SwitchConfig()
        #: neighbor node name → egress port toward it
        self.ports: Dict[str, SwitchPort] = {}
        #: destination host name → egress port (next hop)
        self.routes: Dict[str, SwitchPort] = {}
        self.received = 0
        self.corrupt_dropped = 0

    def add_port(self, neighbor: str, link: Link, endpoint: int) -> SwitchPort:
        """Attach this switch to *link* at *endpoint*, facing *neighbor*."""
        if neighbor in self.ports:
            raise SimulationError(f"switch {self.name} already has a port to {neighbor}")
        direction = link.attach(endpoint, self._ingress)
        port = SwitchPort(self, neighbor, direction)
        self.ports[neighbor] = port
        return port

    def build_routes(self, next_hops: Mapping[str, str]) -> None:
        """Install the route table (*destination host → neighbor name*)."""
        for dst, neighbor in next_hops.items():
            port = self.ports.get(neighbor)
            if port is None:
                raise SimulationError(
                    f"switch {self.name}: route to {dst} via unknown port {neighbor}"
                )
            self.routes[dst] = port

    def _ingress(self, frame: Any) -> None:
        self.received += 1
        if isinstance(frame, Corrupted):
            # FCS failure: a real switch validates the frame check sequence
            # before forwarding and discards on mismatch.
            self.corrupt_dropped += 1
            if self.sim.tracing:
                self.sim.trace("fabric", f"{self.name} discarded corrupt frame")
            return
        if not isinstance(frame, FabricFrame):  # pragma: no cover - defensive
            raise SimulationError(
                f"switch {self.name} received a non-fabric payload {frame!r}"
            )
        port = self.routes.get(frame.dst)
        if port is None:
            raise SimulationError(f"switch {self.name} has no route to {frame.dst!r}")
        if self.config.forward_ns:
            self.sim.call_in(self.config.forward_ns, port.enqueue, frame)
        else:
            port.enqueue(frame)


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------
def _edge_name(a: str, b: str) -> str:
    return f"{a}-{b}"


@dataclass(frozen=True)
class Topology:
    """A frozen, serializable description of a multi-host fabric.

    ``hosts`` and ``switches`` name the nodes; ``edges`` are undirected
    ``(a, b)`` links between them.  Every host must be single-homed (one
    edge), all hosts must be mutually reachable, and names must be unique.
    Per-edge link-speed overrides go in ``bandwidth_scale`` as
    ``(edge_name, factor)`` pairs — e.g. slow the shared uplink of a star
    to create an incast bottleneck.

    The canonical edge name is ``"a-b"`` in declaration order; lookups
    accept either order.
    """

    hosts: Tuple[str, ...]
    switches: Tuple[str, ...] = ()
    edges: Tuple[Tuple[str, str], ...] = ()
    switch: SwitchConfig = field(default_factory=SwitchConfig)
    #: per-edge bandwidth multipliers: ``(("leaf0-spine0", 0.25), ...)``
    bandwidth_scale: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        hosts = tuple(self.hosts)
        switches = tuple(self.switches)
        edges = tuple((str(a), str(b)) for a, b in self.edges)
        object.__setattr__(self, "hosts", hosts)
        object.__setattr__(self, "switches", switches)
        object.__setattr__(self, "edges", edges)
        object.__setattr__(
            self, "bandwidth_scale",
            tuple((str(name), float(f)) for name, f in self.bandwidth_scale),
        )
        if len(hosts) < 2:
            raise ValueError("a topology needs at least two hosts")
        names = hosts + switches
        if len(set(names)) != len(names):
            raise ValueError("host/switch names must be unique")
        known = set(names)
        seen = set()
        degree: Dict[str, int] = {}
        for a, b in edges:
            if a not in known or b not in known:
                raise ValueError(f"edge {_edge_name(a, b)!r} references an unknown node")
            if a == b:
                raise ValueError(f"self-edge {_edge_name(a, b)!r}")
            key = frozenset((a, b))
            if key in seen:
                raise ValueError(f"duplicate edge {_edge_name(a, b)!r}")
            seen.add(key)
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        for host in hosts:
            if degree.get(host, 0) != 1:
                raise ValueError(
                    f"host {host!r} must be single-homed (exactly one edge, "
                    f"has {degree.get(host, 0)})"
                )
        # connectivity: every host reachable from the first
        reach = self._reachable(hosts[0])
        missing = [h for h in hosts if h not in reach]
        if missing:
            raise ValueError(f"hosts not reachable from {hosts[0]!r}: {missing}")
        for name, factor in self.bandwidth_scale:
            self.resolve_edge(name)  # raises on unknown names
            if factor <= 0:
                raise ValueError(f"bandwidth_scale for {name!r} must be > 0")

    # -- constructors ---------------------------------------------------
    @classmethod
    def point_to_point(cls, a: str = "client", b: str = "server") -> "Topology":
        """The classic two-host wire (what :class:`repro.Testbed` builds)."""
        return cls(hosts=(a, b), edges=((a, b),))

    @classmethod
    def star(cls, hosts: Sequence[str], hub: str = "switch0",
             switch: Optional[SwitchConfig] = None,
             bandwidth_scale: Tuple[Tuple[str, float], ...] = ()) -> "Topology":
        """All hosts on one switch.

        A two-host star collapses to the direct wire: a 2-port switch adds
        no contention (each output queue has exactly one feeder), and
        eliding it keeps the timing model — and therefore every event
        sequence — bit-identical to the classic point-to-point testbed.
        """
        hosts = tuple(hosts)
        if len(hosts) == 2 and not bandwidth_scale:
            return cls.point_to_point(*hosts)
        return cls(
            hosts=hosts,
            switches=(hub,),
            edges=tuple((h, hub) for h in hosts),
            switch=switch or SwitchConfig(),
            bandwidth_scale=bandwidth_scale,
        )

    @classmethod
    def leaf_spine(cls, leaf_hosts: Sequence[Sequence[str]], spines: int = 1,
                   switch: Optional[SwitchConfig] = None,
                   bandwidth_scale: Tuple[Tuple[str, float], ...] = ()) -> "Topology":
        """Two-tier leaf/spine: ``leaf_hosts[i]`` hangs off ``leaf{i}``,
        every leaf uplinks to every ``spine{j}``."""
        if spines < 1:
            raise ValueError("need at least one spine")
        hosts: List[str] = []
        switches: List[str] = []
        edges: List[Tuple[str, str]] = []
        spine_names = [f"spine{j}" for j in range(spines)]
        for i, group in enumerate(leaf_hosts):
            leaf = f"leaf{i}"
            switches.append(leaf)
            for h in group:
                hosts.append(h)
                edges.append((h, leaf))
            for spine in spine_names:
                edges.append((leaf, spine))
        switches.extend(spine_names)
        return cls(
            hosts=tuple(hosts),
            switches=tuple(switches),
            edges=tuple(edges),
            switch=switch or SwitchConfig(),
            bandwidth_scale=bandwidth_scale,
        )

    # -- queries --------------------------------------------------------
    @property
    def direct(self) -> bool:
        """True for the switchless two-host wire (the legacy testbed shape)."""
        return not self.switches and len(self.hosts) == 2 and len(self.edges) == 1

    @property
    def edge_names(self) -> Tuple[str, ...]:
        return tuple(_edge_name(a, b) for a, b in self.edges)

    def resolve_edge(self, name: str) -> int:
        """Index of the edge called *name* (either endpoint order).

        Raises ``ValueError`` naming the known edges on a miss — a fault
        profile addressed at a typo must fail loudly, not silently no-op.
        """
        for i, (a, b) in enumerate(self.edges):
            if name in (_edge_name(a, b), _edge_name(b, a)):
                return i
        raise ValueError(
            f"unknown edge {name!r} (known edges: {', '.join(self.edge_names)})"
        )

    def _adjacency(self) -> Dict[str, List[str]]:
        adj: Dict[str, List[str]] = {n: [] for n in self.hosts + self.switches}
        for a, b in self.edges:
            adj[a].append(b)
            adj[b].append(a)
        for neighbors in adj.values():
            neighbors.sort()  # deterministic BFS order
        return adj

    def _reachable(self, start: str) -> set:
        adj = self._adjacency()
        seen = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for nxt in adj[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def path(self, a: str, b: str) -> List[str]:
        """Deterministic shortest node path from host/switch *a* to *b*."""
        adj = self._adjacency()
        if a not in adj or b not in adj:
            raise ValueError(f"unknown node in path({a!r}, {b!r})")
        prev: Dict[str, str] = {a: a}
        frontier = deque([a])
        while frontier:
            node = frontier.popleft()
            if node == b:
                break
            for nxt in adj[node]:
                if nxt not in prev:
                    prev[nxt] = node
                    frontier.append(nxt)
        if b not in prev:
            raise ValueError(f"no path from {a!r} to {b!r}")
        out = [b]
        while out[-1] != a:
            out.append(prev[out[-1]])
        out.reverse()
        return out

    def next_hops(self, switch: str) -> Dict[str, str]:
        """Route table for *switch*: destination host → neighbor name."""
        if switch not in self.switches:
            raise ValueError(f"{switch!r} is not a switch in this topology")
        out: Dict[str, str] = {}
        for host in self.hosts:
            p = self.path(switch, host)
            if len(p) >= 2:
                out[host] = p[1]
        return out

    def scale_for(self, edge_index: int) -> float:
        """Bandwidth multiplier for edge *edge_index* (1.0 by default)."""
        a, b = self.edges[edge_index]
        for name, factor in self.bandwidth_scale:
            if name in (_edge_name(a, b), _edge_name(b, a)):
                return factor
        return 1.0

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "hosts": list(self.hosts),
            "switches": list(self.switches),
            "edges": [list(e) for e in self.edges],
            "switch": {
                "forward_ns": self.switch.forward_ns,
                "port_queue_bytes": self.switch.port_queue_bytes,
                "policy": self.switch.policy,
            },
            "bandwidth_scale": [list(s) for s in self.bandwidth_scale],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Topology":
        sw = data.get("switch") or {}
        return cls(
            hosts=tuple(data["hosts"]),
            switches=tuple(data.get("switches", ())),
            edges=tuple(tuple(e) for e in data.get("edges", ())),
            switch=SwitchConfig(**sw),
            bandwidth_scale=tuple(tuple(s) for s in data.get("bandwidth_scale", ())),
        )
