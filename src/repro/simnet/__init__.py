"""Discrete-event simulation kernel and network substrate.

This subpackage is self-contained (no dependency on the RDMA layers above
it) and provides:

* :class:`~repro.simnet.kernel.Simulator` — the event calendar / clock.
* :class:`~repro.simnet.events.Event`, :class:`~repro.simnet.events.Timeout`,
  :class:`~repro.simnet.events.Signal`, :class:`~repro.simnet.events.AllOf`,
  :class:`~repro.simnet.events.AnyOf` — synchronisation primitives.
* :class:`~repro.simnet.process.Process` — generator-based processes.
* :class:`~repro.simnet.resources.Resource` / :class:`~repro.simnet.resources.Store`.
* :class:`~repro.simnet.link.Link` — serialized full-duplex link model.
* :class:`~repro.simnet.fabric.Topology` / :class:`~repro.simnet.fabric.Switch`
  — switched multi-host fabrics (store-and-forward, output-queued).
* :class:`~repro.simnet.emulator.DelayEmulator` — Anue-style WAN delay/jitter.
* :class:`~repro.simnet.faults.ImpairmentModel` — seeded lossy-wire faults.
* :class:`~repro.simnet.schedule.SchedulePolicy` — same-instant tie-break
  policies (FIFO / seeded-random) for the conformance fuzzer.
"""

from .causality import FLIGHT_SCHEMA, CausalNode, CausalRecorder, enable_capture
from .emulator import DelayEmulator, gaussian_jitter, uniform_jitter
from .events import AllOf, AnyOf, Event, Signal, Timeout
from .fabric import FabricFrame, NicPort, Switch, SwitchConfig, SwitchPort, Topology
from .faults import (
    DUP_AND_CORRUPT,
    HEAVY_LOSS,
    LIGHT_LOSS,
    Corrupted,
    Fate,
    FaultProfile,
    FaultStats,
    ImpairmentModel,
)
from .kernel import SimulationError, Simulator
from .link import Link, LinkDirection, LinkStats
from .process import Interrupt, Process
from .resources import Resource, Store
from .schedule import FifoPolicy, RandomTiebreakPolicy, SchedulePolicy, policy_from_spec

__all__ = [
    "AllOf",
    "AnyOf",
    "CausalNode",
    "CausalRecorder",
    "Corrupted",
    "DUP_AND_CORRUPT",
    "DelayEmulator",
    "Event",
    "FLIGHT_SCHEMA",
    "FabricFrame",
    "Fate",
    "FaultProfile",
    "FaultStats",
    "FifoPolicy",
    "HEAVY_LOSS",
    "ImpairmentModel",
    "Interrupt",
    "LIGHT_LOSS",
    "Link",
    "LinkDirection",
    "LinkStats",
    "NicPort",
    "Process",
    "RandomTiebreakPolicy",
    "Resource",
    "SchedulePolicy",
    "Signal",
    "SimulationError",
    "Simulator",
    "Store",
    "Switch",
    "SwitchConfig",
    "SwitchPort",
    "Timeout",
    "Topology",
    "enable_capture",
    "gaussian_jitter",
    "policy_from_spec",
    "uniform_jitter",
]
