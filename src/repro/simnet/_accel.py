"""On-demand build and loading of the optional C kernel accelerator.

``_speedup.c`` is compiled with the system C compiler the first time a
timing-wheel :class:`~repro.simnet.kernel.Simulator` is constructed, and
cached (keyed by interpreter version and source hash) under
``~/.cache/repro-simnet`` or ``$REPRO_ACCEL_CACHE``.  There is no build
system and no install step: a plain ``cc -O2 -shared -fPIC`` either works
or it doesn't, and *any* failure — no compiler, non-CPython runtime, a
changed slot layout failing the ``configure()`` handshake — degrades
silently to the pure-Python kernel, which is semantically identical
(property-tested in tests/simnet/test_timing_wheel.py).

Set ``REPRO_KERNEL_C=0`` to force the pure-Python paths; note that
``REPRO_KERNEL=heap`` never uses the accelerator (it binds the flat-heap
methods before the accelerator is consulted).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

__all__ = ["load"]

#: "unloaded" until the first load() call, then the module or None.
_state: object = "unloaded"


def _disabled_by_env() -> bool:
    return os.environ.get("REPRO_KERNEL_C", "").strip().lower() in (
        "0",
        "off",
        "no",
        "false",
    )


def _compile_and_import():
    import hashlib
    import importlib.util
    import shutil
    import subprocess
    import sysconfig
    import tempfile

    src = Path(__file__).with_name("_speedup.c")
    code = src.read_bytes()
    tag = hashlib.sha256(code).hexdigest()[:16]
    ver = f"cp{sys.version_info[0]}{sys.version_info[1]}"
    cache_dir = Path(
        os.environ.get("REPRO_ACCEL_CACHE")
        or Path.home() / ".cache" / "repro-simnet"
    )
    cache_dir.mkdir(parents=True, exist_ok=True)
    so = cache_dir / f"_speedup_{ver}_{tag}.so"
    if not so.exists():
        cc = (sysconfig.get_config_var("CC") or "cc").split()[0]
        if shutil.which(cc) is None:
            cc = next((c for c in ("cc", "gcc", "clang") if shutil.which(c)), None)
            if cc is None:
                raise RuntimeError("no C compiler available")
        inc = sysconfig.get_paths()["include"]
        cmd = [cc, "-O2", "-fPIC", "-shared", f"-I{inc}", str(src)]
        if sys.platform == "darwin":
            cmd += ["-undefined", "dynamic_lookup"]
        fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".so")
        os.close(fd)
        try:
            res = subprocess.run(
                cmd + ["-o", tmp], capture_output=True, timeout=120
            )
            if res.returncode != 0:
                raise RuntimeError(
                    f"accelerator compile failed: {res.stderr.decode(errors='replace')[:500]}"
                )
            os.replace(tmp, so)  # atomic: concurrent builders race benignly
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    spec = importlib.util.spec_from_file_location("repro.simnet._speedup", so)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _configure(mod) -> None:
    # Runtime imports: this module must stay import-light because
    # kernel.py imports it at module load (before events/process exist).
    from ._core import CBE_POOL_MAX, TIMEOUT_POOL_MAX, CallbackEntry, _PROCESSED
    from .events import Timeout
    from .kernel import Simulator
    from .process import Process

    mod.configure(
        {
            "Simulator": Simulator,
            "Timeout": Timeout,
            "Process": Process,
            "CallbackEntry": CallbackEntry,
            "processed": _PROCESSED,
            "timeout_slow": Simulator._timeout_wheel_slow,
            "wait_on": Process._wait_on,
            "cbe_pool_max": CBE_POOL_MAX,
            "timeout_pool_max": TIMEOUT_POOL_MAX,
        }
    )


def load():
    """Return the configured extension module, or ``None`` (cached)."""
    global _state
    if _state != "unloaded":
        return _state
    _state = None
    try:
        if _disabled_by_env():
            return None
        if sys.implementation.name != "cpython":
            return None  # Py_REFCNT semantics are CPython-specific
        mod = _compile_and_import()
        _configure(mod)
        _state = mod
    except Exception:
        _state = None
    return _state
