"""Event primitives for the simulation kernel.

An :class:`Event` is the unit of synchronisation: processes yield events and
are resumed when the event *triggers* (succeeds or fails).  The classes here
mirror a small, well-understood subset of the SimPy event model:

* :class:`Event` — manually triggered one-shot event.
* :class:`Timeout` — fires a fixed delay after creation.
* :class:`AllOf` / :class:`AnyOf` — composite conditions.
* :class:`Signal` — a *reusable* condition-variable-like object; each call to
  :meth:`Signal.wait` returns a fresh one-shot event.

Events carry a value (delivered to waiters) or an exception (re-raised in
waiting processes).

Callback storage is split for the kernel's benefit: the overwhelmingly
common case is exactly one waiter, held in the ``_cb1`` slot (no list
allocation); additional waiters overflow into the lazily created ``_cbs``
list.  Once the event has been dispatched ``_cb1`` holds a process-wide
sentinel — :attr:`processed` is a cheap identity check and a second
dispatch is a silent no-op, as in the list-based representation it
replaces.  The :attr:`callbacks` property keeps the old list-shaped view
for diagnostics.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ._core import _PROCESSED
from .kernel import SimulationError, Simulator

__all__ = ["Event", "Timeout", "AllOf", "AnyOf", "Signal"]

_PENDING = object()


class Event:
    """A one-shot occurrence inside the simulation.

    Lifecycle: *untriggered* → (``succeed``/``fail``) → scheduled on the
    calendar → *processed* (callbacks run).  An event may only be triggered
    once.

    Events (and their subclasses) use ``__slots__``: they are the most
    numerous objects in a simulation and dropping the per-instance dict
    measurably cuts both allocation time and memory traffic.  ``_seq`` is
    owned by the kernel — the calendar's FIFO tie-break key, assigned when
    the event enters the wheel structures.
    """

    # _cid is written only under causality capture (see simnet.causality);
    # in normal runs the slot exists but is never assigned or read.
    __slots__ = ("sim", "_cb1", "_cbs", "_value", "_ok", "_seq", "_cid")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._cb1: Optional[Callable[["Event"], None]] = None
        self._cbs: Optional[List[Callable[["Event"], None]]] = None
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._cb1 is _PROCESSED

    @property
    def callbacks(self) -> Optional[List[Callable[["Event"], None]]]:
        """List-shaped view of the pending callbacks (``None`` once processed).

        Diagnostic/back-compat accessor: mutating the returned list has no
        effect — use :meth:`add_callback`.
        """
        cb = self._cb1
        if cb is _PROCESSED:
            return None
        out: List[Callable[["Event"], None]] = []
        if cb is not None:
            out.append(cb)
        if self._cbs:
            out.extend(self._cbs)
        return out

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None if untriggered."""
        return self._ok

    def result(self) -> Any:
        """Return the event's value, raising its exception if it failed."""
        if self._value is _PENDING:
            raise SimulationError("event has not triggered yet")
        if not self._ok:
            raise self._value
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully with *value* after *delay* ns."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self.sim.schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception after *delay* ns."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._value = exc
        self._ok = False
        self.sim.schedule(self, delay)
        return self

    # -- callbacks ------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires (immediately if already fired)."""
        cb = self._cb1
        if cb is None:
            self._cb1 = fn
        elif cb is _PROCESSED:
            # Already processed: schedule an immediate call so that ordering
            # stays calendar-driven.
            self.sim.call_in(0, fn, self)
        else:
            cbs = self._cbs
            if cbs is None:
                self._cbs = [fn]
            else:
                cbs.append(fn)

    def _run(self) -> None:
        cb = self._cb1
        self._cb1 = _PROCESSED
        if cb is not None:
            cb(self)
        cbs = self._cbs
        if cbs is not None:
            self._cbs = None
            for fn in cbs:
                fn(self)


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation.

    Instances created via :meth:`Simulator.timeout` may come from (and
    silently return to) a per-simulator freelist; the reuse is undetectable
    because recycling requires proof that no other reference exists.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: Simulator, delay: int, value: Any = None) -> None:
        self.sim = sim
        self._cb1 = None
        self._cbs = None
        self._ok = True
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay
        self._value = value
        sim.schedule(self, delay)


class _Condition(Event):
    """Base class for :class:`AllOf` / :class:`AnyOf`.

    A child counts as *done* only once it has been **processed** (its
    callbacks ran) — a :class:`Timeout` holds its value from creation but
    has not *occurred* until the calendar reaches it.
    """

    __slots__ = ("events", "_index")

    def __init__(self, sim: Simulator, events: Sequence[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        # Identity-keyed child → position map (first occurrence wins when
        # the same event object appears twice), so _check never pays an
        # O(n) list scan per child notification.
        self._index = {}
        for i, ev in enumerate(self.events):
            self._index.setdefault(id(ev), i)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._validate()
        for ev in self.events:
            # add_callback handles already-processed children by scheduling
            # an immediate relay, preserving calendar-driven ordering.
            ev.add_callback(self._on_child)
        self._check(initial=True)

    def _on_child(self, ev: Event) -> None:
        if not self.triggered:
            self._check(initial=False, child=ev)

    def _validate(self) -> None:
        pass

    def _check(self, initial: bool, child: Optional[Event] = None) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when *all* child events have succeeded (fails fast on error).

    The value is a list of child values in the original order.
    """

    __slots__ = ()

    def _check(self, initial: bool, child: Optional[Event] = None) -> None:
        if self.triggered:
            return
        if child is not None and child.ok is False:
            self.fail(child._value)
            return
        if all(e.processed and e.ok for e in self.events) or not self.events:
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Triggers when *any* child event occurs; value is ``(index, value)``."""

    __slots__ = ()

    def _validate(self) -> None:
        if not self.events:
            raise SimulationError("AnyOf of zero events would never trigger")

    def _check(self, initial: bool, child: Optional[Event] = None) -> None:
        if self.triggered or child is None:
            return
        if child.ok is False:
            self.fail(child._value)
        else:
            self.succeed((self._index[id(child)], child._value))


class Signal:
    """A reusable wake-up channel (condition variable).

    Unlike :class:`Event`, a ``Signal`` can be fired many times.  Each call
    to :meth:`wait` returns a one-shot event tied to the *next* firing.
    :meth:`fire` wakes every current waiter.  Extra ``fire`` calls with no
    waiters set a *latch* so that the next waiter returns immediately —
    this models the "kick the engine, it will notice work" pattern used by
    the EXS progress engines and avoids lost wake-ups.
    """

    __slots__ = ("sim", "_waiters", "_latched", "_latching", "fired_count")

    def __init__(self, sim: Simulator, *, latching: bool = True) -> None:
        self.sim = sim
        self._waiters: List[Event] = []
        self._latched = False
        self._latching = latching
        #: total number of fire() calls, for tests/diagnostics
        self.fired_count = 0

    def wait(self) -> Event:
        """Return an event that fires at the next :meth:`fire` call."""
        ev = Event(self.sim)
        if self._latched:
            self._latched = False
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> None:
        """Wake all waiters (or latch if there are none)."""
        self.fired_count += 1
        if not self._waiters:
            if self._latching:
                self._latched = True
            return
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)
