"""Discrete-event simulation kernel.

The kernel keeps simulated time as an **integer number of nanoseconds** so
that event ordering is exact and runs are bit-for-bit reproducible.

* :class:`Simulator` owns the event calendar and the clock.
* :class:`~repro.simnet.events.Event` objects are placed on the calendar and
  invoke their callbacks when they fire.
* :class:`~repro.simnet.process.Process` wraps a Python generator; the
  generator ``yield``\\ s events and is resumed when they trigger, which gives
  cooperative "threads" inside the simulation.

Ties in the calendar are broken by a monotonically increasing sequence
number, so two events scheduled for the same instant fire in the order they
were scheduled.  This determinism is essential: the protocol under study is
sensitive to message/completion races and we want those races to be
*simulated*, not to depend on Python hash ordering.  A
:class:`~repro.simnet.schedule.SchedulePolicy` may re-key those same-instant
ties (seeded-random interleavings for the conformance fuzzer); events at
different timestamps are never reordered.

Calendar backends
-----------------
The default calendar is a **hierarchical timing wheel** (see
:mod:`repro.simnet._core` and docs/SIMULATION.md): a one-entry register for
the empty-calendar fast path, 4096 × 1 ns level-0 slots, 4096 × 4096 ns
level-1 buckets that cascade into level 0, and a small overflow heap beyond
the ~16.8 ms horizon.  All entries that fire at the same instant are
drained as one *batch* — one clock update, one loop, one heap op per
distinct time.  The pre-wheel flat ``heapq`` calendar is kept as a
fallback, selected with ``Simulator(calendar="heap")`` or the
``REPRO_KERNEL=heap`` environment escape hatch; both backends produce
identical event orderings (property-tested in
tests/simnet/test_timing_wheel.py).

Performance notes (this kernel is the host-side bottleneck of every
experiment):

* ``run()`` branches **once** on backend/policy/gating and selects a
  specialized drain loop from :mod:`repro.simnet._core`; the per-event
  path has no tracing or policy checks.
* ``schedule``/``call_in``/``timeout``/``step``/``peek`` are bound per
  instance at construction (one backend branch for the whole lifetime,
  and callers skip the descriptor protocol).
* :meth:`Simulator.call_in` places a slotted
  :class:`~repro.simnet._core.CallbackEntry` that invokes ``fn(arg)``
  directly, bypassing the full Event protocol — used by the hot delivery
  paths (link arrivals, transport ACKs) which never have external
  waiters.  Entries are recycled through a freelist unconditionally.
* :meth:`Simulator.timeout` recycles
  :class:`~repro.simnet.events.Timeout` objects through a freelist (a
  single-slot stash in front of a bounded pool).  A timeout is returned
  to the pool only when the kernel can prove (via the CPython reference
  count) that nothing else holds it, so the reuse is invisible to user
  code that keeps a reference.
* The :attr:`Simulator.tracing` flag lets hot call sites skip building
  trace strings entirely when no trace hook is installed.
"""

from __future__ import annotations

import heapq
import os
from sys import getrefcount
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from . import _accel
from ._core import (
    CBE_POOL_MAX,
    INF,
    TIMEOUT_POOL_MAX,
    CallbackEntry,
    SimulationError,
    StopSimulation,
    drain_fifo,
    drain_fifo_gated,
    drain_heap,
    drain_policy,
    insert,
    insert_policy,
    next_batch_fifo,
    next_batch_policy,
    peek_structures,
    restore_fifo,
    restore_policy,
    S0_SIZE,
    S1_SIZE,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .events import Event
    from .process import Process

__all__ = ["Simulator", "SimulationError", "StopSimulation", "CallbackEntry"]

#: kept for back-compat with code importing the constant from here
_TIMEOUT_POOL_MAX = TIMEOUT_POOL_MAX


class Simulator:
    """Event calendar plus the simulated clock.

    Parameters
    ----------
    trace:
        Optional callable ``trace(time_ns, category, message)`` invoked for
        every traced kernel action.  ``None`` disables tracing (the default;
        tracing is for debugging, not for measurement).  Call sites on hot
        paths should consult :attr:`tracing` before formatting messages.
    schedule_policy:
        Optional :class:`~repro.simnet.schedule.SchedulePolicy` re-keying
        same-timestamp ties.  ``None`` (the default) keeps the plain FIFO
        order; a policy orders each same-instant batch by
        ``(tiebreak, seq)``.  ``FifoPolicy`` reproduces the default order
        bit for bit.
    calendar:
        Calendar backend: ``"wheel"`` (hierarchical timing wheel, the
        default) or ``"heap"`` (the flat-heap fallback).  ``None`` reads
        the ``REPRO_KERNEL`` environment variable, so a whole run — CI
        included — can be flipped to the fallback without code changes.

    Note: ``schedule``, ``call_in``, ``timeout``, ``step`` and ``peek``
    are instance attributes bound at construction to the selected
    backend's implementation.
    """

    # Slotted: the drain loops and schedule/timeout fast paths touch a
    # dozen simulator attributes per event, and slot access is measurably
    # cheaper than dict access.  (Also catches typo'd attribute writes.)
    __slots__ = (
        "_now",
        "_seq",
        "_policy",
        "_tiebreak",
        "_trace",
        "tracing",
        "events_executed",
        "_event_cls",
        "_timeout_cls",
        "_process_cls",
        "_proc_finish",
        "_timeout_pool",
        "_stash",
        "_cbe_pool",
        "_batches",
        "_batched_events",
        "_max_batch",
        "_cascades",
        "_l0_inserts",
        "_l1_inserts",
        "_hq_inserts",
        "_timeout_allocs",
        "_timeout_reuses",
        "_cbe_allocs",
        "_cbe_reuses",
        "_backend",
        "_queue",
        # per-instance backend method bindings
        "schedule",
        "call_in",
        "timeout",
        "step",
        "peek",
        # wheel structures
        "_reg_free",
        "_single",
        "_single_when",
        "_slots0",
        "_slots1",
        "_t0",
        "_t1",
        "_hq",
        "_dirty",
        "_base",
        "_nstruct",
        "_batch",
        "_batch_time",
        "_bi",
        "_pol_batch",
        # optional C accelerator (see _accel.py): register-regime drain
        # bound per instance, plus its partial-count handoff slot and the
        # same-instant batch dispatcher
        "_creg",
        "_creg_n",
        "_cbatch",
        # optional causality recorder (see causality.py); None when capture
        # is off, in which case no code path in this module reads it
        "_recorder",
    )

    def __init__(
        self,
        trace: Optional[Callable[[int, str, str], None]] = None,
        *,
        schedule_policy=None,
        calendar: Optional[str] = None,
    ) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._policy = schedule_policy
        self._tiebreak = schedule_policy.tiebreak if schedule_policy is not None else None
        self._trace = trace
        #: True when a trace hook is installed; guards f-string construction
        #: at call sites (the guarded-trace discipline).
        self.tracing: bool = trace is not None
        #: number of events executed so far (useful for runaway detection).
        #: The wheel backend syncs this at batch boundaries and run() exit,
        #: not per event — see :meth:`calendar_stats`.
        self.events_executed: int = 0
        # Classes/helpers resolved here, at construction time, to avoid a
        # circular import at module load (events.py imports this module).
        from .events import Event, Timeout
        from .process import Process, _finish_process

        self._event_cls = Event
        self._timeout_cls = Timeout
        self._process_cls = Process
        self._proc_finish = _finish_process
        # freelists
        self._timeout_pool: list = []
        self._stash = None  # single-slot fast tier in front of _timeout_pool
        self._cbe_pool: list = []
        # counters (see calendar_stats)
        self._batches = 0
        self._batched_events = 0
        self._max_batch = 0
        self._cascades = 0
        self._l0_inserts = 0
        self._l1_inserts = 0
        self._hq_inserts = 0
        self._timeout_allocs = 0
        self._timeout_reuses = 0
        self._cbe_allocs = 0
        self._cbe_reuses = 0
        self._creg = None
        self._creg_n = 0
        self._cbatch = None
        self._recorder = None

        if calendar is None:
            calendar = os.environ.get("REPRO_KERNEL") or "wheel"
            if calendar in ("cells", "decoupled", "cells-lockstep"):
                # The cells kernel needs a topology to derive its lookahead
                # table from, so only Fabric can construct a CellSimulator;
                # a plain Simulator under REPRO_KERNEL=cells keeps the wheel.
                calendar = "wheel"
        if calendar not in ("wheel", "heap"):
            raise SimulationError(
                f"unknown calendar backend {calendar!r} (expected 'wheel' or 'heap')"
            )
        self._backend = calendar
        if calendar == "heap":
            self._queue: list[tuple] = []
            self.schedule = self._schedule_heap
            self.call_in = self._call_in_heap
            self.timeout = self._timeout_heap
            self.step = self._step_heap
            self.peek = self._peek_heap
            return
        # timing-wheel state (see _core module docstring for the layout)
        self._reg_free = True
        self._single = None
        self._single_when = 0
        self._slots0: list = [None] * S0_SIZE
        self._slots1: list = [None] * S1_SIZE
        self._t0: list = []
        self._t1: list = []
        self._hq: list = []
        self._dirty = bytearray(S0_SIZE)
        self._base = 0
        self._nstruct = 0
        self._batch = None
        self._batch_time = -1
        self._bi = 0
        self._pol_batch = None
        if self._tiebreak is None:
            self.schedule = self._schedule_wheel
            self.call_in = self._call_in_wheel
            self.timeout = self._timeout_wheel
            # Optional C accelerator for the FIFO wheel: a compiled
            # `timeout` fast path and register-regime drain, bound per
            # instance.  Exact Simulator only — a subclass overriding the
            # slow paths must keep the pure bindings.
            if type(self) is Simulator:
                accel = _accel.load()
                if accel is not None:
                    self.timeout = accel.bind_timeout(self)
                    self._creg = accel.bind_reg_drain(self)
                    self._cbatch = accel.bind_batch_run(self)
        else:
            self.schedule = self._schedule_policy_wheel
            self.call_in = self._call_in_policy_wheel
            self.timeout = self._timeout_policy_wheel
        self.step = self._step_wheel
        self.peek = self._peek_wheel

    #: True on :class:`~repro.simnet.cells.CellSimulator`; lets call sites
    #: (connection handshakes, apps) pick cells-safe waiting without
    #: importing the cells module.
    is_cells = False

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # cells-kernel compatibility surface (see repro.simnet.cells)
    # ------------------------------------------------------------------
    def call_in_cell(self, cell: int, delay: int, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Schedule ``fn(arg)`` in a specific cell.

        On the monolithic kernel there is only one calendar, so the cell
        index is ignored; cross-cell call sites (link deliveries, device
        ACKs) can route unconditionally.
        """
        self.call_in(delay, fn, arg)

    def defer_control(self, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``fn(arg)`` now.

        The cells kernel defers the call to the control cell at the
        current instant (a deterministic rendezvous after every cell has
        finished it); the monolithic kernel is that rendezvous already,
        so this is a direct call — bit-identical to call sites simply
        invoking ``fn(arg)`` themselves.
        """
        fn(arg)

    # ------------------------------------------------------------------
    # scheduling — wheel backend, FIFO
    # ------------------------------------------------------------------
    def _schedule_wheel(self, event: "Event", delay: int = 0) -> None:
        """Place *event* on the calendar ``delay`` nanoseconds from now.

        ``delay`` must be a non-negative integer (``bool`` is rejected —
        ``schedule(ev, True)`` is always a bug, not a 1 ns delay).  The
        event fires after all events already scheduled for the same instant.
        """
        # Fast path: valid delay onto an empty calendar → park in the
        # register.  Any guard failure (including bad delay) detours to
        # the slow path, which re-checks everything and raises properly.
        if type(delay) is int and 0 <= delay and self._reg_free and self._single is None:
            self._single = event
            self._single_when = self._now + delay
            return
        self._schedule_wheel_slow(event, delay)

    def _schedule_wheel_slow(self, event: "Event", delay: int) -> None:
        if type(delay) is not int:
            # Type errors are reported before range errors so that a float
            # delay gets the "must be an int" message, not the negative one.
            if isinstance(delay, bool) or not isinstance(delay, int):
                raise SimulationError(
                    f"delay must be an int number of ns, got {type(delay).__name__}"
                )
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        when = self._now + delay
        b = self._batch
        if b is not None and when == self._batch_time:
            b.append(event)  # joins the live batch, after everything in it
            return
        s = self._single
        if s is None:
            if self._nstruct == 0 and b is None:
                self._single = event
                self._single_when = when
                return
        else:
            # second pending entry: spill the register into the structures
            self._single = None
            self._base = self._now  # structures are empty; re-anchor freely
            seq = self._seq + 1
            self._seq = seq
            s._seq = seq
            insert(self, self._single_when, s)
        seq = self._seq + 1
        self._seq = seq
        event._seq = seq
        insert(self, when, event)

    def _call_in_wheel(self, delay: int, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Schedule ``fn(arg)`` to run ``delay`` ns from now.

        The fast path for fire-and-forget deliveries: no Event object is
        created and the callable runs straight off the calendar.  Ordering
        relative to events scheduled for the same instant follows the usual
        sequence-number tie-break.
        """
        if type(delay) is int and 0 <= delay and self._reg_free and self._single is None:
            pool = self._cbe_pool
            if pool:
                e = pool.pop()
                e.fn = fn
                e.arg = arg
            else:
                e = CallbackEntry(fn, arg)
                self._cbe_allocs += 1
            self._single = e
            self._single_when = self._now + delay
            return
        self._call_in_wheel_slow(delay, fn, arg)

    def _call_in_wheel_slow(self, delay: int, fn: Callable[[Any], None], arg: Any) -> None:
        if type(delay) is not int:
            if isinstance(delay, bool) or not isinstance(delay, int):
                raise SimulationError(
                    f"delay must be an int number of ns, got {type(delay).__name__}"
                )
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        pool = self._cbe_pool
        if pool:
            e = pool.pop()
            e.fn = fn
            e.arg = arg
            self._cbe_reuses += 1
        else:
            e = CallbackEntry(fn, arg)
            self._cbe_allocs += 1
        when = self._now + delay
        b = self._batch
        if b is not None and when == self._batch_time:
            b.append(e)
            return
        s = self._single
        if s is None:
            if self._nstruct == 0 and b is None:
                self._single = e
                self._single_when = when
                return
        else:
            self._single = None
            self._base = self._now
            seq = self._seq + 1
            self._seq = seq
            s._seq = seq
            insert(self, self._single_when, s)
        seq = self._seq + 1
        self._seq = seq
        e._seq = seq
        insert(self, when, e)

    def _timeout_wheel(self, delay: int, value: Any = None) -> "Event":
        """Return an event that fires ``delay`` ns from now with ``value``.

        Timeouts are the dominant allocation of process-driven loops, so
        this goes through the freelist when possible.  Recycled timeouts
        arrive with ``_ok`` True and ``_cbs`` None by construction (only
        dispatched, succeeded timeouts are pooled), so only ``delay``,
        ``_value`` and ``_cb1`` need resetting.

        Stash hits on the empty-calendar register fast path below are not
        individually counted — an integer increment there costs as much
        as the rest of the path — so ``timeout_reuses`` undercounts in
        single-chain microbenchmarks.  Under real workloads the calendar
        is non-empty, placements take the slow path, and the counter is
        exact; see :meth:`calendar_stats`.
        """
        t = self._stash
        if t is not None and type(delay) is int and 0 <= delay and self._reg_free and self._single is None:
            self._stash = None
            t.delay = delay
            t._value = value
            t._cb1 = None
            self._single = t
            self._single_when = self._now + delay
            return t
        return self._timeout_wheel_slow(delay, value)

    def _timeout_wheel_slow(self, delay: int, value: Any) -> "Event":
        t = self._stash
        if t is not None:
            self._stash = None
        else:
            pool = self._timeout_pool
            if not pool:
                if delay < 0:
                    raise SimulationError(f"negative timeout: {delay}")
                self._timeout_allocs += 1
                return self._timeout_cls(self, delay, value)
            t = pool.pop()
        if delay < 0:
            self._timeout_pool.append(t)
            raise SimulationError(f"negative timeout: {delay}")
        if type(delay) is not int:
            if isinstance(delay, bool) or not isinstance(delay, int):
                self._timeout_pool.append(t)
                raise SimulationError(
                    f"delay must be an int number of ns, got {type(delay).__name__}"
                )
        self._timeout_reuses += 1
        t.delay = delay
        t._value = value
        t._cb1 = None
        when = self._now + delay
        b = self._batch
        if b is not None and when == self._batch_time:
            b.append(t)
            return t
        s = self._single
        if s is None:
            if self._nstruct == 0 and b is None:
                self._single = t
                self._single_when = when
                return t
        else:
            self._single = None
            self._base = self._now
            seq = self._seq + 1
            self._seq = seq
            s._seq = seq
            insert(self, self._single_when, s)
        seq = self._seq + 1
        self._seq = seq
        t._seq = seq
        insert(self, when, t)
        return t

    # ------------------------------------------------------------------
    # scheduling — wheel backend, policy mode
    # ------------------------------------------------------------------
    # Policy tie-break keys hash (time, seq), so seq advances on *every*
    # placement — identical values to the flat-heap kernel — and there is
    # no register fast path (entries go straight to the keyed structures).

    def _schedule_policy_wheel(self, event: "Event", delay: int = 0) -> None:
        if type(delay) is not int:
            if isinstance(delay, bool) or not isinstance(delay, int):
                raise SimulationError(
                    f"delay must be an int number of ns, got {type(delay).__name__}"
                )
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq + 1
        self._seq = seq
        when = self._now + delay
        tb = self._tiebreak(when, seq)
        pb = self._pol_batch
        if pb is not None and when == self._batch_time:
            heapq.heappush(pb, (tb, seq, event))
        else:
            insert_policy(self, when, tb, seq, event)

    def _call_in_policy_wheel(self, delay: int, fn: Callable[[Any], None], arg: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        pool = self._cbe_pool
        if pool:
            e = pool.pop()
            e.fn = fn
            e.arg = arg
            self._cbe_reuses += 1
        else:
            e = CallbackEntry(fn, arg)
            self._cbe_allocs += 1
        seq = self._seq + 1
        self._seq = seq
        when = self._now + delay
        tb = self._tiebreak(when, seq)
        pb = self._pol_batch
        if pb is not None and when == self._batch_time:
            heapq.heappush(pb, (tb, seq, e))
        else:
            insert_policy(self, when, tb, seq, e)

    def _timeout_policy_wheel(self, delay: int, value: Any = None) -> "Event":
        t = self._stash
        if t is not None:
            self._stash = None
        else:
            pool = self._timeout_pool
            if not pool:
                if delay < 0:
                    raise SimulationError(f"negative timeout: {delay}")
                self._timeout_allocs += 1
                return self._timeout_cls(self, delay, value)
            t = pool.pop()
        if delay < 0:
            self._timeout_pool.append(t)
            raise SimulationError(f"negative timeout: {delay}")
        self._timeout_reuses += 1
        t.delay = delay
        t._value = value
        t._cb1 = None
        self._schedule_policy_wheel(t, delay)
        return t

    # ------------------------------------------------------------------
    # scheduling — flat-heap fallback (the pre-wheel kernel, verbatim)
    # ------------------------------------------------------------------
    def _schedule_heap(self, event: "Event", delay: int = 0) -> None:
        if type(delay) is not int:
            if isinstance(delay, bool) or not isinstance(delay, int):
                raise SimulationError(
                    f"delay must be an int number of ns, got {type(delay).__name__}"
                )
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        when = self._now + delay
        if self._tiebreak is None:
            heapq.heappush(self._queue, (when, self._seq, event))
        else:
            heapq.heappush(
                self._queue, (when, self._tiebreak(when, self._seq), self._seq, event)
            )

    def _call_in_heap(self, delay: int, fn: Callable[[Any], None], arg: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        when = self._now + delay
        if self._tiebreak is None:
            heapq.heappush(self._queue, (when, self._seq, CallbackEntry(fn, arg)))
        else:
            heapq.heappush(
                self._queue,
                (when, self._tiebreak(when, self._seq), self._seq, CallbackEntry(fn, arg)),
            )

    def _timeout_heap(self, delay: int, value: Any = None) -> "Event":
        pool = self._timeout_pool
        if pool:
            t = pool.pop()
            if delay < 0:
                pool.append(t)
                raise SimulationError(f"negative timeout: {delay}")
            t.delay = delay
            t._value = value
            t._ok = True
            t._cb1 = None
            t._cbs = None
            self.schedule(t, delay)
            return t
        self._timeout_allocs += 1
        return self._timeout_cls(self, delay, value)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _step_heap(self) -> None:
        """Execute the next event on the calendar, advancing the clock."""
        item = heapq.heappop(self._queue)
        when, event = item[0], item[-1]
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event calendar corrupted: time went backwards")
        self._now = when
        self.events_executed += 1
        event._run()
        # Recycle plain Timeouts nothing else references: refcount 2 means
        # only the local variable and getrefcount's argument hold it, so
        # reuse can never be observed by user code.  (CPython-specific; on
        # other runtimes the count is conservative and pooling just idles.)
        if type(event) is self._timeout_cls and getrefcount(event) == 2:
            pool = self._timeout_pool
            if len(pool) < TIMEOUT_POOL_MAX:
                pool.append(event)

    def _step_wheel(self) -> None:
        """Execute the next event on the calendar, advancing the clock.

        Same-instant peers beyond the first are put back with their order
        preserved, so interleaving ``step()`` with ``run()`` is safe.
        Raises :class:`IndexError` on an empty calendar (as the flat heap
        did).
        """
        e = self._single
        if e is not None:
            self._single = None
            self._now = self._single_when
            self.events_executed += 1
            e._run()
            self._maybe_recycle(e)
            return
        if self._tiebreak is None:
            got = next_batch_fifo(self)
            if got is None:
                raise IndexError("step on an empty calendar")
            t, ls = got
            e = ls[0]
            self._base = t
            restore_fifo(self, t, ls, 1)
            self._now = t
            self.events_executed += 1
            e._run()
            self._maybe_recycle(e)
            return
        got = next_batch_policy(self)
        if got is None:
            raise IndexError("step on an empty calendar")
        t, ls = got
        e = heapq.heappop(ls)[2]
        self._base = t
        restore_policy(self, t, ls)
        self._now = t
        self.events_executed += 1
        e._run()
        self._maybe_recycle(e)

    def _maybe_recycle(self, event) -> None:
        if type(event) is self._timeout_cls and getrefcount(event) == 3:
            # 3 = our caller's local, this frame's argument, getrefcount's
            if self._stash is None:
                self._stash = event
            elif len(self._timeout_pool) < TIMEOUT_POOL_MAX:
                self._timeout_pool.append(event)

    def _peek_heap(self) -> Optional[int]:
        """Return the firing time of the next event, or ``None`` if idle."""
        return self._queue[0][0] if self._queue else None

    def _peek_wheel(self) -> Optional[int]:
        """Return the firing time of the next event, or ``None`` if idle.

        Exact even when called from inside a dispatched callback: a live
        batch with entries left reports the current instant.
        """
        if self._single is not None:
            return self._single_when
        b = self._batch
        if b is not None and self._bi < len(b):
            return self._now
        pb = self._pol_batch
        if pb:
            return self._now
        return peek_structures(self)

    def run(
        self,
        until: "Event | int | None" = None,
        *,
        max_events: Optional[int] = None,
    ) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the calendar is empty.
            an :class:`~repro.simnet.events.Event` (including a process)
                run until that event has triggered and return its value
                (raising if it failed).
            an ``int``
                run until simulated time reaches that many nanoseconds.
        max_events:
            Optional hard cap on the number of events executed, as a guard
            against accidental infinite simulations.
        """
        stop_time: Optional[int] = None
        target: Optional["Event"] = None
        if isinstance(until, self._event_cls):
            target = until
            if target.triggered:
                return target.result()
            target.add_callback(self._stop_on_target)
        elif isinstance(until, int):
            stop_time = until
        elif until is not None:
            raise SimulationError(f"invalid 'until' argument: {until!r}")

        stop = INF if stop_time is None else stop_time
        maxe = INF if max_events is None else max_events
        try:
            if self._recorder is not None:
                from .causality import drain_record

                drain_record(self, stop, maxe)
            elif self._backend == "heap":
                drain_heap(self, stop, maxe)
            elif self._tiebreak is not None:
                drain_policy(self, stop, maxe)
            elif stop_time is None and max_events is None:
                drain_fifo(self)
            else:
                drain_fifo_gated(self, stop, maxe)
        except StopSimulation:
            pass

        if target is not None:
            if not target.triggered:
                raise SimulationError("simulation ended before 'until' event triggered (deadlock?)")
            return target.result()
        return None

    def _stop_on_target(self, _event: "Event") -> None:
        raise StopSimulation()

    # ------------------------------------------------------------------
    # calendar introspection (the supported surface; _-prefixed structure
    # fields are backend-specific internals)
    # ------------------------------------------------------------------
    def peek_next_time(self) -> Optional[int]:
        """Firing time of the next calendar entry, or ``None`` if idle.

        Backend-independent alias of ``peek()`` — the public way for
        tests/telemetry to ask "is anything pending, and when?".
        """
        return self.peek()

    def calendar_stats(self) -> dict:
        """Snapshot of calendar counters (cheap; safe to call mid-run).

        Keys are identical for both backends (wheel-only counters read 0
        under the heap fallback) so telemetry schemas stay stable:

        ``backend``, ``now``, ``events_executed``, ``pending``,
        ``next_time``, ``batches``, ``batched_events``, ``max_batch``,
        ``cascades``, ``l0_inserts``, ``l1_inserts``, ``overflow_inserts``,
        ``timeout_allocs``, ``timeout_reuses``, ``timeout_pool``,
        ``cbe_allocs``, ``cbe_reuses``.

        ``events_executed`` is synced at batch boundaries while a wheel
        drain loop is running, so a mid-batch reading may lag by the
        events dispatched in the current batch.  Register (single-entry)
        dispatches are ``events_executed - batched_events``; the timeout
        freelist hit rate is ``timeout_reuses / (timeout_reuses +
        timeout_allocs)``.
        """
        if self._backend == "heap":
            pending = len(self._queue)
        else:
            pending = self._nstruct
            if self._single is not None:
                pending += 1
            b = self._batch
            if b is not None:
                pending += len(b) - self._bi
            pb = self._pol_batch
            if pb:
                pending += len(pb)
        return {
            "backend": self._backend,
            "now": self._now,
            "events_executed": self.events_executed,
            "pending": pending,
            "next_time": self.peek(),
            "batches": self._batches,
            "batched_events": self._batched_events,
            "max_batch": self._max_batch,
            "cascades": self._cascades,
            "l0_inserts": self._l0_inserts,
            "l1_inserts": self._l1_inserts,
            "overflow_inserts": self._hq_inserts,
            "timeout_allocs": self._timeout_allocs,
            "timeout_reuses": self._timeout_reuses,
            "timeout_pool": len(self._timeout_pool) + (1 if self._stash is not None else 0),
            "cbe_allocs": self._cbe_allocs,
            "cbe_reuses": self._cbe_reuses,
        }

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def event(self) -> "Event":
        """Return a fresh untriggered event."""
        return self._event_cls(self)

    def process(self, generator: Iterator[Any], name: str = "") -> "Process":
        """Spawn *generator* as a simulation process starting now."""
        return self._process_cls(self, generator, name=name)

    def trace(self, category: str, message: str) -> None:
        """Emit a trace record if tracing is enabled."""
        if self._trace is not None:
            self._trace(self._now, category, message)
