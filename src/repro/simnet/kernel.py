"""Discrete-event simulation kernel.

The kernel keeps simulated time as an **integer number of nanoseconds** so
that event ordering is exact and runs are bit-for-bit reproducible.  The
design follows the classic event-calendar pattern (as popularised by SimPy):

* :class:`Simulator` owns the event calendar (a binary heap) and the clock.
* :class:`~repro.simnet.events.Event` objects are placed on the calendar and
  invoke their callbacks when they fire.
* :class:`~repro.simnet.process.Process` wraps a Python generator; the
  generator ``yield``\\ s events and is resumed when they trigger, which gives
  cooperative "threads" inside the simulation.

Ties in the calendar are broken by a monotonically increasing sequence
number, so two events scheduled for the same instant fire in the order they
were scheduled.  This determinism is essential: the protocol under study is
sensitive to message/completion races and we want those races to be
*simulated*, not to depend on Python hash ordering.  A
:class:`~repro.simnet.schedule.SchedulePolicy` may re-key those same-instant
ties (seeded-random interleavings for the conformance fuzzer); events at
different timestamps are never reordered.

Performance notes (this kernel is the host-side bottleneck of every
experiment):

* Calendar entries need only a ``_run()`` method.  :meth:`Simulator.call_in`
  places a slotted :class:`CallbackEntry` that invokes ``fn(arg)`` directly,
  bypassing the full Event protocol — used by the hot delivery paths (link
  arrivals, transport ACKs) which never have external waiters.
* :meth:`Simulator.timeout` recycles :class:`~repro.simnet.events.Timeout`
  objects through a freelist.  A timeout is returned to the pool only when
  the kernel can prove (via the CPython reference count) that nothing else
  holds it, so the reuse is invisible to user code that keeps a reference.
* The :attr:`Simulator.tracing` flag lets hot call sites skip building
  trace strings entirely when no trace hook is installed.
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .events import Event
    from .process import Process

__all__ = ["Simulator", "SimulationError", "StopSimulation", "CallbackEntry"]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


class StopSimulation(Exception):
    """Internal signal used by :meth:`Simulator.run` to stop at a target event."""


class CallbackEntry:
    """A minimal calendar entry: runs ``fn(arg)`` when its time comes.

    Unlike an :class:`~repro.simnet.events.Event` it has no value, no
    callbacks list and cannot be waited on — it exists so that one-shot
    deliveries (a message arriving at a link handler, an ACK reaching its
    device) cost one small allocation instead of an Event, a bound-method
    list and a closure.
    """

    __slots__ = ("fn", "arg")

    def __init__(self, fn: Callable[[Any], None], arg: Any) -> None:
        self.fn = fn
        self.arg = arg

    def _run(self) -> None:
        self.fn(self.arg)


#: maximum number of recycled Timeout objects kept per simulator
_TIMEOUT_POOL_MAX = 512


class Simulator:
    """Event calendar plus the simulated clock.

    Parameters
    ----------
    trace:
        Optional callable ``trace(time_ns, category, message)`` invoked for
        every traced kernel action.  ``None`` disables tracing (the default;
        tracing is for debugging, not for measurement).  Call sites on hot
        paths should consult :attr:`tracing` before formatting messages.
    schedule_policy:
        Optional :class:`~repro.simnet.schedule.SchedulePolicy` re-keying
        same-timestamp ties.  ``None`` (the default) keeps the plain FIFO
        calendar with its three-element heap entries; a policy switches to
        four-element entries ``(time, tiebreak, seq, entry)`` whose final
        ``seq`` keeps the order total.  ``FifoPolicy`` reproduces the
        default order bit for bit.
    """

    def __init__(
        self,
        trace: Optional[Callable[[int, str, str], None]] = None,
        *,
        schedule_policy=None,
    ) -> None:
        self._now: int = 0
        self._queue: list[tuple] = []
        self._seq: int = 0
        self._policy = schedule_policy
        self._tiebreak = schedule_policy.tiebreak if schedule_policy is not None else None
        self._trace = trace
        #: True when a trace hook is installed; guards f-string construction
        #: at call sites (the guarded-trace discipline).
        self.tracing: bool = trace is not None
        #: number of events executed so far (useful for runaway detection)
        self.events_executed: int = 0
        # Timeout freelist (see module docstring).  The class is resolved
        # here, at construction time, to avoid a circular import at module
        # load (events.py imports this module).
        from .events import Timeout

        self._timeout_cls = Timeout
        self._timeout_pool: list = []

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, event: "Event", delay: int = 0) -> None:
        """Place *event* on the calendar ``delay`` nanoseconds from now.

        ``delay`` must be a non-negative integer (``bool`` is rejected —
        ``schedule(ev, True)`` is always a bug, not a 1 ns delay).  The
        event fires after all events already scheduled for the same instant.
        """
        if type(delay) is not int:
            # Type errors are reported before range errors so that a float
            # delay gets the "must be an int" message, not the negative one.
            if isinstance(delay, bool) or not isinstance(delay, int):
                raise SimulationError(
                    f"delay must be an int number of ns, got {type(delay).__name__}"
                )
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        when = self._now + delay
        if self._tiebreak is None:
            heapq.heappush(self._queue, (when, self._seq, event))
        else:
            heapq.heappush(
                self._queue, (when, self._tiebreak(when, self._seq), self._seq, event)
            )
        event._scheduled = True

    def call_in(self, delay: int, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Schedule ``fn(arg)`` to run ``delay`` ns from now.

        The fast path for fire-and-forget deliveries: no Event object is
        created and the callable runs straight off the calendar.  Ordering
        relative to events scheduled for the same instant follows the usual
        sequence-number tie-break.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        when = self._now + delay
        if self._tiebreak is None:
            heapq.heappush(self._queue, (when, self._seq, CallbackEntry(fn, arg)))
        else:
            heapq.heappush(
                self._queue,
                (when, self._tiebreak(when, self._seq), self._seq, CallbackEntry(fn, arg)),
            )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute the next event on the calendar, advancing the clock."""
        item = heapq.heappop(self._queue)
        when, event = item[0], item[-1]
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event calendar corrupted: time went backwards")
        self._now = when
        self.events_executed += 1
        event._run()
        # Recycle plain Timeouts nothing else references: refcount 2 means
        # only the local variable and getrefcount's argument hold it, so
        # reuse can never be observed by user code.  (CPython-specific; on
        # other runtimes the count is conservative and pooling just idles.)
        if type(event) is self._timeout_cls and getrefcount(event) == 2:
            pool = self._timeout_pool
            if len(pool) < _TIMEOUT_POOL_MAX:
                pool.append(event)

    def peek(self) -> Optional[int]:
        """Return the firing time of the next event, or ``None`` if idle."""
        return self._queue[0][0] if self._queue else None

    def run(
        self,
        until: "Event | int | None" = None,
        *,
        max_events: Optional[int] = None,
    ) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the calendar is empty.
            an :class:`~repro.simnet.events.Event` (including a process)
                run until that event has triggered and return its value
                (raising if it failed).
            an ``int``
                run until simulated time reaches that many nanoseconds.
        max_events:
            Optional hard cap on the number of events executed, as a guard
            against accidental infinite simulations.
        """
        from .events import Event

        stop_time: Optional[int] = None
        target: Optional[Event] = None
        if isinstance(until, Event):
            target = until
            if target.triggered:
                return target.result()
            target.add_callback(self._stop_on_target)
        elif isinstance(until, int):
            stop_time = until
        elif until is not None:
            raise SimulationError(f"invalid 'until' argument: {until!r}")

        executed = 0
        try:
            while self._queue:
                if stop_time is not None and self._queue[0][0] > stop_time:
                    self._now = stop_time
                    break
                self.step()
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
        except StopSimulation:
            pass

        if target is not None:
            if not target.triggered:
                raise SimulationError("simulation ended before 'until' event triggered (deadlock?)")
            return target.result()
        return None

    def _stop_on_target(self, _event: "Event") -> None:
        raise StopSimulation()

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def timeout(self, delay: int, value: Any = None) -> "Event":
        """Return an event that fires ``delay`` ns from now with ``value``.

        Timeouts are the dominant allocation of process-driven loops, so
        this goes through the freelist when possible (see module docstring).
        """
        pool = self._timeout_pool
        if pool:
            t = pool.pop()
            if delay < 0:
                pool.append(t)
                raise SimulationError(f"negative timeout: {delay}")
            t.delay = delay
            t.callbacks = []
            t._value = value
            t._ok = True
            self.schedule(t, delay)
            return t
        return self._timeout_cls(self, delay, value)

    def event(self) -> "Event":
        """Return a fresh untriggered event."""
        from .events import Event

        return Event(self)

    def process(self, generator: Iterator[Any], name: str = "") -> "Process":
        """Spawn *generator* as a simulation process starting now."""
        from .process import Process

        return Process(self, generator, name=name)

    def trace(self, category: str, message: str) -> None:
        """Emit a trace record if tracing is enabled."""
        if self._trace is not None:
            self._trace(self._now, category, message)
