"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
:class:`~repro.simnet.events.Event` objects (timeouts, signals, other
processes, ...) and is resumed with the event's value when it fires; if the
event failed, the exception is thrown into the generator.  When the
generator returns, the process — which is itself an event — succeeds with
the generator's return value, so processes can wait on each other.

This is the cooperative-multitasking layer every actor in the simulated
system (HCA engines, EXS progress threads, application code) is built on.

Kernel contract: a process *is its own resume callback* — waiting
registers the process object itself (``__call__`` drives the generator),
and ``send``/``throw`` are the generator's bound methods cached as
instance attributes.  The kernel's dispatch loop exploits both: when a
:class:`~repro.simnet.events.Timeout` fires for a waiting process it
calls ``process.send(value)`` directly and wires the next yielded timeout
in place, skipping the whole callback protocol on the dominant
``yield sim.timeout(...)`` path.
"""

from __future__ import annotations

from typing import Any, Iterator

from .events import Event, _PENDING
from .kernel import SimulationError, Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


def _finish_process(proc: "Process", exc: BaseException) -> None:
    """Terminate *proc* according to how its generator ended (cold path).

    ``StopIteration`` is a normal return, an escaped :class:`Interrupt` is
    treated as normal termination with no value (the idiomatic way to stop
    a server loop), anything else fails the process event.  A process that
    already terminated (e.g. resumed once more by a stale timeout after an
    interrupt) absorbs the outcome silently.
    """
    if proc._value is not _PENDING:
        return
    if isinstance(exc, StopIteration):
        proc.succeed(exc.value)
    elif isinstance(exc, Interrupt):
        proc.succeed(None)
    else:
        proc.fail(exc)


class Process(Event):
    """A running simulation process (also an event: its own completion)."""

    __slots__ = ("generator", "name", "send", "throw")

    def __init__(self, sim: Simulator, generator: Iterator[Any], name: str = "") -> None:
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        self.generator = generator
        self.send = generator.send
        self.throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: start the generator at the current instant via the calendar
        # so that process start order is deterministic.
        start = Event(sim)
        start.add_callback(self)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The process stops waiting on its current target (the target event is
        left intact and may still fire later for other waiters).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt terminated process {self.name!r}")
        wake = Event(self.sim)
        wake.add_callback(lambda _e: self._throw(Interrupt(cause)))
        wake.succeed()

    # ------------------------------------------------------------------
    def __call__(self, event: Event) -> None:
        """Drive the generator one step with *event*'s outcome."""
        try:
            if event._ok:
                nxt = self.send(event._value)
            else:
                nxt = self.throw(event._value)
        except BaseException as exc:
            _finish_process(self, exc)
            return
        self._wait_on(nxt)

    def _throw(self, exc: BaseException) -> None:
        if self._value is not _PENDING:
            return  # terminated in the meantime; interrupt is moot
        try:
            nxt = self.throw(exc)
        except BaseException as err:
            _finish_process(self, err)
            return
        self._wait_on(nxt)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._throw(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes must yield Events"
                )
            )
            return
        if target.sim is not self.sim:
            self._throw(SimulationError("yielded event belongs to a different simulator"))
            return
        target.add_callback(self)
