"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
:class:`~repro.simnet.events.Event` objects (timeouts, signals, other
processes, ...) and is resumed with the event's value when it fires; if the
event failed, the exception is thrown into the generator.  When the
generator returns, the process — which is itself an event — succeeds with
the generator's return value, so processes can wait on each other.

This is the cooperative-multitasking layer every actor in the simulated
system (HCA engines, EXS progress threads, application code) is built on.
"""

from __future__ import annotations

from typing import Any, Iterator

from .events import Event
from .kernel import SimulationError, Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process (also an event: its own completion)."""

    __slots__ = ("generator", "name", "_target")

    def __init__(self, sim: Simulator, generator: Iterator[Any], name: str = "") -> None:
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # Bootstrap: start the generator at the current instant via the calendar
        # so that process start order is deterministic.
        start = Event(sim)
        start.add_callback(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The process stops waiting on its current target (the target event is
        left intact and may still fire later for other waiters).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt terminated process {self.name!r}")
        wake = Event(self.sim)
        wake.add_callback(lambda _e: self._throw(Interrupt(cause)))
        wake.succeed()

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Drive the generator one step with *event*'s outcome."""
        self._target = None
        try:
            if event.ok:
                nxt = self.generator.send(event._value)
            else:
                nxt = self.generator.throw(event._value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except Interrupt:
            # An interrupt escaped the generator: treat as normal termination
            # with no value (the idiomatic way to stop a server loop).
            if not self.triggered:
                self.succeed(None)
            return
        except BaseException as exc:
            if not self.triggered:
                self.fail(exc)
            return
        self._wait_on(nxt)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return  # terminated in the meantime; interrupt is moot
        try:
            nxt = self.generator.throw(exc)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except Interrupt:
            if not self.triggered:
                self.succeed(None)
            return
        except BaseException as err:
            if not self.triggered:
                self.fail(err)
            return
        self._wait_on(nxt)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._throw(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes must yield Events"
                )
            )
            return
        if target.sim is not self.sim:
            self._throw(SimulationError("yielded event belongs to a different simulator"))
            return
        self._target = target
        target.add_callback(self._resume)
