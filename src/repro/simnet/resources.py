"""Shared-resource primitives: FIFO resources and stores.

:class:`Resource` models a server with fixed capacity (e.g. a CPU core or a
DMA engine): processes request a slot, hold it while working, and release
it.  Requests are granted strictly FIFO so contention is deterministic.

:class:`Store` is an unbounded FIFO of items with blocking ``get``; it is a
convenient mailbox between producer/consumer processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List

from .events import Event
from .kernel import SimulationError, Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with FIFO queuing.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(work_ns)
        finally:
            resource.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiting.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Claim a free slot synchronously, without an event round-trip.

        A granted ``request()`` still costs one same-instant kernel event
        to resume the waiter; on the uncontended path that event is pure
        overhead.  Callers holding a slot from ``try_acquire`` must pair
        it with :meth:`release_slot`.
        """
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def release_slot(self) -> None:
        """Release one held slot (counterpart of :meth:`try_acquire`)."""
        if self._in_use <= 0:  # pragma: no cover - defensive
            raise SimulationError("release() with no slots in use")
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.succeed()  # slot transfers; _in_use unchanged
        else:
            self._in_use -= 1

    def release(self, request: Event) -> None:
        """Release a previously granted slot."""
        if not request.triggered:
            # The request was still queued: cancel it.
            try:
                self._waiting.remove(request)
            except ValueError:  # pragma: no cover - defensive
                raise SimulationError("release() of unknown pending request")
            return
        self.release_slot()

    def acquire(self, hold_ns: int) -> Generator[Event, Any, None]:
        """Convenience sub-process: acquire, hold for *hold_ns*, release."""
        req = self.request()
        yield req
        try:
            yield self.sim.timeout(hold_ns)
        finally:
            self.release(req)


class Store:
    """Unbounded FIFO store of items with blocking ``get``."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add an item, waking the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Any:
        """Non-blocking get; returns None if empty."""
        return self._items.popleft() if self._items else None

    def snapshot(self) -> List[Any]:
        """Copy of queued items (for inspection in tests)."""
        return list(self._items)
