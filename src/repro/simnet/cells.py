"""Temporally decoupled multi-cell event kernel.

The monolithic kernel (:mod:`repro.simnet.kernel`) keeps one global
calendar: every placement and every dispatch funnels through a single
timing wheel, so at fabric scale (thousands of connections across dozens
of hosts) the wheel is never empty, the register/chain fast paths never
engage, and every event pays global-structure costs.  This module
partitions the simulation into **cells** — one per topology host, one
per switch, plus a **control** cell for everything else — and gives each
cell its own hierarchical timing wheel.  Cells are executed in
*conservative safe windows* (classic Chandy–Misra–Bryant lookahead): a
cell may burst through its local calendar as long as no other cell could
still deliver an event into that range, where the bound comes from the
minimum cross-cell link latency of the topology.

Ordering contract
-----------------
Cells mode replaces the monolithic FIFO tie-break with a deterministic
**cell key**: every calendar entry carries ``_seq = (target_cell,
source_cell, cnt)`` where ``cnt`` comes from a per-``(target, source)``
counter matrix.  Within one cell, all entries at one instant execute in
key order, with same-instant placements joining live (a per-instant
heap).  Across cells, instants are granted in ``(time, cell index)``
order; the control cell has the largest index, so at any shared instant
host and switch cells run before control.  A cell whose instant ``t``
has already run can be *re-opened* by a same-instant cross-post (e.g. a
control action at ``t``); the re-opened batch forms a fresh key-ordered
instant at ``t``.

Because ``cnt`` is per ``(target, source)`` pair and the entries a cell
sends into another cell are produced by the source cell's own (ordered)
execution, the key sequence observed by every cell is independent of the
wall-clock interleaving of bursts.  That gives the central property,
checked by the determinism suite (tests/simnet/test_cells_kernel.py):

    ``CellSimulator(decouple=True)`` (windowed bursts) is **bit-identical**
    to ``CellSimulator(decouple=False)`` (lockstep: strict global
    ``(time, index)`` order — the monolithic execution of the same keyed
    calendar).

Note the cells ordering contract is *not* bit-identical to the legacy
monolithic wheel: same-instant ties across hosts resolve by cell key,
not by global placement sequence.  Events at different timestamps are
never reordered, and per-cell event streams are reproducible run to run.

Safety rules (enforced, not assumed)
------------------------------------
* A cross-cell post must arrive at or after the target cell's local
  clock; an arrival in the target's past raises
  :class:`~repro.simnet._core.SimulationError` (the causality guard —
  it fires only if a lookahead table overstates the real minimum
  latency).
* A burst window is ``min_other_next + L_in(cell)`` (and never beyond
  the control cell's next action, whose lookahead is zero).  The window
  is lowered dynamically to the arrival time of any cross-cell post the
  bursting cell itself makes, which conservatively covers same-instant
  relays through the control cell (``defer_control``).
* Zero lookahead degenerates to lockstep execution and stays correct —
  the cell holding the global minimum instant is always entitled to it.

Fallbacks (decided by :class:`repro.fabric.Fabric`): schedule policies,
causal capture / the flight recorder, jittered delay emulators, and
switchless (direct two-host) topologies all keep the legacy monolithic
kernel.  ``REPRO_KERNEL=cells`` on a plain :class:`Simulator` falls back
to the wheel (cells need a topology to derive lookahead from).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Dict, List, Optional, Tuple

from ._core import (
    CBE_POOL_MAX,
    INF,
    TIMEOUT_POOL_MAX,
    CallbackEntry,
    SimulationError,
    StopSimulation,
    _PROCESSED,
    insert,
    next_batch_fifo,
    peek_structures,
    S0_SIZE,
    S1_SIZE,
)
from .kernel import Simulator

#: tri-state cache for the cells accelerator: ``False`` = not yet tried,
#: ``None`` = unavailable (no compiler / disabled / configure failed),
#: otherwise the configured _speedup module
_CELLS_ACCEL: Any = False


def _accel_cells():
    """The C accelerator with the cells entry points configured, or None.

    Piggybacks on :func:`repro.simnet._accel.load` (same compile cache,
    same ``REPRO_KERNEL_C`` opt-out) and additionally captures the cells
    types/slot offsets via ``configure_cells`` — once per process.
    """
    global _CELLS_ACCEL
    if _CELLS_ACCEL is False:
        mod = None
        try:
            from . import _accel
            from .events import Event

            m = _accel.load()
            if m is not None and hasattr(m, "configure_cells"):
                m.configure_cells({
                    "CellSimulator": CellSimulator,
                    "Cell": _Cell,
                    "CellMap": CellMap,
                    "Event": Event,
                    "SimulationError": SimulationError,
                    "schedule_py": CellSimulator._schedule_cells,
                    "call_in_py": CellSimulator._call_in_cells,
                    "timeout_py": CellSimulator._timeout_cells,
                    "call_in_cell_py": CellSimulator._call_in_cell_py,
                })
                mod = m
        except Exception:  # pragma: no cover - accelerator is best-effort
            mod = None
        _CELLS_ACCEL = mod
    return _CELLS_ACCEL

__all__ = ["CellMap", "CellSimulator"]

#: name of the implicit control cell (largest index; runs last at ties)
CONTROL = "control"


class CellMap:
    """Static cell layout: names, indices, and per-cell lookahead.

    Built from a :class:`~repro.simnet.fabric.Topology` plus the
    jitter-free propagation delay of every edge.  Cells are the topology
    hosts followed by its switches, in topology order, with the control
    cell appended last — so cell indices are deterministic and the
    control cell always sorts after every host/switch at a shared
    instant.

    ``lookahead_in[c]`` is the minimum base propagation delay over the
    edges incident to cell ``c``: nothing outside ``c`` can affect ``c``
    sooner than that after its own next action.  The control cell's
    inbound lookahead is zero (any cell may defer work to it at the
    current instant).
    """

    __slots__ = ("names", "index", "control", "lookahead_in")

    def __init__(self, names: Tuple[str, ...], lookahead_in: Tuple[int, ...]) -> None:
        if len(names) != len(lookahead_in):
            raise SimulationError("cell names and lookahead table disagree")
        if len(names) < 2 or names[-1] != CONTROL:
            raise SimulationError("a CellMap needs >= 1 cell plus the control cell last")
        self.names = names
        self.index: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self.control = len(names) - 1
        self.lookahead_in = lookahead_in

    @classmethod
    def from_topology(cls, topology, edge_prop_ns) -> "CellMap":
        """Derive the cell layout from *topology*.

        *edge_prop_ns* maps edge index → jitter-free one-way propagation
        (base link propagation plus any emulator base delay).  Lookahead
        never includes serialization or jitter: both only push arrivals
        later, so the minimum propagation is a sound lower bound.
        """
        nodes = tuple(topology.hosts) + tuple(topology.switches)
        look: Dict[str, int] = {}
        for i, (a, b) in enumerate(topology.edges):
            p = int(edge_prop_ns[i]) if not isinstance(edge_prop_ns, int) else edge_prop_ns
            for n in (a, b):
                cur = look.get(n)
                if cur is None or p < cur:
                    look[n] = p
        table = tuple(look.get(n, 0) for n in nodes) + (0,)
        return cls(nodes + (CONTROL,), table)


class _Cell:
    """One cell's calendar: a register plus a private timing wheel.

    Deliberately attribute-compatible with the wheel fields of
    :class:`~repro.simnet.kernel.Simulator`, so the structure functions
    in :mod:`repro.simnet._core` (``insert``/``next_batch_fifo``/
    ``peek_structures`` and the cascade they drive) operate on a cell
    exactly as they operate on a monolithic simulator.  Entries carry
    tuple keys in ``_seq``; all the _core code does with ``_seq`` is
    compare it, and tuples compare.
    """

    __slots__ = (
        "_i", "_name", "_now",
        # register + wheel (the _core attribute contract)
        "_single", "_single_when", "_slots0", "_slots1", "_t0", "_t1",
        "_hq", "_dirty", "_base", "_nstruct", "_reg_free",
        "_l0_inserts", "_l1_inserts", "_hq_inserts", "_cascades",
        # per-cell telemetry
        "_instants", "_events", "_inbox_merges", "_last_window",
    )

    def __init__(self, index: int, name: str) -> None:
        self._i = index
        self._name = name
        self._now = 0
        self._single = None
        self._single_when = 0
        self._slots0: list = [None] * S0_SIZE
        self._slots1: list = [None] * S1_SIZE
        self._t0: list = []
        self._t1: list = []
        self._hq: list = []
        self._dirty = bytearray(S0_SIZE)
        self._base = 0
        self._nstruct = 0
        self._reg_free = True  # written by insert(); cells never read it
        self._l0_inserts = 0
        self._l1_inserts = 0
        self._hq_inserts = 0
        self._cascades = 0
        self._instants = 0
        self._events = 0
        self._inbox_merges = 0
        self._last_window = 0

    def peek(self) -> Optional[int]:
        if self._single is not None:
            return self._single_when
        if self._nstruct:
            return peek_structures(self)
        return None


def _restore_cell(cell: _Cell, t: int, heap: list) -> None:
    """Re-insert an interrupted instant's remaining ``(key, entry)`` heap.

    Keys are preserved — unlike the monolithic FIFO restore, cells keys
    are observable (they order the merged calendar), so a restored entry
    must keep the exact key it was placed with.  Re-assembly sorts the
    batch by key, which reproduces precisely the order the uninterrupted
    heap would have popped.

    The interrupted instant may have parked a future self-post in the
    cell's register (the structures were empty after the batch was
    taken); spill it first so the register-occupied ⟹ structures-empty
    invariant survives the restore.
    """
    s = cell._single
    if s is not None:
        cell._single = None
        insert(cell, cell._single_when, s)
    for _key, e in heap:
        insert(cell, t, e)


class CellSimulator(Simulator):
    """Per-cell calendars behind the single-simulator facade.

    Every component keeps calling ``sim.schedule`` / ``sim.call_in`` /
    ``sim.timeout`` / ``sim.now`` unchanged; the facade routes each
    placement to the **currently executing cell** and stamps it with the
    cells ordering key.  Cross-cell deliveries go through
    :meth:`call_in_cell` (the link/ACK delivery sites) and
    :meth:`defer_control`.

    Parameters
    ----------
    cellmap:
        The static :class:`CellMap` (from the fabric's topology).
    decouple:
        ``True`` (default) runs conservative windowed bursts; ``False``
        runs the same keyed calendar in strict global ``(time, index)``
        order — the monolithic reference the determinism suite compares
        against.
    """

    #: lets call sites (FabricConnection, apps) pick cells-safe waiting
    is_cells = True

    __slots__ = (
        "_cellmap", "_cells", "_nexts", "_ctrl", "_cur", "_decouple",
        "_cnt", "_rt_cell", "_rt_time", "_rheap", "_W", "_maxe",
        "_grants",
        # per-instance rebinds (C fast paths when the accelerator loads;
        # the call_in_cell slot shadows the legacy Simulator shim method)
        "call_in_cell", "_cdrain",
    )

    def __init__(self, cellmap: CellMap, *, trace=None, decouple: bool = True) -> None:
        super().__init__(trace=trace, calendar="wheel")
        self._backend = "cells"
        self._cellmap = cellmap
        n = len(cellmap.names)
        self._cells = [_Cell(i, name) for i, name in enumerate(cellmap.names)]
        self._nexts: List[float] = [INF] * n
        self._ctrl = cellmap.control
        self._cur = cellmap.control
        self._decouple = decouple
        # per-(target, source) placement counters: the third key component
        self._cnt = [[0] * n for _ in range(n)]
        # live-instant state: placements for (_rt_cell, _rt_time) join the
        # running heap instead of the wheel
        self._rt_cell = -1
        self._rt_time = -1
        self._rheap: list = []
        self._W = INF
        self._maxe = INF
        self._grants = 0
        # rebind the per-instance backend methods to the cells paths
        self.schedule = self._schedule_cells
        self.call_in = self._call_in_cells
        self.timeout = self._timeout_cells
        self.step = self._step_cells
        self.peek = self._peek_cells
        self.call_in_cell = self._call_in_cell_py
        self._cdrain = None
        # C fast paths: placement + drain move to the accelerator while
        # every structure stays in these Python slots, so pure and C code
        # interleave freely (step()/peek() stay pure).  Subclasses keep
        # the pure paths — overridden hooks must stay live.
        if type(self) is CellSimulator:
            mod = _accel_cells()
            if mod is not None:
                try:
                    self.schedule = mod.bind_cells_schedule(self)
                    self.call_in = mod.bind_cells_call_in(self)
                    self.timeout = mod.bind_cells_timeout(self)
                    self.call_in_cell = mod.bind_cells_call_in_cell(self)
                    self._cdrain = mod.bind_cells_drain(self)
                except Exception:  # pragma: no cover - best-effort
                    self.schedule = self._schedule_cells
                    self.call_in = self._call_in_cells
                    self.timeout = self._timeout_cells
                    self.call_in_cell = self._call_in_cell_py
                    self._cdrain = None

    # ------------------------------------------------------------------
    # cell addressing
    # ------------------------------------------------------------------
    def cell_index(self, name: str) -> int:
        """Index of the cell called *name* (raises on unknown names)."""
        try:
            return self._cellmap.index[name]
        except KeyError:
            raise SimulationError(f"unknown cell {name!r}") from None

    def cell(self, name: str):
        """Context manager: placements inside run in cell *name*.

        Used during fabric assembly so each host's initial processes
        (device send engine, shard pollers) start on that host's
        calendar.  Mid-run the current cell tracks execution and this is
        not needed.
        """
        return _CellContext(self, self.cell_index(name))

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _place(self, target: int, entry, when: int) -> None:
        src = self._cur
        row = self._cnt[target]
        c = row[src]
        row[src] = c + 1
        entry._seq = (target, src, c)
        if target == self._rt_cell and when == self._rt_time:
            heappush(self._rheap, (entry._seq, entry))
            return
        cell = self._cells[target]
        if when < cell._now:
            raise SimulationError(
                f"causality violation: cell {self._cellmap.names[src]!r} posted "
                f"into {cell._name!r} at {when} ns, but that cell's clock is "
                f"already {cell._now} ns (lookahead table overstates the "
                f"minimum cross-cell latency?)"
            )
        s = cell._single
        if s is None:
            if cell._nstruct == 0:
                cell._single = entry
                cell._single_when = when
                if when < self._nexts[target]:
                    self._nexts[target] = when
                return
        else:
            cell._single = None
            cell._base = cell._now
            insert(cell, cell._single_when, s)
        insert(cell, when, entry)
        if when < self._nexts[target]:
            self._nexts[target] = when

    def _schedule_cells(self, event, delay: int = 0) -> None:
        if type(delay) is not int:
            if isinstance(delay, bool) or not isinstance(delay, int):
                raise SimulationError(
                    f"delay must be an int number of ns, got {type(delay).__name__}"
                )
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._place(self._cur, event, self._now + delay)

    def _call_in_cells(self, delay: int, fn: Callable[[Any], None], arg: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        pool = self._cbe_pool
        if pool:
            e = pool.pop()
            e.fn = fn
            e.arg = arg
            self._cbe_reuses += 1
        else:
            e = CallbackEntry(fn, arg)
            self._cbe_allocs += 1
        self._place(self._cur, e, self._now + delay)

    def _timeout_cells(self, delay: int, value: Any = None):
        t = self._stash
        if t is not None:
            self._stash = None
        else:
            pool = self._timeout_pool
            if not pool:
                if delay < 0:
                    raise SimulationError(f"negative timeout: {delay}")
                self._timeout_allocs += 1
                return self._timeout_cls(self, delay, value)
            t = pool.pop()
        if delay < 0:
            self._timeout_pool.append(t)
            raise SimulationError(f"negative timeout: {delay}")
        self._timeout_reuses += 1
        t.delay = delay
        t._value = value
        t._cb1 = None
        self._place(self._cur, t, self._now + delay)
        return t

    # ------------------------------------------------------------------
    # cross-cell routing (the only entry points that cross a boundary)
    # ------------------------------------------------------------------
    def _call_in_cell_py(self, cell: int, delay: int, fn: Callable[[Any], None],
                         arg: Any = None) -> None:
        """Schedule ``fn(arg)`` ``delay`` ns from now **in cell** *cell*.

        The cross-cell delivery primitive, used by the link transmit
        site and the device ACK path.  Arrivals in the target cell's
        past raise (the causality guard).  When the posting cell is
        mid-burst, its window is lowered to the arrival time: the target
        cannot react back into this cell any sooner, even through a
        zero-delay control relay.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        pool = self._cbe_pool
        if pool:
            e = pool.pop()
            e.fn = fn
            e.arg = arg
            self._cbe_reuses += 1
        else:
            e = CallbackEntry(fn, arg)
            self._cbe_allocs += 1
        when = self._now + delay
        if cell != self._cur:
            self._cells[cell]._inbox_merges += 1
            if when < self._W:
                self._W = when
        self._place(cell, e, when)

    def defer_control(self, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``fn(arg)`` in the control cell at the current instant.

        Control has the largest cell index, so the deferred action runs
        after every host/switch cell has finished this instant — a
        deterministic rendezvous for bookkeeping that two cells would
        otherwise race on (e.g. the two sides of a connection handshake
        completing at the same nanosecond).  On legacy kernels
        :meth:`Simulator.defer_control` is a direct call.
        """
        self.call_in_cell(self._ctrl, 0, fn, arg)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _take_instant(self, cell: _Cell):
        """Pop the cell's minimum instant as ``(t, [(key, entry), ...])``."""
        s = cell._single
        if s is not None:
            cell._single = None
            return cell._single_when, [(s._seq, s)]
        got = next_batch_fifo(cell)
        if got is None:
            return None
        t, ls = got
        cell._base = t
        h = [(e._seq, e) for e in ls]
        if len(h) > 1:
            heapify(h)
        return t, h

    def _run_instant(self, cell: _Cell, t: int, h: list, budget) -> int:
        """Execute every entry of *cell* at instant *t* in key order.

        Same-instant placements by these entries join ``h`` live (see
        :meth:`_place`), so the instant drains in pure key order exactly
        like the monolithic reference.  On an escaping exception the
        remaining heap is restored **with its keys** and the exception
        propagates (StopSimulation included), leaving the calendar
        resumable.
        """
        TO = self._timeout_cls
        PR = self._process_cls
        CB = CallbackEntry
        finish = self._proc_finish
        pool = self._timeout_pool
        cbpool = self._cbe_pool
        PROC = _PROCESSED
        grc = getrefcount
        self._now = t
        cell._now = t
        cell._instants += 1
        ci = cell._i
        self._cur = ci
        self._rt_cell = ci
        self._rt_time = t
        self._rheap = h
        n = 0
        try:
            while h:
                e = heappop(h)[1]
                n += 1
                cls = e.__class__
                if cls is TO:
                    cb = e._cb1
                    e._cb1 = PROC
                    if cb.__class__ is PR:
                        try:
                            nxt = cb.send(e._value)
                        except BaseException as exc:
                            finish(cb, exc)
                        else:
                            if nxt.__class__ is TO and nxt._cb1 is None and nxt.sim is self:
                                nxt._cb1 = cb
                            else:
                                cb._wait_on(nxt)
                    elif cb is not None:
                        cb(e)
                    if e._cbs is not None:
                        cbs = e._cbs
                        e._cbs = None
                        for fn in cbs:
                            fn(e)
                    if grc(e) == 2:
                        if self._stash is None:
                            self._stash = e
                        elif len(pool) < TIMEOUT_POOL_MAX:
                            pool.append(e)
                elif cls is CB:
                    fn = e.fn
                    arg = e.arg
                    fn(arg)
                    if len(cbpool) < CBE_POOL_MAX:
                        e.fn = None
                        e.arg = None
                        cbpool.append(e)
                else:
                    e._run()
                if n >= budget:
                    raise SimulationError(f"exceeded max_events={self._maxe}")
        except BaseException:
            _restore_cell(cell, t, h)
            raise
        finally:
            self._rt_cell = -1
            self._rheap = []
            cell._events += n
            self._batches += 1
            self._batched_events += n
            if n > self._max_batch:
                self._max_batch = n
        return n

    def _refresh_next(self, i: int) -> None:
        t = self._cells[i].peek()
        self._nexts[i] = INF if t is None else t

    def _drain_cells(self, stop, maxe) -> None:
        cells = self._cells
        nexts = self._nexts
        look = self._cellmap.lookahead_in
        ctrl = self._ctrl
        decouple = self._decouple
        self._maxe = maxe
        # Recompute the next-instant table from scratch: an exception that
        # escaped a previous drain leaves it stale (the granted cell was
        # masked to INF), and placements made outside run() only lower it.
        for i, c in enumerate(cells):
            t = c.peek()
            nexts[i] = INF if t is None else t
        n = 0
        n0 = self.events_executed
        try:
            while True:
                bt = min(nexts)
                if bt == INF:
                    return
                if bt > stop:
                    self._now = stop
                    return
                bi = nexts.index(bt)
                cell = cells[bi]
                # conservative window: nothing can reach `cell` before the
                # earliest other cell's next action plus this cell's inbound
                # lookahead — and never beyond control's next action (whose
                # lookahead is zero).  min(nexts) after masking this cell
                # covers both: if control is the minimum the +lookahead sum
                # is capped by the explicit control bound below.
                nexts[bi] = INF
                m2 = min(nexts)
                W = m2 + look[bi]
                if bi != ctrl and nexts[ctrl] < W:
                    W = nexts[ctrl]
                if stop < W:
                    W = stop + 1 if stop != INF else INF
                self._W = W
                cell._last_window = -1 if W == INF else int(W - bt)
                self._grants += 1
                first = True
                while True:
                    # peek before taking: an instant beyond the window (or
                    # the stop time) is left in place, so the window
                    # boundary costs nothing instead of a take + restore
                    # cycle per truncated burst
                    t = cell.peek()
                    if t is None:
                        break
                    if (not first and (t >= self._W or not decouple)) or t > stop:
                        break
                    t, h = self._take_instant(cell)
                    first = False
                    self.events_executed = n0 + n
                    n += self._run_instant(cell, t, h, maxe - n)
                self._refresh_next(bi)
        finally:
            self.events_executed = n0 + n
            self._cur = self._ctrl

    def run(self, until=None, *, max_events: Optional[int] = None):
        """Run the simulation (same contract as :meth:`Simulator.run`)."""
        stop_time: Optional[int] = None
        target = None
        if isinstance(until, self._event_cls):
            target = until
            if target.triggered:
                return target.result()
            target.add_callback(self._stop_on_target)
        elif isinstance(until, int):
            stop_time = until
        elif until is not None:
            raise SimulationError(f"invalid 'until' argument: {until!r}")
        stop = INF if stop_time is None else stop_time
        maxe = INF if max_events is None else max_events
        try:
            cd = self._cdrain
            if cd is not None:
                cd(stop, maxe)
            else:
                self._drain_cells(stop, maxe)
        except StopSimulation:
            pass
        if target is not None:
            if not target.triggered:
                raise SimulationError(
                    "simulation ended before 'until' event triggered (deadlock?)"
                )
            return target.result()
        return None

    def _step_cells(self) -> None:
        """Execute the next global instant (lockstep semantics).

        One ``step()`` runs one *instant of one cell* — the global
        ``(time, index)`` minimum — which may dispatch several same-key
        entries; interleaving ``step()`` with ``run()`` stays safe.
        """
        nexts = self._nexts
        for i, c in enumerate(self._cells):
            t = c.peek()
            nexts[i] = INF if t is None else t
        bt = min(nexts)
        if bt == INF:
            raise IndexError("step on an empty calendar")
        bi = nexts.index(bt)
        cell = self._cells[bi]
        self._W = bt  # no burst: strictly this instant
        got = self._take_instant(cell)
        t, h = got
        n0 = self.events_executed
        try:
            n = self._run_instant(cell, t, h, INF)
        finally:
            self._refresh_next(bi)
            self._cur = self._ctrl
        self.events_executed = n0 + n

    def _peek_cells(self) -> Optional[int]:
        if self._rt_cell >= 0 and self._rheap:
            return self._now
        # Read the cells, not the incremental table — the table may be
        # stale outside a drain (e.g. after an interrupted run).
        best: Optional[int] = None
        for c in self._cells:
            t = c.peek()
            if t is not None and (best is None or t < best):
                best = t
        return best

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def calendar_stats(self) -> dict:
        """Monolithic-shaped stats plus a per-cell breakdown.

        The legacy keys aggregate over all cells; ``cells`` maps each
        cell name to its own counters, which the observability layer
        exposes as ``kernel.cell.<name>.*`` pull gauges:

        ``horizon_ns``
            the cell's local clock (how far its timeline has run),
        ``next_ns``
            its next pending instant (``None`` when idle),
        ``queued``
            entries pending on its calendar,
        ``safe_window_ns``
            width of the most recent conservative grant (``-1`` for an
            unbounded grant),
        ``inbox_merges``
            cross-cell deliveries merged into this cell's calendar.
        """
        per: Dict[str, dict] = {}
        pending = 0
        for c in self._cells:
            q = c._nstruct + (1 if c._single is not None else 0)
            pending += q
            nxt = c.peek()
            per[c._name] = {
                "horizon_ns": c._now,
                "next_ns": nxt,
                "queued": q,
                "instants": c._instants,
                "events": c._events,
                "safe_window_ns": c._last_window,
                "inbox_merges": c._inbox_merges,
                "lookahead_ns": self._cellmap.lookahead_in[c._i],
            }
        return {
            "backend": "cells",
            "mode": "decoupled" if self._decouple else "lockstep",
            "now": self._now,
            "events_executed": self.events_executed,
            "pending": pending,
            "next_time": self.peek(),
            "batches": self._batches,
            "batched_events": self._batched_events,
            "max_batch": self._max_batch,
            "grants": self._grants,
            "cascades": sum(c._cascades for c in self._cells),
            "l0_inserts": sum(c._l0_inserts for c in self._cells),
            "l1_inserts": sum(c._l1_inserts for c in self._cells),
            "overflow_inserts": sum(c._hq_inserts for c in self._cells),
            "timeout_allocs": self._timeout_allocs,
            "timeout_reuses": self._timeout_reuses,
            "timeout_pool": len(self._timeout_pool) + (1 if self._stash is not None else 0),
            "cbe_allocs": self._cbe_allocs,
            "cbe_reuses": self._cbe_reuses,
            "cells": per,
        }


class _CellContext:
    """Reentrant current-cell override for construction-time placement."""

    __slots__ = ("_sim", "_idx", "_prev")

    def __init__(self, sim: CellSimulator, idx: int) -> None:
        self._sim = sim
        self._idx = idx
        self._prev = -1

    def __enter__(self):
        self._prev = self._sim._cur
        self._sim._cur = self._idx
        return self._sim

    def __exit__(self, *exc):
        self._sim._cur = self._prev
        return False
