"""Pure dispatch core for the hierarchical timing-wheel event calendar.

This module is the hot half of the simulation kernel: the wheel data
structure, the cascade rule, batch assembly, and the specialized drain
loops that :meth:`~repro.simnet.kernel.Simulator.run` selects *once* at
entry.  Nothing in here consults the trace hook or the schedule policy
per event — the policy decision, the stop-time decision and the
max-events decision each pick a loop up front, so the per-event path is
straight-line code.  Every function is module-level and monomorphic over
plain ints, lists and heaps, so a future mypyc/Cython build can compile
this file behind the pure-Python-identical fallback in ``kernel.py``.

Calendar layout (per :class:`~repro.simnet.kernel.Simulator`):

``_single`` / ``_single_when``
    A one-entry *register*.  When the calendar is otherwise empty the
    next entry is parked here and dispatched without touching any heap —
    the dominant regime of process chains (one pending timeout).
``_slots0`` + ``_t0``
    Level-0 wheel: 4096 slots of 1 ns.  An entry with ``when - base <
    4096`` lands in slot ``when & 4095``; ``_t0`` is a small heap of the
    *occupied slot times*, so draining costs one heap op per distinct
    instant instead of one per entry (the batching win).
``_slots1`` + ``_t1``
    Level-1 wheel: 4096 buckets of 4096 ns, indexed ``(when >> 12) &
    4095``; ``_t1`` heaps the occupied absolute bucket numbers.  A
    bucket *cascades* into level 0 when it may hold the next instant.
``_hq``
    Overflow heap for entries beyond the wheel horizon (~16.8 ms).
``_reg_free``
    Cached ``_nstruct == 0 and no live batch`` — the placement fast
    paths test this one flag instead of three fields.  Set ``False`` by
    every structure insert and at batch start; recomputed at batch end
    and after a batch restore.  The register itself is *not* part of
    the flag (placement checks ``_single`` separately).  A wrongly
    ``False`` flag only costs a detour through the slow path; the
    maintenance sites above are exactly the transitions that could make
    it wrongly ``True``.

Invariants (discussed in docs/SIMULATION.md):

* All pending L0 entries lie in ``[base, base + 4096)`` — so entries
  sharing a slot share a timestamp, and slot lists are per-instant
  batches.  ``base`` is re-anchored to each batch time (the global
  minimum), which preserves the window because dispatch is in time
  order.
* L1 entries lie in ``[base, base + 4095*4096)`` — the insert bound is
  one bucket *short* of 4096 so that, as ``base`` drifts forward,
  occupied buckets span at most 4096 consecutive numbers and the
  ``& 4095`` index stays collision-free.
* A cascaded bucket ``b`` may re-anchor ``base`` up to ``b << 12``:
  cascade only triggers when no L0/overflow entry is below the bucket's
  lower bound, so every pending entry is ≥ the new base.

FIFO mode assigns the tie-break sequence number lazily (at structure
insert); the register path skips it entirely, which is unobservable
because a lone entry has nothing to tie with.  Policy mode assigns
``seq`` on every schedule exactly like the flat-heap kernel did, because
policy tie-break keys hash the sequence number — those values are part
of the observable schedule and must match bit for bit.
"""

from __future__ import annotations

from heapq import heappop, heappush
from operator import attrgetter
from sys import getrefcount
from typing import Any, Callable

__all__ = [
    "CallbackEntry",
    "SimulationError",
    "StopSimulation",
]

INF = float("inf")

S0_BITS = 12
S0_SIZE = 1 << S0_BITS  # 4096 level-0 slots of 1 ns
S0_MASK = S0_SIZE - 1
S1_SIZE = 4096  # level-1 buckets of 4096 ns
S1_MASK = S1_SIZE - 1
#: one bucket short of S1_SIZE * S0_SIZE — see the L1 window invariant
WHEEL_HORIZON = (S1_SIZE - 1) << S0_BITS

#: maximum number of recycled Timeout objects kept per simulator
TIMEOUT_POOL_MAX = 512
#: maximum number of recycled CallbackEntry objects kept per simulator
CBE_POOL_MAX = 512

_seq_of = attrgetter("_seq")


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


class StopSimulation(Exception):
    """Internal signal used by :meth:`Simulator.run` to stop at a target event."""


def _processed_marker(_event):
    """Sentinel stored in ``Event._cb1`` once callbacks ran.

    It is a no-op *callable* so that the pathological double-schedule of
    one event dispatches as a silent no-op, exactly like the old flat
    kernel (whose second ``_run`` found ``callbacks is None``).
    """
    return None


_PROCESSED = _processed_marker


class CallbackEntry:
    """A minimal calendar entry: runs ``fn(arg)`` when its time comes.

    Unlike an :class:`~repro.simnet.events.Event` it has no value, no
    callbacks and cannot be waited on — it exists so that one-shot
    deliveries (a message arriving at a link handler, an ACK reaching
    its device) cost one small allocation instead of an Event, a
    bound-method list and a closure.  :meth:`Simulator.call_in` never
    hands the entry out, so the kernel recycles it unconditionally
    after dispatch.
    """

    # _cid is written only under causality capture (see simnet.causality)
    __slots__ = ("fn", "arg", "_seq", "_cid")

    def __init__(self, fn: Callable[[Any], None], arg: Any) -> None:
        self.fn = fn
        self.arg = arg

    def _run(self) -> None:
        self.fn(self.arg)


# ----------------------------------------------------------------------
# structure inserts
# ----------------------------------------------------------------------
def insert(sim, when, entry):
    """Place *entry* (``_seq`` already assigned) into the wheel or overflow.

    FIFO mode only; slot lists hold bare entries ordered by ``_seq``.
    """
    sim._reg_free = False
    d = when - sim._base
    if d < S0_SIZE:
        idx = when & S0_MASK
        s0 = sim._slots0
        cur = s0[idx]
        if cur is None:
            s0[idx] = [entry]
            heappush(sim._t0, when)
        else:
            cur.append(entry)
        sim._l0_inserts += 1
    elif d < WHEEL_HORIZON:
        b = when >> S0_BITS
        idx = b & S1_MASK
        s1 = sim._slots1
        cur = s1[idx]
        if cur is None:
            s1[idx] = [(when, entry)]
            heappush(sim._t1, b)
        else:
            cur.append((when, entry))
        sim._l1_inserts += 1
    else:
        heappush(sim._hq, (when, entry._seq, entry))
        sim._hq_inserts += 1
    sim._nstruct += 1


def insert_policy(sim, when, tb, seq, entry):
    """Policy-mode insert; slot lists hold ``(tiebreak, seq, entry)`` tuples."""
    sim._reg_free = False
    d = when - sim._base
    if d < S0_SIZE:
        idx = when & S0_MASK
        s0 = sim._slots0
        cur = s0[idx]
        if cur is None:
            s0[idx] = [(tb, seq, entry)]
            heappush(sim._t0, when)
        else:
            cur.append((tb, seq, entry))
        sim._l0_inserts += 1
    elif d < WHEEL_HORIZON:
        b = when >> S0_BITS
        idx = b & S1_MASK
        s1 = sim._slots1
        cur = s1[idx]
        if cur is None:
            s1[idx] = [(when, tb, seq, entry)]
            heappush(sim._t1, b)
        else:
            cur.append((when, tb, seq, entry))
        sim._l1_inserts += 1
    else:
        heappush(sim._hq, (when, tb, seq, entry))
        sim._hq_inserts += 1
    sim._nstruct += 1


# ----------------------------------------------------------------------
# cascade + batch assembly
# ----------------------------------------------------------------------
def _cascade_fifo(sim, b):
    """Distribute L1 bucket *b* into L0 slots, re-anchoring ``base``."""
    heappop(sim._t1)
    idx = b & S1_MASK
    entries = sim._slots1[idx]
    sim._slots1[idx] = None
    lb = b << S0_BITS
    if lb > sim._base:
        # Safe: cascade only runs when no pending entry is below lb.
        sim._base = lb
    slots0 = sim._slots0
    t0 = sim._t0
    dirty = sim._dirty
    for when, entry in entries:
        i = when & S0_MASK
        cur = slots0[i]
        if cur is None:
            slots0[i] = [entry]
            heappush(t0, when)
        else:
            cur.append(entry)
        # Cascaded entries carry older seqs than direct inserts that may
        # already sit in the slot; mark it for a seq sort at assembly.
        dirty[i] = 1
    sim._cascades += 1


def _cascade_policy(sim, b):
    heappop(sim._t1)
    idx = b & S1_MASK
    entries = sim._slots1[idx]
    sim._slots1[idx] = None
    lb = b << S0_BITS
    if lb > sim._base:
        sim._base = lb
    slots0 = sim._slots0
    t0 = sim._t0
    for when, tb, seq, entry in entries:
        i = when & S0_MASK
        cur = slots0[i]
        if cur is None:
            slots0[i] = [(tb, seq, entry)]
            heappush(t0, when)
        else:
            cur.append((tb, seq, entry))
    sim._cascades += 1


def next_batch_fifo(sim):
    """Remove and return ``(t, entries)`` for the minimum pending instant.

    Returns ``None`` when the structures are empty.  The returned list is
    in dispatch (seq) order and contains *every* entry at time ``t``.
    """
    t0h = sim._t0
    t1h = sim._t1
    hq = sim._hq
    while t1h:
        b = t1h[0]
        lb = b << S0_BITS
        if t0h and t0h[0] < lb:
            break
        if hq and hq[0][0] < lb:
            break
        _cascade_fifo(sim, b)
    if t0h:
        t = t0h[0]
        if not hq or t <= hq[0][0]:
            heappop(t0h)
            idx = t & S0_MASK
            ls = sim._slots0[idx]
            sim._slots0[idx] = None
            if sim._dirty[idx]:
                sim._dirty[idx] = 0
                if len(ls) > 1:
                    ls.sort(key=_seq_of)
            if hq and hq[0][0] == t:
                while hq and hq[0][0] == t:
                    ls.append(heappop(hq)[2])
                ls.sort(key=_seq_of)
            sim._nstruct -= len(ls)
            return t, ls
    if hq:
        t = hq[0][0]
        ls = [heappop(hq)[2]]
        while hq and hq[0][0] == t:
            ls.append(heappop(hq)[2])
        sim._nstruct -= len(ls)
        return t, ls
    return None


def next_batch_policy(sim):
    """Policy-mode assembly: returns ``(t, heap-of-(tb, seq, entry))``."""
    t0h = sim._t0
    t1h = sim._t1
    hq = sim._hq
    while t1h:
        b = t1h[0]
        lb = b << S0_BITS
        if t0h and t0h[0] < lb:
            break
        if hq and hq[0][0] < lb:
            break
        _cascade_policy(sim, b)
    if t0h:
        t = t0h[0]
        if not hq or t <= hq[0][0]:
            heappop(t0h)
            idx = t & S0_MASK
            ls = sim._slots0[idx]
            sim._slots0[idx] = None
            if len(ls) > 1:
                # Tie-break keys are hashes: slot order is arbitrary, so
                # sort unconditionally.  A sorted list is a valid heap.
                ls.sort()
            while hq and hq[0][0] == t:
                heappush(ls, heappop(hq)[1:])
            sim._nstruct -= len(ls)
            return t, ls
    if hq:
        t = hq[0][0]
        ls = [heappop(hq)[1:]]
        while hq and hq[0][0] == t:
            # popped in (tb, seq) order, so the list is born sorted
            ls.append(heappop(hq)[1:])
        sim._nstruct -= len(ls)
        return t, ls
    return None


# ----------------------------------------------------------------------
# batch restore (stop-time hit, max_events trip, StopSimulation, errors)
# ----------------------------------------------------------------------
def restore_fifo(sim, t, ls, i):
    """Re-insert the undispatched tail ``ls[i:]`` of an interrupted batch.

    Entries get fresh sequence numbers in list order — relative order is
    preserved exactly, and in FIFO mode the values themselves are
    unobservable.  The target L0 slot is necessarily empty (window
    invariant: only time-``t`` entries can map there, and they were all
    in this batch), so appends land pre-sorted.
    """
    sim._batch = None
    for e in ls[i:]:
        if e is not None:
            sim._seq += 1
            e._seq = sim._seq
            insert(sim, t, e)
    sim._reg_free = not sim._nstruct


def restore_policy(sim, t, ls):
    """Re-insert an interrupted policy batch, keeping exact (tb, seq) keys."""
    sim._pol_batch = None
    for tb, seq, e in ls:
        insert_policy(sim, t, tb, seq, e)
    sim._reg_free = not sim._nstruct


# ----------------------------------------------------------------------
# non-mutating structure peek
# ----------------------------------------------------------------------
def peek_structures(sim):
    """Exact minimum pending time across L0/L1/overflow, without mutating.

    ``peek`` may be called from inside a dispatched callback (the
    telemetry sampler does), so it must not cascade: a cascade re-anchors
    ``base`` and could strand a subsequent same-instant insert outside
    the window.  Scanning the top L1 bucket is exact because bucket
    ranges partition time: any deeper bucket's minimum is ≥ this one's
    upper bound.
    """
    t = None
    t0h = sim._t0
    if t0h:
        t = t0h[0]
    hq = sim._hq
    if hq:
        th = hq[0][0]
        if t is None or th < t:
            t = th
    t1h = sim._t1
    if t1h:
        b = t1h[0]
        if t is None or (b << S0_BITS) < t:
            bm = min(item[0] for item in sim._slots1[b & S1_MASK])
            if t is None or bm < t:
                t = bm
    return t


# ----------------------------------------------------------------------
# drain loops — one is selected per run() call; no per-event mode checks
# ----------------------------------------------------------------------
# NOTE: drain_fifo and drain_fifo_gated are intentionally near-duplicates.
# The gated variant adds the stop-time and max_events checks; keep the
# dispatch bodies in sync when editing either.

def drain_fifo(sim):
    """FIFO drain with no stop time and no event cap (the hottest loop).

    Events are counted (``n``) when they leave the calendar, *before*
    their callbacks run — the flat-heap kernel counted in ``step()``
    before ``_run()``, and an exception escaping a callback must leave
    the same ``events_executed`` behind.
    """
    TO = sim._timeout_cls
    PR = sim._process_cls
    CB = CallbackEntry
    finish = sim._proc_finish
    pool = sim._timeout_pool
    cbpool = sim._cbe_pool
    PROC = _PROCESSED
    grc = getrefcount
    creg = sim._creg
    cbatch = sim._cbatch
    n = 0
    n0 = sim.events_executed
    try:
        while True:
            if creg is not None:
                # Compiled register-regime drain (see _accel.py): pops the
                # register until empty — chain spin included — and returns
                # its event count, after which control falls through to
                # batch assembly.  On an escaping exception the partial
                # count is handed over in sim._creg_n (the interrupted
                # event included, matching the count-before-dispatch rule).
                try:
                    n += creg()
                except BaseException:
                    n += sim._creg_n
                    raise
            elif (e := sim._single) is not None:
                sim._single = None
                sim._now = sim._single_when
                cls = e.__class__
                if cls is TO:
                    cb = e._cb1
                    e._cb1 = PROC
                    if cb.__class__ is PR:
                        # Chain spin: keep driving this process while each
                        # resume parks a fresh timeout in the register —
                        # the dominant `yield sim.timeout(...)` pattern
                        # keeps (event, callback) in locals instead of
                        # re-deriving them from the calendar per event.
                        # Register-occupied ⟹ structures empty, so the
                        # register entry is always the global minimum.
                        while True:
                            n += 1
                            try:
                                nxt = cb.send(e._value)
                            except BaseException as exc:
                                finish(cb, exc)
                                if e._cbs is not None:
                                    cbs = e._cbs
                                    e._cbs = None
                                    for fn in cbs:
                                        fn(e)
                                if grc(e) == 2:
                                    sim._stash = e
                                break
                            if nxt.__class__ is TO and nxt._cb1 is None and nxt.sim is sim:
                                nxt._cb1 = cb
                                if e._cbs is not None:
                                    cbs = e._cbs
                                    e._cbs = None
                                    for fn in cbs:
                                        fn(e)
                                # In steady state `nxt` was rebound to the
                                # new timeout by send(), so the dispatched
                                # `e` is referenced only by this frame:
                                # recycle it.  (Overwriting a non-empty
                                # stash just drops one pooled object —
                                # never incorrect.)
                                if grc(e) == 2:
                                    sim._stash = e
                                # Wired means nxt._cb1 is cb and nxt is a
                                # Timeout; the spin continues iff nxt still
                                # sits in the register (an e._cbs callback
                                # may have migrated it into the structures).
                                if sim._single is nxt:
                                    sim._single = None
                                    sim._now = sim._single_when
                                    e = nxt
                                    e._cb1 = PROC
                                    continue
                                break
                            cb._wait_on(nxt)
                            if e._cbs is not None:
                                cbs = e._cbs
                                e._cbs = None
                                for fn in cbs:
                                    fn(e)
                            if grc(e) == 2:
                                sim._stash = e
                            break
                    else:
                        n += 1
                        if cb is not None:
                            cb(e)
                        if e._cbs is not None:
                            cbs = e._cbs
                            e._cbs = None
                            for fn in cbs:
                                fn(e)
                        if grc(e) == 2:
                            sim._stash = e
                elif cls is CB:
                    n += 1
                    fn = e.fn
                    arg = e.arg
                    fn(arg)
                    if len(cbpool) < CBE_POOL_MAX:
                        e.fn = None
                        e.arg = None
                        cbpool.append(e)
                else:
                    n += 1
                    e._run()
                continue
            got = next_batch_fifo(sim)
            if got is None:
                return
            t, ls = got
            sim._now = t
            sim._base = t
            sim.events_executed = n0 + n
            sim._batch = ls
            sim._batch_time = t
            sim._reg_free = False
            sim._bi = 0
            if cbatch is not None:
                # Compiled batch dispatch (see _accel.py): same take-and-
                # null loop as below, live-append recheck included; on an
                # escaping exception the partial count is handed over in
                # sim._creg_n (interrupted entry included).
                try:
                    i = cbatch()
                except BaseException:
                    i = sim._creg_n
                    n += i
                    restore_fifo(sim, t, ls, i)
                    raise
                n += i
                sim._batch = None
                sim._reg_free = not sim._nstruct
                sim._batches += 1
                sim._batched_events += i
                if i > sim._max_batch:
                    sim._max_batch = i
                continue
            i = 0
            blen = len(ls)
            try:
                while True:
                    e = ls[i]
                    ls[i] = None
                    i += 1
                    sim._bi = i
                    n += 1
                    cls = e.__class__
                    if cls is TO:
                        cb = e._cb1
                        e._cb1 = PROC
                        if cb.__class__ is PR:
                            try:
                                nxt = cb.send(e._value)
                            except BaseException as exc:
                                finish(cb, exc)
                            else:
                                if nxt.__class__ is TO and nxt._cb1 is None and nxt.sim is sim:
                                    nxt._cb1 = cb
                                else:
                                    cb._wait_on(nxt)
                        elif cb is not None:
                            cb(e)
                        if e._cbs is not None:
                            cbs = e._cbs
                            e._cbs = None
                            for fn in cbs:
                                fn(e)
                        if grc(e) == 2:
                            if sim._stash is None:
                                sim._stash = e
                            elif len(pool) < TIMEOUT_POOL_MAX:
                                pool.append(e)
                    elif cls is CB:
                        fn = e.fn
                        arg = e.arg
                        fn(arg)
                        if len(cbpool) < CBE_POOL_MAX:
                            e.fn = None
                            e.arg = None
                            cbpool.append(e)
                    else:
                        e._run()
                    if i == blen:
                        blen = len(ls)
                        if i == blen:
                            break
            except BaseException:
                restore_fifo(sim, t, ls, i)
                raise
            sim._batch = None
            sim._reg_free = not sim._nstruct
            sim._batches += 1
            sim._batched_events += i
            if i > sim._max_batch:
                sim._max_batch = i
    finally:
        sim.events_executed = n0 + n


def drain_fifo_gated(sim, stop, max_events):
    """FIFO drain honouring a stop time and/or an event cap.

    ``stop``/``max_events`` are ``inf`` when unset, so a single loop
    serves both gates.  Batches are atomic with respect to ``stop``
    (every entry in a batch shares one timestamp ≤ stop), which matches
    the flat kernel's per-event check exactly.
    """
    TO = sim._timeout_cls
    PR = sim._process_cls
    CB = CallbackEntry
    finish = sim._proc_finish
    pool = sim._timeout_pool
    cbpool = sim._cbe_pool
    PROC = _PROCESSED
    grc = getrefcount
    cbatch = sim._cbatch
    n = 0
    n0 = sim.events_executed
    try:
        while True:
            e = sim._single
            if e is not None:
                when = sim._single_when
                if when > stop:
                    sim._now = stop
                    return
                sim._single = None
                sim._now = when
                n += 1
                cls = e.__class__
                if cls is TO:
                    cb = e._cb1
                    e._cb1 = PROC
                    if cb.__class__ is PR:
                        try:
                            nxt = cb.send(e._value)
                        except BaseException as exc:
                            finish(cb, exc)
                        else:
                            if nxt.__class__ is TO and nxt._cb1 is None and nxt.sim is sim:
                                nxt._cb1 = cb
                            else:
                                cb._wait_on(nxt)
                    elif cb is not None:
                        cb(e)
                    if e._cbs is not None:
                        cbs = e._cbs
                        e._cbs = None
                        for fn in cbs:
                            fn(e)
                    if grc(e) == 2:
                        sim._stash = e
                elif cls is CB:
                    fn = e.fn
                    arg = e.arg
                    fn(arg)
                    if len(cbpool) < CBE_POOL_MAX:
                        e.fn = None
                        e.arg = None
                        cbpool.append(e)
                else:
                    e._run()
                if n >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                continue
            got = next_batch_fifo(sim)
            if got is None:
                return
            t, ls = got
            if t > stop:
                restore_fifo(sim, t, ls, 0)
                sim._now = stop
                return
            sim._now = t
            sim._base = t
            sim.events_executed = n0 + n
            sim._batch = ls
            sim._batch_time = t
            sim._reg_free = False
            sim._bi = 0
            if cbatch is not None:
                # Compiled batch dispatch with an event budget: the C loop
                # stops once the remaining max_events allowance is spent,
                # and the raise below matches the pure loop's per-event
                # check (which fires even when the budget runs out exactly
                # at the end of a batch).
                try:
                    i = cbatch(-1 if max_events == INF else int(max_events - n))
                except BaseException:
                    i = sim._creg_n
                    n += i
                    restore_fifo(sim, t, ls, i)
                    raise
                n += i
                if n >= max_events:
                    restore_fifo(sim, t, ls, i)
                    raise SimulationError(f"exceeded max_events={max_events}")
                sim._batch = None
                sim._reg_free = not sim._nstruct
                sim._batches += 1
                sim._batched_events += i
                if i > sim._max_batch:
                    sim._max_batch = i
                continue
            i = 0
            blen = len(ls)
            try:
                while True:
                    e = ls[i]
                    ls[i] = None
                    i += 1
                    sim._bi = i
                    n += 1
                    cls = e.__class__
                    if cls is TO:
                        cb = e._cb1
                        e._cb1 = PROC
                        if cb.__class__ is PR:
                            try:
                                nxt = cb.send(e._value)
                            except BaseException as exc:
                                finish(cb, exc)
                            else:
                                if nxt.__class__ is TO and nxt._cb1 is None and nxt.sim is sim:
                                    nxt._cb1 = cb
                                else:
                                    cb._wait_on(nxt)
                        elif cb is not None:
                            cb(e)
                        if e._cbs is not None:
                            cbs = e._cbs
                            e._cbs = None
                            for fn in cbs:
                                fn(e)
                        if grc(e) == 2:
                            if sim._stash is None:
                                sim._stash = e
                            elif len(pool) < TIMEOUT_POOL_MAX:
                                pool.append(e)
                    elif cls is CB:
                        fn = e.fn
                        arg = e.arg
                        fn(arg)
                        if len(cbpool) < CBE_POOL_MAX:
                            e.fn = None
                            e.arg = None
                            cbpool.append(e)
                    else:
                        e._run()
                    if n >= max_events:
                        raise SimulationError(f"exceeded max_events={max_events}")
                    if i == blen:
                        blen = len(ls)
                        if i == blen:
                            break
            except BaseException:
                restore_fifo(sim, t, ls, i)
                raise
            sim._batch = None
            sim._reg_free = not sim._nstruct
            sim._batches += 1
            sim._batched_events += i
            if i > sim._max_batch:
                sim._max_batch = i
    finally:
        sim.events_executed = n0 + n


def drain_policy(sim, stop, max_events):
    """Policy-mode drain: per-instant heaps replay the flat heap's order.

    Each batch is a valid heap of ``(tiebreak, seq, entry)``; same-instant
    arrivals are pushed into the live batch, so pops interleave exactly
    as the old global four-tuple heap interleaved them.
    """
    TO = sim._timeout_cls
    pool = sim._timeout_pool
    grc = getrefcount
    n = 0
    n0 = sim.events_executed
    try:
        while True:
            got = next_batch_policy(sim)
            if got is None:
                return
            t, ls = got
            if t > stop:
                restore_policy(sim, t, ls)
                sim._now = stop
                return
            sim._now = t
            sim._base = t
            sim.events_executed = n0 + n
            sim._pol_batch = ls
            sim._batch_time = t
            k0 = n
            try:
                while ls:
                    e = heappop(ls)[2]
                    n += 1
                    e._run()
                    if type(e) is TO and grc(e) == 2:
                        if sim._stash is None:
                            sim._stash = e
                        elif len(pool) < TIMEOUT_POOL_MAX:
                            pool.append(e)
                    elif type(e) is CallbackEntry and len(sim._cbe_pool) < CBE_POOL_MAX:
                        e.fn = None
                        e.arg = None
                        sim._cbe_pool.append(e)
                    if n >= max_events:
                        raise SimulationError(f"exceeded max_events={max_events}")
            except BaseException:
                restore_policy(sim, t, ls)
                raise
            sim._pol_batch = None
            sim._batches += 1
            sim._batched_events += n - k0
            if n - k0 > sim._max_batch:
                sim._max_batch = n - k0
    finally:
        sim.events_executed = n0 + n


def drain_heap(sim, stop, max_events):
    """Flat-heap fallback drain (the pre-wheel kernel, bit for bit)."""
    queue = sim._queue
    step = sim.step
    n = 0
    while queue:
        if queue[0][0] > stop:
            sim._now = stop
            return
        step()
        n += 1
        if n >= max_events:
            raise SimulationError(f"exceeded max_events={max_events}")
