"""Causality capture for the simulation kernel.

When capture is enabled (:func:`enable_capture`), every calendar placement
records a :class:`CausalNode`: the id of the *parent* event (the event whose
callback performed the placement), a category tag, and the schedule/fire
timestamps.  Together the nodes form the run's **causal DAG** — the raw
material for critical-path latency attribution (:mod:`repro.obs.causal`)
and for the bounded **flight recorder** that dumps the last N events when
the stack hits a fatal error.

Design constraints (see docs/SIMULATION.md and docs/OBSERVABILITY.md):

* **Capture off must stay bit-identical.**  Enabling capture rebinds the
  per-instance ``schedule``/``call_in``/``timeout``/``step`` methods and
  routes ``run()`` through the recording drains in this module; a simulator
  that never calls :func:`enable_capture` executes exactly the code it did
  before this module existed (the only change is an extra ``None`` slot).
* **Capture on must not perturb the schedule.**  The recording wrappers
  delegate to the same pure-Python placement paths the kernel uses, with
  identical sequence-number consumption per backend (lazy in FIFO mode —
  unobservable — and one seq per placement in policy/heap mode, exactly as
  before).  The recording drains mirror their :mod:`repro.simnet._core`
  counterparts' batch assembly, stop-time, max-events and restore logic;
  the only difference is uniform dispatch through ``entry._run()`` (of
  which the specialized drain bodies are pure optimizations) plus the
  recorder bookkeeping.  The C accelerator is disabled for captured runs
  (``sim._creg = None``); object pools are bypassed so every placement
  carries a fresh ``_cid``.

The recorder itself is deliberately dumb and cheap: an integer id counter,
a dict of nodes, and a bounded deque of fired nodes (the flight ring).
Interpretation — segment attribution, path walking, Perfetto export —
lives in :mod:`repro.obs.causal` and :mod:`repro.obs.perfetto`.
"""

from __future__ import annotations

import json
import os
from collections import deque
from heapq import heappop
from typing import Any, Callable, Optional

from ._core import (
    CallbackEntry,
    SimulationError,
    next_batch_fifo,
    next_batch_policy,
    restore_fifo,
    restore_policy,
)

__all__ = [
    "CausalNode",
    "CausalRecorder",
    "enable_capture",
    "drain_record",
    "FLIGHT_SCHEMA",
]

#: schema tag stamped into flight-recorder dump files
FLIGHT_SCHEMA = "repro.flight/1"

#: flight-ring depth when the recorder runs in full-capture mode
DEFAULT_TAIL = 256

#: ``call_in`` callback name → causal category.  Unlisted callables are
#: generic "call" edges; the names below are the hot delivery paths whose
#: identity the critical-path walker needs.
_CALL_CATEGORIES = {
    "_on_wire": "link",
    "_on_ack": "ack",
    "_on_timer": "rto_timer",
    "_on_rnr_timer": "rnr_timer",
    "_tick": "sampler",
}


class CausalNode:
    """One calendar placement: who scheduled it, what kind, and when."""

    __slots__ = ("cid", "parent", "category", "sched_ns", "fire_ns", "meta")

    def __init__(self, cid: int, parent: int, category: str, sched_ns: int) -> None:
        self.cid = cid
        self.parent = parent
        self.category = category
        self.sched_ns = sched_ns
        #: -1 until the entry is dispatched
        self.fire_ns = -1
        #: optional site annotations (e.g. link timing split); None when unused
        self.meta: Optional[dict] = None

    def to_dict(self) -> dict:
        d = {
            "id": self.cid,
            "parent": self.parent,
            "category": self.category,
            "sched_ns": self.sched_ns,
            "fire_ns": self.fire_ns,
        }
        if self.meta:
            d["meta"] = dict(self.meta)
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CausalNode {self.cid} {self.category} parent={self.parent} "
            f"sched={self.sched_ns} fire={self.fire_ns}>"
        )


class CausalRecorder:
    """Collects the causal DAG of a captured run.

    Parameters
    ----------
    capacity:
        ``None`` keeps every node (full capture, needed for critical-path
        extraction).  An integer keeps only the last *capacity* fired nodes
        plus the not-yet-fired pending set — the always-cheap flight-recorder
        mode.
    dump_dir:
        Directory for automatic flight-recorder dumps on :meth:`failure`.
        ``None`` keeps dumps in memory only (``last_dump`` / ``dumps``).
    scenario:
        Optional dict describing the run (typically
        ``ScenarioConfig.to_dict()``), embedded in dumps so they replay.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        dump_dir: Optional[str] = None,
        scenario: Optional[dict] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("flight-recorder capacity must be positive")
        self.capacity = capacity
        self.dump_dir = dump_dir
        self.scenario = scenario
        #: id of the event whose callback is currently executing (-1 at top level)
        self.current: int = -1
        self._next: int = 0
        #: cid → node; in ring mode, pruned as the flight ring evicts
        self.nodes: dict[int, CausalNode] = {}
        #: fired nodes in dispatch order (the flight ring)
        self._tail: deque = deque(maxlen=capacity if capacity is not None else DEFAULT_TAIL)
        self.dumps: list[dict] = []
        self.last_dump: Optional[dict] = None
        # credit-stall windows per connection (see repro.exs.stream_sender)
        self._blocked_since: dict[Any, int] = {}
        self.credit_windows: list[tuple] = []

    # -- kernel-facing hot path -----------------------------------------
    def on_schedule(self, category: str, sched_ns: int) -> int:
        """Record a placement; returns the new node id (the entry's _cid)."""
        cid = self._next
        self._next = cid + 1
        self.nodes[cid] = CausalNode(cid, self.current, category, sched_ns)
        return cid

    def on_fire(self, cid: int, fire_ns: int) -> None:
        node = self.nodes.get(cid)
        if node is None:
            return
        node.fire_ns = fire_ns
        tail = self._tail
        if self.capacity is not None and len(tail) == tail.maxlen:
            # evicting from the ring also forgets the node entirely
            self.nodes.pop(tail[0].cid, None)
        tail.append(node)

    # -- site annotations ------------------------------------------------
    def annotate_last(self, count: int = 1, **fields: Any) -> None:
        """Attach *fields* to the *count* most recently created nodes.

        Used right after a placement by the site that knows the timing
        decomposition (e.g. the link transmitter knows queue/tx/prop).
        """
        for cid in range(self._next - count, self._next):
            node = self.nodes.get(cid)
            if node is not None:
                if node.meta is None:
                    node.meta = dict(fields)
                else:
                    node.meta.update(fields)

    def note_credit_block(self, conn: Any, now: int) -> None:
        """A sender stalled for credits on *conn* starting at *now*."""
        self._blocked_since.setdefault(conn, now)

    def note_credit_unblock(self, conn: Any, now: int) -> None:
        """The sender for *conn* made progress again at *now*."""
        start = self._blocked_since.pop(conn, None)
        if start is not None and now > start:
            self.credit_windows.append((conn, start, now))

    # -- flight recorder -------------------------------------------------
    def failure(self, reason: str, time_ns: int, **context: Any) -> dict:
        """Record a failure and dump the flight ring.

        The synthetic failure node is parented to the currently executing
        event, so the dump's tail reconstructs the causal chain that led
        here (e.g. last retransmit timer → QP ERROR transition).
        """
        cid = self._next
        self._next = cid + 1
        node = CausalNode(cid, self.current, "failure", time_ns)
        node.fire_ns = time_ns
        node.meta = dict(context, reason=reason)
        self.nodes[cid] = node
        self._tail.append(node)
        dump = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "time_ns": time_ns,
            "context": dict(context),
            "scenario": dict(self.scenario) if self.scenario else None,
            "events": [n.to_dict() for n in self._tail],
        }
        self.dumps.append(dump)
        self.last_dump = dump
        if self.dump_dir:
            os.makedirs(self.dump_dir, exist_ok=True)
            path = os.path.join(
                self.dump_dir, f"flight-{len(self.dumps)}-{_slug(reason)}.json"
            )
            with open(path, "w") as fh:
                json.dump(dump, fh, indent=1, sort_keys=True)
            dump["path"] = path
        return dump

    # -- queries ----------------------------------------------------------
    def node(self, cid: int) -> Optional[CausalNode]:
        return self.nodes.get(cid)

    def fired_nodes(self) -> list:
        """Fired nodes currently retained, in dispatch order."""
        return list(self._tail)

    def __len__(self) -> int:
        return len(self.nodes)


def _slug(text: str) -> str:
    return "".join(c if c.isalnum() else "-" for c in text.lower()).strip("-") or "failure"


# ----------------------------------------------------------------------
# capture enablement: rebind the per-instance placement methods
# ----------------------------------------------------------------------
def enable_capture(sim, recorder: CausalRecorder) -> CausalRecorder:
    """Route every placement on *sim* through *recorder*.

    Must be called before the simulation starts (an already-pending
    calendar would hold untagged entries).  Idempotent per simulator is
    not supported — enable once, at testbed construction.
    """
    if sim._recorder is not None:
        raise SimulationError("causality capture already enabled on this simulator")
    if sim.peek() is not None:
        raise SimulationError("enable_capture requires an empty calendar")
    sim._recorder = recorder
    # The C register drain bypasses Python dispatch entirely; captured
    # runs take the recording drains below instead.
    sim._creg = None

    backend = sim._backend
    if backend == "heap":
        base_schedule = sim._schedule_heap
    elif sim._tiebreak is None:
        base_schedule = sim._schedule_wheel
    else:
        base_schedule = sim._schedule_policy_wheel
    timeout_cls = sim._timeout_cls
    process_cls = sim._process_cls
    on_schedule = recorder.on_schedule
    call_cats = _CALL_CATEGORIES

    def schedule(event, delay: int = 0) -> None:
        cls = type(event)
        if cls is timeout_cls:
            cat = "timeout"
        elif cls is process_cls:
            cat = "process"
        else:
            cat = "event"
        event._cid = on_schedule(cat, sim._now)
        base_schedule(event, delay)

    def call_in(delay: int, fn: Callable[[Any], None], arg: Any = None) -> None:
        e = CallbackEntry(fn, arg)
        e._cid = on_schedule(
            call_cats.get(getattr(fn, "__name__", ""), "call"), sim._now
        )
        base_schedule(e, delay)

    def timeout(delay: int, value: Any = None):
        # Fresh object per placement (no freelist) so the _cid tag is unique;
        # Timeout.__init__ calls sim.schedule, i.e. the wrapper above.
        return timeout_cls(sim, delay, value)

    def step() -> None:
        _step_record(sim, recorder)

    sim.schedule = schedule
    sim.call_in = call_in
    sim.timeout = timeout
    sim.step = step
    return recorder


# ----------------------------------------------------------------------
# recording dispatch
# ----------------------------------------------------------------------
def _fire(rec: CausalRecorder, e, now: int) -> None:
    """Dispatch one entry, bracketed by recorder bookkeeping.

    Uniform ``e._run()`` dispatch: the specialized Timeout/Process/
    CallbackEntry bodies in the production drains are pure optimizations
    of ``_run`` (same callbacks in the same order), so recording runs
    replay the identical schedule.
    """
    cid = getattr(e, "_cid", -1)
    rec.on_fire(cid, now)
    rec.current = cid
    try:
        e._run()
    finally:
        rec.current = -1


def drain_record(sim, stop, max_events) -> None:
    """Backend-dispatching drain for captured runs (selected by ``run()``)."""
    rec = sim._recorder
    if sim._backend == "heap":
        _drain_record_heap(sim, stop, max_events, rec)
    elif sim._tiebreak is not None:
        _drain_record_policy(sim, stop, max_events, rec)
    else:
        _drain_record_fifo(sim, stop, max_events, rec)


def _drain_record_fifo(sim, stop, max_events, rec) -> None:
    """Recording twin of :func:`repro.simnet._core.drain_fifo_gated`."""
    n = 0
    n0 = sim.events_executed
    try:
        while True:
            e = sim._single
            if e is not None:
                when = sim._single_when
                if when > stop:
                    sim._now = stop
                    return
                sim._single = None
                sim._now = when
                n += 1
                _fire(rec, e, when)
                if n >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                continue
            got = next_batch_fifo(sim)
            if got is None:
                return
            t, ls = got
            if t > stop:
                restore_fifo(sim, t, ls, 0)
                sim._now = stop
                return
            sim._now = t
            sim._base = t
            sim.events_executed = n0 + n
            sim._batch = ls
            sim._batch_time = t
            sim._reg_free = False
            sim._bi = 0
            i = 0
            blen = len(ls)
            try:
                while True:
                    e = ls[i]
                    ls[i] = None
                    i += 1
                    sim._bi = i
                    n += 1
                    _fire(rec, e, t)
                    if n >= max_events:
                        raise SimulationError(f"exceeded max_events={max_events}")
                    if i == blen:
                        blen = len(ls)
                        if i == blen:
                            break
            except BaseException:
                restore_fifo(sim, t, ls, i)
                raise
            sim._batch = None
            sim._reg_free = not sim._nstruct
            sim._batches += 1
            sim._batched_events += i
            if i > sim._max_batch:
                sim._max_batch = i
    finally:
        sim.events_executed = n0 + n


def _drain_record_policy(sim, stop, max_events, rec) -> None:
    """Recording twin of :func:`repro.simnet._core.drain_policy`."""
    n = 0
    n0 = sim.events_executed
    try:
        while True:
            got = next_batch_policy(sim)
            if got is None:
                return
            t, ls = got
            if t > stop:
                restore_policy(sim, t, ls)
                sim._now = stop
                return
            sim._now = t
            sim._base = t
            sim.events_executed = n0 + n
            sim._pol_batch = ls
            sim._batch_time = t
            k0 = n
            try:
                while ls:
                    e = heappop(ls)[2]
                    n += 1
                    _fire(rec, e, t)
                    if n >= max_events:
                        raise SimulationError(f"exceeded max_events={max_events}")
            except BaseException:
                restore_policy(sim, t, ls)
                raise
            sim._pol_batch = None
            sim._batches += 1
            sim._batched_events += n - k0
            if n - k0 > sim._max_batch:
                sim._max_batch = n - k0
    finally:
        sim.events_executed = n0 + n


def _drain_record_heap(sim, stop, max_events, rec) -> None:
    """Recording twin of :func:`repro.simnet._core.drain_heap`."""
    queue = sim._queue
    n = 0
    while queue:
        when = queue[0][0]
        if when > stop:
            sim._now = stop
            return
        e = heappop(queue)[-1]
        if when < sim._now:  # pragma: no cover - defensive, as _step_heap
            raise SimulationError("event calendar corrupted: time went backwards")
        sim._now = when
        sim.events_executed += 1
        _fire(rec, e, when)
        n += 1
        if n >= max_events:
            raise SimulationError(f"exceeded max_events={max_events}")


def _step_record(sim, rec) -> None:
    """Single-step a captured simulator (any backend)."""
    if sim._backend == "heap":
        queue = sim._queue
        item = heappop(queue)  # IndexError on empty, as before
        when, e = item[0], item[-1]
        sim._now = when
        sim.events_executed += 1
        _fire(rec, e, when)
        return
    e = sim._single
    if e is not None:
        sim._single = None
        sim._now = sim._single_when
        sim.events_executed += 1
        _fire(rec, e, sim._now)
        return
    if sim._tiebreak is None:
        got = next_batch_fifo(sim)
        if got is None:
            raise IndexError("step on an empty calendar")
        t, ls = got
        e = ls[0]
        sim._base = t
        restore_fifo(sim, t, ls, 1)
        sim._now = t
        sim.events_executed += 1
        _fire(rec, e, t)
        return
    got = next_batch_policy(sim)
    if got is None:
        raise IndexError("step on an empty calendar")
    t, ls = got
    e = heappop(ls)[2]
    sim._base = t
    restore_policy(sim, t, ls)
    sim._now = t
    sim.events_executed += 1
    _fire(rec, e, t)
