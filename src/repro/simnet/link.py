"""Point-to-point full-duplex link model.

A :class:`Link` joins two endpoints (``0`` and ``1``).  Each direction is an
independent serialized pipe: a message occupies the transmitter for its
*transmission delay* (``wire_bytes * 8 / bandwidth`` plus a fixed per-message
overhead), then travels for the *propagation delay* (possibly inflated by a
:class:`~repro.simnet.emulator.DelayEmulator`), and is finally delivered to
the receiving endpoint's handler.

Delivery is strictly in order per direction — the model stands in for a
*reliable connected* RDMA transport (InfiniBand RC / RoCE), which guarantees
ordered, lossless delivery; with jitter enabled arrivals are clamped so that
ordering still holds, exactly as a reliability layer would enforce.

An optional :class:`~repro.simnet.faults.ImpairmentModel` makes the wire
lossy: messages may be dropped, duplicated, corrupted (delivered wrapped in
:class:`~repro.simnet.faults.Corrupted`), or lost to a scheduled outage.
Payloads with a truthy ``fault_exempt`` attribute bypass impairment.

The wire is **zero-copy**: it forwards the payload object itself, never a
copy of its bytes.  A duplicated frame delivers the *same* payload object
twice and a corrupted frame wraps it unmodified, so a payload carrying a
``memoryview`` of sender memory (see :mod:`repro.hosts.memory`) relies on
the view-pinning aliasing rule — the sender keeps the range intact until
the transport ack, and receivers discard duplicate sequence numbers before
dereferencing payload bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from .emulator import DelayEmulator
from .faults import Corrupted, Fate, ImpairmentModel
from .kernel import SimulationError, Simulator

__all__ = ["Link", "LinkDirection", "LinkStats"]

Handler = Callable[[Any], None]


@dataclass
class LinkStats:
    """Per-direction transmission counters (a point-in-time snapshot)."""

    messages: int = 0
    wire_bytes: int = 0
    busy_ns: int = 0


class LinkDirection:
    """One direction of a full-duplex link (serialized transmitter).

    Counters are kept as plain integer attributes and materialised into a
    :class:`LinkStats` on demand, so the per-message path touches no
    dataclass instance.
    """

    __slots__ = ("link", "index", "handler", "tracer", "dst_cell", "_busy_until",
                 "_last_arrival", "_messages", "_wire_bytes", "_busy_ns")

    def __init__(self, link: "Link", index: int) -> None:
        self.link = link
        self.index = index
        self.handler: Optional[Handler] = None
        #: optional ProtocolTracer-style sink for impairment outcomes
        #: (``emit(time_ns, conn, host, kind, **fields)``); set by telemetry
        self.tracer = None
        #: cells-kernel routing: index of the cell owning the receiving
        #: endpoint (set by Fabric assembly under the cells kernel; None
        #: keeps the legacy single-calendar delivery, bit for bit).  The
        #: arrival delay always includes this link's propagation, which is
        #: >= the destination cell's inbound lookahead by construction.
        self.dst_cell: Optional[int] = None
        self._busy_until = 0
        self._last_arrival = 0
        self._messages = 0
        self._wire_bytes = 0
        self._busy_ns = 0

    @property
    def stats(self) -> LinkStats:
        """Snapshot of the transmission counters."""
        return LinkStats(self._messages, self._wire_bytes, self._busy_ns)

    def transmit(self, payload: Any, wire_bytes: int, extra_tx_ns: int = 0) -> int:
        """Queue *payload* for transmission; returns the arrival time (ns).

        The caller is responsible for any pre-wire latency (HCA processing);
        this method models only the wire.  ``extra_tx_ns`` adds serialization
        time beyond the byte-rate cost (e.g. an HCA large-message penalty)
        and occupies the transmitter like real wire time.
        """
        link = self.link
        sim = link.sim
        if wire_bytes < 0 or extra_tx_ns < 0:
            raise SimulationError("wire_bytes and extra_tx_ns must be >= 0")
        handler = self.handler
        if handler is None:
            raise SimulationError("link direction has no attached handler")
        tx_ns = link.transmission_ns(wire_bytes) + extra_tx_ns
        now = sim._now
        start = self._busy_until
        if now > start:
            start = now
        end_tx = start + tx_ns
        self._busy_until = end_tx
        emulator = link.emulator
        prop = link.propagation_delay_ns
        if emulator is not None:
            prop += emulator.sample_ns(self.index)
        arrival = end_tx + prop
        # Reliable transport: never deliver out of order even under jitter.
        if arrival < self._last_arrival:
            arrival = self._last_arrival
        self._last_arrival = arrival

        self._messages += 1
        self._wire_bytes += wire_bytes
        self._busy_ns += tx_ns

        impairment = link.impairment
        fate = Fate.DELIVER
        if impairment is not None and not getattr(payload, "fault_exempt", False):
            fate = impairment.classify(self.index, now)

        # The transmitter is occupied and the arrival time is computed
        # regardless of fate — a lost frame still burns wire time; only the
        # delivery changes.
        ncalls = 0
        dst = self.dst_cell
        if fate is Fate.DELIVER:
            if dst is None:
                # Deliver via a lightweight calendar entry (no Event, no closure).
                sim.call_in(arrival - now, handler, payload)
            else:
                sim.call_in_cell(dst, arrival - now, handler, payload)
            ncalls = 1
        elif fate is Fate.DUPLICATE:
            if dst is None:
                sim.call_in(arrival - now, handler, payload)
                sim.call_in(arrival - now, handler, payload)
            else:
                sim.call_in_cell(dst, arrival - now, handler, payload)
                sim.call_in_cell(dst, arrival - now, handler, payload)
            ncalls = 2
        elif fate is Fate.CORRUPT:
            if dst is None:
                sim.call_in(arrival - now, handler, Corrupted(payload))
            else:
                sim.call_in_cell(dst, arrival - now, handler, Corrupted(payload))
            ncalls = 1
        else:
            # DROP / DOWN: nothing is delivered; record the loss for chaos
            # summaries when a tracer is attached.
            if self.tracer is not None:
                self.tracer.emit(
                    now, -1, f"link{self.index}",
                    "link_down" if fate is Fate.DOWN else "frame_drop",
                    wire_bytes=wire_bytes,
                )
        if ncalls and sim._recorder is not None:
            # The transmit site is the only place that knows the timing
            # decomposition of a delivery edge; stash it on the causal node
            # so the critical-path walker can split queueing/serialization/
            # propagation (see repro.obs.causal).
            sim._recorder.annotate_last(
                ncalls,
                queue_ns=start - now,
                tx_ns=tx_ns,
                prop_ns=arrival - end_tx,
                wire_bytes=wire_bytes,
            )
        if sim.tracing:
            if fate is Fate.DELIVER:
                sim.trace("link", f"dir{self.index} tx {wire_bytes}B arrive@{arrival}")
            else:
                sim.trace("link", f"dir{self.index} tx {wire_bytes}B fate={fate.value}")
        return arrival

    @property
    def busy_until(self) -> int:
        return self._busy_until


class Link:
    """Full-duplex point-to-point link.

    Parameters
    ----------
    sim:
        The simulator.
    bandwidth_bps:
        Data rate of the wire in bits per second.
    propagation_delay_ns:
        One-way propagation delay of the physical medium.
    per_message_overhead_ns:
        Fixed serialization overhead charged per message (framing, switch
        forwarding, etc.).
    emulator:
        Optional :class:`DelayEmulator` adding WAN-style delay/jitter on top
        of the base propagation delay (models the Anue hardware emulator
        used in the paper).
    impairment:
        Optional :class:`~repro.simnet.faults.ImpairmentModel` making the
        wire lossy (drop/duplicate/corrupt/outage).  ``None`` keeps the
        historical lossless behaviour, bit for bit.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        bandwidth_bps: float,
        propagation_delay_ns: int,
        per_message_overhead_ns: int = 0,
        emulator: Optional[DelayEmulator] = None,
        impairment: Optional[ImpairmentModel] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise SimulationError("bandwidth must be positive")
        if propagation_delay_ns < 0:
            raise SimulationError("propagation delay must be >= 0")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.propagation_delay_ns = int(propagation_delay_ns)
        self.per_message_overhead_ns = int(per_message_overhead_ns)
        self.emulator = emulator
        self.impairment = impairment
        #: precomputed byte-rate factor: ns of wire time per payload byte
        self.ns_per_byte = 8 * 1e9 / self.bandwidth_bps
        # Serialization delays are memoized per wire_bytes value.  The cache
        # (not `wire_bytes * ns_per_byte`) is what the hot path uses because
        # reassociating the arithmetic would double-round and could shift a
        # delay by 1 ns — simulated results must stay bit-identical.
        self._tx_ns_cache: dict[int, int] = {}
        self.directions = (LinkDirection(self, 0), LinkDirection(self, 1))

    # ------------------------------------------------------------------
    def attach(self, endpoint: int, handler: Handler) -> LinkDirection:
        """Attach *handler* to receive messages sent **toward** *endpoint*.

        Returns the direction object used to **send from** that endpoint.
        """
        if endpoint not in (0, 1):
            raise SimulationError("endpoint must be 0 or 1")
        # Messages sent from endpoint e travel on direction e and are handled
        # by the opposite endpoint's handler.
        self.directions[1 - endpoint].handler = handler
        return self.directions[endpoint]

    def transmission_ns(self, wire_bytes: int) -> int:
        """Serialization delay for a message of *wire_bytes* bytes."""
        ns = self._tx_ns_cache.get(wire_bytes)
        if ns is None:
            ns = self.per_message_overhead_ns + int(round(wire_bytes * 8 * 1e9 / self.bandwidth_bps))
            self._tx_ns_cache[wire_bytes] = ns
        return ns

    def propagation_ns(self) -> int:
        """Jitter-free propagation delay estimate (base + emulator base).

        This is a *query*: it never draws from the jitter RNG, so callers
        may estimate latency mid-run without perturbing subsequent
        transmissions.  Use :meth:`sample_propagation_ns` to model an
        actual traversal of the wire.
        """
        extra = self.emulator.base_delay_ns if self.emulator is not None else 0
        return self.propagation_delay_ns + extra

    def sample_propagation_ns(self, direction: int = 0) -> int:
        """Propagation delay for one actual message (draws jitter, if any)."""
        extra = (
            self.emulator.sample_ns(direction) if self.emulator is not None else 0
        )
        return self.propagation_delay_ns + extra

    def one_way_latency_ns(self, wire_bytes: int) -> int:
        """Unloaded one-way latency estimate for a message (no emulator jitter)."""
        base = self.propagation_delay_ns
        if self.emulator is not None:
            base += self.emulator.base_delay_ns
        return self.transmission_ns(wire_bytes) + base
