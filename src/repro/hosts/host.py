"""Host machine model: CPU + memory + attachment point for an RDMA device.

A :class:`Host` bundles the per-node hardware characteristics used by the
simulation:

* a :class:`~repro.hosts.cpu.Cpu` for the EXS library thread (``cpu``) and
  a second core for the application thread (``app_cpu``) — the testbed
  nodes are multi-core Xeons, so library and application work proceed in
  parallel; the paper's receiver "CPU usage" corresponds to the library
  core,
* a :class:`~repro.hosts.memory.MemoryArena` for buffers,
* a memory-copy bandwidth (the single most important constant in the model:
  it sets the indirect-mode throughput ceiling, paper §IV-B1), and
* the HCA attached by :class:`repro.verbs.device.RdmaDevice`.
"""

from __future__ import annotations

from typing import Optional

from ..simnet import Simulator
from .cpu import Cpu, CpuCostModel
from .memory import Buffer, MemoryArena

__all__ = ["Host"]


class Host:
    """A simulated machine.

    Parameters
    ----------
    sim:
        The simulator this host lives in.
    name:
        Human-readable identifier used in traces and errors.
    copy_bandwidth_bps:
        Sustained single-thread memcpy bandwidth in **bits** per second.
        The paper's nodes copied at roughly 3 GB/s, which is what caps the
        indirect protocol at 20–27 Gb/s on FDR InfiniBand.
    cpu_costs:
        Per-operation software-path costs; see :class:`CpuCostModel`.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        copy_bandwidth_bps: float = 3.0e9 * 8,
        cpu_costs: Optional[CpuCostModel] = None,
    ) -> None:
        if copy_bandwidth_bps <= 0:
            raise ValueError("copy bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.copy_bandwidth_bps = float(copy_bandwidth_bps)
        #: the EXS library/progress-thread core
        self.cpu = Cpu(sim, cpu_costs)
        #: the application-thread core (same cost model)
        self.app_cpu = Cpu(sim, cpu_costs)
        self.memory = MemoryArena()
        #: set by RdmaDevice when attached
        self.device = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, *, real: bool = True, label: str = "") -> Buffer:
        """Allocate a buffer in this host's memory."""
        return self.memory.alloc(nbytes, real=real, label=label or f"{self.name}:buf")

    def copy_ns(self, nbytes: int) -> int:
        """Duration of a library memcpy of *nbytes* on this host."""
        return self.cpu.costs.copy_ns(nbytes, self.copy_bandwidth_bps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name!r}>"
