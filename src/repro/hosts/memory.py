"""Simulated host memory: buffers, registration arena, and payload chunks.

Data transfers in the simulator can run in two modes:

* **real-bytes mode** — buffers carry a ``bytearray`` and transfers move
  actual bytes (used by the test suite to verify stream integrity end to
  end).  The data path slices with ``memoryview`` so no intermediate copies
  are made in the *Python* process — mirroring the zero-copy discipline of
  the system being modelled.
* **synthetic mode** — buffers carry no bytes, only lengths; transfers move
  :class:`Chunk` records tagged with their position in the byte stream.  The
  receiving side still checks stream continuity, so protocol-safety checking
  stays on even in the large benchmark runs, at negligible cost.

Virtual addresses are fake but unique per :class:`MemoryArena`, so RDMA-style
(addr, rkey) addressing behaves realistically.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Buffer", "Chunk", "MemoryArena", "MemoryError_"]


class MemoryError_(RuntimeError):
    """Out-of-bounds access or misuse of a simulated buffer."""


class Chunk:
    """A contiguous piece of a byte stream travelling on the wire.

    ``stream_offset`` is the position of the first byte within the sender's
    byte stream (the paper's *sequence number* of the transfer); ``data`` is
    ``None`` in synthetic mode.  ``obj`` optionally carries a structured
    model payload (EXS control messages) that a real system would serialise
    into the bytes; the wire is still charged ``nbytes``.

    Chunks are created once per wire message, so this is a slotted plain
    class rather than a frozen dataclass (whose ``object.__setattr__``-based
    init dominated the synthetic-mode transfer path).  Treat instances as
    immutable all the same.
    """

    __slots__ = ("stream_offset", "nbytes", "data", "obj")

    def __init__(self, stream_offset: int, nbytes: int,
                 data: Optional[bytes] = None, obj: Any = None) -> None:
        if nbytes < 0:
            raise MemoryError_("negative chunk length")
        if data is not None and len(data) != nbytes:
            raise MemoryError_("chunk data length mismatch")
        self.stream_offset = stream_offset
        self.nbytes = nbytes
        self.data = data
        self.obj = obj

    @property
    def end_offset(self) -> int:
        return self.stream_offset + self.nbytes

    def split(self, nbytes: int) -> tuple["Chunk", "Chunk"]:
        """Split into a head of *nbytes* and the remaining tail."""
        if not (0 <= nbytes <= self.nbytes):
            raise MemoryError_(f"bad split {nbytes} of {self.nbytes}")
        data = self.data
        if data is None:
            # Synthetic mode: no byte slicing, just offset arithmetic.
            head = Chunk.__new__(Chunk)
            head.stream_offset = self.stream_offset
            head.nbytes = nbytes
            head.data = None
            head.obj = None
            tail = Chunk.__new__(Chunk)
            tail.stream_offset = self.stream_offset + nbytes
            tail.nbytes = self.nbytes - nbytes
            tail.data = None
            tail.obj = None
            return head, tail
        head = Chunk(self.stream_offset, nbytes, data[:nbytes])
        tail = Chunk(self.stream_offset + nbytes, self.nbytes - nbytes, data[nbytes:])
        return head, tail

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Chunk):
            return NotImplemented
        return (self.stream_offset == other.stream_offset
                and self.nbytes == other.nbytes
                and self.data == other.data
                and self.obj == other.obj)

    def __hash__(self) -> int:
        return hash((self.stream_offset, self.nbytes, self.data, self.obj))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "synthetic" if self.data is None else "real"
        return f"Chunk(stream_offset={self.stream_offset}, nbytes={self.nbytes}, {kind})"


class Buffer:
    """A simulated user/library memory area.

    Buffers are created through :meth:`MemoryArena.alloc`, which assigns a
    unique fake virtual address.
    """

    __slots__ = ("arena", "addr", "nbytes", "data", "label")

    def __init__(self, arena: "MemoryArena", addr: int, nbytes: int, real: bool, label: str) -> None:
        self.arena = arena
        self.addr = addr
        self.nbytes = nbytes
        self.data: Optional[bytearray] = bytearray(nbytes) if real else None
        self.label = label

    @property
    def is_real(self) -> bool:
        return self.data is not None

    def check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise MemoryError_(
                f"access [{offset}, {offset + nbytes}) outside buffer {self.label!r} "
                f"of {self.nbytes} bytes"
            )

    def write(self, offset: int, payload: bytes | bytearray | memoryview) -> None:
        """Write real bytes at *offset* (no-op on synthetic buffers)."""
        self.check_range(offset, len(payload))
        if self.data is not None:
            self.data[offset : offset + len(payload)] = payload

    def write_chunk(self, offset: int, chunk: Chunk) -> None:
        """Place a wire chunk into this buffer at *offset*."""
        self.check_range(offset, chunk.nbytes)
        if self.data is not None and chunk.data is not None:
            self.data[offset : offset + chunk.nbytes] = chunk.data

    def read(self, offset: int, nbytes: int) -> Optional[bytes]:
        """Return real bytes (or None for synthetic buffers)."""
        self.check_range(offset, nbytes)
        if self.data is None:
            return None
        return bytes(self.data[offset : offset + nbytes])

    def view(self, offset: int, nbytes: int) -> Optional[memoryview]:
        """Zero-copy view of a range (None for synthetic buffers)."""
        self.check_range(offset, nbytes)
        if self.data is None:
            return None
        return memoryview(self.data)[offset : offset + nbytes]

    def fill(self, payload: bytes) -> None:
        """Convenience: write *payload* at offset 0."""
        self.write(0, payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "real" if self.is_real else "synthetic"
        return f"<Buffer {self.label!r} addr=0x{self.addr:x} {self.nbytes}B {kind}>"


class MemoryArena:
    """Allocator of simulated buffers with unique fake virtual addresses."""

    #: page-ish alignment for fake addresses, for realistic-looking traces
    ALIGN = 4096

    def __init__(self, base_addr: int = 0x10_0000_0000) -> None:
        self._next_addr = base_addr
        self.allocated_bytes = 0
        self.buffer_count = 0

    def alloc(self, nbytes: int, *, real: bool = True, label: str = "") -> Buffer:
        """Allocate a buffer of *nbytes* bytes.

        ``real=False`` creates a synthetic (length-only) buffer for large
        benchmark runs.
        """
        if nbytes < 0:
            raise MemoryError_("negative allocation")
        addr = self._next_addr
        span = ((nbytes + self.ALIGN - 1) // self.ALIGN + 1) * self.ALIGN
        self._next_addr += span
        self.allocated_bytes += nbytes
        self.buffer_count += 1
        return Buffer(self, addr, nbytes, real, label or f"buf{self.buffer_count}")
