"""Simulated host memory: buffers, registration arena, and payload chunks.

Data transfers in the simulator can run in two modes:

* **real-bytes mode** — buffers carry a ``bytearray`` and transfers move
  actual bytes (used by the test suite to verify stream integrity end to
  end).  The data path slices with ``memoryview`` so no intermediate copies
  are made in the *Python* process — mirroring the zero-copy discipline of
  the system being modelled.
* **synthetic mode** — buffers carry no bytes, only lengths; transfers move
  :class:`Chunk` records tagged with their position in the byte stream.  The
  receiving side still checks stream continuity, so protocol-safety checking
  stays on even in the large benchmark runs, at negligible cost.

Virtual addresses are fake but unique per :class:`MemoryArena`, so RDMA-style
(addr, rkey) addressing behaves realistically.

Copy semantics (the zero-copy payload plane)
--------------------------------------------

Payload bytes are copied exactly **once** end to end: at the final placement
into receiver memory (:meth:`Buffer.write_chunk` / :meth:`Buffer.write`).
Everything upstream of placement hands around ``memoryview`` slices of the
sender's ``bytearray``:

* the sender slice (:meth:`Buffer.view` / :meth:`Buffer.gather`) is a view,
* the DMA fetch in the simulated HCA is a view,
* :meth:`Chunk.split` slices views instead of copying halves,
* wire messages, retransmission queues, and fault duplication all carry the
  same view object.

**Aliasing rule.**  A view into a sender buffer stays live on the wire until
the transport acknowledges the carrying work request (RC semantics: only the
completion tells the application it may reuse the memory).  Retransmission
and fault-injected duplication may re-deliver a frame carrying the view, but
the receiver's sequence check discards such frames *without* dereferencing
the payload, so a released view is never read.  The rule is enforced by a
debug assertion mode (:func:`set_pin_debug`, or the ``REPRO_ZC_DEBUG``
environment variable): every in-flight slice takes a :class:`ViewPin` on its
source range, writes into a pinned range raise, and placing a chunk whose
pin was already released raises.

A buffer can be the source of a write into *itself* (loopback-style reuse).
Plain ``bytearray`` slice assignment from an overlapping ``memoryview`` of
the same object is undefined-order in CPython, so :meth:`Buffer.write` and
:meth:`Buffer.write_chunk` detect a same-object source and snapshot it first
— overlapping writes behave as if the source had been read in full before
the first destination byte is stored (documented snapshot semantics; pure
Python cannot see view offsets, so the snapshot triggers on any same-object
source, overlapping or not).

:class:`CopyMeter` counts what actually happened — payload bytes copied,
views forwarded, pins outstanding — so tests can assert the paper's claim
literally: a direct transfer performs zero Python-level payload copies
before final placement.

Real ``bytearray`` backing is materialised lazily on first touch, so
buffers a run never reads or writes (e.g. the 16 MiB intermediate ring of a
connection that only ever takes the direct path) cost no zero-fill time.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Buffer",
    "Chunk",
    "CopyMeter",
    "MemoryArena",
    "MemoryError_",
    "ViewPin",
    "pin_debug_enabled",
    "set_pin_debug",
]


class MemoryError_(RuntimeError):
    """Out-of-bounds access or misuse of a simulated buffer."""


#: module-global debug switch for pin enforcement (see module docstring)
_PIN_DEBUG = os.environ.get("REPRO_ZC_DEBUG", "") not in ("", "0")


def set_pin_debug(enabled: bool) -> None:
    """Enable/disable the view-pinning debug assertions (module-global)."""
    global _PIN_DEBUG
    _PIN_DEBUG = bool(enabled)


def pin_debug_enabled() -> bool:
    """True when view-pinning assertions are active."""
    return _PIN_DEBUG


class CopyMeter:
    """Copy accounting for one connection's payload plane.

    Counts Python-level data movement only (payload bytes, not headers or
    control messages).  ``payload_*`` counters record actual copies —
    on the zero-copy plane that is exactly the final placements plus any
    deliberate staging copies (sender-copy mode).  ``view*`` counters record
    zero-copy forwards.  Pins track the aliasing rule (module docstring).
    """

    __slots__ = (
        "payload_copies",
        "payload_bytes_copied",
        "views_forwarded",
        "view_bytes_forwarded",
        "pins_total",
        "pins_outstanding",
        "pin_violations",
    )

    def __init__(self) -> None:
        self.payload_copies = 0
        self.payload_bytes_copied = 0
        self.views_forwarded = 0
        self.view_bytes_forwarded = 0
        self.pins_total = 0
        self.pins_outstanding = 0
        self.pin_violations = 0

    def count_copy(self, nbytes: int) -> None:
        self.payload_copies += 1
        self.payload_bytes_copied += nbytes

    def count_view(self, nbytes: int) -> None:
        self.views_forwarded += 1
        self.view_bytes_forwarded += nbytes

    def snapshot(self) -> dict:
        """Plain-dict view of all counters (for telemetry / reports)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CopyMeter copies={self.payload_copies}/{self.payload_bytes_copied}B "
            f"views={self.views_forwarded}/{self.view_bytes_forwarded}B "
            f"pins={self.pins_outstanding}/{self.pins_total}>"
        )


class ViewPin:
    """A live claim on ``[offset, offset+nbytes)`` of a source buffer.

    Created when a view of sender memory is handed to the transport
    (:meth:`Buffer.pin_range`), released when the transport acknowledgement
    frees the send window.  Idempotent release; in debug mode
    (:func:`set_pin_debug`) writes into pinned ranges and placement of
    released views raise :class:`MemoryError_`.
    """

    __slots__ = ("buffer", "offset", "nbytes", "released")

    def __init__(self, buffer: "Buffer", offset: int, nbytes: int) -> None:
        self.buffer = buffer
        self.offset = offset
        self.nbytes = nbytes
        self.released = False

    def release(self) -> None:
        if self.released:
            return
        self.released = True
        self.buffer._unpin(self)

    def overlaps(self, offset: int, nbytes: int) -> bool:
        return offset < self.offset + self.nbytes and self.offset < offset + nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self.released else "live"
        return f"<ViewPin {self.buffer.label!r}[{self.offset}:+{self.nbytes}] {state}>"


class Chunk:
    """A contiguous piece of a byte stream travelling on the wire.

    ``stream_offset`` is the position of the first byte within the sender's
    byte stream (the paper's *sequence number* of the transfer); ``data`` is
    ``None`` in synthetic mode and otherwise ``bytes`` *or* a ``memoryview``
    into the sender's buffer (the zero-copy plane — see the module
    docstring for the aliasing rule).  ``obj`` optionally carries a
    structured model payload (EXS control messages) that a real system would
    serialise into the bytes; the wire is still charged ``nbytes``.

    ``pin`` is the :class:`ViewPin` guarding a view payload's source range,
    if any; code that needs actual ``bytes`` (hashing, corruption injection,
    trace capture) must go through :meth:`materialize` rather than assuming
    ``data`` is ``bytes``.

    Chunks are created once per wire message, so this is a slotted plain
    class rather than a frozen dataclass (whose ``object.__setattr__``-based
    init dominated the synthetic-mode transfer path).  Treat instances as
    immutable all the same.
    """

    __slots__ = ("stream_offset", "nbytes", "data", "obj", "pin", "_digest")

    def __init__(self, stream_offset: int, nbytes: int,
                 data: Optional[bytes | memoryview] = None, obj: Any = None,
                 pin: Optional[ViewPin] = None) -> None:
        if nbytes < 0:
            raise MemoryError_("negative chunk length")
        if data is not None and len(data) != nbytes:
            raise MemoryError_("chunk data length mismatch")
        self.stream_offset = stream_offset
        self.nbytes = nbytes
        self.data = data
        self.obj = obj
        self.pin = pin
        self._digest: Optional[bytes] = None

    @property
    def end_offset(self) -> int:
        return self.stream_offset + self.nbytes

    def materialize(self) -> Optional[bytes]:
        """Return the payload as ``bytes`` (copying a view), or ``None``.

        The escape hatch for consumers that truly need owned bytes; the
        data path itself never calls this.
        """
        data = self.data
        if data is None or type(data) is bytes:
            return data
        return bytes(data)

    def content_digest(self) -> Optional[bytes]:
        """Lazy 16-byte content digest (cached); ``None`` in synthetic mode."""
        if self.data is None:
            return None
        digest = self._digest
        if digest is None:
            digest = self._digest = hashlib.blake2b(
                self.data, digest_size=16).digest()
        return digest

    def split(self, nbytes: int) -> tuple["Chunk", "Chunk"]:
        """Split into a head of *nbytes* and the remaining tail.

        Real payloads are split by *view slicing*: both halves alias the
        parent's memory (and share its pin) — no bytes are copied.
        """
        if not (0 <= nbytes <= self.nbytes):
            raise MemoryError_(f"bad split {nbytes} of {self.nbytes}")
        data = self.data
        head = Chunk.__new__(Chunk)
        head.stream_offset = self.stream_offset
        head.nbytes = nbytes
        head.obj = None
        head._digest = None
        tail = Chunk.__new__(Chunk)
        tail.stream_offset = self.stream_offset + nbytes
        tail.nbytes = self.nbytes - nbytes
        tail.obj = None
        tail._digest = None
        if data is None:
            # Synthetic mode: no byte slicing, just offset arithmetic.
            head.data = None
            head.pin = None
            tail.data = None
            tail.pin = None
            return head, tail
        if type(data) is not memoryview:
            data = memoryview(data)
        head.data = data[:nbytes]
        head.pin = self.pin
        tail.data = data[nbytes:]
        tail.pin = self.pin
        return head, tail

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Chunk):
            return NotImplemented
        if (self.stream_offset != other.stream_offset
                or self.nbytes != other.nbytes
                or self.obj != other.obj):
            return False
        if (self.data is None) != (other.data is None):
            return False
        return self.content_digest() == other.content_digest()

    def __hash__(self) -> int:
        # (position, length, lazy content digest): O(n) once per chunk
        # instead of on every hash, and view payloads stay hashable
        # (hashing a raw memoryview raises TypeError).  ``obj`` joins
        # equality but not the hash — control payloads are mutable
        # dataclasses.
        return hash((self.stream_offset, self.nbytes, self.content_digest()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "synthetic" if self.data is None else "real"
        return f"Chunk(stream_offset={self.stream_offset}, nbytes={self.nbytes}, {kind})"


class Buffer:
    """A simulated user/library memory area.

    Buffers are created through :meth:`MemoryArena.alloc`, which assigns a
    unique fake virtual address.  Real backing storage is materialised on
    first touch; ``meter`` (optional) is the :class:`CopyMeter` charged for
    data movement through this buffer.
    """

    __slots__ = ("arena", "addr", "nbytes", "label", "meter", "_data", "_real", "_pins")

    def __init__(self, arena: "MemoryArena", addr: int, nbytes: int, real: bool, label: str) -> None:
        self.arena = arena
        self.addr = addr
        self.nbytes = nbytes
        self.label = label
        self.meter: Optional[CopyMeter] = None
        self._real = real
        self._data: Optional[bytearray] = None
        self._pins: List[ViewPin] = []

    @property
    def is_real(self) -> bool:
        return self._real

    @property
    def data(self) -> Optional[bytearray]:
        """Backing storage (``None`` for synthetic buffers); lazily built."""
        data = self._data
        if data is None and self._real:
            data = self._data = bytearray(self.nbytes)
        return data

    def check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise MemoryError_(
                f"access [{offset}, {offset + nbytes}) outside buffer {self.label!r} "
                f"of {self.nbytes} bytes"
            )

    # -- pinning (aliasing rule) ----------------------------------------
    def pin_range(self, offset: int, nbytes: int) -> Optional[ViewPin]:
        """Pin ``[offset, offset+nbytes)`` while a view of it is in flight.

        Returns ``None`` for synthetic buffers.  The caller must
        :meth:`ViewPin.release` when the transport ack frees the range.
        """
        if not self._real:
            return None
        self.check_range(offset, nbytes)
        pin = ViewPin(self, offset, nbytes)
        self._pins.append(pin)
        meter = self.meter
        if meter is not None:
            meter.pins_total += 1
            meter.pins_outstanding += 1
        return pin

    def _unpin(self, pin: ViewPin) -> None:
        try:
            self._pins.remove(pin)
        except ValueError:  # pragma: no cover - defensive
            pass
        if self.meter is not None:
            self.meter.pins_outstanding -= 1

    def _assert_unpinned(self, offset: int, nbytes: int) -> None:
        for pin in self._pins:
            if pin.overlaps(offset, nbytes):
                if self.meter is not None:
                    self.meter.pin_violations += 1
                raise MemoryError_(
                    f"write to [{offset}, {offset + nbytes}) of buffer "
                    f"{self.label!r} overlaps in-flight view {pin!r} — the "
                    "range may not be reused until its transport ack"
                )

    # -- writes (the single placement copy) -----------------------------
    def write(self, offset: int, payload: bytes | bytearray | memoryview) -> None:
        """Write real bytes at *offset* (no-op on synthetic buffers).

        A ``memoryview`` source aliasing this same buffer is snapshotted
        first (overlap-safe semantics; see module docstring).
        """
        nbytes = len(payload)
        self.check_range(offset, nbytes)
        if not self._real:
            return
        data = self.data
        if _PIN_DEBUG and self._pins:
            self._assert_unpinned(offset, nbytes)
        if type(payload) is memoryview and payload.obj is data:
            payload = bytes(payload)
        meter = self.meter
        if meter is not None:
            meter.count_copy(nbytes)
        data[offset : offset + nbytes] = payload

    def write_chunk(self, offset: int, chunk: Chunk) -> None:
        """Place a wire chunk into this buffer at *offset*.

        This is the zero-copy plane's one real copy: payload bytes land in
        receiver memory here and nowhere else.
        """
        self.check_range(offset, chunk.nbytes)
        payload = chunk.data
        if not self._real or payload is None:
            return
        if _PIN_DEBUG:
            pin = chunk.pin
            if pin is not None and pin.released:
                meter = self.meter
                if meter is not None:
                    meter.pin_violations += 1
                raise MemoryError_(
                    f"placing chunk at stream offset {chunk.stream_offset} whose "
                    f"source pin {pin!r} was already released — the sender may "
                    "have reused the memory"
                )
            if self._pins:
                self._assert_unpinned(offset, chunk.nbytes)
        data = self.data
        if type(payload) is memoryview and payload.obj is data:
            payload = bytes(payload)
        meter = self.meter
        if meter is not None:
            meter.count_copy(chunk.nbytes)
        data[offset : offset + chunk.nbytes] = payload

    def scatter_write(self, offset: int, pieces: Iterable[bytes | bytearray | memoryview]) -> None:
        """Write *pieces* contiguously starting at *offset* (gather → place).

        Each piece is range-checked, overlap-checked, and metered like
        :meth:`write`; receiver-side copy-out uses this to place a gathered
        list of ring views in one call.
        """
        dest = offset
        for piece in pieces:
            self.write(dest, piece)
            dest += len(piece)

    # -- reads ----------------------------------------------------------
    def read(self, offset: int, nbytes: int) -> Optional[bytes]:
        """Return real bytes (or None for synthetic buffers).

        This *materialises* (one copy); the data path uses :meth:`view` /
        :meth:`gather` instead.
        """
        self.check_range(offset, nbytes)
        if not self._real:
            return None
        return bytes(memoryview(self.data)[offset : offset + nbytes])

    def view(self, offset: int, nbytes: int) -> Optional[memoryview]:
        """Zero-copy view of a range (None for synthetic buffers)."""
        self.check_range(offset, nbytes)
        if not self._real:
            return None
        if self.meter is not None:
            self.meter.count_view(nbytes)
        return memoryview(self.data)[offset : offset + nbytes]

    def gather(self, segments: Iterable[Tuple[int, int]]) -> Optional[List[memoryview]]:
        """Zero-copy views for ``(offset, nbytes)`` *segments* (scatter/gather).

        Returns ``None`` for synthetic buffers.
        """
        if not self._real:
            return None
        data = memoryview(self.data)
        meter = self.meter
        out: List[memoryview] = []
        for offset, nbytes in segments:
            self.check_range(offset, nbytes)
            if meter is not None:
                meter.count_view(nbytes)
            out.append(data[offset : offset + nbytes])
        return out

    def fill(self, payload: bytes) -> None:
        """Convenience: write *payload* at offset 0."""
        self.write(0, payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "real" if self.is_real else "synthetic"
        return f"<Buffer {self.label!r} addr=0x{self.addr:x} {self.nbytes}B {kind}>"


class MemoryArena:
    """Allocator of simulated buffers with unique fake virtual addresses."""

    #: page-ish alignment for fake addresses, for realistic-looking traces
    ALIGN = 4096

    def __init__(self, base_addr: int = 0x10_0000_0000) -> None:
        self._next_addr = base_addr
        self.allocated_bytes = 0
        self.buffer_count = 0

    def alloc(self, nbytes: int, *, real: bool = True, label: str = "") -> Buffer:
        """Allocate a buffer of *nbytes* bytes.

        ``real=False`` creates a synthetic (length-only) buffer for large
        benchmark runs.
        """
        if nbytes < 0:
            raise MemoryError_("negative allocation")
        addr = self._next_addr
        span = ((nbytes + self.ALIGN - 1) // self.ALIGN + 1) * self.ALIGN
        self._next_addr += span
        self.allocated_bytes += nbytes
        self.buffer_count += 1
        return Buffer(self, addr, nbytes, real, label or f"buf{self.buffer_count}")
