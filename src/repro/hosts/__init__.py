"""Host machine models: CPU cost accounting and simulated memory."""

from .cpu import Cpu, CpuCostModel
from .host import Host
from .memory import (
    Buffer,
    Chunk,
    CopyMeter,
    MemoryArena,
    MemoryError_,
    ViewPin,
    pin_debug_enabled,
    set_pin_debug,
)

__all__ = [
    "Buffer",
    "Chunk",
    "CopyMeter",
    "Cpu",
    "CpuCostModel",
    "Host",
    "MemoryArena",
    "MemoryError_",
    "ViewPin",
    "pin_debug_enabled",
    "set_pin_debug",
]
