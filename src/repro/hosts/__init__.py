"""Host machine models: CPU cost accounting and simulated memory."""

from .cpu import Cpu, CpuCostModel
from .host import Host
from .memory import Buffer, Chunk, MemoryArena, MemoryError_

__all__ = [
    "Buffer",
    "Chunk",
    "Cpu",
    "CpuCostModel",
    "Host",
    "MemoryArena",
    "MemoryError_",
]
