"""Host CPU model: serialized execution with busy-time accounting.

The paper's receiver-side CPU usage (its Fig. 10) comes from one effect: in
indirect mode the EXS library thread spends its time ``memcpy``-ing data out
of the intermediate buffer, while in direct mode the HCA places data without
CPU involvement and the thread only handles completion events.

:class:`Cpu` models the *library/application core* of a host: a capacity-1
FIFO resource.  Work items occupy the core for a duration given by the
:class:`CpuCostModel` and the busy time is accumulated, from which
utilisation over a measurement window is computed exactly (partial overlap
of a work interval with the window is accounted for).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Tuple

from ..simnet import Event, Resource, Simulator

__all__ = ["Cpu", "CpuCostModel"]


@dataclass(frozen=True)
class CpuCostModel:
    """Per-operation CPU costs (nanoseconds) for the EXS software path.

    These constants are *calibration knobs* of the simulation; the defaults
    were chosen so that FDR-InfiniBand-profile runs land in the paper's
    reported ranges (see ``repro.bench.profiles``).
    """

    #: cost to post one send/recv work request (driver + doorbell)
    post_wr_ns: int = 200
    #: cost to reap and dispatch one completion-queue entry
    completion_ns: int = 350
    #: cost to process one incoming control message (ADVERT/ACK)
    control_ns: int = 250
    #: cost to build and post one outgoing control message
    send_control_ns: int = 300
    #: application-level cost to handle one event-queue completion and repost
    app_repost_ns: int = 500
    #: fixed per-copy overhead added to the byte-rate cost of a memcpy
    copy_setup_ns: int = 150

    def copy_ns(self, nbytes: int, copy_bandwidth_bps: float) -> int:
        """Duration of a memcpy of *nbytes* at the host's copy bandwidth."""
        if nbytes <= 0:
            return self.copy_setup_ns
        return self.copy_setup_ns + int(round(nbytes * 8 * 1e9 / copy_bandwidth_bps))


class Cpu:
    """Single-core FIFO CPU with exact busy-time accounting."""

    def __init__(self, sim: Simulator, costs: CpuCostModel | None = None) -> None:
        self.sim = sim
        self.costs = costs or CpuCostModel()
        self._core = Resource(sim, capacity=1)
        #: closed work intervals [(start, end)], merged lazily
        self._intervals: List[Tuple[int, int]] = []
        self._busy_ns_total = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def work(self, duration_ns: int) -> Generator[Event, Any, None]:
        """Sub-process: occupy the core for *duration_ns* and account it.

        Usage: ``yield from cpu.work(ns)`` from inside a simulation process.
        """
        if duration_ns < 0:
            raise ValueError("negative CPU work")
        core = self._core
        if core.try_acquire():
            # Free core: claim it synchronously.  A request() grant costs a
            # same-instant kernel event before the holder resumes; on busy
            # hosts that round-trip doubles the event count of every work
            # item, so the uncontended path skips it.  Contended requests
            # keep strict FIFO order through the event queue below.
            start = self.sim.now
            try:
                if duration_ns:
                    yield self.sim.timeout(duration_ns)
            finally:
                end = self.sim.now
                self._record(start, end)
                core.release_slot()
            return
        req = core.request()
        yield req
        start = self.sim.now
        try:
            if duration_ns:
                yield self.sim.timeout(duration_ns)
        finally:
            end = self.sim.now
            self._record(start, end)
            core.release(req)

    def _record(self, start: int, end: int) -> None:
        if end > start:
            self._intervals.append((start, end))
            self._busy_ns_total += end - start

    def record_busy(self, start: int, end: int) -> None:
        """Account busy time that did not go through :meth:`work` (e.g. a
        thread spinning in a busy-poll loop)."""
        self._record(start, end)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def busy_ns_total(self) -> int:
        return self._busy_ns_total

    def busy_ns_between(self, start: int, end: int) -> int:
        """Busy nanoseconds overlapping the window ``[start, end]``."""
        if end <= start:
            return 0
        total = 0
        for s, e in self._intervals:
            lo = max(s, start)
            hi = min(e, end)
            if hi > lo:
                total += hi - lo
        return total

    def utilization_between(self, start: int, end: int) -> float:
        """Fraction of ``[start, end]`` the core was busy (0.0–1.0)."""
        if end <= start:
            return 0.0
        return self.busy_ns_between(start, end) / (end - start)

    @property
    def queue_length(self) -> int:
        return self._core.queue_length
