"""Receiver half of a stream (SOCK_STREAM) connection.

Executes the decisions of
:class:`repro.core.receiver_algo.ReceiverAlgorithm`: advertising user
receive buffers, accounting direct arrivals (zero-copy — the HCA already
placed the bytes), copying indirect arrivals out of the intermediate ring
into user memory (charging the host CPU, which is the paper's receive-side
CPU-usage story), acknowledging freed ring space, and delivering
``exs_recv()`` completions.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, List, Optional

from ..core import CopyPlan, ProtocolMode, ReceiverAlgorithm, ReceiverRing, RingSegment
from ..core.invariants import require
from ..hosts.memory import Buffer
from .control import AdvertMsg, RingAckMsg
from .eventqueue import ExsEvent, ExsEventType
from .flags import MsgFlags

if TYPE_CHECKING:  # pragma: no cover
    from .connection import ExsConnection

__all__ = ["UserRecv", "StreamReceiverHalf"]


@dataclass
class UserRecv:
    """One pending ``exs_recv()`` request."""

    buffer: Buffer
    mr: Any
    offset: int
    nbytes: int
    waitall: bool
    eq: Any
    context: Any = None
    posted_at_ns: int = 0


class StreamReceiverHalf:
    """Inbound direction of one EXS stream socket."""

    def __init__(self, conn: "ExsConnection", ring_buffer: Buffer, ring_mr: Any) -> None:
        self.conn = conn
        self.ring_buffer = ring_buffer
        self.ring_mr = ring_mr
        self.algo = ReceiverAlgorithm(
            ReceiverRing(ring_buffer.nbytes),
            mode=conn.options.mode,
            stats=conn.rx_stats,
        )
        #: cumulative copied-out count included in the last ring ACK
        self._last_acked_copied = 0
        #: end-of-stream sequence number from the peer's FIN, if received
        self.eof_seq: Optional[int] = None
        #: measurement hooks (throughput equation (1) end point)
        self.first_arrival_ns: Optional[int] = None
        self.last_delivery_ns: Optional[int] = None
        self.bytes_delivered_total = 0

    # ------------------------------------------------------------------
    # user-facing
    # ------------------------------------------------------------------
    def submit(self, urecv: UserRecv) -> Optional[AdvertMsg]:
        """Queue an ``exs_recv``; returns the ADVERT to enqueue, if any."""
        if self._stream_finished():
            # End of stream already fully delivered: immediate EOF.
            urecv.eq.post(
                ExsEvent(kind=ExsEventType.RECV, socket=self.conn.socket, nbytes=0,
                         eof=True, context=urecv.context)
            )
            return None
        entry, advert = self.algo.post_recv(
            urecv.nbytes,
            waitall=urecv.waitall,
            context=urecv,
            advert_remote_addr=urecv.mr.addr + urecv.offset,
            advert_rkey=urecv.mr.rkey,
        )
        if advert is not None:
            return AdvertMsg(advert=advert)
        return None

    # ------------------------------------------------------------------
    # engine-facing: arrivals
    # ------------------------------------------------------------------
    def on_direct_arrival(self, advert_id: int, nbytes: int, stream_offset: int, remote_addr: int) -> None:
        """A direct WWI landed in advertised user memory (zero copy)."""
        if self.first_arrival_ns is None:
            self.first_arrival_ns = self.conn.sim.now
        head = self.algo.head_entry
        require(head is not None and head.advert is not None,
                "Theorem 1", "direct arrival with no advertised head entry")
        buffer_offset = remote_addr - head.advert.remote_addr
        done = self.algo.on_direct_arrival(stream_offset, nbytes, advert_id, buffer_offset)
        for entry in done:
            self._deliver(entry)

    def on_indirect_arrival(self, nbytes: int, stream_offset: int, remote_addr: int) -> None:
        """An indirect WWI landed in the intermediate ring."""
        if self.first_arrival_ns is None:
            self.first_arrival_ns = self.conn.sim.now
        seg = RingSegment(remote_addr - self.ring_mr.addr, nbytes)
        self.algo.on_indirect_arrival(stream_offset, seg)

    # ------------------------------------------------------------------
    # engine-facing: copy pump
    # ------------------------------------------------------------------
    def next_copy(self) -> Optional[CopyPlan]:
        return self.algo.next_copy()

    def execute_copy(self, plan: CopyPlan):
        """Perform one copy out of the ring (generator; charges CPU time)."""
        conn = self.conn
        # The memcpy occupies the library thread — this cost is the origin
        # of the indirect protocol's high receiver CPU usage (paper Fig. 10).
        if conn.tracer is not None:
            # algo.seq is the stream position of the ring head — the copied
            # range is [seq, seq + nbytes), which is what span stitching uses
            conn.trace("copy", nbytes=plan.nbytes, seq=self.algo.seq)
        yield from conn.host.cpu.work(conn.host.copy_ns(plan.nbytes))
        urecv: UserRecv = plan.entry.context
        # Gather zero-copy ring views, scatter-write them into user memory:
        # the indirect path's one real memcpy (and its metered copy).
        views = self.ring_buffer.gather(
            (seg.offset, seg.nbytes) for seg in plan.ring_segments)
        if views is not None:
            urecv.buffer.scatter_write(urecv.offset + plan.dest_offset, views)
        for entry in self.algo.on_copied(plan):
            self._deliver(entry)
        self._maybe_queue_ring_ack()

    def _maybe_queue_ring_ack(self) -> None:
        opts = self.conn.options
        copied = self.algo.ring.copied_total
        owed = copied - self._last_acked_copied
        if owed <= 0:
            return
        threshold = max(1, self.algo.ring.capacity // opts.ack_divisor)
        if owed >= threshold or (opts.ack_on_empty and self.algo.ring.is_empty):
            self._last_acked_copied = copied
            self.conn.queue_control(RingAckMsg(copied_cum=copied))
            self.conn.rx_stats.ring_acks_sent += 1

    # ------------------------------------------------------------------
    # engine-facing: advert flush / EOF
    # ------------------------------------------------------------------
    def flush_adverts(self) -> List[AdvertMsg]:
        pairs = self.algo.flush_adverts(
            lambda entry: (entry.context.mr.addr + entry.context.offset, entry.context.mr.rkey)
        )
        return [AdvertMsg(advert=advert) for _entry, advert in pairs]

    def on_fin(self, final_seq: int) -> None:
        """Record the peer's FIN; idempotent.

        A FIN retransmitted by the reliability layer (or replayed by the
        dup fault) after the stream finished must be a no-op — re-recording
        it could double-fire EOF delivery through :meth:`pump_eof`.
        """
        require(self.eof_seq is None or self.eof_seq == final_seq, "FIN", "conflicting FINs")
        if self.eof_seq is not None:
            return
        self.eof_seq = final_seq

    def pump_eof(self) -> bool:
        """Deliver EOF completions once the stream is fully consumed."""
        if not self._stream_finished():
            return False
        progressed = False
        while self.algo.queue:
            entry = self.algo.queue[0]
            # Partial WAITALL receives complete short at end of stream.
            self.algo.queue.popleft()
            entry.completed = True
            self.bytes_delivered_total += entry.filled
            if self.conn.tracer is not None:
                self.conn.trace("deliver", nbytes=entry.filled, eof=True)
            urecv: UserRecv = entry.context
            urecv.eq.post(
                ExsEvent(
                    kind=ExsEventType.RECV,
                    socket=self.conn.socket,
                    nbytes=entry.filled,
                    eof=True,
                    context=urecv.context,
                )
            )
            progressed = True
        return progressed

    def fail_pending(self):
        """Connection died: drain every pending recv for ERROR delivery."""
        out = []
        while self.algo.queue:
            entry = self.algo.queue.popleft()
            urecv: UserRecv = entry.context
            out.append((urecv.eq, urecv.context))
        return out

    def _stream_finished(self) -> bool:
        return (
            self.eof_seq is not None
            and self.algo.seq == self.eof_seq
            and self.algo.ring.is_empty
        )

    # ------------------------------------------------------------------
    def _deliver(self, entry) -> None:
        urecv: UserRecv = entry.context
        self.last_delivery_ns = self.conn.sim.now
        self.bytes_delivered_total += entry.filled
        if self.conn.tracer is not None:
            # deliveries are in stream order (RC), so spans can recover the
            # exact delivered range from the cumulative nbytes
            self.conn.trace("deliver", nbytes=entry.filled)
        urecv.eq.post(
            ExsEvent(
                kind=ExsEventType.RECV,
                socket=self.conn.socket,
                nbytes=entry.filled,
                context=urecv.context,
            )
        )
