"""Send-credit accounting (paper §II-B).

"Each side of an RDMA connection will post *n* RECV transactions at
startup, prior to connection establishment.  Each side then gives the other
*n* send credits.  A sender consumes a credit whenever it performs an
action, such as SEND, that would consume a RECV at the receiver.  The
receiver returns credits by periodic acknowledgment messages."

Both control SENDs and WRITE-WITH-IMM data transfers consume a credit.
Credits are returned as a **cumulative repost counter** piggybacked on
every outbound control message (plus an explicit update when there is no
other traffic), which makes the protocol idempotent under any delivery
timing.  A small reserve is held back for control messages so the data
path can never starve the control path into deadlock.
"""

from __future__ import annotations

__all__ = ["CreditManager", "CreditError"]


class CreditError(RuntimeError):
    """Credit accounting was violated (would have caused RNR on hardware)."""


class CreditManager:
    """Tracks both directions of credit flow for one connection endpoint."""

    def __init__(self, initial_remote: int, control_reserve: int = 2) -> None:
        if initial_remote <= control_reserve:
            raise CreditError("initial credits must exceed the control reserve")
        #: credits the peer granted us at startup (its posted RECV count)
        self.initial_remote = initial_remote
        self.control_reserve = control_reserve
        #: messages we have sent that consumed a peer RECV
        self.consumed_total = 0
        #: peer's cumulative repost counter, as last reported to us
        self.peer_repost_cum = 0

        #: RECVs we have reposted locally (cumulative), to be granted to peer
        self.local_repost_cum = 0
        #: the repost count we last told the peer about
        self.granted_cum = 0

    # -- outbound (are we allowed to send?) ------------------------------
    @property
    def available(self) -> int:
        return self.initial_remote + self.peer_repost_cum - self.consumed_total

    def can_send_data(self, n: int = 1) -> bool:
        """True if *n* data messages may be sent, keeping the control reserve."""
        return self.available - n >= self.control_reserve

    def can_send_control(self) -> bool:
        return self.available >= 1

    def consume(self, n: int = 1) -> None:
        if n > self.available:
            raise CreditError(f"consuming {n} credits with only {self.available} available")
        self.consumed_total += n

    def on_peer_grant(self, repost_cum: int) -> bool:
        """Process a (possibly stale) cumulative grant; True if it helped."""
        if repost_cum <= self.peer_repost_cum:
            return False
        self.peer_repost_cum = repost_cum
        return True

    # -- inbound (credits we owe the peer) --------------------------------
    def on_local_repost(self, n: int = 1) -> None:
        self.local_repost_cum += n

    def grant_now(self) -> int:
        """Value to piggyback on an outbound control message."""
        self.granted_cum = self.local_repost_cum
        return self.granted_cum

    def ungranted(self) -> int:
        """Reposts the peer has not yet been told about."""
        return self.local_repost_cum - self.granted_cum
