"""SOCK_SEQPACKET (message-oriented) mode (paper §II-C).

"The RDMA protocol for message-oriented connections is simple.  When the
application calls exs_recv(), the EXS library at the receiver sends an
advertisement (ADVERT) to the EXS library at the sender with the virtual
memory address, length, and RDMA remote key of the receiver's memory area.
When the user at the other end calls exs_send() and an ADVERT has reached
the EXS library at that end, the sender posts a WWI request with the data."

Every transfer is direct (zero-copy); there is no intermediate buffer, no
phases, no sequence estimates.  One ``exs_send`` matches one ``exs_recv``;
if the message is larger than the advertised buffer, only the part that
fits is delivered and the completion is flagged *truncated* — the
message-oriented data-loss hazard the paper's introduction warns about
when porting stream applications.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, Optional

from ..core.advert import Advert
from ..core.invariants import require
from ..hosts.memory import Buffer, Chunk
from ..verbs import SGE, Opcode, SendWR
from .control import AdvertMsg, DataNotifyMsg, encode_direct_imm
from .eventqueue import ExsEvent, ExsEventType

if TYPE_CHECKING:  # pragma: no cover
    from .connection import ExsConnection

__all__ = ["SeqPacketSenderHalf", "SeqPacketReceiverHalf"]


@dataclass
class _PendingSend:
    buffer: Buffer
    mr: Any
    offset: int
    nbytes: int
    eq: Any
    context: Any
    sent_bytes: int = 0
    truncated: bool = False


@dataclass
class _PendingRecv:
    advert: Advert
    urecv: Any  # UserRecv


class SeqPacketSenderHalf:
    """Outbound direction: one WWI per message, gated on ADVERTs."""

    def __init__(self, conn: "ExsConnection") -> None:
        self.conn = conn
        self.pending: Deque[_PendingSend] = deque()
        #: posted to the transport but not yet acked (FIFO)
        self.unacked: Deque[_PendingSend] = deque()
        self.adverts: Deque[Advert] = deque()
        self.fin_sent = False
        self.fin_acked = True  # seqpacket close is immediate in this model
        self.first_post_ns: Optional[int] = None
        self.last_ack_ns: Optional[int] = None
        self.bytes_acked_total = 0
        self.messages_sent = 0

    def configure_peer(self, **_kw: Any) -> None:  # symmetric API with stream half
        pass

    def submit(self, buffer, mr, offset, nbytes, eq, context) -> _PendingSend:
        ps = _PendingSend(buffer, mr, offset, nbytes, eq, context)
        self.pending.append(ps)
        return ps

    def on_advert(self, advert: Advert) -> None:
        self.conn.tx_stats.adverts_received += 1
        self.adverts.append(advert)

    def on_ring_ack(self, copied_cum: int) -> None:  # pragma: no cover - defensive
        raise RuntimeError("ring ACK on a SOCK_SEQPACKET connection")

    def pump(self):
        progressed = False
        while self.pending and self.adverts:
            if not self.conn.credits.can_send_data(1):
                break
            ps = self.pending.popleft()
            advert = self.adverts.popleft()
            nbytes = min(ps.nbytes, advert.length)
            ps.truncated = ps.nbytes > advert.length
            ps.sent_bytes = nbytes
            self.messages_sent += 1
            # Zero-copy slice, pinned until the transport ack (released in
            # ExsConnection._handle_wc) — same aliasing rule as the stream
            # sender half.
            view = ps.buffer.view(ps.offset, nbytes)
            pin = ps.buffer.pin_range(ps.offset, nbytes) if view is not None else None
            if self.first_post_ns is None:
                self.first_post_ns = self.conn.sim.now
            chunk = Chunk(self.messages_sent, nbytes, view, pin=pin)
            imm = encode_direct_imm(advert.advert_id)
            yield from self.conn.charge(self.conn.costs.post_wr_ns)
            if self.conn.options.native_write_with_imm:
                self.conn.credits.consume(1)
                self.conn.qp.post_send(SendWR(
                    opcode=Opcode.RDMA_WRITE_WITH_IMM,
                    wr_id=self.conn.next_wr_id(),
                    sge=SGE(ps.mr.addr + ps.offset, nbytes, ps.mr.lkey),
                    remote_addr=advert.remote_addr,
                    rkey=advert.rkey,
                    imm_data=imm,
                    payload=chunk,
                    context=("data", ps, chunk),
                ))
            else:
                # older-iWARP emulation (paper §II-B): WRITE + notify SEND
                self.conn.qp.post_send(SendWR(
                    opcode=Opcode.RDMA_WRITE,
                    wr_id=self.conn.next_wr_id(),
                    sge=SGE(ps.mr.addr + ps.offset, nbytes, ps.mr.lkey),
                    remote_addr=advert.remote_addr,
                    rkey=advert.rkey,
                    payload=chunk,
                    context=("data", ps, chunk),
                ))
                self.conn.queue_control(DataNotifyMsg(
                    imm_data=imm,
                    nbytes=nbytes,
                    stream_offset=chunk.stream_offset,
                    remote_addr=advert.remote_addr,
                ))
            self.conn.tx_stats.direct_transfers += 1
            self.conn.tx_stats.direct_bytes += nbytes
            self.unacked.append(ps)
            progressed = True
        return progressed

    def on_data_acked(self, ps: _PendingSend, nbytes: int) -> None:
        try:
            self.unacked.remove(ps)
        except ValueError:
            pass
        self.bytes_acked_total += nbytes
        self.last_ack_ns = self.conn.sim.now
        ps.eq.post(
            ExsEvent(
                kind=ExsEventType.SEND,
                socket=self.conn.socket,
                nbytes=nbytes,
                truncated=ps.truncated,
                context=ps.context,
            )
        )

    def fail_pending(self):
        """Connection died: drain every incomplete send for ERROR delivery."""
        out = [(ps.eq, ps.context) for ps in self.unacked]
        out.extend((ps.eq, ps.context) for ps in self.pending)
        self.unacked.clear()
        self.pending.clear()
        return out

    @property
    def final_seq(self) -> int:
        """For SOCK_SEQPACKET the FIN carries the message count."""
        return self.messages_sent

    @property
    def drained(self) -> bool:
        return not self.pending


class SeqPacketReceiverHalf:
    """Inbound direction: advert every receive, complete on arrival."""

    def __init__(self, conn: "ExsConnection") -> None:
        self.conn = conn
        self.queue: Deque[_PendingRecv] = deque()
        self._advert_ids = itertools.count(1)
        self.eof_seq: Optional[int] = None
        self.first_arrival_ns: Optional[int] = None
        self.last_delivery_ns: Optional[int] = None
        self.bytes_delivered_total = 0

    def submit(self, urecv) -> Optional[AdvertMsg]:
        if self.eof_seq is not None:
            urecv.eq.post(
                ExsEvent(kind=ExsEventType.RECV, socket=self.conn.socket, nbytes=0,
                         eof=True, context=urecv.context)
            )
            return None
        advert = Advert(
            advert_id=next(self._advert_ids),
            seq=0,
            length=urecv.nbytes,
            phase=0,
            waitall=urecv.waitall,
            remote_addr=urecv.mr.addr + urecv.offset,
            rkey=urecv.mr.rkey,
        )
        self.queue.append(_PendingRecv(advert, urecv))
        self.conn.rx_stats.adverts_sent += 1
        return AdvertMsg(advert=advert)

    def on_direct_arrival(self, advert_id: int, nbytes: int, stream_offset: int, remote_addr: int) -> None:
        require(len(self.queue) > 0, "seqpacket order", "message arrived with no pending recv")
        pr = self.queue.popleft()
        require(
            pr.advert.advert_id == advert_id,
            "seqpacket order",
            f"message for advert {advert_id} but head is {pr.advert.advert_id}",
        )
        if self.first_arrival_ns is None:
            self.first_arrival_ns = self.conn.sim.now
        self.last_delivery_ns = self.conn.sim.now
        self.bytes_delivered_total += nbytes
        pr.urecv.eq.post(
            ExsEvent(
                kind=ExsEventType.RECV,
                socket=self.conn.socket,
                nbytes=nbytes,
                context=pr.urecv.context,
            )
        )

    def on_indirect_arrival(self, *_a: Any) -> None:  # pragma: no cover - defensive
        raise RuntimeError("indirect transfer on a SOCK_SEQPACKET connection")

    # engine-compatibility no-ops ----------------------------------------
    def next_copy(self):
        return None

    def execute_copy(self, plan):  # pragma: no cover - never called
        raise RuntimeError("SOCK_SEQPACKET has no intermediate buffer")
        yield  # unreachable; keeps this a generator

    def flush_adverts(self):
        return []

    def fail_pending(self):
        """Connection died: drain every pending recv for ERROR delivery."""
        out = [(pr.urecv.eq, pr.urecv.context) for pr in self.queue]
        self.queue.clear()
        return out

    def on_fin(self, final_seq: int) -> None:
        self.eof_seq = final_seq

    def pump_eof(self) -> bool:
        if self.eof_seq is None:
            return False
        progressed = False
        while self.queue:
            pr = self.queue.popleft()
            pr.urecv.eq.post(
                ExsEvent(kind=ExsEventType.RECV, socket=self.conn.socket, nbytes=0,
                         eof=True, context=pr.urecv.context)
            )
            progressed = True
        return progressed
