"""Socket types, message flags, and per-socket options for UNH EXS.

UNH EXS implements the Extended Sockets API (ES-API): a sockets-like,
explicitly asynchronous interface.  The subset modelled here is the one the
paper uses: connected ``SOCK_STREAM`` and ``SOCK_SEQPACKET`` sockets, the
``MSG_WAITALL`` receive flag, and the experiment flags the blast tool uses
to force the direct-only / indirect-only baseline protocols.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..core.modes import ProtocolMode

__all__ = [
    "SocketType",
    "MsgFlags",
    "ExsSocketOptions",
    "TRANSPORT_WWI",
    "TRANSPORT_EAGER_RENDEZVOUS",
]

#: paper protocol: direct/indirect RDMA WRITE WITH IMM with ADVERTs
TRANSPORT_WWI = "wwi"
#: MPICH2-over-IB style SEND/RECV: eager copy below a threshold,
#: RTS/CTS rendezvous into registered user memory above it
TRANSPORT_EAGER_RENDEZVOUS = "eager_rendezvous"


class SocketType(enum.Enum):
    """``type`` argument of ``exs_socket()``."""

    #: byte-stream semantics (TCP-like) — the subject of the paper
    SOCK_STREAM = "stream"
    #: message semantics (one exs_send matches one exs_recv)
    SOCK_SEQPACKET = "seqpacket"


class MsgFlags(enum.Flag):
    """Flags for ``exs_send`` / ``exs_recv``."""

    NONE = 0
    #: receiver: complete only when the user buffer is completely full
    MSG_WAITALL = enum.auto()


@dataclass(frozen=True)
class ExsSocketOptions:
    """Tunables of one EXS socket (library-internal knobs in the real EXS).

    The defaults mirror the configuration used for the paper's experiments
    as far as it is documented; undocumented constants (intermediate buffer
    size, credit count, ACK cadence) are stated here explicitly and
    exercised by the ablation benchmarks.
    """

    #: stream protocol variant (dynamic, or one of the two baselines)
    mode: ProtocolMode = ProtocolMode.DYNAMIC
    #: data-plane strategy for SOCK_STREAM: the paper's WWI protocol
    #: (``"wwi"``) or the eager/rendezvous SEND-RECV alternative
    #: (``"eager_rendezvous"``) used by the transport bake-off.  ``None``
    #: (the default) resolves at connection time to the
    #: ``REPRO_TRANSPORT`` environment variable, falling back to ``"wwi"``
    #: — which is how the CI variant matrix forces a transport across an
    #: unmodified test suite.
    transport: Optional[str] = None
    #: eager/rendezvous only: largest message sent eagerly (copied through
    #: the receiver's bounce slots); larger messages use RTS/CTS
    eager_threshold: int = 16 * 1024
    #: capacity of the hidden receive-side intermediate buffer
    ring_capacity: int = 16 * 1024 * 1024
    #: receive WRs posted at startup == send credits granted to the peer
    credits: int = 128
    #: send a buffer ACK whenever this fraction of the ring has been copied
    #: out since the last ACK (1/4 of the capacity by default) ...
    ack_divisor: int = 4
    #: ... and always when the ring drains empty.
    ack_on_empty: bool = True
    #: credits reserved for control messages (avoids control/data deadlock)
    control_credit_reserve: int = 2
    #: send an explicit credit update after this many recv reposts with no
    #: other outbound control traffic
    credit_update_threshold: Optional[int] = None  # default: credits // 2
    #: allocate real byte-carrying buffers (False = synthetic length-only
    #: payloads for large benchmark runs; protocol checking stays on)
    real_data: bool = True
    #: use native RDMA WRITE WITH IMM (True, InfiniBand/RoCE/new iWARP).
    #: False emulates older iWARP hardware per paper §II-B: every data
    #: transfer becomes an RDMA WRITE followed by a small notification SEND.
    native_write_with_imm: bool = True
    #: busy-poll the completion queue instead of sleeping on the completion
    #: channel (paper §IV-B used event notification because "most messages
    #: in this study are large enough that there is little advantage to
    #: busy polling"); polling removes the OS wake-up latency at the cost
    #: of a spinning core.
    busy_poll: bool = False
    #: SDP-BCopy / rsockets-style send-side staging: exs_send completes as
    #: soon as the data has been copied into a pre-registered library
    #: buffer (the "fast send response benefit of TCP-style buffering" the
    #: paper's problem statement names), and the transfer proceeds from
    #: the staging copy.  Costs one sender-side memcpy per send.
    sender_copy: bool = False

    def __post_init__(self) -> None:
        if self.transport not in (None, TRANSPORT_WWI, TRANSPORT_EAGER_RENDEZVOUS):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.eager_threshold <= 0:
            raise ValueError("eager_threshold must be positive")

    def effective_transport(self) -> str:
        """Resolve the transport: explicit field, else env, else WWI.

        The environment resolution is memoized per options instance:
        ``os.environ`` lookups go through the slow ``Mapping.get`` path,
        and one shared options object is consulted once per connection —
        measurable at 10k-connection bring-up.  Fresh instances re-read
        the environment, which is what the CI variant matrix relies on.
        """
        if self.transport is not None:
            return self.transport
        memo = self.__dict__.get("_transport_memo")
        if memo is not None:
            return memo
        import os

        env = os.environ.get("REPRO_TRANSPORT", "").strip()
        if env and env not in (TRANSPORT_WWI, TRANSPORT_EAGER_RENDEZVOUS):
            raise ValueError(f"unknown REPRO_TRANSPORT {env!r}")
        resolved = env or TRANSPORT_WWI
        object.__setattr__(self, "_transport_memo", resolved)
        return resolved

    def effective_credit_update_threshold(self) -> int:
        return self.credit_update_threshold or max(1, self.credits // 2)
