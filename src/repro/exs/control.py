"""EXS control-plane messages and immediate-data encoding.

Control messages travel as small verbs ``SEND``\\ s (consuming one credit
each); data travels as ``RDMA WRITE WITH IMM``.  The 32-bit immediate value
distinguishes direct from indirect data transfers and carries the ADVERT
identifier for direct ones — mirroring how the real library must tag
transfers within the hardware's 32-bit immediate field.

Every control message piggybacks the receiver's cumulative recv-repost
counter, which is how send credits flow back (see
:mod:`repro.exs.credits`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..core.advert import Advert

__all__ = [
    "CTRL_WIRE_BYTES",
    "AdvertMsg",
    "DataNotifyMsg",
    "RingAckMsg",
    "CreditMsg",
    "FinMsg",
    "EagerDataMsg",
    "RtsMsg",
    "CtsMsg",
    "ControlMsg",
    "IMM_DIRECT",
    "IMM_INDIRECT",
    "IMM_RENDEZVOUS",
    "encode_direct_imm",
    "encode_indirect_imm",
    "encode_rendezvous_imm",
    "decode_imm",
]

#: payload size charged on the wire for any control message
CTRL_WIRE_BYTES = 48

# --- immediate-data encoding (32 bits, as on real hardware) ---------------
IMM_DIRECT = 0x1
IMM_INDIRECT = 0x2
IMM_RENDEZVOUS = 0x3
_TYPE_SHIFT = 28
_ID_MASK = (1 << _TYPE_SHIFT) - 1


def encode_direct_imm(advert_id: int) -> int:
    """Immediate value for a direct transfer matching *advert_id*."""
    return (IMM_DIRECT << _TYPE_SHIFT) | (advert_id & _ID_MASK)


def encode_indirect_imm() -> int:
    """Immediate value for an indirect (intermediate-buffer) transfer."""
    return IMM_INDIRECT << _TYPE_SHIFT


def encode_rendezvous_imm() -> int:
    """Immediate value for a rendezvous WRITE into a CTS-granted buffer."""
    return IMM_RENDEZVOUS << _TYPE_SHIFT


def decode_imm(imm: int) -> tuple[int, int]:
    """Return ``(type, advert_id)`` from an immediate value."""
    return imm >> _TYPE_SHIFT, imm & _ID_MASK


# --- control messages ------------------------------------------------------
@dataclass(frozen=True)
class AdvertMsg:
    """Receiver -> sender: one user-buffer advertisement (paper §II-C)."""

    advert: Advert
    credit_cum: int = 0


@dataclass(frozen=True)
class RingAckMsg:
    """Receiver -> sender: cumulative bytes copied out of the ring."""

    copied_cum: int
    credit_cum: int = 0


@dataclass(frozen=True)
class CreditMsg:
    """Receiver -> sender: standalone credit grant (no other traffic)."""

    credit_cum: int


@dataclass(frozen=True)
class DataNotifyMsg:
    """Sender -> receiver: iWARP-emulation notification following an RDMA
    WRITE (paper §II-B: WWI "can be simulated on older iWARP hardware by
    following an RDMA WRITE with a small SEND").  Carries what the
    immediate value would have."""

    imm_data: int
    nbytes: int
    stream_offset: int
    remote_addr: int
    credit_cum: int = 0


@dataclass(frozen=True)
class FinMsg:
    """Sender -> receiver: graceful end of stream after *final_seq* bytes."""

    final_seq: int
    credit_cum: int = 0


# --- eager/rendezvous transport (MPICH2-over-IB style, PAPERS.md) ----------
@dataclass(frozen=True)
class EagerDataMsg:
    """Sender -> receiver: a small message's payload riding a SEND.

    The payload itself travels as the SEND's chunk and is DMA-placed into
    the receiver's pre-posted bounce slot; this record (the chunk's ``obj``)
    tags the arrival so the connection can dispatch it to the eager
    receive path instead of the control plane.
    """

    nbytes: int
    stream_offset: int
    credit_cum: int = 0


@dataclass(frozen=True)
class RtsMsg:
    """Sender -> receiver: request-to-send for a large (rendezvous) message."""

    nbytes: int
    stream_offset: int
    credit_cum: int = 0


@dataclass(frozen=True)
class CtsMsg:
    """Receiver -> sender: clear-to-send — a grant of registered user memory.

    One CTS authorises exactly one RDMA WRITE of ``nbytes`` into
    ``(addr, rkey)``; a single RTS may be answered by several partial CTS
    grants as the application posts receive buffers.
    """

    addr: int
    rkey: int
    nbytes: int
    credit_cum: int = 0


ControlMsg = Union[
    AdvertMsg, RingAckMsg, CreditMsg, FinMsg, DataNotifyMsg,
    EagerDataMsg, RtsMsg, CtsMsg,
]
