"""EXS control-plane messages and immediate-data encoding.

Control messages travel as small verbs ``SEND``\\ s (consuming one credit
each); data travels as ``RDMA WRITE WITH IMM``.  The 32-bit immediate value
distinguishes direct from indirect data transfers and carries the ADVERT
identifier for direct ones — mirroring how the real library must tag
transfers within the hardware's 32-bit immediate field.

Every control message piggybacks the receiver's cumulative recv-repost
counter, which is how send credits flow back (see
:mod:`repro.exs.credits`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..core.advert import Advert

__all__ = [
    "CTRL_WIRE_BYTES",
    "AdvertMsg",
    "DataNotifyMsg",
    "RingAckMsg",
    "CreditMsg",
    "FinMsg",
    "ControlMsg",
    "IMM_DIRECT",
    "IMM_INDIRECT",
    "encode_direct_imm",
    "encode_indirect_imm",
    "decode_imm",
]

#: payload size charged on the wire for any control message
CTRL_WIRE_BYTES = 48

# --- immediate-data encoding (32 bits, as on real hardware) ---------------
IMM_DIRECT = 0x1
IMM_INDIRECT = 0x2
_TYPE_SHIFT = 28
_ID_MASK = (1 << _TYPE_SHIFT) - 1


def encode_direct_imm(advert_id: int) -> int:
    """Immediate value for a direct transfer matching *advert_id*."""
    return (IMM_DIRECT << _TYPE_SHIFT) | (advert_id & _ID_MASK)


def encode_indirect_imm() -> int:
    """Immediate value for an indirect (intermediate-buffer) transfer."""
    return IMM_INDIRECT << _TYPE_SHIFT


def decode_imm(imm: int) -> tuple[int, int]:
    """Return ``(type, advert_id)`` from an immediate value."""
    return imm >> _TYPE_SHIFT, imm & _ID_MASK


# --- control messages ------------------------------------------------------
@dataclass(frozen=True)
class AdvertMsg:
    """Receiver -> sender: one user-buffer advertisement (paper §II-C)."""

    advert: Advert
    credit_cum: int = 0


@dataclass(frozen=True)
class RingAckMsg:
    """Receiver -> sender: cumulative bytes copied out of the ring."""

    copied_cum: int
    credit_cum: int = 0


@dataclass(frozen=True)
class CreditMsg:
    """Receiver -> sender: standalone credit grant (no other traffic)."""

    credit_cum: int


@dataclass(frozen=True)
class DataNotifyMsg:
    """Sender -> receiver: iWARP-emulation notification following an RDMA
    WRITE (paper §II-B: WWI "can be simulated on older iWARP hardware by
    following an RDMA WRITE with a small SEND").  Carries what the
    immediate value would have."""

    imm_data: int
    nbytes: int
    stream_offset: int
    remote_addr: int
    credit_cum: int = 0


@dataclass(frozen=True)
class FinMsg:
    """Sender -> receiver: graceful end of stream after *final_seq* bytes."""

    final_seq: int
    credit_cum: int = 0


ControlMsg = Union[AdvertMsg, RingAckMsg, CreditMsg, FinMsg, DataNotifyMsg]
