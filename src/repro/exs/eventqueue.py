"""EXS event queues.

Almost every EXS call is asynchronous (paper §II-B): the library queues the
request and returns immediately; when the operation completes, an event is
placed on an event queue previously created by the user with
``exs_qcreate()``, and the user retrieves it with ``exs_qdequeue()``.

In the simulation, ``exs_qdequeue`` returns a kernel event to ``yield`` on.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..simnet import Event, Simulator, Store

__all__ = ["ExsEventType", "ExsEvent", "ExsEventQueue"]


class ExsEventType(enum.Enum):
    """What completed."""

    CONNECT = "connect"
    ACCEPT = "accept"
    SEND = "send"
    RECV = "recv"
    CLOSE = "close"
    ERROR = "error"


@dataclass(frozen=True)
class ExsEvent:
    """One completion delivered to the application."""

    kind: ExsEventType
    socket: Any
    #: bytes transferred (sends: full request; recvs: possibly fewer)
    nbytes: int = 0
    #: True when a recv completed at end-of-stream with no data
    eof: bool = False
    #: True when a SOCK_SEQPACKET message was cut to fit the receive buffer
    truncated: bool = False
    #: user context passed to the originating call
    context: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def expect(self, kind: "ExsEventType") -> "ExsEvent":
        """Assert this completion is a successful *kind*; returns ``self``.

        The named replacement for ad-hoc ``if ev.kind is not ...`` poking::

            ev = (yield eq.dequeue()).expect(ExsEventType.SEND)
            sent = ev.nbytes

        Raises :class:`~repro.exs.socket.ExsError` carrying both the
        expected and actual kind (plus the library's error string, if any)
        when the completion is anything else.
        """
        from .socket import ExsError  # circular at module load time

        if self.kind is not kind or self.error is not None:
            detail = f": {self.error}" if self.error else ""
            raise ExsError(
                f"expected {kind.value} completion, got {self.kind.value}{detail}"
            )
        return self


class ExsEventQueue:
    """Created by ``exs_qcreate()``; the application's completion mailbox.

    When the application is actually *blocked* in ``exs_qdequeue`` (the
    queue was empty), delivery pays an OS wake-up latency drawn from
    ``wakeup`` — the application-thread twin of the completion-channel
    wake-up (see :mod:`repro.verbs.comp_channel`).  An application that
    finds events already queued pays nothing, which models the natural
    batching of a busy event loop.
    """

    def __init__(
        self,
        sim: Simulator,
        depth: int = 4096,
        wakeup: Optional[Callable[[random.Random], float]] = None,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.depth = depth
        self._store = Store(sim)
        self.delivered = 0
        self.wakeup = wakeup
        self._rng = random.Random(seed)
        self.slept_wakeups = 0
        #: completions discarded because the application stopped dequeueing
        self.dropped = 0
        self._overflow_reported = False

    def post(self, event: ExsEvent) -> None:
        """Library side: deliver a completion.

        Overflow (the application stopped dequeueing) must not crash the
        library mid-callback: the completion is dropped and counted, and a
        single reserved-slot ERROR event is surfaced so the application
        learns its mailbox overflowed the next time it does dequeue.
        """
        if len(self._store) >= self.depth:
            self.dropped += 1
            if self.sim.tracing:
                self.sim.trace("exs", f"event queue overflow, dropped {event.kind.value}")
            if not self._overflow_reported:
                # The reserved slot goes one past depth so the error itself
                # cannot be lost to the same overflow it reports.
                self._overflow_reported = True
                self.delivered += 1
                self._store.put(
                    ExsEvent(
                        kind=ExsEventType.ERROR,
                        socket=event.socket,
                        context=event.context,
                        error="event queue overflow (application not dequeueing)",
                    )
                )
            return
        self.delivered += 1
        self._store.put(event)

    def dequeue(self) -> Event:
        """``exs_qdequeue()``: event firing with the next :class:`ExsEvent`."""
        ev = self._store.get()
        if ev.triggered or self.wakeup is None:
            return ev
        # The caller is about to sleep; charge the wake-up on delivery.
        self.slept_wakeups += 1
        outer = Event(self.sim)
        ev.add_callback(
            lambda e: outer.succeed(e._value, delay=int(round(self.wakeup(self._rng))))
        )
        return outer

    def try_dequeue(self) -> Optional[ExsEvent]:
        """Non-blocking poll."""
        return self._store.try_get()

    def __len__(self) -> int:
        return len(self._store)
