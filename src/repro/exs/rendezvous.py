"""Eager/rendezvous SEND-RECV transport for SOCK_STREAM connections.

The third data-plane strategy of the transport bake-off, modelled on the
MPICH2-over-InfiniBand design (PAPERS.md): small messages are sent
*eagerly* as verbs ``SEND``\\ s whose payload is DMA-placed into a
pre-posted receiver bounce slot and then copied into user memory (two
copies per byte, like the paper's indirect path, but with no ADVERT wait);
large messages negotiate a *rendezvous* — the sender's RTS asks for
registered memory, the receiver's CTS grants a slice of a posted user
buffer, and the data travels as a single zero-copy RDMA WRITE WITH IMM
(one placement copy per byte, like the direct path, at the price of one
round trip of handshake latency).

Both halves are duck-typed to the Stream*Half interfaces so the connection
engine drives them unchanged.  The stream is transmitted *strictly in
order* — a rendezvous send stalls everything behind it until its CTS
arrives — which is exactly the head-of-line cost the crossover benchmarks
measure against the WWI protocol.

Flow control is the connection's credit loop: every eager SEND consumes
one credit, and its bounce slot (hence the credit) is returned only after
the payload has been copied out, so a slow receiver throttles the sender
without any ring accounting.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, List, Optional

from ..core.invariants import require
from ..hosts.memory import Chunk
from ..verbs import SGE, Opcode, SendWR
from .control import CtsMsg, EagerDataMsg, RtsMsg, encode_rendezvous_imm
from .eventqueue import ExsEvent, ExsEventType
from .stream_sender import UserSend

if TYPE_CHECKING:  # pragma: no cover
    from .connection import ExsConnection
    from .stream_receiver import UserRecv

__all__ = ["RdvSenderHalf", "RdvReceiverHalf"]


class RdvSenderHalf:
    """Outbound direction of one eager/rendezvous stream socket."""

    def __init__(self, conn: "ExsConnection") -> None:
        self.conn = conn
        #: user sends with unplanned bytes remaining (FIFO)
        self.pending: Deque[UserSend] = deque()
        #: every submitted-but-not-fully-acked send, by id (insertion order)
        self._incomplete: "dict[int, UserSend]" = {}
        self._send_ids = itertools.count(1)
        #: stream position after all bytes handed to the transport
        self.seq = 0
        #: CTS grants received and not yet consumed (FIFO, apply to head)
        self.grants: Deque[CtsMsg] = deque()
        #: send_ids whose RTS has been queued
        self._rts_sent: set = set()
        self.fin_sent = False
        self.fin_acked = False
        #: measurement hooks (throughput equation (1) start point)
        self.first_post_ns: Optional[int] = None
        self.last_ack_ns: Optional[int] = None
        self.bytes_acked_total = 0

    # ------------------------------------------------------------------
    def configure_peer(self, ring_addr: int, ring_rkey: int, ring_capacity: int) -> None:
        """No peer ring state: rendezvous targets are granted per-CTS."""

    # ------------------------------------------------------------------
    # user-facing
    # ------------------------------------------------------------------
    def submit(self, buffer, mr, offset: int, nbytes: int, eq, context) -> UserSend:
        if self.fin_sent:
            raise RuntimeError("exs_send after close")
        usend = UserSend(
            send_id=next(self._send_ids),
            buffer=buffer,
            mr=mr,
            offset=offset,
            nbytes=nbytes,
            eq=eq,
            context=context,
            posted_at_ns=self.conn.sim.now,
        )
        self.pending.append(usend)
        self._incomplete[usend.send_id] = usend
        if self.conn.tracer is not None:
            self.conn.trace("send", send_id=usend.send_id, nbytes=nbytes)
        return usend

    # ------------------------------------------------------------------
    # engine-facing
    # ------------------------------------------------------------------
    def on_advert(self, advert) -> None:  # pragma: no cover - defensive
        raise RuntimeError("ADVERT received on an eager/rendezvous connection")

    def on_ring_ack(self, copied_cum: int) -> None:  # pragma: no cover - defensive
        raise RuntimeError("ring ACK received on an eager/rendezvous connection")

    def on_cts(self, msg: CtsMsg) -> None:
        """A rendezvous grant arrived; the next pump issues the WRITE."""
        self.grants.append(msg)

    def pump(self):
        """Issue transfers for the head send, strictly in stream order.

        Generator sub-process run by the connection engine; returns True
        if any progress was made.
        """
        conn = self.conn
        progressed = False
        while self.pending:
            head = self.pending[0]
            if head.unplanned == 0:
                # Fully handed to the transport; completion happens on ack.
                self.pending.popleft()
                continue
            if head.nbytes <= conn.options.eager_threshold:
                if not conn.credits.can_send_data(1):
                    self._note_blocked()
                    break
                yield from self._post_eager(head)
                progressed = True
                continue
            # rendezvous: one RTS for the whole send, then per-grant WRITEs
            if head.send_id not in self._rts_sent:
                self._rts_sent.add(head.send_id)
                conn.queue_control(RtsMsg(nbytes=head.nbytes, stream_offset=self.seq))
                if conn.tracer is not None:
                    conn.trace("rts", send_id=head.send_id, nbytes=head.nbytes, seq=self.seq)
                progressed = True
            if not self.grants:
                break  # stream stalls until the CTS round trip completes
            if not conn.credits.can_send_data(1):
                self._note_blocked()
                break
            grant = self.grants.popleft()
            require(grant.nbytes <= head.unplanned,
                    "rendezvous", "CTS grants more than the outstanding RTS")
            yield from self._post_rendezvous(head, grant)
            progressed = True
        return progressed

    def _note_blocked(self) -> None:
        self.conn.tx_stats.sender_blocked += 1
        rec = self.conn.sim._recorder
        if rec is not None:
            rec.note_credit_block(self.conn.conn_id, self.conn.sim.now)

    def _note_posting(self) -> None:
        if self.first_post_ns is None:
            self.first_post_ns = self.conn.sim.now
        rec = self.conn.sim._recorder
        if rec is not None:
            rec.note_credit_unblock(self.conn.conn_id, self.conn.sim.now)

    def _post_eager(self, usend: UserSend):
        """Send the whole message as one SEND into a peer bounce slot."""
        conn = self.conn
        self._note_posting()
        nbytes = usend.unplanned
        if conn.tracer is not None:
            conn.trace("eager", nbytes=nbytes, seq=self.seq)
        yield from conn.charge(conn.costs.post_wr_ns)
        conn.tx_stats.indirect_transfers += 1  # eager = 2 copies/byte, like indirect
        conn.tx_stats.indirect_bytes += nbytes
        chunk = self._slice(usend, self.seq, nbytes)
        conn.credits.consume(1)  # the SEND consumes a bounce slot at the peer
        chunk.obj = EagerDataMsg(
            nbytes=nbytes, stream_offset=self.seq, credit_cum=conn.credits.grant_now()
        )
        conn.qp.post_send(SendWR(
            opcode=Opcode.SEND,
            wr_id=conn.next_wr_id(),
            sge=SGE(usend.mr.addr + usend.offset + usend.planned, nbytes, usend.mr.lkey),
            payload=chunk,
            context=("eager", usend, chunk),
        ))
        usend.planned += nbytes
        self.seq += nbytes

    def _post_rendezvous(self, usend: UserSend, grant: CtsMsg):
        """Zero-copy WRITE of one CTS grant into registered user memory."""
        conn = self.conn
        self._note_posting()
        nbytes = grant.nbytes
        if conn.tracer is not None:
            conn.trace("rendezvous", nbytes=nbytes, seq=self.seq)
        yield from conn.charge(conn.costs.post_wr_ns)
        conn.tx_stats.direct_transfers += 1  # rendezvous = 1 placement copy, like direct
        conn.tx_stats.direct_bytes += nbytes
        chunk = self._slice(usend, self.seq, nbytes)
        conn.credits.consume(1)  # the WWI consumes a RECV at the peer
        conn.qp.post_send(SendWR(
            opcode=Opcode.RDMA_WRITE_WITH_IMM,
            wr_id=conn.next_wr_id(),
            sge=SGE(usend.mr.addr + usend.offset + usend.planned, nbytes, usend.mr.lkey),
            remote_addr=grant.addr,
            rkey=grant.rkey,
            imm_data=encode_rendezvous_imm(),
            payload=chunk,
            context=("data", usend, chunk),
        ))
        usend.planned += nbytes
        self.seq += nbytes

    def _slice(self, usend: UserSend, stream_seq: int, nbytes: int) -> Chunk:
        """Zero-copy pinned slice of the user buffer (see StreamSenderHalf)."""
        off = usend.offset + usend.planned
        view = usend.buffer.view(off, nbytes)
        pin = usend.buffer.pin_range(off, nbytes) if view is not None else None
        return Chunk(stream_seq, nbytes, view, pin=pin)

    # ------------------------------------------------------------------
    def on_data_acked(self, usend: UserSend, nbytes: int) -> None:
        """Transport acked *nbytes* of *usend* (per SEND/WWI completion)."""
        usend.acked += nbytes
        self.bytes_acked_total += nbytes
        self.last_ack_ns = self.conn.sim.now
        if usend.acked == usend.nbytes:
            self._incomplete.pop(usend.send_id, None)
            if self.conn.tracer is not None:
                self.conn.trace("send_done", send_id=usend.send_id, nbytes=usend.nbytes)
            if usend.notify_completion:
                usend.eq.post(
                    ExsEvent(
                        kind=ExsEventType.SEND,
                        socket=self.conn.socket,
                        nbytes=usend.nbytes,
                        context=usend.context,
                    )
                )

    def fail_pending(self):
        """Connection died: drain every incomplete send for ERROR delivery."""
        out = []
        for usend in self._incomplete.values():
            if usend.notify_completion:
                out.append((usend.eq, usend.context))
        self._incomplete.clear()
        self.pending.clear()
        self.grants.clear()
        return out

    @property
    def final_seq(self) -> int:
        """Stream position after everything submitted so far (for FIN)."""
        return self.seq

    @property
    def drained(self) -> bool:
        """All submitted bytes planned and acknowledged."""
        return not self.pending and self.bytes_acked_total == self.seq


# ---------------------------------------------------------------------------
@dataclass
class _RdvEntry:
    """One pending ``exs_recv`` with eager-copy / rendezvous-grant accounting."""

    urecv: "UserRecv"
    #: bytes physically in the user buffer (eager copies + arrived WRITEs)
    filled: int = 0
    #: bytes granted by CTS but whose WRITE has not arrived yet
    granted: int = 0

    @property
    def unassigned(self) -> int:
        return self.urecv.nbytes - self.filled - self.granted


@dataclass
class _StagedEager:
    """One eager payload parked in a bounce slot, pending copy-out."""

    slot: int
    nbytes: int
    stream_offset: int
    consumed: int = 0

    @property
    def remaining(self) -> int:
        return self.nbytes - self.consumed


@dataclass
class _RdvCopyPlan:
    """One bounce-slot -> user-buffer memcpy decided by :meth:`next_copy`."""

    staged: _StagedEager
    entry: _RdvEntry
    nbytes: int


class RdvReceiverHalf:
    """Inbound direction of one eager/rendezvous stream socket."""

    def __init__(self, conn: "ExsConnection") -> None:
        self.conn = conn
        self.entries: Deque[_RdvEntry] = deque()
        self.staged: Deque[_StagedEager] = deque()
        #: bytes requested by the peer's RTS and not yet granted by a CTS
        self.rts_remaining = 0
        #: stream position after all bytes placed into user memory
        self.seq = 0
        #: next expected stream offset of a data arrival (order check)
        self._arrival_seq = 0
        #: end-of-stream sequence number from the peer's FIN, if received
        self.eof_seq: Optional[int] = None
        #: measurement hooks (throughput equation (1) end point)
        self.first_arrival_ns: Optional[int] = None
        self.last_delivery_ns: Optional[int] = None
        self.bytes_delivered_total = 0

    # ------------------------------------------------------------------
    # user-facing
    # ------------------------------------------------------------------
    def submit(self, urecv: "UserRecv"):
        """Queue an ``exs_recv``; never advertises (returns None)."""
        if self._stream_finished():
            urecv.eq.post(
                ExsEvent(kind=ExsEventType.RECV, socket=self.conn.socket, nbytes=0,
                         eof=True, context=urecv.context)
            )
            return None
        self.entries.append(_RdvEntry(urecv=urecv))
        self._pump_grants()
        return None

    # ------------------------------------------------------------------
    # engine-facing: arrivals
    # ------------------------------------------------------------------
    def on_eager_arrival(self, msg: EagerDataMsg, slot: int) -> None:
        """An eager SEND was DMA-placed into bounce slot *slot*."""
        if self.first_arrival_ns is None:
            self.first_arrival_ns = self.conn.sim.now
        require(msg.stream_offset == self._arrival_seq,
                "eager", "out-of-stream-order eager arrival")
        self._arrival_seq += msg.nbytes
        self.staged.append(
            _StagedEager(slot=slot, nbytes=msg.nbytes, stream_offset=msg.stream_offset)
        )

    def on_rendezvous_arrival(self, nbytes: int, stream_offset: int) -> None:
        """A granted rendezvous WRITE landed in user memory (zero copy)."""
        if self.first_arrival_ns is None:
            self.first_arrival_ns = self.conn.sim.now
        require(stream_offset == self._arrival_seq,
                "rendezvous", "out-of-stream-order rendezvous arrival")
        self._arrival_seq += nbytes
        remaining = nbytes
        for entry in self.entries:
            if entry.granted == 0:
                continue
            take = min(entry.granted, remaining)
            entry.granted -= take
            entry.filled += take
            self.seq += take
            remaining -= take
            if remaining == 0:
                break
        require(remaining == 0, "rendezvous", "WRITE arrival exceeds outstanding grants")
        self._pump_grants()
        self._try_deliver()

    def on_rts(self, msg: RtsMsg) -> None:
        """The peer wants to send a large message; grant as buffers allow."""
        require(msg.stream_offset == self._arrival_seq,
                "rendezvous", "RTS out of stream order")
        self.rts_remaining += msg.nbytes
        self._pump_grants()

    # ------------------------------------------------------------------
    # engine-facing: copy pump (bounce slot -> user buffer)
    # ------------------------------------------------------------------
    def next_copy(self) -> Optional[_RdvCopyPlan]:
        if not self.staged:
            return None
        staged = self.staged[0]
        for entry in self.entries:
            if entry.filled < entry.urecv.nbytes:
                require(entry.granted == 0,
                        "eager", "eager bytes behind an outstanding grant")
                return _RdvCopyPlan(
                    staged=staged,
                    entry=entry,
                    nbytes=min(staged.remaining, entry.urecv.nbytes - entry.filled),
                )
            # fully filled entries ahead of the cursor are awaiting delivery
        return None

    def execute_copy(self, plan: _RdvCopyPlan):
        """Copy one staged span out of its bounce slot (charges CPU time)."""
        conn = self.conn
        if conn.tracer is not None:
            conn.trace("copy", nbytes=plan.nbytes, seq=self.seq)
        yield from conn.host.cpu.work(conn.host.copy_ns(plan.nbytes))
        conn.rx_stats.copies += 1
        conn.rx_stats.copied_bytes += plan.nbytes
        staged, entry = plan.staged, plan.entry
        urecv = entry.urecv
        slot_off = conn.eager_slot_offset(staged.slot) + staged.consumed
        views = conn.recv_pool_buf.gather([(slot_off, plan.nbytes)])
        if views is not None:
            urecv.buffer.scatter_write(urecv.offset + entry.filled, views)
        staged.consumed += plan.nbytes
        entry.filled += plan.nbytes
        self.seq += plan.nbytes
        if staged.remaining == 0:
            self.staged.popleft()
            conn.recycle_eager_slot(staged.slot)
        self._pump_grants()
        self._try_deliver()

    # ------------------------------------------------------------------
    # engine-facing: grants / delivery / EOF
    # ------------------------------------------------------------------
    def _pump_grants(self) -> None:
        """Answer an outstanding RTS with CTS grants into posted buffers.

        A grant is legal only once every earlier stream byte is already
        placed in user memory (``staged`` empty): arrivals are in stream
        order, so anything still staged precedes the rendezvous data and
        must land first for the receive cursor to stay contiguous.
        """
        if self.rts_remaining <= 0 or self.staged:
            return
        for entry in self.entries:
            if self.rts_remaining <= 0:
                break
            n = min(self.rts_remaining, entry.unassigned)
            if n <= 0:
                continue
            urecv = entry.urecv
            addr = urecv.mr.addr + urecv.offset + entry.filled + entry.granted
            self.conn.queue_control(CtsMsg(addr=addr, rkey=urecv.mr.rkey, nbytes=n))
            if self.conn.tracer is not None:
                self.conn.trace("cts", nbytes=n)
            entry.granted += n
            self.rts_remaining -= n

    def _try_deliver(self) -> None:
        while self.entries:
            head = self.entries[0]
            if head.filled == head.urecv.nbytes:
                pass  # full: always deliverable
            elif (head.filled > 0 and head.granted == 0 and not self.staged
                  and not head.urecv.waitall):
                pass  # short delivery: nothing more is immediately coming
            else:
                return
            self.entries.popleft()
            self._deliver(head, eof=False)

    def pump_eof(self) -> bool:
        """Deliver EOF completions once the stream is fully consumed."""
        if not self._stream_finished():
            return False
        progressed = False
        while self.entries:
            head = self.entries.popleft()
            require(head.granted == 0, "FIN", "EOF with grants outstanding")
            self._deliver(head, eof=True)
            progressed = True
        return progressed

    def on_fin(self, final_seq: int) -> None:
        """Record the peer's FIN; idempotent (see StreamReceiverHalf)."""
        require(self.eof_seq is None or self.eof_seq == final_seq,
                "FIN", "conflicting FINs")
        if self.eof_seq is not None:
            return
        self.eof_seq = final_seq

    def flush_adverts(self) -> List:
        return []

    def fail_pending(self):
        """Connection died: drain every pending recv for ERROR delivery."""
        out = []
        while self.entries:
            entry = self.entries.popleft()
            out.append((entry.urecv.eq, entry.urecv.context))
        return out

    def _stream_finished(self) -> bool:
        return (
            self.eof_seq is not None
            and self.seq == self.eof_seq
            and not self.staged
            and self.rts_remaining == 0
        )

    # ------------------------------------------------------------------
    def _deliver(self, entry: _RdvEntry, *, eof: bool) -> None:
        urecv = entry.urecv
        self.last_delivery_ns = self.conn.sim.now
        self.bytes_delivered_total += entry.filled
        if self.conn.tracer is not None:
            if eof:
                self.conn.trace("deliver", nbytes=entry.filled, eof=True)
            else:
                self.conn.trace("deliver", nbytes=entry.filled)
        urecv.eq.post(
            ExsEvent(
                kind=ExsEventType.RECV,
                socket=self.conn.socket,
                nbytes=entry.filled,
                eof=eof,
                context=urecv.context,
            )
        )
