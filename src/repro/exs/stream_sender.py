"""Sender half of a stream (SOCK_STREAM) connection.

Executes the decisions of :class:`repro.core.sender_algo.SenderAlgorithm`
over the verbs transport: slicing user buffers into WRITE-WITH-IMM
transfers (direct into advertised user memory, or indirect into the peer's
intermediate ring), consuming send credits, and completing user
``exs_send()`` requests when the transport acknowledges all of their bytes
(RC semantics — only then may the user reuse the memory).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Optional

from ..core import DirectPlan, IndirectPlan, ProtocolMode, SenderAlgorithm, SenderRingView
from ..hosts.memory import Buffer, Chunk
from ..verbs import SGE, Opcode, SendWR
from .control import DataNotifyMsg, encode_direct_imm, encode_indirect_imm
from .eventqueue import ExsEvent, ExsEventType

if TYPE_CHECKING:  # pragma: no cover
    from .connection import ExsConnection

__all__ = ["UserSend", "StreamSenderHalf"]


@dataclass
class UserSend:
    """One pending ``exs_send()`` request."""

    send_id: int
    buffer: Buffer
    mr: Any  # verbs MemoryRegion of the user buffer
    offset: int
    nbytes: int
    eq: Any  # ExsEventQueue for the completion
    context: Any = None
    #: bytes handed to the transport so far
    planned: int = 0
    #: bytes acknowledged by the transport so far
    acked: int = 0
    posted_at_ns: int = 0
    #: False for staged (sender-copy) sends whose completion event was
    #: already delivered when the staging copy finished
    notify_completion: bool = True

    @property
    def unplanned(self) -> int:
        return self.nbytes - self.planned


class StreamSenderHalf:
    """Outbound direction of one EXS stream socket."""

    _ids = itertools.count(1)

    def __init__(self, conn: "ExsConnection") -> None:
        self.conn = conn
        self.algo: Optional[SenderAlgorithm] = None
        #: user sends with unplanned bytes remaining (FIFO)
        self.pending: Deque[UserSend] = deque()
        #: every submitted-but-not-fully-acked send, by id (insertion order).
        #: `pending` drops a send once fully *planned*; this map keeps it
        #: until fully *acked* so connection failure can error it out.
        self._incomplete: "dict[int, UserSend]" = {}
        self._send_ids = itertools.count(1)
        #: ring base address / rkey at the peer, learnt in the EXS handshake
        self.peer_ring_addr = 0
        self.peer_ring_rkey = 0
        self.fin_sent = False
        self.fin_acked = False
        #: measurement hooks (throughput equation (1) start point)
        self.first_post_ns: Optional[int] = None
        self.last_ack_ns: Optional[int] = None
        self.bytes_acked_total = 0

    # ------------------------------------------------------------------
    def configure_peer(self, ring_addr: int, ring_rkey: int, ring_capacity: int) -> None:
        """Finish setup once the peer's hello (ring info) is known."""
        self.peer_ring_addr = ring_addr
        self.peer_ring_rkey = ring_rkey
        self.algo = SenderAlgorithm(
            SenderRingView(ring_capacity),
            mode=self.conn.options.mode,
            stats=self.conn.tx_stats,
        )

    # ------------------------------------------------------------------
    # user-facing
    # ------------------------------------------------------------------
    def submit(self, buffer: Buffer, mr: Any, offset: int, nbytes: int, eq: Any, context: Any) -> UserSend:
        if self.fin_sent:
            raise RuntimeError("exs_send after close")
        usend = UserSend(
            send_id=next(self._send_ids),
            buffer=buffer,
            mr=mr,
            offset=offset,
            nbytes=nbytes,
            eq=eq,
            context=context,
            posted_at_ns=self.conn.sim.now,
        )
        self.pending.append(usend)
        self._incomplete[usend.send_id] = usend
        if self.conn.tracer is not None:
            # span root: one "send" per exs_send, in submit (= stream) order
            self.conn.trace("send", send_id=usend.send_id, nbytes=nbytes)
        return usend

    # ------------------------------------------------------------------
    # engine-facing
    # ------------------------------------------------------------------
    def on_advert(self, advert) -> None:
        if self.algo is not None:
            self.algo.on_advert(advert)

    def on_ring_ack(self, copied_cum: int) -> None:
        if self.algo is not None:
            self.algo.ring.on_copy_ack(copied_cum)

    def pump(self):
        """Issue as many transfers as ADVERTs / buffer space / credits allow.

        Generator sub-process run by the connection engine; returns True if
        any progress was made.
        """
        progressed = False
        if self.algo is None:
            return progressed
        while self.pending:
            head = self.pending[0]
            if head.unplanned == 0:
                # Fully handed to the transport; completion happens on ack.
                self.pending.popleft()
                continue
            # An indirect transfer can split in two at the ring wrap point;
            # require two credits so the pair can never half-issue.
            if not self.conn.credits.can_send_data(2):
                self.conn.tx_stats.sender_blocked += 1
                rec = self.conn.sim._recorder
                if rec is not None:
                    rec.note_credit_block(self.conn.conn_id, self.conn.sim.now)
                break
            plan = self.algo.next_transfer(head.unplanned)
            if plan is None:
                break
            yield from self._issue(head, plan)
            progressed = True
        return progressed

    def _issue(self, usend: UserSend, plan) -> None:
        """Post the data transfer(s) for one plan."""
        conn = self.conn
        if self.first_post_ns is None:
            self.first_post_ns = conn.sim.now
        rec = conn.sim._recorder
        if rec is not None:
            # Ends any open credit-stall window for this connection; the
            # critical-path walker relabels overlapping time as credit_wait.
            rec.note_credit_unblock(conn.conn_id, conn.sim.now)
        if isinstance(plan, DirectPlan):
            if conn.tracer is not None:
                conn.trace("direct", nbytes=plan.nbytes, seq=plan.seq, phase=plan.phase)
            chunk = self._slice(usend, plan.seq, plan.nbytes)
            yield from self._post_data(
                usend,
                chunk,
                local_addr=usend.mr.addr + (usend.offset + usend.planned),
                remote_addr=plan.advert.remote_addr + plan.buffer_offset,
                rkey=plan.advert.rkey,
                imm=encode_direct_imm(plan.advert.advert_id),
            )
            usend.planned += plan.nbytes
        elif isinstance(plan, IndirectPlan):
            if conn.tracer is not None:
                conn.trace("indirect", nbytes=plan.nbytes, seq=plan.seq, phase=plan.phase)
            seq = plan.seq
            local = usend.planned
            for seg in plan.segments:
                chunk = self._slice(usend, seq, seg.nbytes, local_offset=local)
                yield from self._post_data(
                    usend,
                    chunk,
                    local_addr=usend.mr.addr + (usend.offset + local),
                    remote_addr=self.peer_ring_addr + seg.offset,
                    rkey=self.peer_ring_rkey,
                    imm=encode_indirect_imm(),
                )
                seq += seg.nbytes
                local += seg.nbytes
            usend.planned += plan.nbytes
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown plan {plan!r}")

    def _post_data(self, usend: UserSend, chunk: Chunk, *, local_addr: int,
                   remote_addr: int, rkey: int, imm: int) -> None:
        """Post one data chunk: native WRITE-WITH-IMM, or the paper's older-
        iWARP emulation (RDMA WRITE followed by a small notification SEND).
        """
        conn = self.conn
        yield from conn.charge(conn.costs.post_wr_ns)
        if conn.options.native_write_with_imm:
            conn.credits.consume(1)  # the WWI consumes a RECV at the peer
            conn.qp.post_send(SendWR(
                opcode=Opcode.RDMA_WRITE_WITH_IMM,
                wr_id=conn.next_wr_id(),
                sge=SGE(local_addr, chunk.nbytes, usend.mr.lkey),
                remote_addr=remote_addr,
                rkey=rkey,
                imm_data=imm,
                payload=chunk,
                context=("data", usend, chunk),
            ))
        else:
            # Silent RDMA WRITE (no RECV consumed, no credit) ...
            conn.qp.post_send(SendWR(
                opcode=Opcode.RDMA_WRITE,
                wr_id=conn.next_wr_id(),
                sge=SGE(local_addr, chunk.nbytes, usend.mr.lkey),
                remote_addr=remote_addr,
                rkey=rkey,
                payload=chunk,
                context=("data", usend, chunk),
            ))
            # ... then the notification SEND (same QP, so it arrives after
            # the data is placed; this one does consume a credit).
            conn.queue_control(DataNotifyMsg(
                imm_data=imm,
                nbytes=chunk.nbytes,
                stream_offset=chunk.stream_offset,
                remote_addr=remote_addr,
            ))

    def _slice(self, usend: UserSend, stream_seq: int, nbytes: int, local_offset: Optional[int] = None) -> Chunk:
        """Zero-copy slice of the user buffer for one transfer.

        The chunk carries a live ``memoryview`` pinned until the transport
        ack (RC semantics: the user may not reuse the memory before the
        send completes, so retransmission and fault duplication always
        re-deliver the original bytes).  The pin is released in
        :meth:`ExsConnection._handle_wc` when the WWI completes.
        """
        off = usend.offset + (usend.planned if local_offset is None else local_offset)
        view = usend.buffer.view(off, nbytes)
        pin = usend.buffer.pin_range(off, nbytes) if view is not None else None
        return Chunk(stream_seq, nbytes, view, pin=pin)

    # ------------------------------------------------------------------
    def on_data_acked(self, usend: UserSend, nbytes: int) -> None:
        """Transport acked *nbytes* of *usend* (called per WWI completion)."""
        usend.acked += nbytes
        self.bytes_acked_total += nbytes
        self.last_ack_ns = self.conn.sim.now
        if usend.acked == usend.nbytes:
            self._incomplete.pop(usend.send_id, None)
        if usend.acked == usend.nbytes and self.conn.tracer is not None:
            self.conn.trace("send_done", send_id=usend.send_id, nbytes=usend.nbytes)
        if usend.acked == usend.nbytes and usend.notify_completion:
            usend.eq.post(
                ExsEvent(
                    kind=ExsEventType.SEND,
                    socket=self.conn.socket,
                    nbytes=usend.nbytes,
                    context=usend.context,
                )
            )

    def fail_pending(self):
        """Connection died: drain every incomplete send for ERROR delivery.

        Returns ``(eq, context)`` pairs in submit order.  Staged
        (sender-copy) sends whose completion was already delivered are
        drained but not reported — the user was told the buffer is free.
        """
        out = []
        for usend in self._incomplete.values():
            if usend.notify_completion:
                out.append((usend.eq, usend.context))
        self._incomplete.clear()
        self.pending.clear()
        return out

    @property
    def final_seq(self) -> int:
        """Stream position after everything submitted so far (for FIN)."""
        return self.algo.seq if self.algo is not None else 0

    @property
    def drained(self) -> bool:
        """All submitted bytes planned and acknowledged."""
        if self.pending:
            return False
        if self.algo is None:
            return True
        return self.bytes_acked_total == self.algo.seq
