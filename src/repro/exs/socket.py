"""EXS sockets: the user-visible objects of the library.

:class:`ExsStack` is the per-host instance of the EXS library (wrapping the
host's RDMA device and connection manager); :class:`ExsSocket` is one
socket created from it.  All data-path operations are asynchronous and
complete through an :class:`~repro.exs.eventqueue.ExsEventQueue`, mirroring
the ES-API design (see :mod:`repro.exs.api` for the ``exs_*`` free
functions and a blocking convenience facade).
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

from ..hosts.host import Host
from ..hosts.memory import Buffer
from ..simnet import Event, Simulator
from ..verbs import ConnectionManager, MemoryRegion, RdmaDevice
from .connection import ExsConnection
from .eventqueue import ExsEvent, ExsEventQueue, ExsEventType
from .flags import ExsSocketOptions, MsgFlags, SocketType
from .stream_receiver import UserRecv

__all__ = ["ExsStack", "ExsSocket", "ExsError"]


class ExsError(RuntimeError):
    """Misuse of the EXS API (wrong socket state, bad arguments, ...)."""


class ExsStack:
    """Per-host EXS library instance.

    *srq_depth* (>0) makes every control-plane connection on this stack
    draw receives from one shared pool of that many buffers (a
    :class:`~repro.exs.shard.SrqPool`) instead of posting ``credits``
    buffers per connection; *cq_shards* (>0) makes connections share that
    many completion queues, each drained by one poller process
    (:class:`~repro.exs.shard.CqShard`), instead of one CQ + engine per
    connection.  Both default off, which keeps the historical
    per-connection resources and event sequences bit-identical.
    """

    def __init__(self, sim: Simulator, host: Host, device: RdmaDevice,
                 cm: Optional[ConnectionManager] = None, *, seed: int = 0,
                 srq_depth: Optional[int] = None, cq_shards: int = 0) -> None:
        self.sim = sim
        self.host = host
        self.device = device
        self.cm = cm or ConnectionManager(device)
        self._seed = itertools.count(seed * 10_000 + 1)
        #: cost (ns) to pin+register memory, charged by :meth:`mregister`;
        #: real registration is expensive (page pinning), which is why EXS
        #: exposes it explicitly instead of hiding it per-transfer.
        self.mregister_base_ns = 10_000
        self.mregister_ns_per_page = 50
        from .shard import CqShard, SrqPool  # circular at module load time

        #: shared receive pool, or None for per-connection receive queues
        self.srq_pool = SrqPool(self, srq_depth) if srq_depth else None
        #: CQ shards, empty for per-connection completion queues
        self.shards = [CqShard(self, i) for i in range(cq_shards)]
        self._next_shard = 0

    def take_shard(self):
        """Round-robin shard assignment for a new connection (or None)."""
        if not self.shards:
            return None
        shard = self.shards[self._next_shard % len(self.shards)]
        self._next_shard += 1
        return shard

    # -- ES-API entry points ---------------------------------------------
    def socket(self, socket_type: SocketType = SocketType.SOCK_STREAM,
               options: Optional[ExsSocketOptions] = None) -> "ExsSocket":
        """``exs_socket()``: create an unconnected socket."""
        return ExsSocket(self, socket_type, options or ExsSocketOptions())

    def qcreate(self, depth: int = 4096) -> ExsEventQueue:
        """``exs_qcreate()``: create an event queue."""
        return ExsEventQueue(
            self.sim,
            depth,
            wakeup=getattr(self.host, "wakeup_sampler", None),
            seed=self.next_seed(),
        )

    def mregister(self, buffer: Buffer) -> Generator[Event, Any, MemoryRegion]:
        """``exs_mregister()``: register user memory for I/O.

        Generator — apps call ``mr = yield from stack.mregister(buf)``; the
        registration cost occupies the caller's CPU.
        """
        pages = buffer.nbytes // 4096 + 1
        # registration happens on the calling (application) thread
        yield from self.host.app_cpu.work(
            self.mregister_base_ns + pages * self.mregister_ns_per_page
        )
        return self.device.register(buffer)

    def mderegister(self, mr: MemoryRegion) -> None:
        """``exs_mderegister()``."""
        self.device.pd.deregister(mr)

    def alloc(self, nbytes: int, *, real: bool = True, label: str = "") -> Buffer:
        """Allocate host memory (convenience; not part of ES-API)."""
        return self.host.alloc(nbytes, real=real, label=label)

    def next_seed(self) -> int:
        return next(self._seed)


class ExsSocket:
    """One EXS socket (unconnected, listening, or connected)."""

    def __init__(self, stack: ExsStack, socket_type: SocketType, options: ExsSocketOptions) -> None:
        self.stack = stack
        self.socket_type = socket_type
        self.options = options
        self.conn: Optional[ExsConnection] = None
        self._listener = None
        self._port: Optional[int] = None
        self.peer_hello: Optional[dict] = None

    # ------------------------------------------------------------------
    # passive side
    # ------------------------------------------------------------------
    def bind_listen(self, port: int) -> None:
        """``exs_bind()`` + ``exs_listen()``."""
        if self._listener is not None:
            raise ExsError("socket already listening")
        self._listener = self.stack.cm.listen(port)
        self._port = port

    def accept(self, eq: ExsEventQueue, context: Any = None,
               options: Optional[ExsSocketOptions] = None) -> None:
        """``exs_accept()``: asynchronously accept one connection.

        Posts an ``ACCEPT`` event carrying the new connected socket in
        ``event.socket`` when the handshake completes on this side.
        """
        if self._listener is None:
            raise ExsError("accept on a non-listening socket")
        self.stack.sim.process(
            self._accept_proc(eq, context, options or self.options), name="exs-accept"
        )

    def _accept_proc(self, eq: ExsEventQueue, context: Any, options: ExsSocketOptions):
        request = yield self._listener.get_request()
        new_sock = ExsSocket(self.stack, self.socket_type, options)
        conn = ExsConnection(
            self.stack.sim,
            self.stack.host,
            self.stack.device,
            new_sock,
            options,
            channel_seed=self.stack.next_seed(),
            socket_type=self.socket_type,
            srq=self.stack.srq_pool,
            shard=self.stack.take_shard(),
        )
        new_sock.conn = conn
        new_sock.peer_hello = request.private_data
        # Post the receive pool before answering so no message can beat it.
        yield from conn.charge(conn.costs.post_wr_ns * options.credits)
        conn.post_initial_recvs()
        try:
            conn.on_peer_hello(request.private_data)
        except ValueError as exc:
            request.reject(str(exc))
            eq.post(ExsEvent(kind=ExsEventType.ERROR, socket=new_sock, context=context,
                             error=str(exc)))
            return
        request.accept(conn.qp, conn.hello())
        eq.post(ExsEvent(kind=ExsEventType.ACCEPT, socket=new_sock, context=context))

    # ------------------------------------------------------------------
    # active side
    # ------------------------------------------------------------------
    def connect(self, port: int, eq: ExsEventQueue, context: Any = None,
                *, to: Optional[str] = None) -> None:
        """``exs_connect()``: asynchronously connect to *port* on the peer.

        Posts a ``CONNECT`` event when established.  On a multi-host
        fabric *to* names the destination host; the classic point-to-point
        wire has an implicit peer and ignores it.
        """
        if self.conn is not None:
            raise ExsError("socket already connected")
        conn = ExsConnection(
            self.stack.sim,
            self.stack.host,
            self.stack.device,
            self,
            self.options,
            channel_seed=self.stack.next_seed(),
            socket_type=self.socket_type,
            srq=self.stack.srq_pool,
            shard=self.stack.take_shard(),
        )
        self.conn = conn
        self.stack.sim.process(self._connect_proc(port, eq, context, to), name="exs-connect")

    def _connect_proc(self, port: int, eq: ExsEventQueue, context: Any,
                      to: Optional[str] = None):
        conn = self.conn
        yield from conn.charge(conn.costs.post_wr_ns * self.options.credits)
        conn.post_initial_recvs()
        done = self.stack.cm.connect(port, conn.qp, conn.hello(), to=to)
        try:
            _remote_qpn, peer_hello = yield done
        except Exception as exc:  # connection refused / rejected
            eq.post(ExsEvent(kind=ExsEventType.ERROR, socket=self, context=context,
                             error=str(exc)))
            return
        self.peer_hello = peer_hello
        try:
            conn.on_peer_hello(peer_hello)
        except ValueError as exc:
            eq.post(ExsEvent(kind=ExsEventType.ERROR, socket=self, context=context,
                             error=str(exc)))
            return
        eq.post(ExsEvent(kind=ExsEventType.CONNECT, socket=self, context=context))

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def send(self, buffer: Buffer, mr: MemoryRegion, nbytes: int, eq: ExsEventQueue,
             *, offset: int = 0, flags: MsgFlags = MsgFlags.NONE, context: Any = None) -> None:
        """``exs_send()``: asynchronous send of *nbytes* from *buffer*.

        Completion (a ``SEND`` event on *eq*) means the library and
        transport are done with the memory — the user may reuse it.
        """
        self._require_connected()
        if nbytes <= 0:
            raise ExsError("exs_send of <= 0 bytes")
        buffer.check_range(offset, nbytes)
        self.conn.user_send(buffer, mr, offset, nbytes, eq, context)

    def recv(self, buffer: Buffer, mr: MemoryRegion, nbytes: int, eq: ExsEventQueue,
             *, offset: int = 0, flags: MsgFlags = MsgFlags.NONE, context: Any = None) -> None:
        """``exs_recv()``: asynchronous receive of up to *nbytes*.

        With ``MSG_WAITALL`` the completion waits until the buffer is full
        (or end of stream); otherwise it fires on first available data.
        """
        self._require_connected()
        if nbytes <= 0:
            raise ExsError("exs_recv of <= 0 bytes")
        buffer.check_range(offset, nbytes)
        urecv = UserRecv(
            buffer=buffer,
            mr=mr,
            offset=offset,
            nbytes=nbytes,
            waitall=bool(flags & MsgFlags.MSG_WAITALL),
            eq=eq,
            context=context,
            posted_at_ns=self.stack.sim.now,
        )
        self.conn.user_recv(urecv)

    def close(self, eq: ExsEventQueue, context: Any = None) -> None:
        """``exs_close()``: flush pending sends, send FIN, then post CLOSE."""
        self._require_connected()
        self.conn.user_close(eq, context)

    # ------------------------------------------------------------------
    def _require_connected(self) -> None:
        if self.conn is None or not self.conn.established:
            raise ExsError("socket is not connected")

    # -- statistics -------------------------------------------------------
    @property
    def tx_stats(self):
        """Protocol statistics for the outbound direction."""
        self._require_connected()
        return self.conn.tx_stats

    @property
    def rx_stats(self):
        """Protocol statistics for the inbound direction."""
        self._require_connected()
        return self.conn.rx_stats
