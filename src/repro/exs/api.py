"""ES-API style free functions and a blocking convenience facade.

The Extended Sockets API is C-flavoured (``exs_socket``, ``exs_send``,
``exs_qdequeue``, ...).  These thin wrappers expose that spelling over the
object API in :mod:`repro.exs.socket`, for familiarity and for porting
pseudo-code from the paper.

:class:`BlockingSocket` pairs each asynchronous call with an event-queue
dequeue, giving the synchronous look of BSD sockets — handy in examples
and tests (each ``yield from`` returns when the operation completes).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..hosts.memory import Buffer
from ..simnet import Event
from ..verbs import MemoryRegion
from .eventqueue import ExsEvent, ExsEventQueue, ExsEventType
from .flags import ExsSocketOptions, MsgFlags, SocketType
from .socket import ExsSocket, ExsStack

__all__ = [
    "exs_socket",
    "exs_bind_listen",
    "exs_accept",
    "exs_connect",
    "exs_send",
    "exs_recv",
    "exs_close",
    "exs_qcreate",
    "exs_qdequeue",
    "exs_mregister",
    "exs_mderegister",
    "BlockingSocket",
]


def exs_socket(stack: ExsStack, socket_type: SocketType = SocketType.SOCK_STREAM,
               options: Optional[ExsSocketOptions] = None) -> ExsSocket:
    """Create a socket (``exs_socket()``)."""
    return stack.socket(socket_type, options)


def exs_bind_listen(sock: ExsSocket, port: int) -> None:
    """Bind and listen (``exs_bind()`` + ``exs_listen()``)."""
    sock.bind_listen(port)


def exs_accept(sock: ExsSocket, eq: ExsEventQueue, context: Any = None,
               options: Optional[ExsSocketOptions] = None) -> None:
    """Asynchronously accept (``exs_accept()``); ACCEPT event on *eq*."""
    sock.accept(eq, context, options)


def exs_connect(sock: ExsSocket, port: int, eq: ExsEventQueue, context: Any = None,
                *, to: Optional[str] = None) -> None:
    """Asynchronously connect (``exs_connect()``); CONNECT event on *eq*.

    *to* names the destination host on a multi-host fabric (ignored on the
    point-to-point wire).
    """
    sock.connect(port, eq, context, to=to)


def exs_send(sock: ExsSocket, buffer: Buffer, mr: MemoryRegion, nbytes: int,
             eq: ExsEventQueue, *, offset: int = 0, flags: MsgFlags = MsgFlags.NONE,
             context: Any = None) -> None:
    """Asynchronous send (``exs_send()``); SEND event on *eq*."""
    sock.send(buffer, mr, nbytes, eq, offset=offset, flags=flags, context=context)


def exs_recv(sock: ExsSocket, buffer: Buffer, mr: MemoryRegion, nbytes: int,
             eq: ExsEventQueue, *, offset: int = 0, flags: MsgFlags = MsgFlags.NONE,
             context: Any = None) -> None:
    """Asynchronous receive (``exs_recv()``); RECV event on *eq*."""
    sock.recv(buffer, mr, nbytes, eq, offset=offset, flags=flags, context=context)


def exs_close(sock: ExsSocket, eq: ExsEventQueue, context: Any = None) -> None:
    """Graceful close (``exs_close()``); CLOSE event on *eq*."""
    sock.close(eq, context)


def exs_qcreate(stack: ExsStack, depth: int = 4096) -> ExsEventQueue:
    """Create an event queue (``exs_qcreate()``)."""
    return stack.qcreate(depth)


def exs_qdequeue(eq: ExsEventQueue) -> Event:
    """Dequeue the next completion (``exs_qdequeue()``); yieldable event."""
    return eq.dequeue()


def exs_mregister(stack: ExsStack, buffer: Buffer) -> Generator[Event, Any, MemoryRegion]:
    """Register memory (``exs_mregister()``); ``yield from`` it."""
    return stack.mregister(buffer)


def exs_mderegister(stack: ExsStack, mr: MemoryRegion) -> None:
    """Deregister memory (``exs_mderegister()``)."""
    stack.mderegister(mr)


class BlockingSocket:
    """Synchronous-looking wrapper pairing each call with its completion.

    Every method is a generator to ``yield from`` inside a simulation
    process; as a context manager the socket closes itself on exit::

        conn = yield from BlockingSocket.connect(stack, port=4000)
        with conn:
            yield from conn.send_bytes(b"hello")
            data = yield from conn.recv_bytes(5)
        # exs_close() was issued; the CLOSE completion arrives on conn.eq

    ``with`` issues a fire-and-forget ``exs_close()`` (``__exit__`` cannot
    yield, so it does not wait for the CLOSE completion); call
    ``yield from conn.close()`` instead when the process must observe the
    close finishing before proceeding.
    """

    def __init__(self, sock: ExsSocket, eq: ExsEventQueue) -> None:
        self.sock = sock
        self.eq = eq
        self.stack = sock.stack
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "BlockingSocket":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close_nowait()
        return False

    def close_nowait(self) -> None:
        """Issue ``exs_close()`` without waiting; idempotent.

        The CLOSE completion is delivered to ``self.eq`` like any other.
        """
        if not self._closed:
            self._closed = True
            self.sock.close(self.eq)

    # -- establishment -----------------------------------------------------
    @classmethod
    def connect(cls, stack: ExsStack, port: int,
                socket_type: SocketType = SocketType.SOCK_STREAM,
                options: Optional[ExsSocketOptions] = None,
                to: Optional[str] = None):
        sock = stack.socket(socket_type, options)
        eq = stack.qcreate()
        sock.connect(port, eq, to=to)
        ev: ExsEvent = yield eq.dequeue()
        ev.expect(ExsEventType.CONNECT)
        return cls(sock, eq)

    @classmethod
    def accept_one(cls, stack: ExsStack, port: int,
                   socket_type: SocketType = SocketType.SOCK_STREAM,
                   options: Optional[ExsSocketOptions] = None):
        listener = stack.socket(socket_type, options)
        listener.bind_listen(port)
        eq = stack.qcreate()
        listener.accept(eq)
        ev: ExsEvent = yield eq.dequeue()
        ev.expect(ExsEventType.ACCEPT)
        return cls(ev.socket, eq)

    # -- data ---------------------------------------------------------------
    def send_bytes(self, payload: bytes):
        """Register a fresh buffer, send *payload*, wait for completion."""
        buf = self.stack.alloc(len(payload), label="blk:send")
        buf.fill(payload)
        mr = yield from self.stack.mregister(buf)
        self.sock.send(buf, mr, len(payload), self.eq)
        ev: ExsEvent = yield self.eq.dequeue()
        ev.expect(ExsEventType.SEND)
        self.stack.mderegister(mr)
        return ev.nbytes

    def recv_bytes(self, max_nbytes: int, *, waitall: bool = False):
        """Receive up to *max_nbytes*; returns the received bytes (b'' at EOF)."""
        buf = self.stack.alloc(max_nbytes, label="blk:recv")
        mr = yield from self.stack.mregister(buf)
        flags = MsgFlags.MSG_WAITALL if waitall else MsgFlags.NONE
        self.sock.recv(buf, mr, max_nbytes, self.eq, flags=flags)
        ev: ExsEvent = yield self.eq.dequeue()
        ev.expect(ExsEventType.RECV)
        self.stack.mderegister(mr)
        data = buf.read(0, ev.nbytes)
        return b"" if ev.eof and ev.nbytes == 0 else (data or b"")

    def close(self):
        """Close and wait for the CLOSE completion; no-op when already closed."""
        if self._closed:
            return None
        self._closed = True
        self.sock.close(self.eq)
        ev: ExsEvent = yield self.eq.dequeue()
        ev.expect(ExsEventType.CLOSE)
        return None
