"""UNH EXS library model: stream semantics over simulated RDMA verbs.

The library implements the Extended Sockets API surface the paper relies
on: asynchronous connected sockets (``SOCK_STREAM`` with the dynamic
direct/indirect protocol of the paper, plus ``SOCK_SEQPACKET``), explicit
memory registration, event queues, ``MSG_WAITALL``, and the experiment
flags that force the direct-only / indirect-only baseline protocols.
"""

from .api import (
    BlockingSocket,
    exs_accept,
    exs_bind_listen,
    exs_close,
    exs_connect,
    exs_mderegister,
    exs_mregister,
    exs_qcreate,
    exs_qdequeue,
    exs_recv,
    exs_send,
    exs_socket,
)
from .connection import ExsConnection
from .control import AdvertMsg, CreditMsg, FinMsg, RingAckMsg
from .credits import CreditError, CreditManager
from .eventqueue import ExsEvent, ExsEventQueue, ExsEventType
from .flags import (
    TRANSPORT_EAGER_RENDEZVOUS,
    TRANSPORT_WWI,
    ExsSocketOptions,
    MsgFlags,
    SocketType,
)
from .rendezvous import RdvReceiverHalf, RdvSenderHalf
from .shard import CqShard, SrqPool
from .socket import ExsError, ExsSocket, ExsStack
from .stream_receiver import StreamReceiverHalf, UserRecv
from .stream_sender import StreamSenderHalf, UserSend

__all__ = [
    "AdvertMsg",
    "BlockingSocket",
    "CqShard",
    "CreditError",
    "CreditManager",
    "CreditMsg",
    "ExsConnection",
    "ExsError",
    "ExsEvent",
    "ExsEventQueue",
    "ExsEventType",
    "ExsSocket",
    "ExsSocketOptions",
    "ExsStack",
    "FinMsg",
    "MsgFlags",
    "RdvReceiverHalf",
    "RdvSenderHalf",
    "RingAckMsg",
    "SocketType",
    "SrqPool",
    "TRANSPORT_EAGER_RENDEZVOUS",
    "TRANSPORT_WWI",
    "StreamReceiverHalf",
    "StreamSenderHalf",
    "UserRecv",
    "UserSend",
    "exs_accept",
    "exs_bind_listen",
    "exs_close",
    "exs_connect",
    "exs_mderegister",
    "exs_mregister",
    "exs_qcreate",
    "exs_qdequeue",
    "exs_recv",
    "exs_send",
    "exs_socket",
]
