"""The EXS connection: resources, progress engine, and control plane.

One :class:`ExsConnection` backs one connected EXS socket.  It owns the
verbs resources (QP, CQ, completion channel, pre-posted receive pool), the
two protocol halves (:class:`~repro.exs.stream_sender.StreamSenderHalf`,
:class:`~repro.exs.stream_receiver.StreamReceiverHalf` — or their
SOCK_SEQPACKET counterparts), the credit manager, and the **progress
engine**: a single simulation process standing in for the EXS library
thread that services this socket.

The engine models the event-notification discipline the paper's
experiments use: drain the CQ and all derived work while awake; arm the CQ
and block on the completion channel (paying the OS wake-up latency) only
when nothing is runnable.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Deque, Optional

from ..core import ProtocolStats
from ..core.invariants import require
from ..hosts.host import Host
from ..hosts.memory import Chunk, CopyMeter
from ..simnet import AnyOf, Signal, Simulator
from ..verbs import (
    SGE,
    CompletionChannel,
    CompletionQueue,
    Opcode,
    QPStateError,
    QueuePair,
    RdmaDevice,
    RecvWR,
    SendWR,
    WCOpcode,
    WorkCompletion,
)
from .control import (
    CTRL_WIRE_BYTES,
    AdvertMsg,
    ControlMsg,
    CreditMsg,
    CtsMsg,
    DataNotifyMsg,
    EagerDataMsg,
    FinMsg,
    IMM_DIRECT,
    IMM_INDIRECT,
    IMM_RENDEZVOUS,
    RingAckMsg,
    RtsMsg,
    decode_imm,
)
from .credits import CreditError, CreditManager
from .eventqueue import ExsEvent, ExsEventType
from .flags import ExsSocketOptions, SocketType, TRANSPORT_EAGER_RENDEZVOUS
from .rendezvous import RdvReceiverHalf, RdvSenderHalf
from .seqpacket import SeqPacketReceiverHalf, SeqPacketSenderHalf
from .stream_receiver import StreamReceiverHalf
from .stream_sender import StreamSenderHalf

__all__ = ["ExsConnection"]

#: size of each pre-posted receive buffer (large enough for any control msg)
RECV_BUF_BYTES = 256


class ExsConnection:
    """Engine and state for one connected EXS socket."""

    _ids = itertools.count(1)

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        device: RdmaDevice,
        socket: Any,
        options: ExsSocketOptions,
        *,
        channel_seed: int,
        socket_type: SocketType = SocketType.SOCK_STREAM,
        srq=None,
        shard=None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.device = device
        self.socket = socket
        self.options = options
        self.conn_id = next(ExsConnection._ids)
        self.costs = host.cpu.costs

        self.socket_type = socket_type
        self.transport = (
            options.effective_transport()
            if socket_type is SocketType.SOCK_STREAM else "wwi"
        )
        # Shared receive pool (ExsStack(srq_depth=...)): control-plane
        # transports draw receives from the stack-wide SRQ instead of
        # posting per-QP buffers.  Eager transport keeps per-QP receives —
        # its payloads land in per-connection bounce slots.
        if srq is not None and self.transport != TRANSPORT_EAGER_RENDEZVOUS:
            self.srq_pool = srq
            srq.attached += 1
        else:
            self.srq_pool = None
        #: the CQ shard servicing this connection (ExsStack(cq_shards=...));
        #: None = the connection runs its own engine process
        self._shard = shard
        if shard is not None:
            self.channel: CompletionChannel = shard.channel
            self.cq: CompletionQueue = shard.cq
        else:
            if options.busy_poll:
                # Busy polling: the progress thread spins on the CQ; a
                # constant tiny delay stands in for the poll-loop iteration
                # time, and the spin time itself is accounted as CPU burn in
                # the engine loop.
                from ..verbs.comp_channel import fixed_wakeup

                wakeup = fixed_wakeup(100)
            else:
                wakeup = getattr(host, "wakeup_sampler", None)
            self.channel = device.create_channel(wakeup=wakeup, seed=channel_seed)
            self.cq = device.create_cq(self.channel)
        self.qp: QueuePair = device.create_qp(
            self.cq, self.cq,
            srq=self.srq_pool.srq if self.srq_pool is not None else None,
        )

        self.credits: Optional[CreditManager] = None  # set once hello exchanged

        # statistics (tx = our sender half, rx = our receiver half)
        self.tx_stats = ProtocolStats()
        self.rx_stats = ProtocolStats()
        #: payload-plane copy accounting: every buffer this connection moves
        #: data through (ring, staging, user send/recv buffers) charges this
        #: meter, so "copied exactly once" is directly assertable.
        self.copy_meter = CopyMeter()

        if self.transport == TRANSPORT_EAGER_RENDEZVOUS:
            # Eager payloads are DMA-placed into per-RECV bounce slots, so
            # every slot must fit the largest eager message; the slot copy
            # is the eager path's first metered copy.
            self._slot_bytes = max(RECV_BUF_BYTES, options.eager_threshold)
            self.recv_pool_buf = host.alloc(
                options.credits * self._slot_bytes,
                real=options.real_data,
                label=f"exs{self.conn_id}:eager",
            )
            self.recv_pool_buf.meter = self.copy_meter
            self._free_slots = list(range(options.credits - 1, -1, -1))
        else:
            # Control messages carry their payload as a python object, so a
            # single shared synthetic buffer backs the whole pool.
            self._slot_bytes = None
            self.recv_pool_buf = host.alloc(
                RECV_BUF_BYTES, real=False, label=f"exs{self.conn_id}:ctrl"
            )
            self._free_slots = None
        self._recv_pool_buf = self.recv_pool_buf
        self._recv_pool_mr = device.register(self.recv_pool_buf)

        if socket_type is SocketType.SOCK_STREAM:
            if self.transport == TRANSPORT_EAGER_RENDEZVOUS:
                # no intermediate ring: staging happens in the bounce slots
                self.ring_buffer = None
                self.ring_mr = None
                self.tx = RdvSenderHalf(self)
                self.rx = RdvReceiverHalf(self)
            else:
                # intermediate ring for data we RECEIVE
                self.ring_buffer = host.alloc(
                    options.ring_capacity, real=options.real_data,
                    label=f"exs{self.conn_id}:ring"
                )
                self.ring_buffer.meter = self.copy_meter
                self.ring_mr = device.register(self.ring_buffer)
                self.tx = StreamSenderHalf(self)
                self.rx = StreamReceiverHalf(self, self.ring_buffer, self.ring_mr)
        else:
            self.ring_buffer = None
            self.ring_mr = None
            self.tx = SeqPacketSenderHalf(self)
            self.rx = SeqPacketReceiverHalf(self)

        self._ctrl_queue: Deque[ControlMsg] = deque()
        #: optional ProtocolTracer (see repro.trace); set on the host
        self.tracer = getattr(host, "tracer", None)
        self._last_tx_phase = 0
        self._last_rx_phase = 0
        self._last_discarded = 0
        self._wr_ids = itertools.count(1)
        #: the peer endpoint's conn_id, learnt from its hello (0 = unknown)
        self.peer_conn_id = 0
        # on a sharded stack, kicks wake the shard poller instead of a
        # per-connection engine
        self._kick = shard.kick if shard is not None else Signal(sim)
        self._engine = None
        self.established = False
        self.closing = False
        self.close_event_posted = False
        self._close_eq = None
        self._close_context = None
        #: True once the transport/protocol failed under this connection;
        #: every pending and future operation completes with an ERROR event.
        self.broken = False
        self.error: Optional[str] = None

    # ------------------------------------------------------------------
    # setup / handshake
    # ------------------------------------------------------------------
    def hello(self) -> dict:
        """Private data advertised to the peer during connection setup."""
        return {
            "ring_addr": self.ring_mr.addr if self.ring_mr else 0,
            "ring_rkey": self.ring_mr.rkey if self.ring_mr else 0,
            "ring_capacity": self.ring_buffer.nbytes if self.ring_buffer else 0,
            "credits": self.options.credits,
            "mode": self.options.mode.value,
            "socket_type": self.socket_type.value,
            "transport": self.transport,
            # lets telemetry pair the two endpoints of one socket pair,
            # which span stitching needs to follow a message across hosts
            "conn_id": self.conn_id,
        }

    def post_initial_recvs(self) -> None:
        """Pre-post the receive pool (paper §II-B: *n* RECVs at startup).

        On an SRQ-pooled stack the shared pool was pre-filled once at stack
        construction, so there is nothing to post per connection — the
        credits advertised to the peer still gate its sends, but pool
        exhaustion across connections is now possible and resolves through
        RNR NAK + retry.
        """
        if self.srq_pool is not None:
            return
        for _ in range(self.options.credits):
            self._post_recv_wr()

    def _post_recv_wr(self) -> None:
        if self._slot_bytes is None:
            self.qp.post_recv(
                RecvWR(
                    wr_id=self.next_wr_id(),
                    sge=SGE(self._recv_pool_mr.addr, RECV_BUF_BYTES, self._recv_pool_mr.lkey),
                )
            )
            return
        slot = self._free_slots.pop()
        self.qp.post_recv(
            RecvWR(
                wr_id=self.next_wr_id(),
                sge=SGE(
                    self._recv_pool_mr.addr + self.eager_slot_offset(slot),
                    self._slot_bytes,
                    self._recv_pool_mr.lkey,
                ),
                context=slot,
            )
        )

    def eager_slot_offset(self, slot: int) -> int:
        """Byte offset of bounce slot *slot* within the receive pool."""
        return slot * self._slot_bytes

    def recycle_eager_slot(self, slot: int) -> None:
        """An eager payload was copied out: repost its slot, return the credit."""
        self._free_slots.append(slot)
        self._recycle_recv(None)

    def on_peer_hello(self, peer: dict) -> None:
        """Complete setup from the peer's hello and start the engine."""
        if peer.get("mode") != self.options.mode.value:
            raise ValueError(
                f"protocol mode mismatch: local {self.options.mode.value!r}, "
                f"peer {peer.get('mode')!r}"
            )
        if peer.get("socket_type") != self.socket_type.value:
            raise ValueError(
                f"socket type mismatch: local {self.socket_type.value!r}, "
                f"peer {peer.get('socket_type')!r}"
            )
        if peer.get("transport", "wwi") != self.transport:
            raise ValueError(
                f"transport mismatch: local {self.transport!r}, "
                f"peer {peer.get('transport')!r}"
            )
        self.credits = CreditManager(
            initial_remote=int(peer["credits"]),
            control_reserve=self.options.control_credit_reserve,
        )
        self.tx.configure_peer(
            ring_addr=int(peer["ring_addr"]),
            ring_rkey=int(peer["ring_rkey"]),
            ring_capacity=int(peer["ring_capacity"]),
        )
        self.peer_conn_id = int(peer.get("conn_id", 0))
        if self.tracer is not None:
            self.trace("conn_open", peer=self.peer_conn_id)
        telemetry = getattr(self.host, "telemetry", None)
        if telemetry is not None:
            telemetry.register_connection(self)
        self.established = True
        if self._shard is not None:
            # sharded stack: the shard's poller services this connection
            self._shard.register(self)
            return
        self._engine = self.sim.process(self._engine_loop(), name=f"exs{self.conn_id}-engine")
        # An engine death is an implementation bug; surface it immediately
        # instead of letting the simulation quietly deadlock.
        self._engine.add_callback(self._on_engine_exit)

    def _on_engine_exit(self, event) -> None:
        if event.ok is False:
            raise RuntimeError(
                f"EXS engine for connection {self.conn_id} died"
            ) from event._value

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def next_wr_id(self) -> int:
        return next(self._wr_ids)

    def charge(self, ns: int):
        """Charge *ns* of library CPU time (generator)."""
        return self.host.cpu.work(ns)

    def kick(self) -> None:
        """Wake the engine (user posted work / external state change)."""
        if self._shard is not None:
            self._shard.mark(self)
        self._kick.fire()

    def queue_control(self, msg: ControlMsg) -> None:
        self._ctrl_queue.append(msg)

    def trace(self, kind: str, **fields) -> None:
        """Emit a protocol trace event (no-op unless a tracer is attached).

        Under causality capture, every trace event also carries the id of
        the causal node whose dispatch produced it (``cause``) — the bridge
        between the protocol-level span stream and the kernel's causal DAG.
        """
        if self.tracer is not None:
            rec = self.sim._recorder
            if rec is not None:
                fields["cause"] = rec.current
            self.tracer.emit(self.sim.now, self.conn_id, self.host.name, kind, **fields)

    def _note_progress(self) -> None:
        """Record phase transitions and ADVERT drops for tracing/diagnostics."""
        tx_algo = getattr(self.tx, "algo", None)
        if tx_algo is not None:
            if tx_algo.phase != self._last_tx_phase:
                self._last_tx_phase = tx_algo.phase
                self.tx_stats.note_phase(self.sim.now, tx_algo.phase)
                self.trace("phase", side="tx", phase=tx_algo.phase)
            d = self.tx_stats.adverts_discarded
            if d != self._last_discarded:
                self.trace("advert_drop", count=d - self._last_discarded)
                self._last_discarded = d
        rx_algo = getattr(self.rx, "algo", None)
        if rx_algo is not None and rx_algo.phase != self._last_rx_phase:
            self._last_rx_phase = rx_algo.phase
            self.rx_stats.note_phase(self.sim.now, rx_algo.phase)
            self.trace("phase", side="rx", phase=rx_algo.phase)

    # ------------------------------------------------------------------
    # user operations (called by ExsSocket; asynchronous)
    # ------------------------------------------------------------------
    def user_send(self, buffer, mr, offset: int, nbytes: int, eq, context) -> None:
        if self.broken:
            self._post_error(eq, context)
            return
        if self.options.sender_copy and self.socket_type is SocketType.SOCK_STREAM:
            # SDP-BCopy / rsockets semantics: copy into a pre-registered
            # library staging buffer on the application core, complete the
            # user send immediately afterwards, and transmit from the copy.
            self.sim.process(
                self._staged_send(buffer, offset, nbytes, eq, context),
                name=f"exs{self.conn_id}-stage",
            )
            return
        buffer.meter = self.copy_meter
        self.tx.submit(buffer, mr, offset, nbytes, eq, context)
        self.kick()

    def _staged_send(self, buffer, offset: int, nbytes: int, eq, context):
        yield from self.host.app_cpu.work(
            self.costs.copy_ns(nbytes, self.host.copy_bandwidth_bps)
        )
        if self.broken:
            # The connection died while the staging copy ran.
            self._post_error(eq, context)
            return
        staging = self.host.alloc(nbytes, real=self.options.real_data and buffer.is_real,
                                  label=f"exs{self.conn_id}:stage")
        staging.meter = self.copy_meter
        if staging.is_real:
            # One metered copy straight from a view of the user buffer into
            # staging (the deliberate sender-copy of SDP-BCopy semantics).
            staging.write(0, buffer.view(offset, nbytes))
        staging_mr = self.device.register(staging)
        usend = self.tx.submit(staging, staging_mr, 0, nbytes, eq, context)
        usend.notify_completion = False
        # TCP-style semantics: the user's buffer is free as soon as the
        # copy is done; completion is delivered now.
        eq.post(ExsEvent(kind=ExsEventType.SEND, socket=self.socket,
                         nbytes=nbytes, context=context))
        self.kick()

    def user_recv(self, urecv) -> None:
        if self.broken:
            self._post_error(urecv.eq, urecv.context)
            return
        urecv.buffer.meter = self.copy_meter
        advert = self.rx.submit(urecv)
        if advert is not None:
            self.queue_control(advert)
        self.kick()

    def user_close(self, eq, context) -> None:
        """Graceful close: FIN after all pending sends drain."""
        if self.broken:
            self._post_error(eq, context)
            return
        self.closing = True
        self._close_eq = eq
        self._close_context = context
        self.kick()

    # ------------------------------------------------------------------
    # failure propagation
    # ------------------------------------------------------------------
    def _post_error(self, eq, context) -> None:
        eq.post(
            ExsEvent(
                kind=ExsEventType.ERROR,
                socket=self.socket,
                context=context,
                error=self.error or "connection broken",
            )
        )

    def fail_connection(self, reason: str) -> None:
        """Transport or protocol failure: break the socket, error all ops.

        Idempotent.  Every incomplete ``exs_send``/``exs_recv`` (and a
        pending close) gets an :attr:`ExsEventType.ERROR` completion so
        blocked applications wake instead of hanging forever.
        """
        if self.broken:
            return
        self.broken = True
        self.error = reason
        self.trace("conn_error", reason=reason)
        if self.sim.tracing:
            self.sim.trace("exs", f"conn{self.conn_id} failed: {reason}")
        rec = self.sim._recorder
        if rec is not None:
            rec.failure(
                "conn_error",
                self.sim.now,
                conn=self.conn_id,
                host=self.host.name,
                error=reason,
            )
        for eq, context in self.tx.fail_pending():
            self._post_error(eq, context)
        for eq, context in self.rx.fail_pending():
            self._post_error(eq, context)
        if self.closing and not self.close_event_posted and self._close_eq is not None:
            self.close_event_posted = True
            self._post_error(self._close_eq, self._close_context)
        self.kick()  # wake the engine so it can exit

    # ------------------------------------------------------------------
    # the progress engine
    # ------------------------------------------------------------------
    def _engine_loop(self):
        while not self.broken:
            progressed = True
            try:
                while progressed and not self.broken:
                    progressed = False
                    wcs = self.cq.poll()
                    for wc in wcs:
                        yield from self._handle_wc(wc)
                    if wcs:
                        progressed = True
                    if self.broken:
                        break
                    progressed = (yield from self._progress_round()) or progressed
            except (CreditError, QPStateError) as exc:
                # The QP died under us (timer-driven teardown between engine
                # steps) or credit accounting collapsed with it: survivable.
                self.fail_connection(f"{type(exc).__name__}: {exc}")
            if self.broken:
                return
            # idle: arm and sleep (or spin, under busy_poll)
            self.cq.req_notify()
            if len(self.cq):
                continue
            idle_start = self.sim.now
            yield AnyOf(self.sim, [self.channel.wait(), self._kick.wait()])
            if self.options.busy_poll:
                # the poll loop burned the library core the whole time
                self.host.cpu.record_busy(idle_start, self.sim.now)

    def _progress_round(self):
        """Everything one engine pass does after draining the CQ: copies,
        advert flushing, the tx pump, close/control pumping, and EOF
        delivery.  Returns True if anything moved.

        Factored out of :meth:`_engine_loop` (which preserves its exact
        operation order) so a :class:`~repro.exs.shard.CqShard` poller can
        run progress rounds for many connections around one shared CQ.
        """
        progressed = False
        # one copy at a time so completions interleave realistically
        plan = self.rx.next_copy()
        if plan is not None:
            yield from self.rx.execute_copy(plan)
            progressed = True
        # re-advertise queued receives once the gate opens
        for advert_msg in self.rx.flush_adverts():
            self.queue_control(advert_msg)
            progressed = True
        # The idle guards below skip constructing sub-pump generators whose
        # first action would be returning False: with nothing pending the
        # pumps yield no events, so skipping them is execution-equivalent
        # and keeps quiescent rounds cheap on many-connection shards.
        if self.tx.pending:
            sent = yield from self.tx.pump()
            progressed = bool(sent) or progressed
        progressed = self._pump_close() or progressed
        if self._ctrl_queue or (
            self.credits is not None
            and self.credits.ungranted()
            >= self.options.effective_credit_update_threshold()
        ):
            ctrl = yield from self._pump_control()
            progressed = ctrl or progressed
        progressed = self.rx.pump_eof() or progressed
        if self.tracer is not None:
            self._note_progress()
        return progressed

    # -- completion dispatch ---------------------------------------------
    def _handle_wc(self, wc: WorkCompletion):
        if self.broken:
            return
        if not wc.ok:
            self.fail_connection(f"transport error: {wc.status.value}")
            return
        if wc.opcode is WCOpcode.RECV_RDMA_WITH_IMM:
            yield from self._handle_data_arrival(wc)
        elif wc.opcode is WCOpcode.RECV:
            yield from self._handle_control_arrival(wc)
        elif wc.opcode is WCOpcode.RDMA_WRITE:
            # one of our WWIs was acknowledged by the transport
            yield from self.charge(self.costs.completion_ns)
            kind, usend, chunk = wc.context
            require(kind == "data", "wc dispatch", "unexpected send-completion context")
            if chunk.pin is not None:
                # The EXS-level ack frees the send window: from here the
                # user may reuse the buffer range, so the in-flight view is
                # dead (nothing re-delivers it — the transport ack implies
                # the responder consumed this seq, and any later duplicate
                # is discarded by the sequence check without touching data).
                chunk.pin.release()
            self.tx.on_data_acked(usend, chunk.nbytes)
        elif wc.opcode is WCOpcode.SEND:
            # control (or eager-data) message send completion
            yield from self.charge(self.costs.completion_ns)
            if isinstance(wc.context, tuple) and wc.context:
                if wc.context[0] == "fin":
                    self.tx.fin_acked = True
                elif wc.context[0] == "eager":
                    # the peer's bounce slot holds the bytes now: the user
                    # may reuse the send buffer, so drop the in-flight view
                    _kind, usend, chunk = wc.context
                    if chunk.pin is not None:
                        chunk.pin.release()
                    self.tx.on_data_acked(usend, chunk.nbytes)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unexpected completion opcode {wc.opcode}")

    def _handle_data_arrival(self, wc: WorkCompletion):
        yield from self.charge(self.costs.completion_ns)
        self._recycle_recv(wc)
        kind, advert_id = decode_imm(wc.imm_data)
        chunk: Chunk = wc.meta["chunk"]
        remote_addr: int = wc.meta["remote_addr"]
        if kind == IMM_DIRECT:
            self.rx.on_direct_arrival(advert_id, wc.byte_len, chunk.stream_offset, remote_addr)
        elif kind == IMM_INDIRECT:
            self.rx.on_indirect_arrival(wc.byte_len, chunk.stream_offset, remote_addr)
        elif kind == IMM_RENDEZVOUS:
            self.rx.on_rendezvous_arrival(wc.byte_len, chunk.stream_offset)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"bad immediate {wc.imm_data:#x}")

    def _handle_control_arrival(self, wc: WorkCompletion):
        chunk: Chunk = wc.meta["chunk"]
        msg = chunk.obj
        # Dispatching a data arrival does the same work as a WWI receive
        # completion; other control messages are lighter.
        data_arrival = isinstance(msg, (DataNotifyMsg, EagerDataMsg))
        cost = self.costs.completion_ns if data_arrival else self.costs.control_ns
        yield from self.charge(cost)
        if isinstance(msg, EagerDataMsg):
            # The payload occupies the bounce slot until it is copied into
            # user memory; the slot (and its credit) recycles only then —
            # that deferral is the eager path's flow control.
            if self.credits is not None and hasattr(msg, "credit_cum"):
                self.credits.on_peer_grant(msg.credit_cum)
            self.rx.on_eager_arrival(msg, wc.context)
            return
        self._recycle_recv(wc)
        if self.credits is not None and hasattr(msg, "credit_cum"):
            self.credits.on_peer_grant(msg.credit_cum)
        if isinstance(msg, AdvertMsg):
            self.trace("advert_rx", seq=msg.advert.seq, phase=msg.advert.phase)
            self.tx.on_advert(msg.advert)
        elif isinstance(msg, DataNotifyMsg):
            # iWARP emulation: this SEND notifies of an RDMA WRITE that the
            # transport already placed (same QP, in order).
            kind, advert_id = decode_imm(msg.imm_data)
            if kind == IMM_DIRECT:
                self.rx.on_direct_arrival(advert_id, msg.nbytes, msg.stream_offset, msg.remote_addr)
            elif kind == IMM_INDIRECT:
                self.rx.on_indirect_arrival(msg.nbytes, msg.stream_offset, msg.remote_addr)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"bad notify immediate {msg.imm_data:#x}")
        elif isinstance(msg, RingAckMsg):
            self.tx.on_ring_ack(msg.copied_cum)
        elif isinstance(msg, CreditMsg):
            self.credits.on_peer_grant(msg.credit_cum)
        elif isinstance(msg, FinMsg):
            self.rx.on_fin(msg.final_seq)
        elif isinstance(msg, RtsMsg):
            self.rx.on_rts(msg)
        elif isinstance(msg, CtsMsg):
            self.tx.on_cts(msg)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown control message {msg!r}")

    def _recycle_recv(self, wc: Optional[WorkCompletion] = None) -> None:
        """Repost the consumed RECV and account the credit to grant back."""
        if wc is not None and self._slot_bytes is not None and wc.context is not None:
            self._free_slots.append(wc.context)
        if self.srq_pool is not None:
            self.srq_pool.repost()
        else:
            self._post_recv_wr()
        if self.credits is not None:
            self.credits.on_local_repost()

    # -- control-plane transmit -------------------------------------------
    def _pump_control(self):
        progressed = False
        while self._ctrl_queue and self.credits.can_send_control():
            msg = self._ctrl_queue.popleft()
            yield from self.charge(self.costs.send_control_ns)
            self._post_control(msg)
            progressed = True
        # explicit credit return when there is no other outbound traffic
        if (
            not self._ctrl_queue
            and self.credits is not None
            and self.credits.ungranted() >= self.options.effective_credit_update_threshold()
            and self.credits.can_send_control()
        ):
            yield from self.charge(self.costs.send_control_ns)
            self._post_control(CreditMsg(credit_cum=0))
            progressed = True
        return progressed

    def _post_control(self, msg: ControlMsg) -> None:
        if self.tracer is not None:
            if isinstance(msg, AdvertMsg):
                self.trace("advert_tx", seq=msg.advert.seq, phase=msg.advert.phase,
                           nbytes=msg.advert.length)
            elif isinstance(msg, RingAckMsg):
                self.trace("ring_ack", copied=msg.copied_cum)
            elif isinstance(msg, FinMsg):
                self.trace("fin", seq=msg.final_seq)
        grant = self.credits.grant_now()
        if not isinstance(msg, CreditMsg):
            msg = replace(msg, credit_cum=grant)
        else:
            msg = CreditMsg(credit_cum=grant)
        context = ("ctrl", msg)
        if isinstance(msg, FinMsg):
            context = ("fin", msg)
        self.credits.consume(1)
        self.qp.post_send(
            SendWR(
                opcode=Opcode.SEND,
                wr_id=self.next_wr_id(),
                sge=SGE(self._recv_pool_mr.addr, CTRL_WIRE_BYTES, self._recv_pool_mr.lkey),
                payload=Chunk(0, CTRL_WIRE_BYTES, None, obj=msg),
                context=context,
            )
        )

    # -- close handling -----------------------------------------------------
    def _pump_close(self) -> bool:
        if not self.closing or self.tx.fin_sent:
            self._maybe_post_close_event()
            return False
        if not self.tx.drained:
            return False
        self.queue_control(FinMsg(final_seq=self.tx.final_seq))
        self.tx.fin_sent = True
        return True

    def _maybe_post_close_event(self) -> None:
        if (
            self.closing
            and self.tx.fin_sent
            and self.tx.fin_acked
            and not self.close_event_posted
            and self._close_eq is not None
        ):
            self.close_event_posted = True
            self._close_eq.post(
                ExsEvent(
                    kind=ExsEventType.CLOSE,
                    socket=self.socket,
                    context=self._close_context,
                )
            )
