"""Shared per-host EXS resources: the SRQ receive pool and CQ shards.

Historically every EXS connection owned a private stack of verbs
resources: ``credits`` pre-posted receive buffers, one completion queue,
one completion channel, and one progress-engine process.  That is faithful
to the two-host experiments of the paper but scales per-connection: a host
terminating N connections posts O(N·credits) receive buffers and runs N
engine processes each polling its own CQ.

Two opt-in resources change that to O(1) / O(shards) per host:

* :class:`SrqPool` — one shared receive queue
  (:class:`~repro.verbs.srq.SharedReceiveQueue`) backing the control-plane
  receive pools of every connection on the stack.  The pool is pre-filled
  to ``depth`` once; each consumed buffer is re-posted on recycle.  When
  bursts across connections drain the pool, the arriving QP takes an RNR
  NAK exactly as an individual empty receive queue would (IBTA semantics:
  RNR is evaluated against the SRQ for SRQ-attached QPs), and the sender's
  reliability layer retries after the RNR backoff.
* :class:`CqShard` — one completion channel + CQ + poller process shared
  by many connections.  Completions are routed to their connection by
  ``wc.qp_num`` in arrival order, then every registered connection gets a
  progress round.  A host polls O(shards) CQs regardless of connection
  count.

Neither is active by default: ``ExsStack(srq_depth=None, cq_shards=0)``
keeps the historical per-connection resources, bit-identical to previous
builds.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict

from ..simnet import AnyOf, Signal
from ..verbs import QPStateError, RecvWR, SGE
from .credits import CreditError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .connection import ExsConnection
    from .socket import ExsStack

__all__ = ["SrqPool", "CqShard"]


class SrqPool:
    """A stack-wide shared receive pool for control-plane buffers.

    Owns the :class:`~repro.verbs.srq.SharedReceiveQueue`, the single
    synthetic backing buffer (control messages carry their payload as a
    python object, so one 256-byte buffer backs every slot), and its
    memory registration.  Connections attach their QP to :attr:`srq` and
    call :meth:`repost` instead of posting per-QP receives.

    Eager-transport connections are *not* pooled: their receives place
    payload bytes into per-connection bounce slots.
    """

    def __init__(self, stack: "ExsStack", depth: int) -> None:
        from .connection import RECV_BUF_BYTES

        if depth <= 0:
            raise ValueError("SRQ pool depth must be positive")
        self.stack = stack
        self.depth = depth
        self.srq = stack.device.create_srq(depth)
        self.buf = stack.host.alloc(
            RECV_BUF_BYTES, real=False, label=f"{stack.host.name}:srqpool"
        )
        self.mr = stack.device.register(self.buf)
        self._recv_bytes = RECV_BUF_BYTES
        # Every pool slot is an interchangeable view of the same synthetic
        # backing buffer, so one immutable SGE serves all of them; building
        # a fresh (frozen, validated) SGE per repost dominated stack
        # bring-up once depths reached the 10k-connection range.
        self._sge = SGE(self.mr.addr, self._recv_bytes, self.mr.lkey)
        #: connections drawing from this pool (for telemetry)
        self.attached = 0
        # Reserve wr_ids 1..depth for the lazy prefill range; reposts
        # continue the sequence from depth+1, exactly as an eager prefill
        # drawing from the same counter would have numbered them.
        self._wr_ids = itertools.count(depth + 1)
        self.srq.prefill(depth, self._sge, wr_id_start=1)

    def repost(self) -> None:
        """Post one receive buffer back into the shared pool."""
        self.srq.post_recv(RecvWR(wr_id=next(self._wr_ids), sge=self._sge))

    # -- telemetry-facing views ----------------------------------------
    @property
    def free(self) -> int:
        return self.srq.free

    @property
    def occupancy(self) -> int:
        return len(self.srq)

    @property
    def empty_hits(self) -> int:
        return self.srq.empty_hits

    @property
    def min_free(self) -> int:
        return self.srq.min_free


class CqShard:
    """One completion vector: a shared channel + CQ and its poller.

    Connections on a sharded stack are assigned round-robin to shards; the
    shard's single engine process replaces their per-connection engines.
    Each wake-up drains the shared CQ, dispatching completions to their
    owning connection **in arrival order** (routed by ``wc.qp_num``), then
    runs one progress round per registered connection until nothing moves,
    then re-arms and sleeps — the same drain-while-awake discipline as the
    per-connection engine.

    A failing connection (credit collapse, QP teardown) breaks only
    itself: the exception is translated into that connection's
    ``fail_connection`` and the shard keeps servicing its siblings.
    """

    def __init__(self, stack: "ExsStack", index: int) -> None:
        self.sim = stack.sim
        self.host = stack.host
        self.index = index
        self.channel = stack.device.create_channel(
            wakeup=getattr(stack.host, "wakeup_sampler", None),
            seed=stack.next_seed(),
        )
        self.cq = stack.device.create_cq(self.channel)
        self.kick = Signal(stack.sim)
        self.conns: Dict[int, "ExsConnection"] = {}
        # Progress rounds only run for connections with a reason to move:
        # a routed completion, an application kick, or movement in their
        # previous round.  A quiescent connection's round is a no-op that
        # yields nothing (every pump early-returns without charging), so
        # skipping it leaves the event stream bit-identical while cutting
        # the former every-round full scan of ``conns`` — the O(N) cost
        # that dominated sink shards at 10k connections.
        self._dirty: Dict[int, None] = {}
        self._order: Dict[int, int] = {}
        self._reg_seq = itertools.count()
        # set when a registered connection is seen broken; gates the
        # dead-connection sweep so quiescent laps stay O(1) in the
        # registered-connection count
        self._has_broken = False
        #: completions routed through this shard (for telemetry)
        self.wcs_dispatched = 0
        self.rounds = 0
        self._proc = stack.sim.process(
            self._engine_loop(), name=f"{stack.host.name}-cqshard{index}"
        )

    def register(self, conn: "ExsConnection") -> None:
        """Start servicing *conn* (called from ``on_peer_hello``)."""
        qpn = conn.qp.qpn
        self.conns[qpn] = conn
        self._order[qpn] = next(self._reg_seq)
        self._dirty[qpn] = None
        self.kick.fire()

    def mark(self, conn: "ExsConnection") -> None:
        """Queue *conn* for a progress round on the next engine pass."""
        self._dirty[conn.qp.qpn] = None
        if conn.broken:
            # fail_connection kicks the connection, landing here; remember
            # that a sweep is due instead of scanning every engine lap
            self._has_broken = True

    def _engine_loop(self):
        dirty = self._dirty
        order = self._order
        while True:
            progressed = True
            while progressed:
                progressed = False
                wcs = self.cq.poll()
                for wc in wcs:
                    conn = self.conns.get(wc.qp_num)
                    if conn is None or conn.broken:
                        continue
                    self.wcs_dispatched += 1
                    dirty[wc.qp_num] = None
                    try:
                        yield from conn._handle_wc(wc)
                    except (CreditError, QPStateError) as exc:
                        conn.fail_connection(f"{type(exc).__name__}: {exc}")
                if wcs:
                    progressed = True
                if dirty:
                    # registration order, exactly as the full scan iterated
                    if len(dirty) > 1:
                        batch = sorted(dirty, key=order.__getitem__)
                    else:
                        batch = list(dirty)
                    dirty.clear()
                    for qpn in batch:
                        conn = self.conns.get(qpn)
                        if conn is None or conn.broken:
                            continue
                        try:
                            moved = yield from conn._progress_round()
                        except (CreditError, QPStateError) as exc:
                            conn.fail_connection(f"{type(exc).__name__}: {exc}")
                            moved = True
                        if moved:
                            dirty[qpn] = None
                            progressed = True
                self.rounds += 1
                if not dirty and not len(self.cq):
                    # Nothing routed and nothing marked: the next pass would
                    # poll an empty CQ and touch no connection, so skip the
                    # no-op lap and go straight to re-arm.
                    break
            # drop dead connections so the service list stays tight
            if self._has_broken:
                self._has_broken = False
                for qpn in [q for q, c in self.conns.items() if c.broken]:
                    del self.conns[qpn]
                    self._order.pop(qpn, None)
                    dirty.pop(qpn, None)
            self.cq.req_notify()
            if len(self.cq):
                continue
            yield AnyOf(self.sim, [self.channel.wait(), self.kick.wait()])
