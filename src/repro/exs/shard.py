"""Shared per-host EXS resources: the SRQ receive pool and CQ shards.

Historically every EXS connection owned a private stack of verbs
resources: ``credits`` pre-posted receive buffers, one completion queue,
one completion channel, and one progress-engine process.  That is faithful
to the two-host experiments of the paper but scales per-connection: a host
terminating N connections posts O(N·credits) receive buffers and runs N
engine processes each polling its own CQ.

Two opt-in resources change that to O(1) / O(shards) per host:

* :class:`SrqPool` — one shared receive queue
  (:class:`~repro.verbs.srq.SharedReceiveQueue`) backing the control-plane
  receive pools of every connection on the stack.  The pool is pre-filled
  to ``depth`` once; each consumed buffer is re-posted on recycle.  When
  bursts across connections drain the pool, the arriving QP takes an RNR
  NAK exactly as an individual empty receive queue would (IBTA semantics:
  RNR is evaluated against the SRQ for SRQ-attached QPs), and the sender's
  reliability layer retries after the RNR backoff.
* :class:`CqShard` — one completion channel + CQ + poller process shared
  by many connections.  Completions are routed to their connection by
  ``wc.qp_num`` in arrival order, then every registered connection gets a
  progress round.  A host polls O(shards) CQs regardless of connection
  count.

Neither is active by default: ``ExsStack(srq_depth=None, cq_shards=0)``
keeps the historical per-connection resources, bit-identical to previous
builds.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict

from ..simnet import AnyOf, Signal
from ..verbs import QPStateError, RecvWR, SGE
from .credits import CreditError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .connection import ExsConnection
    from .socket import ExsStack

__all__ = ["SrqPool", "CqShard"]


class SrqPool:
    """A stack-wide shared receive pool for control-plane buffers.

    Owns the :class:`~repro.verbs.srq.SharedReceiveQueue`, the single
    synthetic backing buffer (control messages carry their payload as a
    python object, so one 256-byte buffer backs every slot), and its
    memory registration.  Connections attach their QP to :attr:`srq` and
    call :meth:`repost` instead of posting per-QP receives.

    Eager-transport connections are *not* pooled: their receives place
    payload bytes into per-connection bounce slots.
    """

    def __init__(self, stack: "ExsStack", depth: int) -> None:
        from .connection import RECV_BUF_BYTES

        if depth <= 0:
            raise ValueError("SRQ pool depth must be positive")
        self.stack = stack
        self.depth = depth
        self.srq = stack.device.create_srq(depth)
        self.buf = stack.host.alloc(
            RECV_BUF_BYTES, real=False, label=f"{stack.host.name}:srqpool"
        )
        self.mr = stack.device.register(self.buf)
        self._recv_bytes = RECV_BUF_BYTES
        self._wr_ids = itertools.count(1)
        #: connections drawing from this pool (for telemetry)
        self.attached = 0
        for _ in range(depth):
            self.repost()

    def repost(self) -> None:
        """Post one receive buffer back into the shared pool."""
        self.srq.post_recv(
            RecvWR(
                wr_id=next(self._wr_ids),
                sge=SGE(self.mr.addr, self._recv_bytes, self.mr.lkey),
            )
        )

    # -- telemetry-facing views ----------------------------------------
    @property
    def free(self) -> int:
        return self.srq.free

    @property
    def occupancy(self) -> int:
        return len(self.srq)

    @property
    def empty_hits(self) -> int:
        return self.srq.empty_hits

    @property
    def min_free(self) -> int:
        return self.srq.min_free


class CqShard:
    """One completion vector: a shared channel + CQ and its poller.

    Connections on a sharded stack are assigned round-robin to shards; the
    shard's single engine process replaces their per-connection engines.
    Each wake-up drains the shared CQ, dispatching completions to their
    owning connection **in arrival order** (routed by ``wc.qp_num``), then
    runs one progress round per registered connection until nothing moves,
    then re-arms and sleeps — the same drain-while-awake discipline as the
    per-connection engine.

    A failing connection (credit collapse, QP teardown) breaks only
    itself: the exception is translated into that connection's
    ``fail_connection`` and the shard keeps servicing its siblings.
    """

    def __init__(self, stack: "ExsStack", index: int) -> None:
        self.sim = stack.sim
        self.host = stack.host
        self.index = index
        self.channel = stack.device.create_channel(
            wakeup=getattr(stack.host, "wakeup_sampler", None),
            seed=stack.next_seed(),
        )
        self.cq = stack.device.create_cq(self.channel)
        self.kick = Signal(stack.sim)
        self.conns: Dict[int, "ExsConnection"] = {}
        #: completions routed through this shard (for telemetry)
        self.wcs_dispatched = 0
        self.rounds = 0
        self._proc = stack.sim.process(
            self._engine_loop(), name=f"{stack.host.name}-cqshard{index}"
        )

    def register(self, conn: "ExsConnection") -> None:
        """Start servicing *conn* (called from ``on_peer_hello``)."""
        self.conns[conn.qp.qpn] = conn
        self.kick.fire()

    def _engine_loop(self):
        while True:
            progressed = True
            while progressed:
                progressed = False
                wcs = self.cq.poll()
                for wc in wcs:
                    conn = self.conns.get(wc.qp_num)
                    if conn is None or conn.broken:
                        continue
                    self.wcs_dispatched += 1
                    try:
                        yield from conn._handle_wc(wc)
                    except (CreditError, QPStateError) as exc:
                        conn.fail_connection(f"{type(exc).__name__}: {exc}")
                if wcs:
                    progressed = True
                for conn in list(self.conns.values()):
                    if conn.broken:
                        continue
                    try:
                        moved = yield from conn._progress_round()
                    except (CreditError, QPStateError) as exc:
                        conn.fail_connection(f"{type(exc).__name__}: {exc}")
                        moved = True
                    progressed = moved or progressed
                self.rounds += 1
            # drop dead connections so the service list stays tight
            for qpn in [q for q, c in self.conns.items() if c.broken]:
                del self.conns[qpn]
            self.cq.req_notify()
            if len(self.cq):
                continue
            yield AnyOf(self.sim, [self.channel.wait(), self.kick.wait()])
