"""Connection manager: REQ/REP/RTU handshake, rejection, timing."""

import pytest

from helpers import run_procs
from repro.hosts import Host
from repro.simnet import Link
from repro.verbs import ConnectionManager, QPState, connect_devices
from repro.verbs.cm import ConnectionRejected


class CmPair:
    def __init__(self, sim, prop=1000):
        self.sim = sim
        self.ha, self.hb = Host(sim, "a"), Host(sim, "b")
        self.link = Link(sim, bandwidth_bps=8e9, propagation_delay_ns=prop)
        self.da, self.db = connect_devices(sim, self.ha, self.hb, self.link)
        self.cma = ConnectionManager(self.da)
        self.cmb = ConnectionManager(self.db)

    def qp(self, device):
        cq = device.create_cq()
        return device.create_qp(cq, cq)


@pytest.fixture
def cm_pair(sim):
    return CmPair(sim)


def test_handshake_binds_qps_and_passes_private_data(sim, cm_pair):
    out = {}

    def server():
        listener = cm_pair.cmb.listen(7)
        req = yield listener.get_request()
        out["server_pdata"] = req.private_data
        qp = cm_pair.qp(cm_pair.db)
        req.accept(qp, {"srv": True})
        out["server_qp"] = qp
        yield req.established
        out["established_at"] = sim.now

    def client():
        qp = cm_pair.qp(cm_pair.da)
        done = cm_pair.cma.connect(7, qp, {"cli": 42})
        remote_qpn, pdata = yield done
        out["client_pdata"] = pdata
        out["client_qp"] = qp
        out["connected_at"] = sim.now

    run_procs(sim, server(), client())
    assert out["server_pdata"] == {"cli": 42}
    assert out["client_pdata"] == {"srv": True}
    sqp, cqp = out["server_qp"], out["client_qp"]
    assert sqp.state is QPState.READY and cqp.state is QPState.READY
    assert sqp.remote_qpn == cqp.qpn and cqp.remote_qpn == sqp.qpn
    # RTU takes another half-RTT after the client sees the REP
    assert out["established_at"] > out["connected_at"]


def test_accept_completes_half_rtt_before_connect(sim, cm_pair):
    """The passive side is usable ~½ RTT before the active side's connect
    returns — the window in which UNH EXS posts receives and ADVERTs."""
    out = {}

    def server():
        listener = cm_pair.cmb.listen(1)
        req = yield listener.get_request()
        req.accept(cm_pair.qp(cm_pair.db))
        out["accept_at"] = sim.now

    def client():
        qp = cm_pair.qp(cm_pair.da)
        yield cm_pair.cma.connect(1, qp)
        out["connect_at"] = sim.now

    run_procs(sim, server(), client())
    assert out["connect_at"] - out["accept_at"] >= cm_pair.link.propagation_delay_ns


def test_connect_to_closed_port_rejected(sim, cm_pair):
    cm_pair.cmb.listen(5)  # wrong port

    def client():
        qp = cm_pair.qp(cm_pair.da)
        try:
            yield cm_pair.cma.connect(6, qp)
        except ConnectionRejected as exc:
            return str(exc)
        return None

    (msg,) = run_procs(sim, client())
    assert "refused" in msg


def test_explicit_reject(sim, cm_pair):
    def server():
        listener = cm_pair.cmb.listen(2)
        req = yield listener.get_request()
        req.reject("full")

    def client():
        qp = cm_pair.qp(cm_pair.da)
        try:
            yield cm_pair.cma.connect(2, qp)
        except ConnectionRejected as exc:
            return str(exc)
        return None

    results = run_procs(sim, server(), client())
    assert results[1] == "full"


def test_double_listen_rejected(sim, cm_pair):
    from repro.verbs import VerbsError

    cm_pair.cmb.listen(3)
    with pytest.raises(VerbsError):
        cm_pair.cmb.listen(3)


def test_listener_close_frees_port(sim, cm_pair):
    listener = cm_pair.cmb.listen(4)
    listener.close()
    cm_pair.cmb.listen(4)  # no error


def test_multiple_connections_same_port(sim, cm_pair):
    def server():
        listener = cm_pair.cmb.listen(9)
        for _ in range(2):
            req = yield listener.get_request()
            req.accept(cm_pair.qp(cm_pair.db))

    def client(tag):
        qp = cm_pair.qp(cm_pair.da)
        remote_qpn, _ = yield cm_pair.cma.connect(9, qp)
        return remote_qpn

    results = run_procs(sim, server(), client("x"), client("y"))
    assert results[1] != results[2]
