"""Completion queues and event channels (wake-up latency model)."""

import pytest

from helpers import run_procs
from repro.verbs import CompletionQueue, WCOpcode, WCStatus, WorkCompletion, fixed_wakeup
from repro.verbs.comp_channel import CompletionChannel, uniform_wakeup


def wc(i=0):
    return WorkCompletion(wr_id=i, opcode=WCOpcode.SEND, status=WCStatus.SUCCESS)


def test_poll_drains_fifo():
    cq = CompletionQueue()
    for i in range(3):
        cq.push(wc(i))
    assert [w.wr_id for w in cq.poll(2)] == [0, 1]
    assert [w.wr_id for w in cq.poll()] == [2]
    assert cq.poll() == []
    assert cq.total_pushed == 3


def test_push_does_not_notify_unarmed_channel(sim):
    ch = CompletionChannel(sim)
    cq = CompletionQueue(ch)
    cq.push(wc())
    assert ch.notifications == 0


def test_armed_cq_notifies_once(sim):
    ch = CompletionChannel(sim)
    cq = CompletionQueue(ch)
    cq.req_notify()
    cq.push(wc(1))
    cq.push(wc(2))  # second push: not armed any more
    assert ch.notifications == 1


def test_arming_with_pending_entries_does_not_fire(sim):
    """Verbs semantics: consumers must poll before sleeping."""
    ch = CompletionChannel(sim)
    cq = CompletionQueue(ch)
    cq.push(wc())
    cq.req_notify()
    assert ch.notifications == 0


def test_wakeup_latency_applied_when_sleeping(sim):
    ch = CompletionChannel(sim, wakeup=fixed_wakeup(5000))
    cq = CompletionQueue(ch)

    def sleeper():
        cq.req_notify()
        yield ch.wait()
        return sim.now

    def producer():
        yield sim.timeout(100)
        cq.push(wc())

    results = run_procs(sim, sleeper(), producer())
    assert results[0] == 100 + 5000
    assert ch.slept_wakeups == 1


def test_latched_notify_costs_nothing(sim):
    ch = CompletionChannel(sim, wakeup=fixed_wakeup(5000))
    ch.notify()  # nobody waiting: latch

    def consumer():
        yield ch.wait()
        return sim.now

    assert run_procs(sim, consumer()) == [0]
    assert ch.slept_wakeups == 0


def test_repeated_wait_returns_same_pending_event(sim):
    ch = CompletionChannel(sim)
    first = ch.wait()
    second = ch.wait()
    assert first is second


def test_uniform_wakeup_within_bounds(sim):
    import random

    sampler = uniform_wakeup(10, 20)
    rng = random.Random(0)
    draws = [sampler(rng) for _ in range(100)]
    assert all(10 <= d <= 20 for d in draws)
    assert len(set(round(d, 3) for d in draws)) > 1


def test_cq_overflow_detected():
    cq = CompletionQueue(capacity=2)
    cq.push(wc())
    cq.push(wc())
    with pytest.raises(RuntimeError, match="overflow"):
        cq.push(wc())
    assert cq.overflowed
