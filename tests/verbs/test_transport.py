"""RC transport semantics: all opcodes, ordering, acks, RNR, errors."""

import pytest

from helpers import run_procs
from repro.hosts import Host
from repro.hosts.memory import Chunk
from repro.simnet import Link
from repro.verbs import (
    SGE,
    BadWorkRequest,
    Opcode,
    ReceiverNotReady,
    RecvWR,
    SendFlags,
    SendWR,
    WCOpcode,
    WCStatus,
    connect_devices,
)


class Pair:
    """Two connected devices with one QP pair and registered buffers."""

    def __init__(self, sim, bw=8e9, prop=100):
        self.sim = sim
        self.ha, self.hb = Host(sim, "a"), Host(sim, "b")
        self.link = Link(sim, bandwidth_bps=bw, propagation_delay_ns=prop,
                         per_message_overhead_ns=0)
        self.da, self.db = connect_devices(sim, self.ha, self.hb, self.link)
        self.cq_a = self.da.create_cq()
        self.cq_b = self.db.create_cq()
        self.qa = self.da.create_qp(self.cq_a, self.cq_a)
        self.qb = self.db.create_qp(self.cq_b, self.cq_b)
        self.qa.connect(self.qb.qpn)
        self.qb.connect(self.qa.qpn)
        self.buf_a = self.ha.alloc(4096)
        self.buf_b = self.hb.alloc(4096)
        self.mr_a = self.da.register(self.buf_a)
        self.mr_b = self.db.register(self.buf_b)


@pytest.fixture
def pair(sim):
    return Pair(sim)


def test_send_recv_moves_data(sim, pair):
    pair.buf_a.fill(b"payload")
    pair.qb.post_recv(RecvWR(wr_id=1, sge=SGE(pair.mr_b.addr, 4096, pair.mr_b.lkey)))
    pair.qa.post_send(SendWR(opcode=Opcode.SEND, wr_id=2,
                             sge=SGE(pair.mr_a.addr, 7, pair.mr_a.lkey)))
    sim.run()
    wcs = pair.cq_b.poll()
    assert len(wcs) == 1
    assert wcs[0].opcode is WCOpcode.RECV
    assert wcs[0].byte_len == 7
    assert pair.buf_b.read(0, 7) == b"payload"


def test_send_completion_needs_ack_roundtrip(sim, pair):
    pair.qb.post_recv(RecvWR(wr_id=1, sge=SGE(pair.mr_b.addr, 4096, pair.mr_b.lkey)))
    pair.qa.post_send(SendWR(opcode=Opcode.SEND, wr_id=2,
                             sge=SGE(pair.mr_a.addr, 8, pair.mr_a.lkey)))
    sim.run()
    wcs = pair.cq_a.poll()
    assert len(wcs) == 1 and wcs[0].opcode is WCOpcode.SEND
    # completion strictly after one-way + ack return (two propagation delays)
    assert sim.now >= 2 * 100


def test_rdma_write_is_silent_at_responder(sim, pair):
    pair.buf_a.fill(b"W" * 16)
    pair.qa.post_send(SendWR(opcode=Opcode.RDMA_WRITE, wr_id=3,
                             sge=SGE(pair.mr_a.addr, 16, pair.mr_a.lkey),
                             remote_addr=pair.mr_b.addr + 100, rkey=pair.mr_b.rkey))
    sim.run()
    assert pair.buf_b.read(100, 16) == b"W" * 16
    assert len(pair.cq_b) == 0          # no responder completion
    assert len(pair.cq_a.poll()) == 1   # requester completion on ack
    assert pair.qb.recv_queue_depth == 0  # and no RECV consumed


def test_write_with_imm_consumes_recv_and_delivers_imm(sim, pair):
    pair.qb.post_recv(RecvWR(wr_id=9))  # zero-length RECV
    pair.qa.post_send(SendWR(opcode=Opcode.RDMA_WRITE_WITH_IMM, wr_id=4,
                             sge=SGE(pair.mr_a.addr, 32, pair.mr_a.lkey),
                             remote_addr=pair.mr_b.addr, rkey=pair.mr_b.rkey,
                             imm_data=0xBEEF))
    sim.run()
    wcs = pair.cq_b.poll()
    assert len(wcs) == 1
    wc = wcs[0]
    assert wc.opcode is WCOpcode.RECV_RDMA_WITH_IMM
    assert wc.imm_data == 0xBEEF
    assert wc.byte_len == 32
    assert wc.wc_flags_with_imm


def test_rdma_read_round_trip(sim, pair):
    pair.buf_b.write(200, b"remote-bytes")
    pair.qa.post_send(SendWR(opcode=Opcode.RDMA_READ, wr_id=5,
                             sge=SGE(pair.mr_a.addr + 50, 12, pair.mr_a.lkey),
                             remote_addr=pair.mr_b.addr + 200, rkey=pair.mr_b.rkey))
    sim.run()
    wcs = pair.cq_a.poll()
    assert len(wcs) == 1 and wcs[0].opcode is WCOpcode.RDMA_READ
    assert pair.buf_a.read(50, 12) == b"remote-bytes"
    assert len(pair.cq_b) == 0


def test_in_order_delivery_and_cumulative_ack(sim, pair):
    for i in range(10):
        pair.qb.post_recv(RecvWR(wr_id=100 + i, sge=SGE(pair.mr_b.addr, 4096, pair.mr_b.lkey)))
    for i in range(10):
        pair.qa.post_send(SendWR(opcode=Opcode.SEND, wr_id=i,
                                 sge=SGE(pair.mr_a.addr, 64 + i, pair.mr_a.lkey)))
    sim.run()
    recv_ids = [wc.wr_id for wc in pair.cq_b.poll()]
    assert recv_ids == [100 + i for i in range(10)]
    send_ids = [wc.wr_id for wc in pair.cq_a.poll()]
    assert send_ids == list(range(10))


def test_rnr_send_without_recv_raises(sim, pair):
    pair.qa.post_send(SendWR(opcode=Opcode.SEND, wr_id=1,
                             sge=SGE(pair.mr_a.addr, 8, pair.mr_a.lkey)))
    with pytest.raises(ReceiverNotReady):
        sim.run()


def test_rnr_wwi_without_recv_raises(sim, pair):
    pair.qa.post_send(SendWR(opcode=Opcode.RDMA_WRITE_WITH_IMM, wr_id=1,
                             sge=SGE(pair.mr_a.addr, 8, pair.mr_a.lkey),
                             remote_addr=pair.mr_b.addr, rkey=pair.mr_b.rkey))
    with pytest.raises(ReceiverNotReady):
        sim.run()


def test_send_overflowing_recv_buffer_raises(sim, pair):
    pair.qb.post_recv(RecvWR(wr_id=1, sge=SGE(pair.mr_b.addr, 4, pair.mr_b.lkey)))
    pair.qa.post_send(SendWR(opcode=Opcode.SEND, wr_id=2,
                             sge=SGE(pair.mr_a.addr, 100, pair.mr_a.lkey)))
    with pytest.raises(BadWorkRequest):
        sim.run()


def test_write_outside_region_raises(sim, pair):
    pair.qa.post_send(SendWR(opcode=Opcode.RDMA_WRITE, wr_id=1,
                             sge=SGE(pair.mr_a.addr, 64, pair.mr_a.lkey),
                             remote_addr=pair.mr_b.addr + 4090, rkey=pair.mr_b.rkey))
    from repro.verbs import RemoteAccessError
    with pytest.raises(RemoteAccessError):
        sim.run()


def test_wr_validation():
    with pytest.raises(BadWorkRequest):
        SendWR(opcode=Opcode.RDMA_WRITE, sge=SGE(0, 8, 1)).validate()  # no rkey
    with pytest.raises(BadWorkRequest):
        SendWR(opcode=Opcode.SEND).validate()  # no sge
    with pytest.raises(BadWorkRequest):
        SendWR(opcode=Opcode.SEND, sge=SGE(0, 4, 1), payload=Chunk(0, 8)).validate()


def test_inline_limit_enforced(sim, pair):
    wr = SendWR(opcode=Opcode.SEND, wr_id=1,
                sge=SGE(pair.mr_a.addr, 1024, pair.mr_a.lkey),
                flags=SendFlags.SIGNALED | SendFlags.INLINE)
    with pytest.raises(BadWorkRequest, match="inline"):
        pair.qa.post_send(wr)


def test_post_on_unconnected_qp_rejected(sim, pair):
    from repro.verbs import QPStateError
    q = pair.da.create_qp(pair.cq_a, pair.cq_a)
    with pytest.raises(QPStateError):
        q.post_send(SendWR(opcode=Opcode.SEND, sge=SGE(pair.mr_a.addr, 1, pair.mr_a.lkey)))


def test_payload_dma_read_when_not_supplied(sim, pair):
    """Without an explicit payload chunk, the device DMA-reads local memory."""
    pair.buf_a.write(10, b"dma")
    pair.qb.post_recv(RecvWR(wr_id=1, sge=SGE(pair.mr_b.addr, 4096, pair.mr_b.lkey)))
    pair.qa.post_send(SendWR(opcode=Opcode.SEND, wr_id=2,
                             sge=SGE(pair.mr_a.addr + 10, 3, pair.mr_a.lkey)))
    sim.run()
    assert pair.buf_b.read(0, 3) == b"dma"


def test_wire_serialization_affects_arrival_spacing(sim):
    pair = Pair(sim, bw=8e9, prop=0)  # 1 byte/ns
    arrivals = []

    class SpyCQ:
        pass

    for i in range(3):
        pair.qb.post_recv(RecvWR(wr_id=i))
    for i in range(3):
        pair.qa.post_send(SendWR(opcode=Opcode.RDMA_WRITE_WITH_IMM, wr_id=i,
                                 sge=SGE(pair.mr_a.addr, 1000, pair.mr_a.lkey),
                                 remote_addr=pair.mr_b.addr, rkey=pair.mr_b.rkey,
                                 imm_data=i))
    sim.run()
    wcs = pair.cq_b.poll()
    assert len(wcs) == 3
    # messages of 1064 wire bytes at 1 B/ns arrive >= 1064 ns apart; exact
    # spacing is checked via the link stats
    assert pair.link.directions[0].stats.messages == 3
