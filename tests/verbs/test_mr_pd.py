"""Memory registration: keys, bounds, access rights."""

import pytest

from repro.hosts import Host
from repro.simnet import Link, Simulator
from repro.verbs import Access, RdmaDevice, RemoteAccessError, VerbsError, connect_devices


@pytest.fixture
def device(sim):
    ha, hb = Host(sim, "a"), Host(sim, "b")
    link = Link(sim, bandwidth_bps=1e9, propagation_delay_ns=10)
    da, _db = connect_devices(sim, ha, hb, link)
    return da


def test_register_assigns_distinct_keys(device):
    buf = device.host.alloc(100)
    mr1 = device.register(buf)
    mr2 = device.register(device.host.alloc(100))
    assert mr1.lkey != mr1.rkey
    assert len({mr1.lkey, mr1.rkey, mr2.lkey, mr2.rkey}) == 4


def test_lookup_by_keys(device):
    mr = device.register(device.host.alloc(64))
    assert device.pd.lookup_lkey(mr.lkey) is mr
    assert device.pd.lookup_rkey(mr.rkey) is mr
    assert device.pd.lookup_rkey(999999) is None
    with pytest.raises(RemoteAccessError):
        device.pd.lookup_lkey(999999)


def test_contains_and_offset(device):
    buf = device.host.alloc(100)
    mr = device.register(buf)
    assert mr.contains(buf.addr, 100)
    assert mr.contains(buf.addr + 50, 50)
    assert not mr.contains(buf.addr + 50, 51)
    assert mr.offset_of(buf.addr + 7) == 7
    with pytest.raises(RemoteAccessError):
        mr.offset_of(buf.addr - 1)


def test_require_checks_bounds(device):
    mr = device.register(device.host.alloc(100))
    mr.require(mr.addr, 100, Access.LOCAL_WRITE)
    with pytest.raises(RemoteAccessError, match="outside region"):
        mr.require(mr.addr + 90, 20, Access.LOCAL_WRITE)


def test_require_checks_access(device):
    buf = device.host.alloc(100)
    mr = device.register(buf, access=Access.local())
    with pytest.raises(RemoteAccessError, match="lacks access"):
        mr.require(mr.addr, 10, Access.REMOTE_WRITE)


def test_deregister_invalidates(device):
    mr = device.register(device.host.alloc(100))
    device.pd.deregister(mr)
    assert not mr.valid
    with pytest.raises(RemoteAccessError, match="deregistered"):
        mr.require(mr.addr, 1, Access.LOCAL_READ)
    with pytest.raises(VerbsError):
        device.pd.deregister(mr)


def test_region_count(device):
    assert device.pd.region_count == 0
    mr = device.register(device.host.alloc(10))
    assert device.pd.region_count == 1
    device.pd.deregister(mr)
    assert device.pd.region_count == 0
