"""Shared receive queues: pool accounting, QP attachment, RNR semantics."""

import pytest

from repro.apps.incast import (
    IncastConfig,
    _receiver_proc,
    _sender_proc,
    incast_topology,
)
from repro.config import ScenarioConfig
from repro.exs import ExsSocketOptions, TRANSPORT_EAGER_RENDEZVOUS
from repro.fabric import Fabric
from repro.simnet import Topology
from repro.verbs import ReliabilityConfig, SharedReceiveQueue, VerbsError
from repro.verbs.wr import SGE, RecvWR


def _wr(wr_id: int) -> RecvWR:
    return RecvWR(wr_id=wr_id, sge=SGE(0, 256, 0))


# ----------------------------------------------------------------------
# SharedReceiveQueue unit behavior
# ----------------------------------------------------------------------
def test_srq_is_a_fifo_pool():
    fab = Fabric(topology=Topology.point_to_point())
    srq = fab.device("client").create_srq(3)
    for i in range(3):
        srq.post_recv(_wr(i))
    assert len(srq) == 3 and srq.free == 0
    assert [srq.take().wr_id for _ in range(3)] == [0, 1, 2]
    assert len(srq) == 0 and srq.free == 3
    assert srq.posted_total == 3 and srq.consumed_total == 3


def test_srq_overflow_and_bad_depth_raise():
    fab = Fabric(topology=Topology.point_to_point())
    device = fab.device("client")
    with pytest.raises(VerbsError, match="positive"):
        device.create_srq(0)
    srq = device.create_srq(1)
    srq.post_recv(_wr(1))
    with pytest.raises(VerbsError, match="overflow"):
        srq.post_recv(_wr(2))


def test_srq_tracks_low_water_mark():
    fab = Fabric(topology=Topology.point_to_point())
    srq = fab.device("client").create_srq(4)
    for i in range(4):
        srq.post_recv(_wr(i))
    assert srq.min_free == 4  # untouched until the first take
    srq.take()
    srq.take()
    assert srq.min_free == 2
    srq.post_recv(_wr(9))
    assert srq.min_free == 2  # reposting never raises the low-water mark


def test_qp_attached_to_srq_draws_from_the_pool():
    fab = Fabric(topology=Topology.point_to_point())
    device = fab.device("client")
    srq = device.create_srq(2)
    cq = device.create_cq()
    qp_a = device.create_qp(cq, cq, srq=srq)
    qp_b = device.create_qp(cq, cq, srq=srq)
    assert qp_a.srq is srq and qp_b.srq is srq
    assert not qp_a.has_recv()
    srq.post_recv(_wr(1))
    assert qp_a.has_recv() and qp_b.has_recv()  # one buffer, visible to both
    assert qp_b.take_recv().wr_id == 1
    assert not qp_a.has_recv()


# ----------------------------------------------------------------------
# SrqPool on the EXS stack
# ----------------------------------------------------------------------
def test_stack_pool_prefills_to_depth():
    fab = Fabric(topology=Topology.point_to_point(), srq_depth=16)
    pool = fab.stack("client").srq_pool
    assert pool is not None
    assert pool.depth == 16 and pool.occupancy == 16 and pool.free == 0
    assert pool.attached == 0  # no connections yet


def test_pool_is_shared_across_connections():
    fab = Fabric(topology=Topology.point_to_point(), seed=2, srq_depth=32)
    pairs = [fab.connect("client", "server") for _ in range(3)]
    fab.run()
    assert all(p.established.triggered for p in pairs)
    assert fab.stack("client").srq_pool.attached == 3
    assert fab.stack("server").srq_pool.attached == 3
    # all six QPs share the two per-stack pools: occupancy stayed bounded
    # by the pool depth, not 3x per-connection credit counts
    assert fab.stack("server").srq_pool.occupancy <= 32


def test_eager_transport_connections_are_not_pooled():
    fab = Fabric(topology=Topology.point_to_point(), seed=2, srq_depth=32)
    options = ExsSocketOptions(transport=TRANSPORT_EAGER_RENDEZVOUS)
    pair = fab.connect("client", "server", options=options)
    fab.run()
    assert pair.established.triggered
    # eager receives land in per-connection bounce slots, so the pool
    # gained no attachments
    assert fab.stack("server").srq_pool.attached == 0


def test_srq_depth_validation():
    # 0/None means "no pool"; negative depths fail loudly
    assert Fabric(topology=Topology.point_to_point(),
                  srq_depth=0).stack("client").srq_pool is None
    with pytest.raises(ValueError):
        Fabric(topology=Topology.point_to_point(), srq_depth=-1)
    with pytest.raises(ValueError):
        ScenarioConfig(srq_depth=0)


# ----------------------------------------------------------------------
# RNR semantics under pool exhaustion
# ----------------------------------------------------------------------
def _run_starved_incast(reliability):
    """4-sender fan-in against a sink whose pool is far too small."""
    cfg = IncastConfig(senders=4, bytes_per_sender=64 * 1024,
                       message_bytes=8 * 1024)
    sc = ScenarioConfig(seed=1, srq_depth=2, topology=incast_topology(cfg),
                        reliability=reliability)
    fab = Fabric.from_scenario(sc)
    finish = {}
    for i, name in enumerate(cfg.sender_names):
        handle = fab.connect(name, cfg.sink, options=ExsSocketOptions())
        fab.sim.process(_sender_proc(handle, cfg), name=f"snd{i}")
        fab.sim.process(_receiver_proc(handle, cfg, finish, i), name=f"rcv{i}")
    fab.run()
    return cfg, fab, finish


def test_exhausted_pool_rnr_naks_and_recovers():
    cfg, fab, finish = _run_starved_incast(ReliabilityConfig.for_path(4_000))
    assert len(finish) == cfg.total_connections  # every stream completed
    pool = fab.stack(cfg.sink).srq_pool
    assert pool.min_free == 0  # the pool really did run dry
    assert pool.empty_hits > 0
    sink_stats = fab.device(cfg.sink).reliability.stats
    # every empty-pool arrival became an RNR NAK on the arriving QP,
    # and the senders saw them and backed off
    assert sink_stats.rnr_naks_sent == pool.empty_hits
    senders_rcvd = sum(
        fab.device(n).reliability.stats.rnr_naks_received
        for n in cfg.sender_names
    )
    assert senders_rcvd == sink_stats.rnr_naks_sent


def test_exhausted_pool_without_reliability_fails_loudly():
    with pytest.raises(Exception, match="empty receive queue"):
        _run_starved_incast(None)
