"""Device-level details: large-message penalty, wiring, error paths."""

import pytest

from repro.hosts import Host
from repro.simnet import Link
from repro.verbs import (
    SGE,
    DeviceConfig,
    Opcode,
    RecvWR,
    SendWR,
    VerbsError,
    connect_devices,
)


def build(sim, config=None, bw=8e9):
    ha, hb = Host(sim, "a"), Host(sim, "b")
    link = Link(sim, bandwidth_bps=bw, propagation_delay_ns=100,
                per_message_overhead_ns=0)
    da, db = connect_devices(sim, ha, hb, link, config_a=config, config_b=config)
    cq_a, cq_b = da.create_cq(), db.create_cq()
    qa, qb = da.create_qp(cq_a, cq_a), db.create_qp(cq_b, cq_b)
    qa.connect(qb.qpn)
    qb.connect(qa.qpn)
    return da, db, qa, qb, cq_a, cq_b


def test_connect_devices_cross_wires(sim):
    da, db, *_ = build(sim)
    assert da.peer is db and db.peer is da
    assert da.host.device is da


def test_large_message_penalty_slows_the_wire(sim):
    # 1 byte/ns link; penalty of 1 ns/B beyond 1000 bytes
    def one_way_time(config):
        s = type(sim)()  # fresh simulator per measurement
        da, db, qa, qb, cq_a, cq_b = build(s, config)
        buf_a = da.host.alloc(4000)
        buf_b = db.host.alloc(4000)
        mr_a, mr_b = da.register(buf_a), db.register(buf_b)
        qb.post_recv(RecvWR(wr_id=1))
        qa.post_send(SendWR(opcode=Opcode.RDMA_WRITE_WITH_IMM, wr_id=1,
                            sge=SGE(mr_a.addr, 3000, mr_a.lkey),
                            remote_addr=mr_b.addr, rkey=mr_b.rkey, imm_data=1))
        s.run()
        return s.now

    base = one_way_time(DeviceConfig(wr_overhead_ns=0, ack_turnaround_ns=0))
    penal = one_way_time(DeviceConfig(wr_overhead_ns=0, ack_turnaround_ns=0,
                                      large_msg_threshold=1000,
                                      large_msg_extra_ns_per_byte=1.0))
    assert penal - base == 2000  # (3000 - 1000) * 1 ns/B on the wire


def test_message_for_unknown_qp_rejected(sim):
    da, db, qa, qb, cq_a, cq_b = build(sim)
    qa.remote_qpn = 999999  # corrupt the binding
    buf_a = da.host.alloc(64)
    mr_a = da.register(buf_a)
    qa.post_send(SendWR(opcode=Opcode.SEND, wr_id=1, sge=SGE(mr_a.addr, 8, mr_a.lkey)))
    with pytest.raises(VerbsError, match="unknown QP"):
        sim.run()


def test_double_link_attach_rejected(sim):
    da, *_ = build(sim)
    with pytest.raises(VerbsError, match="already attached"):
        da.attach_link(Link(sim, bandwidth_bps=1e9, propagation_delay_ns=1), 0)


def test_cm_message_without_listener_rejected(sim):
    from repro.verbs.wire import CmMessage

    da, db, *_ = build(sim)
    # db has no ConnectionManager: a CM datagram must fail loudly
    da.send_cm(CmMessage(kind="req", port=1, src_qpn=1))
    with pytest.raises(VerbsError, match="no CM listener"):
        sim.run()


def test_round_robin_across_qps(sim):
    """Two QPs with queued work share the send engine fairly."""
    da, db, qa, qb, cq_a, cq_b = build(sim)
    qa2 = da.create_qp(cq_a, cq_a)
    qb2 = db.create_qp(cq_b, cq_b)
    qa2.connect(qb2.qpn)
    qb2.connect(qa2.qpn)
    buf_a = da.host.alloc(1 << 16)
    buf_b = db.host.alloc(1 << 16)
    mr_a, mr_b = da.register(buf_a), db.register(buf_b)
    for i in range(8):
        qb.post_recv(RecvWR(wr_id=i))
        qb2.post_recv(RecvWR(wr_id=100 + i))
    for i in range(8):
        for qp in (qa, qa2):
            qp.post_send(SendWR(opcode=Opcode.RDMA_WRITE_WITH_IMM, wr_id=i,
                                sge=SGE(mr_a.addr, 1000, mr_a.lkey),
                                remote_addr=mr_b.addr, rkey=mr_b.rkey, imm_data=i))
    sim.run()
    # both destinations got everything, interleaved (neither starved)
    assert len(cq_b.poll()) == 16 + 0  # 16 receive completions
    assert qb.messages_received == 8 and qb2.messages_received == 8


def test_device_counters(sim):
    da, db, qa, qb, cq_a, cq_b = build(sim)
    buf_a = da.host.alloc(64)
    mr_a = da.register(buf_a)
    buf_b = db.host.alloc(64)
    mr_b = db.register(buf_b)
    qb.post_recv(RecvWR(wr_id=1, sge=SGE(mr_b.addr, 64, mr_b.lkey)))
    qa.post_send(SendWR(opcode=Opcode.SEND, wr_id=1, sge=SGE(mr_a.addr, 8, mr_a.lkey)))
    sim.run()
    assert da.data_messages_sent == 1
    assert db.acks_sent == 1
